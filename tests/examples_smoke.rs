//! Smoke test for the `examples/` directory: every example must build
//! (cargo compiles examples as part of `cargo test`) *and* run to a
//! clean exit, so example rot is caught by the tier-1 gate.
//!
//! The examples honour `NEOMEM_EXAMPLE_ACCESSES`, letting this test run
//! them with a tiny access budget in milliseconds instead of their
//! default demo-scale runs.

use std::path::PathBuf;
use std::process::Command;

/// Tiny but non-trivial. The floor is set by `convergence_watch`: GUPS
/// first runs an initialisation sweep of `4 * rss_pages` events (24576
/// at the example's 6144-page footprint), then the hot-set relocation
/// fires after `budget / 8` steady-state updates at two events each, so
/// the marker appears at event `24576 + budget / 4` — the budget must
/// comfortably exceed `24576 / (3/4) ≈ 32768` for it to land in-run.
const SMOKE_ACCESSES: &str = "60000";

/// Locates the compiled example binaries next to this test binary
/// (`target/<profile>/deps/this_test` → `target/<profile>/examples/`).
fn examples_dir() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test binary path");
    dir.pop(); // the test binary
    if dir.ends_with("deps") {
        dir.pop();
    }
    dir.join("examples")
}

fn run_example(name: &str) -> String {
    let binary = examples_dir().join(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    assert!(
        binary.exists(),
        "example binary {} not found — was `{name}` removed from examples/?",
        binary.display()
    );
    let output = Command::new(&binary)
        .env("NEOMEM_EXAMPLE_ACCESSES", SMOKE_ACCESSES)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {}: {e}", binary.display()));
    assert!(
        output.status.success(),
        "example `{name}` exited with {}\nstdout:\n{}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    String::from_utf8(output.stdout).expect("example output is UTF-8")
}

#[test]
fn quickstart_runs() {
    let out = run_example("quickstart");
    assert!(out.contains("simulated runtime:"), "unexpected output:\n{out}");
    assert!(out.contains("speedup over first-touch NUMA:"), "unexpected output:\n{out}");
}

#[test]
fn convergence_watch_runs() {
    let out = run_example("convergence_watch");
    assert!(out.contains("hot set moved at"), "unexpected output:\n{out}");
    assert!(out.contains("promotions:"), "unexpected output:\n{out}");
}

#[test]
fn custom_policy_runs() {
    let out = run_example("custom_policy");
    assert!(out.contains("RandomPromoter"), "unexpected output:\n{out}");
    assert!(out.contains("faster than blind promotion"), "unexpected output:\n{out}");
}

#[test]
fn datacenter_tiering_runs() {
    let out = run_example("datacenter_tiering");
    assert!(out.contains("NeoMem"), "unexpected output:\n{out}");
    assert!(out.contains("ping-pong"), "unexpected output:\n{out}");
    assert!(out.contains("NeoMem speedups:"), "unexpected output:\n{out}");
}
