//! Workspace-level property tests: whole-system invariants that must
//! hold for any workload/policy/seed combination.

use neomem_repro::prelude::*;
use proptest::prelude::*;

fn any_workload() -> impl Strategy<Value = WorkloadKind> {
    prop::sample::select(vec![
        WorkloadKind::Gups,
        WorkloadKind::PageRank,
        WorkloadKind::XsBench,
        WorkloadKind::Silo,
        WorkloadKind::Btree,
        WorkloadKind::Redis,
    ])
}

fn any_policy() -> impl Strategy<Value = PolicyKind> {
    prop::sample::select(vec![
        PolicyKind::NeoMem,
        PolicyKind::Pebs,
        PolicyKind::PteScan,
        PolicyKind::Tpp,
        PolicyKind::AutoNuma,
        PolicyKind::FirstTouch,
        PolicyKind::Memtis,
    ])
}

proptest! {
    // Whole-system runs are expensive, so fewer cases than the
    // per-crate suites; fixed count and no failure-persistence files
    // keep runs deterministic and CI-reproducible.
    #![proptest_config(ProptestConfig {
        cases: 24,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    /// Conservation: every promotion/demotion is visible in byte
    /// counters; ping-pongs never exceed promotions; runtime is
    /// positive and at least the pure-CPU lower bound.
    #[test]
    fn run_invariants(
        workload in any_workload(),
        policy in any_policy(),
        seed in 0u64..1000,
    ) {
        let report = Experiment::builder()
            .workload(workload)
            .policy(policy)
            .rss_pages(1024)
            .accesses(30_000)
            .seed(seed)
            .build()
            .expect("valid experiment")
            .run();

        prop_assert!(report.accesses >= 30_000);
        prop_assert!(report.runtime.as_nanos() > 0);
        // Byte counters match event counters exactly (4 KiB pages).
        prop_assert_eq!(
            report.kernel.promoted_bytes.as_u64(),
            report.kernel.promotions * 4096
        );
        prop_assert_eq!(
            report.kernel.demoted_bytes.as_u64(),
            report.kernel.demotions * 4096
        );
        // A ping-pong is a kind of promotion.
        prop_assert!(report.kernel.ping_pongs <= report.kernel.promotions);
        // Cache counters are consistent with the access count.
        prop_assert_eq!(report.cache.accesses, report.accesses);
        prop_assert!(report.llc_misses <= report.accesses);
        // Memory requests can exceed LLC misses (writebacks) but not by
        // more than 2x (one fill + at most one writeback per miss).
        let mem_requests = report.slow_tier_accesses()
            + report.fast_reads
            + report.fast_writes;
        prop_assert!(mem_requests <= report.llc_misses * 2 + 2);
        // TLB activity covers every access.
        prop_assert_eq!(report.tlb.hits + report.tlb.misses, report.accesses);
    }

    /// First-touch is migration-free for every workload and seed.
    #[test]
    fn first_touch_is_inert(workload in any_workload(), seed in 0u64..1000) {
        let report = Experiment::builder()
            .workload(workload)
            .policy(PolicyKind::FirstTouch)
            .rss_pages(1024)
            .accesses(20_000)
            .seed(seed)
            .build()
            .expect("valid experiment")
            .run();
        prop_assert_eq!(report.kernel.promotions, 0);
        prop_assert_eq!(report.kernel.demotions, 0);
        prop_assert_eq!(report.profiling_overhead, Nanos::ZERO);
    }
}
