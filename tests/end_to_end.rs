//! Cross-crate integration tests: the paper's headline claims as
//! executable assertions, at reduced scale.

use neomem_repro::prelude::*;

fn run(workload: WorkloadKind, policy: PolicyKind, seed: u64) -> RunReport {
    Experiment::builder()
        .workload(workload)
        .policy(policy)
        .rss_pages(4096)
        .ratio(2)
        .accesses(300_000)
        .seed(seed)
        .build()
        .expect("valid experiment")
        .run()
}

#[test]
fn neomem_beats_first_touch_on_skewed_workloads() {
    // The paper's core claim, at its strongest on GUPS and XSBench.
    for wl in [WorkloadKind::Gups, WorkloadKind::XsBench] {
        let neomem = run(wl, PolicyKind::NeoMem, 3);
        let first_touch = run(wl, PolicyKind::FirstTouch, 3);
        assert!(
            neomem.runtime < first_touch.runtime,
            "{wl}: NeoMem {} should beat first-touch {}",
            neomem.runtime,
            first_touch.runtime
        );
        assert!(neomem.kernel.promotions > 0, "{wl}: NeoMem must promote");
    }
}

#[test]
fn neomem_has_lowest_slow_tier_traffic_on_gups() {
    // Fig. 13: NeoMem exhibits significantly lower slow-tier traffic.
    let neomem = run(WorkloadKind::Gups, PolicyKind::NeoMem, 5);
    for baseline in [PolicyKind::Pebs, PolicyKind::PteScan, PolicyKind::FirstTouch] {
        let other = run(WorkloadKind::Gups, baseline, 5);
        assert!(
            neomem.slow_tier_accesses() <= other.slow_tier_accesses(),
            "NeoMem slow traffic {} should not exceed {} of {}",
            neomem.slow_tier_accesses(),
            other.slow_tier_accesses(),
            other.policy
        );
    }
}

#[test]
fn first_touch_never_migrates() {
    let report = run(WorkloadKind::Silo, PolicyKind::FirstTouch, 1);
    assert_eq!(report.kernel.promotions, 0);
    assert_eq!(report.kernel.demotions, 0);
    assert_eq!(report.kernel.ping_pongs, 0);
}

#[test]
fn pinned_slow_is_substantially_slower_than_pinned_fast() {
    // Fig. 3b: CXL-only placement costs 64%-295% across benchmarks.
    let fast = Experiment::builder()
        .workload(WorkloadKind::Gups)
        .policy(PolicyKind::PinnedFast)
        .rss_pages(1024)
        .accesses(150_000)
        .configure(|c| {
            c.memory = Some(neomem_repro::mem::TieredMemoryConfig::with_frames(2048, 2048));
        })
        .build()
        .unwrap()
        .run();
    let slow = Experiment::builder()
        .workload(WorkloadKind::Gups)
        .policy(PolicyKind::PinnedSlow)
        .rss_pages(1024)
        .accesses(150_000)
        .configure(|c| {
            c.memory = Some(neomem_repro::mem::TieredMemoryConfig::with_frames(2048, 2048));
        })
        .build()
        .unwrap()
        .run();
    let slowdown = slow.runtime.as_nanos() as f64 / fast.runtime.as_nanos() as f64;
    assert!(slowdown > 1.3, "CXL-only slowdown only {slowdown:.2}x");
}

#[test]
fn profiling_overhead_is_negligible_for_neomem() {
    // §VI-D: NeoProf's host cost (MMIO only) is a vanishing share.
    let report = run(WorkloadKind::Gups, PolicyKind::NeoMem, 7);
    let share = report.profiling_overhead.as_nanos() as f64 / report.runtime.as_nanos() as f64;
    assert!(share < 0.01, "NeoProf host share {share} should be far below 1%");
}

#[test]
fn pebs_overhead_grows_with_sampling_frequency() {
    // Fig. 4c: dense PMU sampling costs real time.
    let dense = Experiment::builder()
        .workload(WorkloadKind::Gups)
        .policy(PolicyKind::Pebs)
        .rss_pages(4096)
        .accesses(300_000)
        .overrides(PolicyOverrides { pebs_sample_interval: Some(5), ..Default::default() })
        .build()
        .unwrap()
        .run();
    let sparse = Experiment::builder()
        .workload(WorkloadKind::Gups)
        .policy(PolicyKind::Pebs)
        .rss_pages(4096)
        .accesses(300_000)
        .overrides(PolicyOverrides { pebs_sample_interval: Some(5000), ..Default::default() })
        .build()
        .unwrap()
        .run();
    assert!(
        dense.profiling_overhead > sparse.profiling_overhead * 10,
        "dense {} vs sparse {}",
        dense.profiling_overhead,
        sparse.profiling_overhead
    );
}

#[test]
fn deterministic_runs_for_equal_seeds() {
    let a = run(WorkloadKind::Btree, PolicyKind::NeoMem, 11);
    let b = run(WorkloadKind::Btree, PolicyKind::NeoMem, 11);
    assert_eq!(a.runtime, b.runtime);
    assert_eq!(a.kernel.promotions, b.kernel.promotions);
    assert_eq!(a.slow_tier_accesses(), b.slow_tier_accesses());
}

#[test]
fn every_fig11_cell_runs() {
    // One cheap sweep over the whole Fig. 11 grid: every workload ×
    // policy combination must complete and produce sane counters.
    for wl in WorkloadKind::FIG11 {
        for policy in PolicyKind::FIG11 {
            let report = Experiment::builder()
                .workload(wl)
                .policy(policy)
                .rss_pages(1024)
                .accesses(40_000)
                .build()
                .expect("valid experiment")
                .run();
            assert!(report.runtime.as_nanos() > 0, "{wl}/{policy}: zero runtime");
            assert!(report.accesses >= 40_000, "{wl}/{policy}: truncated run");
            assert!(report.llc_misses > 0, "{wl}/{policy}: no memory traffic");
        }
    }
}
