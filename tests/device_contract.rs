//! Integration tests for the NeoProf device ↔ driver ↔ kernel contract.

use neomem_repro::kernel::{Kernel, KernelConfig};
use neomem_repro::neoprof::{mmio, NeoProf, NeoProfConfig};
use neomem_repro::prelude::*;
use neomem_repro::profilers::{NeoProfDriver, NeoProfDriverConfig};
use neomem_repro::sketch::SketchParams;
use neomem_repro::types::{AccessKind, MemRequest, PageNum, VirtPage};

#[test]
fn full_mmio_protocol_round_trip() {
    let mut dev = NeoProf::new(NeoProfConfig::small(PageNum::new(0))).unwrap();
    // Drive the entire Table II command set in a realistic order.
    dev.mmio_write(mmio::RESET, 1, Nanos::ZERO).unwrap();
    dev.mmio_write(mmio::SET_THRESHOLD, 3, Nanos::ZERO).unwrap();
    for round in 0..5u64 {
        for page in 0..32u64 {
            dev.snoop(
                MemRequest::new(PageNum::new(page), 0, AccessKind::Read),
                Nanos::new(5),
            );
        }
        dev.tick();
        let _ = round;
    }
    // Pages crossed θ=3 after 5 rounds.
    let n = dev.mmio_read(mmio::GET_NR_HOT_PAGE, Nanos::from_micros(1)).unwrap();
    assert_eq!(n, 32, "all 32 pages became hot exactly once");
    let mut drained = 0;
    while dev.mmio_read(mmio::GET_HOT_PAGE, Nanos::from_micros(1)).unwrap() != mmio::EMPTY_SENTINEL
    {
        drained += 1;
    }
    assert_eq!(drained, 32);
    // State readout protocol.
    let cycles = dev.mmio_read(mmio::GET_NR_SAMPLE, Nanos::from_micros(2)).unwrap();
    assert!(cycles > 0);
    let rd = dev.mmio_read(mmio::GET_RD_CNT, Nanos::from_micros(2)).unwrap();
    assert!(rd > 0, "read-busy cycles must be visible");
    // Histogram protocol.
    dev.mmio_write(mmio::SET_HIST_EN, 1, Nanos::from_micros(3)).unwrap();
    assert_eq!(dev.mmio_read(mmio::GET_NR_HIST_BIN, Nanos::from_micros(3)).unwrap(), 64);
    let mut total = 0u64;
    for _ in 0..64 {
        total += dev.mmio_read(mmio::GET_HIST, Nanos::from_micros(3)).unwrap();
    }
    assert_eq!(total, SketchParams::small().width as u64);
}

#[test]
fn driver_resolves_hot_device_pages_through_kernel_rmap() {
    let mut kernel = Kernel::new(KernelConfig::with_frames(8, 64));
    for p in 0..40 {
        kernel.touch_alloc(VirtPage::new(p), Nanos::ZERO).unwrap();
    }
    let slow_base = kernel.memory().slow_base();
    let mut driver =
        NeoProfDriver::new(NeoProfConfig::small(slow_base), NeoProfDriverConfig::default())
            .unwrap();
    driver.set_threshold(2, Nanos::ZERO);

    // Hammer three slow-tier pages through the device path.
    let hot = [VirtPage::new(20), VirtPage::new(25), VirtPage::new(30)];
    for _ in 0..4 {
        for &vp in &hot {
            let frame = kernel.translate(vp).unwrap();
            assert!(kernel.memory().tier_of(frame).is_slow());
            driver.snoop(MemRequest::new(frame, 0, AccessKind::Read));
        }
    }
    let (mut pages, cost) = driver.read_hot_pages(&kernel, Nanos::from_micros(5));
    pages.sort();
    assert_eq!(pages, hot.to_vec());
    assert!(cost > Nanos::ZERO, "MMIO readout must cost host time");

    // Migration invalidates the rmap translation for the old frame:
    // subsequent device reports for stale frames are dropped.
    let stale_frame = kernel.translate(hot[0]).unwrap();
    kernel.promote(hot[0], Nanos::ZERO).unwrap();
    driver.set_threshold(1, Nanos::ZERO);
    for _ in 0..3 {
        driver.snoop(MemRequest::new(stale_frame, 0, AccessKind::Read));
    }
    let (pages, _) = driver.read_hot_pages(&kernel, Nanos::from_micros(10));
    assert!(pages.is_empty(), "stale frame reports must not resurface: {pages:?}");
}

#[test]
fn device_survives_command_fuzzing() {
    // Arbitrary offsets must never wedge the device, only error.
    let mut dev = NeoProf::new(NeoProfConfig::small(PageNum::new(0))).unwrap();
    for offset in (0u64..0x1000).step_by(0x40) {
        let _ = dev.mmio_write(offset, 1, Nanos::ZERO);
        let _ = dev.mmio_read(offset, Nanos::ZERO);
    }
    // Still functional afterwards.
    dev.mmio_write(mmio::SET_THRESHOLD, 1, Nanos::ZERO).unwrap();
    dev.snoop(MemRequest::new(PageNum::new(3), 0, AccessKind::Read), Nanos::new(5));
    dev.snoop(MemRequest::new(PageNum::new(3), 0, AccessKind::Read), Nanos::new(5));
    dev.tick();
    assert_eq!(dev.mmio_read(mmio::GET_NR_HOT_PAGE, Nanos::ZERO).unwrap(), 1);
}
