//! Root package of the NeoMem reproduction workspace.
//!
//! This thin facade re-exports the [`neomem`] crate so the repository-level
//! `examples/` and `tests/` directories can exercise the public API exactly
//! as a downstream user would. See the `neomem` crate for the actual API
//! documentation.
//!
//! ```
//! use neomem_repro::prelude::*;
//!
//! let report = Experiment::builder()
//!     .workload(WorkloadKind::Gups)
//!     .policy(PolicyKind::NeoMem)
//!     .accesses(50_000)
//!     .build()
//!     .expect("valid experiment")
//!     .run();
//! assert!(report.runtime.as_nanos() > 0);
//! ```

pub use neomem::*;

/// Convenience re-export matching `neomem::prelude`.
pub mod prelude {
    pub use neomem::prelude::*;
}

/// Access budget for the `examples/` binaries: `default` unless the
/// `NEOMEM_EXAMPLE_ACCESSES` environment variable holds a number, in
/// which case that wins. The `examples_smoke` integration test uses the
/// override to run every example with a tiny budget; unparseable values
/// fall back to `default`.
///
/// ```
/// // The variable is unset in normal builds, so the default wins.
/// assert_eq!(neomem_repro::example_accesses(400_000), 400_000);
/// ```
pub fn example_accesses(default: u64) -> u64 {
    std::env::var("NEOMEM_EXAMPLE_ACCESSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
