//! Root package of the NeoMem reproduction workspace.
//!
//! This thin facade re-exports the [`neomem`] crate so the repository-level
//! `examples/` and `tests/` directories can exercise the public API exactly
//! as a downstream user would. See the `neomem` crate for the actual API
//! documentation.
//!
//! ```
//! use neomem_repro::prelude::*;
//!
//! let report = Experiment::builder()
//!     .workload(WorkloadKind::Gups)
//!     .policy(PolicyKind::NeoMem)
//!     .accesses(50_000)
//!     .build()
//!     .expect("valid experiment")
//!     .run();
//! assert!(report.runtime.as_nanos() > 0);
//! ```

pub use neomem::*;

/// Convenience re-export matching `neomem::prelude`.
pub mod prelude {
    pub use neomem::prelude::*;
}
