//! Property-based tests for the NeoProf device model.

use neomem_neoprof::{mmio, NeoProf, NeoProfConfig};
use neomem_types::{AccessKind, MemRequest, Nanos, PageNum};
use proptest::prelude::*;

fn device() -> NeoProf {
    NeoProf::new(NeoProfConfig::small(PageNum::new(0))).unwrap()
}

proptest! {
    // Fixed case count and no failure-persistence files: runs are
    // deterministic and CI-reproducible.
    #![proptest_config(ProptestConfig {
        cases: 64,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]
    /// MMIO fuzzing: arbitrary interleavings of reads/writes at
    /// arbitrary offsets never panic and never wedge the device.
    #[test]
    fn mmio_never_panics(
        ops in prop::collection::vec((0u64..0x1000, 0u64..1000, prop::bool::ANY), 0..200),
    ) {
        let mut dev = device();
        for &(offset, value, is_write) in &ops {
            if is_write {
                let _ = dev.mmio_write(offset, value, Nanos::new(value));
            } else {
                let _ = dev.mmio_read(offset, Nanos::new(value));
            }
        }
        // Device still functional afterwards.
        dev.mmio_write(mmio::SET_THRESHOLD, 1, Nanos::ZERO).unwrap();
        dev.snoop(MemRequest::new(PageNum::new(1), 0, AccessKind::Read), Nanos::new(5));
        dev.snoop(MemRequest::new(PageNum::new(1), 0, AccessKind::Read), Nanos::new(5));
        dev.tick();
        prop_assert_eq!(dev.mmio_read(mmio::GET_NR_HOT_PAGE, Nanos::ZERO).unwrap(), 1);
    }

    /// Hot-page reports through the device equal the set of pages whose
    /// true access count exceeds θ (the device adds no false negatives
    /// for small page sets, where sketch collisions are negligible).
    #[test]
    fn device_reports_match_ground_truth(
        stream in prop::collection::vec(0u64..48, 1..2000),
        theta in 1u64..12,
    ) {
        let mut dev = device();
        dev.mmio_write(mmio::SET_THRESHOLD, theta, Nanos::ZERO).unwrap();
        let mut truth = std::collections::HashMap::<u64, u64>::new();
        for &p in &stream {
            dev.snoop(MemRequest::new(PageNum::new(p), 0, AccessKind::Read), Nanos::new(5));
            dev.tick();
            *truth.entry(p).or_default() += 1;
        }
        let mut reported = std::collections::HashSet::new();
        loop {
            let raw = dev.mmio_read(mmio::GET_HOT_PAGE, Nanos::ZERO).unwrap();
            if raw == mmio::EMPTY_SENTINEL {
                break;
            }
            prop_assert!(reported.insert(raw), "duplicate hot-page report {}", raw);
        }
        for (&page, &count) in &truth {
            if count > theta {
                prop_assert!(reported.contains(&page), "page {} (count {}) missing", page, count);
            }
        }
    }

    /// The state monitor's busy cycles equal the sum of snooped
    /// occupancies (converted to the 400 MHz domain), split by kind.
    #[test]
    fn state_monitor_conserves_busy_time(
        reqs in prop::collection::vec((0u64..64, prop::bool::ANY), 0..500),
    ) {
        let mut dev = device();
        let occupancy = Nanos::new(10); // 4 cycles at 400 MHz
        let mut reads = 0u64;
        let mut writes = 0u64;
        for &(page, is_write) in &reqs {
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            if is_write {
                writes += 1;
            } else {
                reads += 1;
            }
            dev.snoop(MemRequest::new(PageNum::new(page), 0, kind), occupancy);
        }
        let snap = dev.peek_state(Nanos::from_micros(100));
        prop_assert_eq!(snap.read_cycles, reads * 4);
        prop_assert_eq!(snap.write_cycles, writes * 4);
    }

    /// Reset returns the device to a pristine observable state.
    #[test]
    fn reset_is_total(stream in prop::collection::vec(0u64..64, 1..500)) {
        let mut dev = device();
        dev.mmio_write(mmio::SET_THRESHOLD, 1, Nanos::ZERO).unwrap();
        for &p in &stream {
            dev.snoop(MemRequest::new(PageNum::new(p), 0, AccessKind::Write), Nanos::new(5));
        }
        dev.tick();
        dev.mmio_write(mmio::RESET, 1, Nanos::from_micros(1)).unwrap();
        prop_assert_eq!(dev.mmio_read(mmio::GET_NR_HOT_PAGE, Nanos::from_micros(1)).unwrap(), 0);
        prop_assert_eq!(
            dev.mmio_read(mmio::GET_HOT_PAGE, Nanos::from_micros(1)).unwrap(),
            mmio::EMPTY_SENTINEL
        );
        let snap = dev.peek_state(Nanos::from_micros(2));
        prop_assert_eq!(snap.read_cycles, 0);
        prop_assert_eq!(snap.write_cycles, 0);
    }
}
