//! The high-frequency page and state monitors (Fig. 6).

use neomem_types::json::Json;
use neomem_types::{AccessKind, DevicePage, MemRequest, Nanos, PageNum, Result};

use crate::cycles_of;

/// Extracts device-local page addresses from snooped CXL.mem requests.
#[derive(Debug, Clone)]
pub struct PageMonitor {
    device_base: PageNum,
    observed: u64,
    foreign: u64,
}

impl PageMonitor {
    /// Creates a monitor for a device whose memory window starts at
    /// `device_base` in host physical frame space.
    pub fn new(device_base: PageNum) -> Self {
        Self { device_base, observed: 0, foreign: 0 }
    }

    /// Extracts the device page of `req`, or `None` (counted) for a
    /// request outside the device window — which would indicate a
    /// routing bug in the host.
    pub fn extract(&mut self, req: &MemRequest) -> Option<DevicePage> {
        match DevicePage::from_host(req.frame, self.device_base) {
            Some(page) => {
                self.observed += 1;
                Some(page)
            }
            None => {
                self.foreign += 1;
                None
            }
        }
    }

    /// Requests successfully attributed to a device page.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Requests outside the device window.
    pub fn foreign(&self) -> u64 {
        self.foreign
    }

    /// Resets counters.
    pub fn reset(&mut self) {
        self.observed = 0;
        self.foreign = 0;
    }

    /// Serialises the counters for a machine snapshot. The device base is
    /// construction config and is not stored.
    pub fn snapshot(&self) -> Json {
        Json::obj([("observed", Json::U64(self.observed)), ("foreign", Json::U64(self.foreign))])
    }

    /// Restores [`PageMonitor::snapshot`] state.
    ///
    /// # Errors
    ///
    /// Returns [`neomem_types::Error::Snapshot`] on missing/malformed
    /// fields.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        self.observed = snap.req_u64("observed")?;
        self.foreign = snap.req_u64("foreign")?;
        Ok(())
    }
}

/// A read-out of the state monitor: the raw material for bandwidth
/// utilisation `B = (read + write) / total_cycles` (paper §V-A).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateSnapshot {
    /// Device cycles elapsed in the sampling window (`GetNrSample`).
    pub sampled_cycles: u64,
    /// Cycles the channel spent transferring read data (`GetRdCnt`).
    pub read_cycles: u64,
    /// Cycles the channel spent transferring write data (`GetWrCnt`).
    pub write_cycles: u64,
}

impl StateSnapshot {
    /// Bandwidth utilisation `B ∈ [0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.sampled_cycles == 0 {
            return 0.0;
        }
        ((self.read_cycles + self.write_cycles) as f64 / self.sampled_cycles as f64).min(1.0)
    }

    /// Fraction of busy cycles that were reads; `0.5` when idle.
    pub fn read_fraction(&self) -> f64 {
        let busy = self.read_cycles + self.write_cycles;
        if busy == 0 {
            0.5
        } else {
            self.read_cycles as f64 / busy as f64
        }
    }
}

/// Tracks read/write channel-busy cycles within the current window.
#[derive(Debug, Clone, Default)]
pub struct StateMonitor {
    read_cycles: u64,
    write_cycles: u64,
    window_start: Nanos,
}

impl StateMonitor {
    /// Creates a monitor with its window starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request occupying the channel for `occupancy`.
    pub fn record(&mut self, kind: AccessKind, occupancy: Nanos) {
        let cycles = cycles_of(occupancy);
        match kind {
            AccessKind::Read => self.read_cycles += cycles,
            AccessKind::Write => self.write_cycles += cycles,
        }
    }

    /// Closes the window at `now`, returning the snapshot and starting a
    /// new window — the effect of the driver's `GetNrSample` read.
    pub fn roll(&mut self, now: Nanos) -> StateSnapshot {
        let snap = self.peek(now);
        self.read_cycles = 0;
        self.write_cycles = 0;
        self.window_start = now;
        snap
    }

    /// Reads the in-progress window without resetting.
    pub fn peek(&self, now: Nanos) -> StateSnapshot {
        StateSnapshot {
            sampled_cycles: cycles_of(now.saturating_sub(self.window_start)),
            read_cycles: self.read_cycles,
            write_cycles: self.write_cycles,
        }
    }

    /// Resets the window at `now`, discarding its contents.
    pub fn reset(&mut self, now: Nanos) {
        self.read_cycles = 0;
        self.write_cycles = 0;
        self.window_start = now;
    }

    /// Serialises the in-progress window for a machine snapshot.
    pub fn snapshot(&self) -> Json {
        Json::obj([
            ("read_cycles", Json::U64(self.read_cycles)),
            ("write_cycles", Json::U64(self.write_cycles)),
            ("window_start", Json::U64(self.window_start.as_nanos())),
        ])
    }

    /// Restores [`StateMonitor::snapshot`] state.
    ///
    /// # Errors
    ///
    /// Returns [`neomem_types::Error::Snapshot`] on missing/malformed
    /// fields.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        self.read_cycles = snap.req_u64("read_cycles")?;
        self.write_cycles = snap.req_u64("write_cycles")?;
        self.window_start = Nanos::new(snap.req_u64("window_start")?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_monitor_translates_window() {
        let mut pm = PageMonitor::new(PageNum::new(100));
        let inside = MemRequest::new(PageNum::new(150), 0, AccessKind::Read);
        let outside = MemRequest::new(PageNum::new(50), 0, AccessKind::Read);
        assert_eq!(pm.extract(&inside), Some(DevicePage::new(50)));
        assert_eq!(pm.extract(&outside), None);
        assert_eq!(pm.observed(), 1);
        assert_eq!(pm.foreign(), 1);
        pm.reset();
        assert_eq!(pm.observed(), 0);
    }

    #[test]
    fn state_monitor_utilization() {
        let mut sm = StateMonitor::new();
        // 100 ns of read busy + 100 ns of write busy in a 1 µs window.
        sm.record(AccessKind::Read, Nanos::new(100));
        sm.record(AccessKind::Write, Nanos::new(100));
        let snap = sm.roll(Nanos::from_micros(1));
        assert_eq!(snap.sampled_cycles, 400);
        assert_eq!(snap.read_cycles, 40);
        assert_eq!(snap.write_cycles, 40);
        assert!((snap.utilization() - 0.2).abs() < 1e-9);
        assert!((snap.read_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn roll_starts_new_window() {
        let mut sm = StateMonitor::new();
        sm.record(AccessKind::Read, Nanos::new(50));
        sm.roll(Nanos::from_micros(1));
        let snap = sm.roll(Nanos::from_micros(2));
        assert_eq!(snap.read_cycles, 0);
        assert_eq!(snap.sampled_cycles, 400);
    }

    #[test]
    fn idle_snapshot() {
        let snap = StateSnapshot::default();
        assert_eq!(snap.utilization(), 0.0);
        assert_eq!(snap.read_fraction(), 0.5);
    }

    #[test]
    fn reset_discards_window() {
        let mut sm = StateMonitor::new();
        sm.record(AccessKind::Write, Nanos::new(500));
        sm.reset(Nanos::from_micros(10));
        let snap = sm.peek(Nanos::from_micros(11));
        assert_eq!(snap.write_cycles, 0);
        assert_eq!(snap.sampled_cycles, 400);
    }
}
