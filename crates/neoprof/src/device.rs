//! The assembled NeoProf device.

use neomem_sketch::{CounterHistogram, HotPageDetector, SketchParams, HISTOGRAM_BINS};
use neomem_types::json::Json;
use neomem_types::{DevicePage, Error, MemRequest, Nanos, PageNum, Result};

use crate::fifo::AsyncFifo;
use crate::mmio;
use crate::monitors::{PageMonitor, StateMonitor, StateSnapshot};

/// Construction parameters for the device.
#[derive(Debug, Clone, Copy)]
pub struct NeoProfConfig {
    /// Sketch/detector parameters (Table IV).
    pub sketch: SketchParams,
    /// First host frame of the device's memory window.
    pub device_base: PageNum,
    /// Depth of the monitor→core async FIFO.
    pub fifo_depth: usize,
    /// Pages the low-frequency core drains from the FIFO per
    /// [`NeoProf::tick`].
    pub drain_per_tick: usize,
}

impl NeoProfConfig {
    /// Paper-default hardware parameters (Table IV).
    pub fn paper_default(device_base: PageNum) -> Self {
        Self {
            sketch: SketchParams::paper_default(),
            device_base,
            fifo_depth: 4096,
            drain_per_tick: 4096,
        }
    }

    /// A small configuration for tests and fast simulations.
    pub fn small(device_base: PageNum) -> Self {
        Self { sketch: SketchParams::small(), device_base, fifo_depth: 1024, drain_per_tick: 1024 }
    }
}

/// Aggregate device statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeoProfStats {
    /// Requests snooped off the CXL channel.
    pub snooped: u64,
    /// Page samples dropped at the async FIFO.
    pub fifo_dropped: u64,
    /// Hot pages reported (pushed to the hot-page buffer).
    pub hot_reported: u64,
    /// MMIO commands processed.
    pub mmio_ops: u64,
}

/// The NeoProf device: monitors + FIFO + detector core + MMIO decoder.
#[derive(Debug, Clone)]
pub struct NeoProf {
    page_monitor: PageMonitor,
    state_monitor: StateMonitor,
    fifo: AsyncFifo<DevicePage>,
    detector: HotPageDetector,
    drain_per_tick: usize,
    /// Histogram latched by `SetHistEn`, streamed out by `GetHist`.
    hist: Option<CounterHistogram>,
    hist_read_idx: usize,
    /// State snapshot latched by `GetNrSample`.
    latched_state: StateSnapshot,
    stats: NeoProfStats,
    /// Reused drain buffer for [`Self::snoop_tick_batch`]; scratch
    /// only, never snapshotted.
    drain_buf: Vec<DevicePage>,
}

impl NeoProf {
    /// Creates the device.
    ///
    /// # Errors
    ///
    /// Propagates invalid sketch parameters.
    pub fn new(config: NeoProfConfig) -> Result<Self> {
        Ok(Self {
            page_monitor: PageMonitor::new(config.device_base),
            state_monitor: StateMonitor::new(),
            fifo: AsyncFifo::new(config.fifo_depth),
            detector: HotPageDetector::new(config.sketch)?,
            drain_per_tick: config.drain_per_tick.max(1),
            hist: None,
            hist_read_idx: 0,
            latched_state: StateSnapshot::default(),
            stats: NeoProfStats::default(),
            drain_buf: Vec::new(),
        })
    }

    /// Snoops one CXL.mem request occupying the channel for `occupancy`.
    ///
    /// This is the high-frequency path: the page monitor extracts the
    /// page and enqueues it; the state monitor accumulates busy cycles.
    /// Call [`tick`](Self::tick) to let the low-frequency core drain.
    pub fn snoop(&mut self, req: MemRequest, occupancy: Nanos) {
        self.stats.snooped += 1;
        self.state_monitor.record(req.kind, occupancy);
        if let Some(page) = self.page_monitor.extract(&req) {
            if !self.fifo.push(page) {
                self.stats.fifo_dropped += 1;
            }
        }
    }

    /// Runs the low-frequency core: drains up to `drain_per_tick` pages
    /// through the hot-page detector pipeline in one allocation-free
    /// sweep.
    pub fn tick(&mut self) {
        let n = self.drain_per_tick;
        let Self { fifo, detector, stats, .. } = self;
        for page in fifo.drain_up_to(n) {
            if detector.observe(page).is_some() {
                stats.hot_reported += 1;
            }
        }
    }

    /// Snoops a batch of requests, each occupying the channel for
    /// `occupancy`, with one low-frequency-core tick per request —
    /// bit-identical to alternating [`snoop`](Self::snoop) /
    /// [`tick`](Self::tick) calls.
    ///
    /// FIFO pushes and drains stay interleaved per request, because
    /// overflow accounting is schedule-sensitive; the drained pages'
    /// detector observations never touch the FIFO, so they coalesce
    /// into one lane-major sketch pass at batch end
    /// ([`HotPageDetector::observe_batch`]) in the exact drain order.
    pub fn snoop_tick_batch(&mut self, reqs: &[MemRequest], occupancy: Nanos) {
        let n = self.drain_per_tick;
        let mut drained = std::mem::take(&mut self.drain_buf);
        drained.clear();
        for &req in reqs {
            self.stats.snooped += 1;
            self.state_monitor.record(req.kind, occupancy);
            if let Some(page) = self.page_monitor.extract(&req) {
                if !self.fifo.push(page) {
                    self.stats.fifo_dropped += 1;
                }
            }
            drained.extend(self.fifo.drain_up_to(n));
        }
        self.stats.hot_reported += self.detector.observe_batch(&drained);
        self.drain_buf = drained;
    }

    /// Handles an MMIO write (host → device command).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownCommand`] for an unmapped offset and
    /// [`Error::CommandDirection`] for writing a read-only register.
    pub fn mmio_write(&mut self, offset: u64, value: u64, now: Nanos) -> Result<()> {
        self.stats.mmio_ops += 1;
        match offset {
            mmio::RESET => {
                self.detector.clear();
                self.fifo.clear();
                self.state_monitor.reset(now);
                self.page_monitor.reset();
                self.hist = None;
                self.hist_read_idx = 0;
                Ok(())
            }
            mmio::SET_THRESHOLD => {
                self.detector.set_threshold(value.min(u16::MAX as u64) as u16);
                Ok(())
            }
            mmio::SET_HIST_EN => {
                // The histogram unit sweeps sketch lane 0 (Fig. 9).
                self.hist = Some(self.detector.sketch().lane_histogram(0));
                self.hist_read_idx = 0;
                Ok(())
            }
            off if mmio::is_read_command(off) => Err(Error::CommandDirection { offset }),
            _ => Err(Error::UnknownCommand { offset }),
        }
    }

    /// Handles an MMIO read (host ← device).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownCommand`] for an unmapped offset and
    /// [`Error::CommandDirection`] for reading a write-only register.
    pub fn mmio_read(&mut self, offset: u64, now: Nanos) -> Result<u64> {
        self.stats.mmio_ops += 1;
        match offset {
            mmio::GET_NR_HOT_PAGE => Ok(self.detector.pending_hot_pages() as u64),
            mmio::GET_HOT_PAGE => {
                Ok(self.detector.pop_hot_page().map_or(mmio::EMPTY_SENTINEL, |p| p.index()))
            }
            mmio::GET_NR_SAMPLE => {
                self.latched_state = self.state_monitor.roll(now);
                Ok(self.latched_state.sampled_cycles)
            }
            mmio::GET_RD_CNT => Ok(self.latched_state.read_cycles),
            mmio::GET_WR_CNT => Ok(self.latched_state.write_cycles),
            mmio::GET_NR_HIST_BIN => Ok(HISTOGRAM_BINS as u64),
            mmio::GET_HIST => match &self.hist {
                Some(h) if self.hist_read_idx < HISTOGRAM_BINS => {
                    let v = h.bins()[self.hist_read_idx];
                    self.hist_read_idx += 1;
                    Ok(v)
                }
                _ => Ok(mmio::EMPTY_SENTINEL),
            },
            off if mmio::is_write_command(off) => Err(Error::CommandDirection { offset }),
            _ => Err(Error::UnknownCommand { offset }),
        }
    }

    /// Direct access to the detector (white-box tests and the in-process
    /// driver fast path; the MMIO interface is the architectural contract).
    pub fn detector(&self) -> &HotPageDetector {
        &self.detector
    }

    /// Latched histogram, if `SetHistEn` ran since the last reset.
    pub fn histogram(&self) -> Option<&CounterHistogram> {
        self.hist.as_ref()
    }

    /// Peeks at the live (unlatched) state window.
    pub fn peek_state(&self, now: Nanos) -> StateSnapshot {
        self.state_monitor.peek(now)
    }

    /// Device statistics.
    pub fn stats(&self) -> NeoProfStats {
        let mut s = self.stats;
        s.fifo_dropped = self.fifo.dropped();
        s
    }

    /// Serialises the full device state for a machine snapshot. The
    /// construction config (sketch parameters, FIFO depth, drain rate,
    /// device base) is not stored — snapshots are restored onto a device
    /// built with the same config.
    pub fn snapshot(&self) -> Json {
        Json::obj([
            ("page_monitor", self.page_monitor.snapshot()),
            ("state_monitor", self.state_monitor.snapshot()),
            ("fifo", self.fifo.snapshot_with(|p| p.index())),
            ("detector", self.detector.snapshot()),
            ("hist", self.hist.as_ref().map_or(Json::Null, CounterHistogram::snapshot)),
            ("hist_read_idx", Json::U64(self.hist_read_idx as u64)),
            (
                "latched",
                Json::obj([
                    ("sampled_cycles", Json::U64(self.latched_state.sampled_cycles)),
                    ("read_cycles", Json::U64(self.latched_state.read_cycles)),
                    ("write_cycles", Json::U64(self.latched_state.write_cycles)),
                ]),
            ),
            ("snooped", Json::U64(self.stats.snooped)),
            ("hot_reported", Json::U64(self.stats.hot_reported)),
            ("mmio_ops", Json::U64(self.stats.mmio_ops)),
        ])
    }

    /// Restores [`NeoProf::snapshot`] state onto a same-config device.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on missing/malformed fields or state
    /// sized for a differently-configured device.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        let hist_read_idx = snap.req_u64("hist_read_idx")? as usize;
        if hist_read_idx > HISTOGRAM_BINS {
            return Err(Error::snapshot(format!(
                "histogram read index {hist_read_idx} exceeds {HISTOGRAM_BINS} bins"
            )));
        }
        let hist = match snap.req("hist")? {
            Json::Null => None,
            state => {
                let mut h = CounterHistogram::new();
                h.restore(state)?;
                Some(h)
            }
        };
        self.page_monitor.restore(snap.req("page_monitor")?)?;
        self.state_monitor.restore(snap.req("state_monitor")?)?;
        self.fifo.restore_with(snap.req("fifo")?, DevicePage::new)?;
        self.detector.restore(snap.req("detector")?)?;
        self.hist = hist;
        self.hist_read_idx = hist_read_idx;
        let latched = snap.req("latched")?;
        self.latched_state = StateSnapshot {
            sampled_cycles: latched.req_u64("sampled_cycles")?,
            read_cycles: latched.req_u64("read_cycles")?,
            write_cycles: latched.req_u64("write_cycles")?,
        };
        self.stats = NeoProfStats {
            snooped: snap.req_u64("snooped")?,
            fifo_dropped: self.fifo.dropped(),
            hot_reported: snap.req_u64("hot_reported")?,
            mmio_ops: snap.req_u64("mmio_ops")?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neomem_types::AccessKind;

    fn req(frame: u64, kind: AccessKind) -> MemRequest {
        MemRequest::new(PageNum::new(frame), 0, kind)
    }

    fn device() -> NeoProf {
        NeoProf::new(NeoProfConfig::small(PageNum::new(1000))).unwrap()
    }

    #[test]
    fn snoop_tick_detect_readout_cycle() {
        let mut dev = device();
        dev.mmio_write(mmio::SET_THRESHOLD, 2, Nanos::ZERO).unwrap();
        for _ in 0..5 {
            dev.snoop(req(1042, AccessKind::Read), Nanos::new(5));
        }
        dev.tick();
        assert_eq!(dev.mmio_read(mmio::GET_NR_HOT_PAGE, Nanos::ZERO).unwrap(), 1);
        assert_eq!(dev.mmio_read(mmio::GET_HOT_PAGE, Nanos::ZERO).unwrap(), 42);
        assert_eq!(dev.mmio_read(mmio::GET_HOT_PAGE, Nanos::ZERO).unwrap(), mmio::EMPTY_SENTINEL);
    }

    #[test]
    fn state_readout_protocol() {
        let mut dev = device();
        dev.snoop(req(1001, AccessKind::Read), Nanos::new(100));
        dev.snoop(req(1002, AccessKind::Write), Nanos::new(50));
        let sampled = dev.mmio_read(mmio::GET_NR_SAMPLE, Nanos::from_micros(1)).unwrap();
        assert_eq!(sampled, 400);
        assert_eq!(dev.mmio_read(mmio::GET_RD_CNT, Nanos::from_micros(1)).unwrap(), 40);
        assert_eq!(dev.mmio_read(mmio::GET_WR_CNT, Nanos::from_micros(1)).unwrap(), 20);
        // Second roll: window restarted, no new traffic.
        let sampled2 = dev.mmio_read(mmio::GET_NR_SAMPLE, Nanos::from_micros(2)).unwrap();
        assert_eq!(sampled2, 400);
        assert_eq!(dev.mmio_read(mmio::GET_RD_CNT, Nanos::from_micros(2)).unwrap(), 0);
    }

    #[test]
    fn histogram_stream_readout() {
        let mut dev = device();
        dev.mmio_write(mmio::SET_THRESHOLD, 1, Nanos::ZERO).unwrap();
        for i in 0..50u64 {
            dev.snoop(req(1000 + i, AccessKind::Read), Nanos::new(5));
        }
        dev.tick();
        dev.mmio_write(mmio::SET_HIST_EN, 1, Nanos::ZERO).unwrap();
        let n = dev.mmio_read(mmio::GET_NR_HIST_BIN, Nanos::ZERO).unwrap();
        assert_eq!(n, 64);
        let mut total = 0u64;
        for _ in 0..n {
            let bin = dev.mmio_read(mmio::GET_HIST, Nanos::ZERO).unwrap();
            assert_ne!(bin, mmio::EMPTY_SENTINEL);
            total += bin;
        }
        // Lane 0 has `width` counters.
        assert_eq!(total, SketchParams::small().width as u64);
        assert_eq!(dev.mmio_read(mmio::GET_HIST, Nanos::ZERO).unwrap(), mmio::EMPTY_SENTINEL);
    }

    #[test]
    fn hist_read_before_enable_is_sentinel() {
        let mut dev = device();
        assert_eq!(dev.mmio_read(mmio::GET_HIST, Nanos::ZERO).unwrap(), mmio::EMPTY_SENTINEL);
    }

    #[test]
    fn reset_clears_everything() {
        let mut dev = device();
        dev.mmio_write(mmio::SET_THRESHOLD, 1, Nanos::ZERO).unwrap();
        for _ in 0..3 {
            dev.snoop(req(1005, AccessKind::Read), Nanos::new(5));
        }
        dev.tick();
        dev.mmio_write(mmio::SET_HIST_EN, 1, Nanos::ZERO).unwrap();
        dev.mmio_write(mmio::RESET, 1, Nanos::from_micros(3)).unwrap();
        assert_eq!(dev.mmio_read(mmio::GET_NR_HOT_PAGE, Nanos::from_micros(3)).unwrap(), 0);
        assert!(dev.histogram().is_none());
        let snap = dev.peek_state(Nanos::from_micros(3));
        assert_eq!(snap.read_cycles, 0);
    }

    #[test]
    fn wrong_direction_and_unknown_offsets_error() {
        let mut dev = device();
        assert!(matches!(
            dev.mmio_write(mmio::GET_NR_HOT_PAGE, 0, Nanos::ZERO),
            Err(Error::CommandDirection { .. })
        ));
        assert!(matches!(
            dev.mmio_read(mmio::RESET, Nanos::ZERO),
            Err(Error::CommandDirection { .. })
        ));
        assert!(matches!(
            dev.mmio_write(0xF00, 0, Nanos::ZERO),
            Err(Error::UnknownCommand { .. })
        ));
        assert!(matches!(dev.mmio_read(0xF00, Nanos::ZERO), Err(Error::UnknownCommand { .. })));
    }

    #[test]
    fn fifo_overflow_degrades_not_stalls() {
        let cfg = NeoProfConfig {
            fifo_depth: 4,
            drain_per_tick: 4,
            ..NeoProfConfig::small(PageNum::new(0))
        };
        let mut dev = NeoProf::new(cfg).unwrap();
        for i in 0..100u64 {
            dev.snoop(req(i, AccessKind::Read), Nanos::new(5));
        }
        let stats = dev.stats();
        assert_eq!(stats.snooped, 100);
        assert!(stats.fifo_dropped > 0, "burst must overflow the tiny FIFO");
        dev.tick();
        // The device still works after overflow.
        dev.snoop(req(1, AccessKind::Read), Nanos::new(5));
        dev.tick();
    }

    #[test]
    fn batched_snoop_matches_alternating_snoop_tick() {
        // Tiny FIFO + small drain rate so overflow and partial drains
        // are exercised, not just the easy steady state.
        let cfg = NeoProfConfig {
            fifo_depth: 8,
            drain_per_tick: 4,
            ..NeoProfConfig::small(PageNum::new(0))
        };
        let mut serial = NeoProf::new(cfg).unwrap();
        let mut batched = NeoProf::new(cfg).unwrap();
        serial.mmio_write(mmio::SET_THRESHOLD, 2, Nanos::ZERO).unwrap();
        batched.mmio_write(mmio::SET_THRESHOLD, 2, Nanos::ZERO).unwrap();
        let reqs: Vec<MemRequest> = (0..500u64)
            .map(|i| {
                let kind = if i % 3 == 0 { AccessKind::Write } else { AccessKind::Read };
                req(i * 7 % 37, kind)
            })
            .collect();
        for &r in &reqs {
            serial.snoop(r, Nanos::new(5));
            serial.tick();
        }
        for chunk in reqs.chunks(23) {
            batched.snoop_tick_batch(chunk, Nanos::new(5));
        }
        assert_eq!(
            format!("{:?}", serial.snapshot()),
            format!("{:?}", batched.snapshot()),
            "batched device state must be bit-identical"
        );
    }

    #[test]
    fn threshold_clamps_to_u16() {
        let mut dev = device();
        dev.mmio_write(mmio::SET_THRESHOLD, u64::MAX, Nanos::ZERO).unwrap();
        assert_eq!(dev.detector().threshold(), u16::MAX);
    }
}
