//! The NeoProf device model (paper Section IV).
//!
//! NeoProf is the hardware unit NeoMem places inside the CXL memory
//! device's controller. This crate models it at the functional level:
//!
//! * [`PageMonitor`] snoops CXL.mem requests and extracts device-local
//!   page addresses (Fig. 6).
//! * [`StateMonitor`] counts sampled cycles and read/write busy cycles,
//!   from which the host computes bandwidth utilisation and the
//!   read/write ratio (design goal **G5**).
//! * [`AsyncFifo`] models the clock-domain-crossing FIFOs between the
//!   high-frequency monitors and the low-frequency NeoProf core on the
//!   FPGA; a saturated core visibly *drops* page samples rather than
//!   back-pressuring the memory pipeline.
//! * [`NeoProf`] glues these to a [`neomem_sketch::HotPageDetector`] and
//!   exposes the MMIO command interface of Table II ([`mmio`]).
//! * [`cost`] estimates FPGA and ASIC hardware cost (Fig. 18 and the
//!   FPGA-utilisation paragraph of §VI-B).
//!
//! # Example: driving the device like the kernel driver does
//!
//! ```
//! use neomem_neoprof::{mmio, NeoProf, NeoProfConfig};
//! use neomem_types::{AccessKind, MemRequest, Nanos, PageNum};
//!
//! let mut dev = NeoProf::new(NeoProfConfig::small(PageNum::new(1000)))?;
//! dev.mmio_write(mmio::SET_THRESHOLD, 2, Nanos::ZERO)?;
//! // Three LLC misses to the same device page...
//! for _ in 0..3 {
//!     dev.snoop(MemRequest::new(PageNum::new(1234), 0, AccessKind::Read), Nanos::new(5));
//!     dev.tick();
//! }
//! let n = dev.mmio_read(mmio::GET_NR_HOT_PAGE, Nanos::new(100))?;
//! assert_eq!(n, 1);
//! let page = dev.mmio_read(mmio::GET_HOT_PAGE, Nanos::new(100))?;
//! assert_eq!(page, 234); // device-local page index
//! # Ok::<(), neomem_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
mod device;
mod fifo;
pub mod mmio;
mod monitors;
mod multi;

pub use device::{NeoProf, NeoProfConfig, NeoProfStats};
pub use fifo::AsyncFifo;
pub use monitors::{PageMonitor, StateMonitor, StateSnapshot};
pub use multi::{InterleaveMap, MultiProf};

/// The device core clock: 400 MHz, matching the paper's FPGA prototype
/// (Table III) and the ASIC synthesis point (Fig. 18).
pub const DEVICE_CLOCK_HZ: u64 = 400_000_000;

/// Converts simulated nanoseconds into device clock cycles.
pub fn cycles_of(ns: neomem_types::Nanos) -> u64 {
    // 400 MHz = 0.4 cycles per ns = 2 cycles per 5 ns.
    ns.as_nanos() * 2 / 5
}

#[cfg(test)]
mod clock_tests {
    use super::*;
    use neomem_types::Nanos;

    #[test]
    fn cycles_at_400mhz() {
        assert_eq!(cycles_of(Nanos::from_secs(1)), 400_000_000);
        assert_eq!(cycles_of(Nanos::new(5)), 2);
        assert_eq!(cycles_of(Nanos::ZERO), 0);
    }
}
