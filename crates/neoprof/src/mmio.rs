//! The MMIO command encoding of Table II.
//!
//! NeoProf's registers are memory-mapped; the host encodes commands as
//! reads/writes at fixed offsets within the device's MMIO window.

/// `Reset` — write 1: clears all counters and buffers.
pub const RESET: u64 = 0x100;
/// `SetThreshold` — write θ: sets the hot-page threshold.
pub const SET_THRESHOLD: u64 = 0x200;
/// `GetNrHotPage` — read: number of profiled hot pages waiting.
pub const GET_NR_HOT_PAGE: u64 = 0x300;
/// `GetHotPage` — read: pops one hot page address (device-local page
/// index); returns [`EMPTY_SENTINEL`] when the buffer is empty.
pub const GET_HOT_PAGE: u64 = 0x400;
/// `GetNrSample` — read: sampled cycles in the closing window. Reading
/// this register *rolls* the state window and latches read/write counts
/// for the subsequent [`GET_RD_CNT`]/[`GET_WR_CNT`] reads.
pub const GET_NR_SAMPLE: u64 = 0x500;
/// `GetRdCnt` — read: read-busy cycles of the latched window.
pub const GET_RD_CNT: u64 = 0x600;
/// `GetWrCnt` — read: write-busy cycles of the latched window.
pub const GET_WR_CNT: u64 = 0x700;
/// `SetHistEn` — write 1: triggers the histogram sweep over sketch lane 0.
pub const SET_HIST_EN: u64 = 0x800;
/// `GetNrHistBin` — read: number of histogram bins (64).
pub const GET_NR_HIST_BIN: u64 = 0x900;
/// `GetHist` — read: streams out histogram bins sequentially; returns
/// [`EMPTY_SENTINEL`] past the last bin.
pub const GET_HIST: u64 = 0xA00;

/// Sentinel returned by read commands with nothing to deliver.
pub const EMPTY_SENTINEL: u64 = u64::MAX;

/// All valid command offsets (diagnostics, fuzzing).
pub const ALL_OFFSETS: [u64; 10] = [
    RESET,
    SET_THRESHOLD,
    GET_NR_HOT_PAGE,
    GET_HOT_PAGE,
    GET_NR_SAMPLE,
    GET_RD_CNT,
    GET_WR_CNT,
    SET_HIST_EN,
    GET_NR_HIST_BIN,
    GET_HIST,
];

/// Whether `offset` decodes to a write command.
pub fn is_write_command(offset: u64) -> bool {
    matches!(offset, RESET | SET_THRESHOLD | SET_HIST_EN)
}

/// Whether `offset` decodes to a read command.
pub fn is_read_command(offset: u64) -> bool {
    matches!(
        offset,
        GET_NR_HOT_PAGE | GET_HOT_PAGE | GET_NR_SAMPLE | GET_RD_CNT | GET_WR_CNT | GET_NR_HIST_BIN | GET_HIST
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_match_table_ii() {
        assert_eq!(RESET, 0x100);
        assert_eq!(SET_THRESHOLD, 0x200);
        assert_eq!(GET_NR_HOT_PAGE, 0x300);
        assert_eq!(GET_HOT_PAGE, 0x400);
        assert_eq!(GET_NR_SAMPLE, 0x500);
        assert_eq!(GET_RD_CNT, 0x600);
        assert_eq!(GET_WR_CNT, 0x700);
        assert_eq!(SET_HIST_EN, 0x800);
        assert_eq!(GET_NR_HIST_BIN, 0x900);
        assert_eq!(GET_HIST, 0xA00);
    }

    #[test]
    fn every_offset_has_exactly_one_direction() {
        for off in ALL_OFFSETS {
            assert!(
                is_write_command(off) ^ is_read_command(off),
                "offset {off:#x} must be exactly one of read/write"
            );
        }
        assert!(!is_write_command(0x0));
        assert!(!is_read_command(0xB00));
    }
}
