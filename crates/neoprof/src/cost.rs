//! Hardware cost estimation for NeoProf (paper Fig. 18 and §VI-B).
//!
//! The paper reports two synthesis points:
//!
//! * **FPGA** (Agilex-7, W=512K, D=2): 93.8 K ALMs (10 %), 1.5 K M20K
//!   BRAMs (12 %), no DSPs.
//! * **ASIC** (TSMC 22 nm, W=256K, D=2): 5.3 mm², 152.2 mW @ 400 MHz,
//!   with SRAM macros ≈ 54 % of area.
//!
//! The models below are first-order: SRAM dominates and scales with the
//! sketch bits; logic scales with lane count and hash width. The free
//! constants are calibrated so the two paper points are reproduced, and
//! the `fig18_hw_cost` bench regenerates the table plus a sweep over `W`.

use neomem_sketch::SketchParams;

/// Bits per sketch entry: a 16-bit counter + hot bit + valid bit.
pub const ENTRY_BITS: u64 = 18;
/// Bits per hot-buffer slot (a 32-bit device page address, Table IV).
pub const HOT_BUFFER_ENTRY_BITS: u64 = 32;
/// Histogram storage: 64 bins × 32-bit counts.
pub const HISTOGRAM_BITS: u64 = 64 * 32;

/// Total SRAM bits required by a configuration.
pub fn sram_bits(params: &SketchParams) -> u64 {
    let sketch = params.depth as u64 * params.width as u64 * ENTRY_BITS;
    let hot_buffer = params.hot_buffer_entries as u64 * HOT_BUFFER_ENTRY_BITS;
    sketch + hot_buffer + HISTOGRAM_BITS
}

/// FPGA resource estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaCost {
    /// Adaptive logic modules.
    pub alms: u64,
    /// M20K block RAMs.
    pub brams: u64,
    /// DSP blocks (always 0: the design has no multipliers).
    pub dsps: u64,
}

/// Estimates FPGA utilisation.
///
/// Calibration: `W=512K, D=2, 16K hot buffer` → 93.8 K ALMs / 1.5 K M20K,
/// matching §VI-B. BRAMs include a 1.55× mapping overhead (port widths,
/// pipeline partitioning into 128 memory segments).
pub fn fpga(params: &SketchParams) -> FpgaCost {
    let log_w = (params.width as f64).log2();
    // Logic: fixed control + per-lane hash/pipeline units whose reduction
    // trees grow with the hash width log2(W).
    let alms = 10_000.0 + 30_000.0 * params.depth as f64 + 1_250.0 * log_w;
    let brams = (sram_bits(params) as f64 / 20_480.0 * 1.55).ceil();
    FpgaCost { alms: alms as u64, brams: brams as u64, dsps: 0 }
}

/// ASIC synthesis estimate at TSMC 22 nm, 400 MHz, 0.8 V (Fig. 18).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsicCost {
    /// Total die area in mm².
    pub area_mm2: f64,
    /// SRAM macro share of the area, `[0, 1]`.
    pub sram_area_fraction: f64,
    /// Total power in mW.
    pub power_mw: f64,
}

/// Estimates ASIC area/power.
///
/// Calibration: `W=256K, D=2` → 5.3 mm², 152.2 mW, SRAM ≈ 54 % of area.
pub fn asic(params: &SketchParams) -> AsicCost {
    let bits = sram_bits(params) as f64;
    // 22nm SRAM macro density ≈ 0.287 µm²/bit (incl. periphery).
    let sram_mm2 = bits * 0.287e-6;
    // Compute/control logic scales with lanes.
    let logic_mm2 = 1.22 * params.depth as f64;
    let area = sram_mm2 + logic_mm2;
    // Power: SRAM leakage+dynamic ≈ 10 nW/bit at 400 MHz; logic 26.3 mW/lane.
    let power = bits * 1.0e-5 + 26.3 * params.depth as f64;
    AsicCost { area_mm2: area, sram_area_fraction: sram_mm2 / area, power_mw: power }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_fpga_params() -> SketchParams {
        SketchParams::paper_default() // W=512K, D=2, 16K buffer
    }

    fn paper_asic_params() -> SketchParams {
        SketchParams { width: 256 * 1024, ..SketchParams::paper_default() }
    }

    #[test]
    fn sram_bits_breakdown() {
        let p = paper_fpga_params();
        let bits = sram_bits(&p);
        // 2 lanes * 512K * 18b = 18.87 Mb + 16K*32b buffer + histogram.
        assert_eq!(bits, 2 * 512 * 1024 * 18 + 16 * 1024 * 32 + HISTOGRAM_BITS);
    }

    #[test]
    fn fpga_matches_paper_point() {
        let c = fpga(&paper_fpga_params());
        // §VI-B: 93.8K ALMs, 1.5K M20K, 0 DSPs.
        assert!((c.alms as f64 - 93_800.0).abs() / 93_800.0 < 0.03, "alms = {}", c.alms);
        assert!((c.brams as f64 - 1_500.0).abs() / 1_500.0 < 0.05, "brams = {}", c.brams);
        assert_eq!(c.dsps, 0);
    }

    #[test]
    fn asic_matches_fig18_point() {
        let c = asic(&paper_asic_params());
        assert!((c.area_mm2 - 5.3).abs() / 5.3 < 0.05, "area = {}", c.area_mm2);
        assert!((c.power_mw - 152.2).abs() / 152.2 < 0.05, "power = {}", c.power_mw);
        assert!((c.sram_area_fraction - 0.54).abs() < 0.05, "sram frac = {}", c.sram_area_fraction);
    }

    #[test]
    fn cost_scales_monotonically_with_width() {
        let mut prev_area = 0.0;
        let mut prev_brams = 0;
        for shift in 15..=19 {
            let p = SketchParams { width: 1 << shift, ..SketchParams::paper_default() };
            let a = asic(&p);
            let f = fpga(&p);
            assert!(a.area_mm2 > prev_area);
            assert!(f.brams > prev_brams);
            prev_area = a.area_mm2;
            prev_brams = f.brams;
        }
    }

    #[test]
    fn deeper_sketch_costs_more_logic() {
        let d2 = fpga(&SketchParams { depth: 2, ..SketchParams::small() });
        let d4 = fpga(&SketchParams { depth: 4, ..SketchParams::small() });
        assert!(d4.alms > d2.alms);
    }
}
