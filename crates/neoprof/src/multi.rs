//! Multi-device NeoProf with memory interleaving (paper §VII
//! "Scalability of NeoMem" / "Memory Interleaving").
//!
//! With several CXL memory devices, the OS may interleave a single page
//! across them at a sub-page granule; each device's NeoProf then sees
//! only a *fraction* of the page's accesses. The paper leaves this to
//! future work but sketches the host's job: "gather fragmented page
//! hotness information from all NeoProfs and conduct additional
//! post-processing tasks like hot-page de-duplication". This module
//! implements exactly that:
//!
//! * [`InterleaveMap`] — line-granular round-robin striping of the slow
//!   tier across `n` devices.
//! * [`MultiProf`] — one [`NeoProf`] per device plus the host-side
//!   aggregation: per-device thresholds are divided by the device count
//!   (each device sees `1/n` of a page's traffic), and the union of
//!   hot-page reports is de-duplicated before promotion.

use std::collections::HashSet;

use neomem_types::{DevicePage, Error, MemRequest, Nanos, PageNum, Result};

use crate::device::{NeoProf, NeoProfConfig};
use crate::mmio;

/// Line-granular round-robin interleaving of device memory.
///
/// Frame `f`, line `l` lands on device `(f * LINES_PER_PAGE + l) % n`
/// — the address-bit striping CXL interleave sets use.
#[derive(Debug, Clone, Copy)]
pub struct InterleaveMap {
    devices: usize,
}

impl InterleaveMap {
    /// Creates a map over `devices` devices.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero.
    pub fn new(devices: usize) -> Self {
        assert!(devices > 0, "need at least one device");
        Self { devices }
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// The device servicing one request.
    pub fn device_of(&self, req: &MemRequest) -> usize {
        ((req.frame.index() * neomem_types::LINES_PER_PAGE + req.line_in_page as u64)
            % self.devices as u64) as usize
    }
}

/// A fleet of NeoProf devices behind an interleave map, with host-side
/// hot-page aggregation and de-duplication.
#[derive(Debug)]
pub struct MultiProf {
    map: InterleaveMap,
    devices: Vec<NeoProf>,
    /// Host-side de-duplication across devices within one period.
    reported: HashSet<u64>,
    duplicates_dropped: u64,
}

impl MultiProf {
    /// Creates `n` devices sharing one window base; each device indexes
    /// pages in the *host* page space (interleaving is line-granular, so
    /// every device can observe every page).
    ///
    /// # Errors
    ///
    /// Propagates invalid sketch parameters.
    pub fn new(n: usize, base_config: NeoProfConfig) -> Result<Self> {
        if n == 0 {
            return Err(Error::invalid_config("need at least one NeoProf device"));
        }
        let mut devices = Vec::with_capacity(n);
        for i in 0..n {
            let cfg = NeoProfConfig {
                sketch: neomem_sketch::SketchParams {
                    seed: base_config.sketch.seed.wrapping_add(i as u64 * 0x1234_5678),
                    ..base_config.sketch
                },
                ..base_config
            };
            devices.push(NeoProf::new(cfg)?);
        }
        Ok(Self {
            map: InterleaveMap::new(n),
            devices,
            reported: HashSet::new(),
            duplicates_dropped: 0,
        })
    }

    /// The interleave layout.
    pub fn interleave(&self) -> &InterleaveMap {
        &self.map
    }

    /// Routes one request to its device's NeoProf.
    pub fn snoop(&mut self, req: MemRequest, occupancy: Nanos) {
        let dev = self.map.device_of(&req);
        self.devices[dev].snoop(req, occupancy);
        self.devices[dev].tick();
    }

    /// Sets the *page-level* hot threshold: each device sees `1/n` of a
    /// page's lines, so per-device thresholds are scaled down.
    pub fn set_page_threshold(&mut self, theta: u16, now: Nanos) -> Result<()> {
        let per_device = (theta as usize / self.devices.len()).max(1) as u64;
        for dev in &mut self.devices {
            dev.mmio_write(mmio::SET_THRESHOLD, per_device, now)?;
        }
        Ok(())
    }

    /// Reads every device's hot-page buffer, de-duplicating pages that
    /// several devices reported (each holds a fraction of the page).
    ///
    /// # Errors
    ///
    /// Propagates MMIO protocol errors (none occur with valid offsets).
    pub fn read_hot_pages(&mut self, device_base: PageNum, now: Nanos) -> Result<Vec<PageNum>> {
        let mut out = Vec::new();
        for dev in &mut self.devices {
            loop {
                let raw = dev.mmio_read(mmio::GET_HOT_PAGE, now)?;
                if raw == mmio::EMPTY_SENTINEL {
                    break;
                }
                if self.reported.insert(raw) {
                    out.push(DevicePage::new(raw).to_host(device_base));
                } else {
                    self.duplicates_dropped += 1;
                }
            }
        }
        Ok(out)
    }

    /// Resets every device and the host de-duplication set.
    pub fn reset(&mut self, now: Nanos) -> Result<()> {
        for dev in &mut self.devices {
            dev.mmio_write(mmio::RESET, 1, now)?;
        }
        self.reported.clear();
        Ok(())
    }

    /// Cross-device duplicate reports suppressed by the host.
    pub fn duplicates_dropped(&self) -> u64 {
        self.duplicates_dropped
    }

    /// Per-device access to the fleet.
    pub fn device(&self, i: usize) -> &NeoProf {
        &self.devices[i]
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the fleet is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neomem_types::AccessKind;

    fn req(frame: u64, line: u8) -> MemRequest {
        MemRequest::new(PageNum::new(frame), line, AccessKind::Read)
    }

    #[test]
    fn interleave_spreads_lines_evenly() {
        let map = InterleaveMap::new(4);
        let mut counts = [0u32; 4];
        for frame in 0..8u64 {
            for line in 0..64u8 {
                counts[map.device_of(&req(frame, line))] += 1;
            }
        }
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(*c, 128, "device {i} must see an equal share");
        }
    }

    #[test]
    fn single_device_sees_everything() {
        let map = InterleaveMap::new(1);
        for frame in 0..4u64 {
            assert_eq!(map.device_of(&req(frame, 7)), 0);
        }
    }

    #[test]
    fn fragmented_page_hotness_is_reassembled() {
        // One page hammered across all lines: with 4 devices each sees
        // 1/4 of the traffic. The page-level threshold must still fire.
        let mut multi = MultiProf::new(4, NeoProfConfig::small(PageNum::new(0))).unwrap();
        multi.set_page_threshold(16, Nanos::ZERO).unwrap();
        for round in 0..2 {
            for line in 0..64u8 {
                multi.snoop(req(42, line), Nanos::new(5));
            }
            let _ = round;
        }
        let hot = multi.read_hot_pages(PageNum::new(0), Nanos::ZERO).unwrap();
        assert_eq!(hot, vec![PageNum::new(42)], "fragmented page must be detected once");
    }

    #[test]
    fn cross_device_duplicates_are_suppressed() {
        let mut multi = MultiProf::new(2, NeoProfConfig::small(PageNum::new(0))).unwrap();
        multi.set_page_threshold(2, Nanos::ZERO).unwrap();
        // Hammer enough that *both* devices cross their per-device
        // threshold for the same page.
        for _ in 0..8 {
            for line in 0..64u8 {
                multi.snoop(req(7, line), Nanos::new(5));
            }
        }
        let hot = multi.read_hot_pages(PageNum::new(0), Nanos::ZERO).unwrap();
        assert_eq!(hot, vec![PageNum::new(7)], "page reported once despite two devices");
        assert!(multi.duplicates_dropped() >= 1, "the second device's report is a duplicate");
    }

    #[test]
    fn reset_clears_dedup_state() {
        let mut multi = MultiProf::new(2, NeoProfConfig::small(PageNum::new(0))).unwrap();
        multi.set_page_threshold(2, Nanos::ZERO).unwrap();
        for _ in 0..8 {
            for line in 0..64u8 {
                multi.snoop(req(9, line), Nanos::new(5));
            }
        }
        assert_eq!(multi.read_hot_pages(PageNum::new(0), Nanos::ZERO).unwrap().len(), 1);
        multi.reset(Nanos::ZERO).unwrap();
        multi.set_page_threshold(2, Nanos::ZERO).unwrap();
        for _ in 0..8 {
            for line in 0..64u8 {
                multi.snoop(req(9, line), Nanos::new(5));
            }
        }
        let again = multi.read_hot_pages(PageNum::new(0), Nanos::ZERO).unwrap();
        assert_eq!(again.len(), 1, "page reportable again after reset");
    }

    #[test]
    fn profiling_scales_with_devices() {
        // Paper: "profiling throughput should linearly scale with the
        // addition of more CXL memory devices". With n devices each
        // absorbs 1/n of the request stream.
        let mut multi = MultiProf::new(4, NeoProfConfig::small(PageNum::new(0))).unwrap();
        for frame in 0..64u64 {
            for line in 0..64u8 {
                multi.snoop(req(frame, line), Nanos::new(5));
            }
        }
        let total: u64 = (0..4).map(|i| multi.device(i).stats().snooped).sum();
        assert_eq!(total, 64 * 64);
        for i in 0..4 {
            let share = multi.device(i).stats().snooped;
            assert_eq!(share, 64 * 16, "device {i} must see exactly a quarter");
        }
        assert_eq!(multi.len(), 4);
        assert!(!multi.is_empty());
    }

    #[test]
    fn zero_devices_rejected() {
        assert!(MultiProf::new(0, NeoProfConfig::small(PageNum::new(0))).is_err());
    }
}
