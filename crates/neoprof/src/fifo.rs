//! Asynchronous clock-domain-crossing FIFO model.
//!
//! On the FPGA, the page/state monitors run in the memory controller's
//! high-frequency domain while the NeoProf core runs slower; async FIFOs
//! bridge them (Fig. 6). The functional consequence worth modelling is
//! *loss under burst*: when the core cannot drain fast enough the FIFO
//! fills and new samples are dropped — profiling degrades gracefully
//! instead of stalling the memory path.

use std::collections::VecDeque;

use neomem_types::json::{hex_from_u64s, Json};
use neomem_types::{Error, Result};

/// A bounded FIFO that drops (and counts) pushes while full.
#[derive(Debug, Clone)]
pub struct AsyncFifo<T> {
    queue: VecDeque<T>,
    capacity: usize,
    pushed: u64,
    dropped: u64,
}

impl<T> AsyncFifo<T> {
    /// Creates a FIFO holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be non-zero");
        Self { queue: VecDeque::with_capacity(capacity), capacity, pushed: 0, dropped: 0 }
    }

    /// Attempts to enqueue; returns `false` (and counts a drop) when full.
    pub fn push(&mut self, item: T) -> bool {
        if self.queue.len() >= self.capacity {
            self.dropped += 1;
            false
        } else {
            self.queue.push_back(item);
            self.pushed += 1;
            true
        }
    }

    /// Dequeues the oldest element.
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Dequeues up to `n` elements as a draining iterator — no
    /// intermediate vector, so the per-tick drain path of the core
    /// never allocates. Elements not consumed before the iterator is
    /// dropped are still removed (standard `drain` semantics).
    pub fn drain_up_to(&mut self, n: usize) -> std::collections::vec_deque::Drain<'_, T> {
        let take = n.min(self.queue.len());
        self.queue.drain(..take)
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the FIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total successful pushes.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Total dropped pushes (overflow).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Empties the FIFO and resets counters.
    pub fn clear(&mut self) {
        self.queue.clear();
        self.pushed = 0;
        self.dropped = 0;
    }

    /// Serialises the FIFO for a machine snapshot; `to_u64` maps each
    /// queued element to its wire representation. The capacity is
    /// construction config and is not stored.
    pub fn snapshot_with(&self, to_u64: impl Fn(&T) -> u64) -> Json {
        let raw: Vec<u64> = self.queue.iter().map(to_u64).collect();
        Json::obj([
            ("queue", Json::Str(hex_from_u64s(&raw))),
            ("pushed", Json::U64(self.pushed)),
            ("dropped", Json::U64(self.dropped)),
        ])
    }

    /// Restores [`AsyncFifo::snapshot_with`] state; `from_u64` rebuilds
    /// each element from its wire representation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on missing/malformed fields or a queue
    /// longer than this FIFO's capacity.
    pub fn restore_with(&mut self, snap: &Json, from_u64: impl Fn(u64) -> T) -> Result<()> {
        let raw = snap.req_u64s("queue")?;
        if raw.len() > self.capacity {
            return Err(Error::snapshot(format!(
                "fifo snapshot holds {} entries, capacity is {}",
                raw.len(),
                self.capacity
            )));
        }
        let pushed = snap.req_u64("pushed")?;
        let dropped = snap.req_u64("dropped")?;
        self.queue.clear();
        self.queue.extend(raw.into_iter().map(from_u64));
        self.pushed = pushed;
        self.dropped = dropped;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut f = AsyncFifo::new(4);
        for i in 0..3 {
            assert!(f.push(i));
        }
        assert_eq!(f.pop(), Some(0));
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn overflow_drops_newest() {
        let mut f = AsyncFifo::new(2);
        assert!(f.push('a'));
        assert!(f.push('b'));
        assert!(!f.push('c'));
        assert_eq!(f.dropped(), 1);
        assert_eq!(f.pushed(), 2);
        assert_eq!(f.pop(), Some('a'), "oldest survives; newest dropped");
    }

    #[test]
    fn drain_up_to_partial() {
        let mut f = AsyncFifo::new(8);
        for i in 0..5 {
            f.push(i);
        }
        assert_eq!(f.drain_up_to(3).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.drain_up_to(10).collect::<Vec<_>>(), vec![3, 4]);
        assert!(f.is_empty());
    }

    #[test]
    fn drain_up_to_removes_even_if_unconsumed() {
        let mut f = AsyncFifo::new(8);
        for i in 0..4 {
            f.push(i);
        }
        drop(f.drain_up_to(2));
        assert_eq!(f.len(), 2);
        assert_eq!(f.pop(), Some(2));
    }

    #[test]
    fn clear_resets() {
        let mut f = AsyncFifo::new(1);
        f.push(1);
        f.push(2); // dropped
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.pushed(), 0);
        assert_eq!(f.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = AsyncFifo::<u8>::new(0);
    }
}
