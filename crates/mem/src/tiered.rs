//! The two-node tiered memory system.

use neomem_types::json::Json;
use neomem_types::{AccessKind, Nanos, NodeId, PageNum, Result, Tier};

use crate::allocator::FrameAllocator;
use crate::node::{MemoryNode, NodeConfig};

/// Configuration of the full tiered memory (paper Table III, with the
/// default 1:2 fast:slow capacity ratio of §VI-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TieredMemoryConfig {
    /// Fast node configuration.
    pub fast: NodeConfig,
    /// Slow node configuration.
    pub slow: NodeConfig,
}

impl TieredMemoryConfig {
    /// Builds a config with the given capacities using the paper's
    /// prototype latencies.
    pub fn with_frames(fast_frames: u64, slow_frames: u64) -> Self {
        Self {
            fast: NodeConfig::ddr_fast(fast_frames),
            slow: NodeConfig::cxl_prototype(slow_frames),
        }
    }

    /// Builds a config from a total workload footprint and a fast:slow
    /// ratio expressed as `1:ratio` (Fig. 12 uses 1:2, 1:4, 1:8). The
    /// fast node gets `total / (1 + ratio)` frames rounded up, the slow
    /// node enough to hold the rest with headroom.
    pub fn for_ratio(total_frames: u64, ratio: u64) -> Self {
        assert!(ratio >= 1, "ratio must be at least 1");
        let fast = (total_frames / (1 + ratio)).max(1);
        // Slow tier holds the remainder plus slack so demotion never OOMs.
        let slow = total_frames - fast + total_frames / 8 + 64;
        Self::with_frames(fast, slow)
    }

    /// Validates both nodes.
    ///
    /// # Errors
    ///
    /// Propagates node validation failures.
    pub fn validate(&self) -> Result<()> {
        self.fast.validate()?;
        self.slow.validate()
    }
}

/// The two-tier physical memory: node models plus frame allocators laid
/// out in one flat physical frame space (fast node low, slow node high),
/// mirroring Fig. 1(b)'s address mapping.
#[derive(Debug, Clone)]
pub struct TieredMemory {
    fast: MemoryNode,
    slow: MemoryNode,
    fast_alloc: FrameAllocator,
    slow_alloc: FrameAllocator,
    slow_base: PageNum,
}

impl TieredMemory {
    /// Creates the tiered memory.
    ///
    /// # Panics
    ///
    /// Panics on invalid configs; pre-validate with
    /// [`TieredMemoryConfig::validate`].
    pub fn new(config: TieredMemoryConfig) -> Self {
        config.validate().expect("invalid tiered memory config");
        let slow_base = PageNum::new(config.fast.capacity_frames);
        Self {
            fast: MemoryNode::new(config.fast),
            slow: MemoryNode::new(config.slow),
            fast_alloc: FrameAllocator::new(NodeId::FAST, PageNum::new(0), config.fast.capacity_frames),
            slow_alloc: FrameAllocator::new(NodeId::SLOW, slow_base, config.slow.capacity_frames),
            slow_base,
        }
    }

    /// First frame of the slow node's window — the CXL device's base
    /// frame, used to translate host frames to device pages.
    pub fn slow_base(&self) -> PageNum {
        self.slow_base
    }

    /// Which tier a frame lives on.
    pub fn tier_of(&self, frame: PageNum) -> Tier {
        if frame < self.slow_base {
            Tier::Fast
        } else {
            Tier::Slow
        }
    }

    /// Services a 64-byte request against the owning node; returns the
    /// service time.
    pub fn service(&mut self, frame: PageNum, kind: AccessKind, now: Nanos) -> Nanos {
        match self.tier_of(frame) {
            Tier::Fast => self.fast.service(kind, now),
            Tier::Slow => self.slow.service(kind, now),
        }
    }

    /// Borrows the node model of a tier.
    pub fn node(&self, tier: Tier) -> &MemoryNode {
        match tier {
            Tier::Fast => &self.fast,
            Tier::Slow => &self.slow,
        }
    }

    /// Mutably borrows the node model of a tier.
    pub fn node_mut(&mut self, tier: Tier) -> &mut MemoryNode {
        match tier {
            Tier::Fast => &mut self.fast,
            Tier::Slow => &mut self.slow,
        }
    }

    /// Borrows a tier's frame allocator.
    pub fn allocator(&self, tier: Tier) -> &FrameAllocator {
        match tier {
            Tier::Fast => &self.fast_alloc,
            Tier::Slow => &self.slow_alloc,
        }
    }

    /// Mutably borrows a tier's frame allocator.
    pub fn allocator_mut(&mut self, tier: Tier) -> &mut FrameAllocator {
        match tier {
            Tier::Fast => &mut self.fast_alloc,
            Tier::Slow => &mut self.slow_alloc,
        }
    }

    /// Allocates a frame, preferring `preferred` and falling back to the
    /// other tier — Linux's first-touch NUMA behaviour of filling local
    /// memory before spilling to the CXL node.
    ///
    /// # Errors
    ///
    /// Returns [`neomem_types::Error::OutOfMemory`] when both tiers are
    /// full.
    pub fn alloc_preferring(&mut self, preferred: Tier) -> Result<PageNum> {
        match self.allocator_mut(preferred).alloc() {
            Ok(frame) => Ok(frame),
            Err(_) => self.allocator_mut(preferred.other()).alloc(),
        }
    }

    /// Frees `frame` back to its owning tier.
    pub fn free(&mut self, frame: PageNum) {
        let tier = self.tier_of(frame);
        self.allocator_mut(tier).free(frame);
    }

    /// Serialises both nodes and both allocators for a machine snapshot.
    pub fn snapshot(&self) -> Json {
        Json::obj([
            ("fast", self.fast.snapshot()),
            ("slow", self.slow.snapshot()),
            ("fast_alloc", self.fast_alloc.snapshot()),
            ("slow_alloc", self.slow_alloc.snapshot()),
        ])
    }

    /// Restores [`TieredMemory::snapshot`] state onto a memory built with
    /// the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`neomem_types::Error::Snapshot`] on missing/malformed
    /// fields or allocator state inconsistent with the node windows.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        self.fast.restore(snap.req("fast")?)?;
        self.slow.restore(snap.req("slow")?)?;
        self.fast_alloc.restore(snap.req("fast_alloc")?)?;
        self.slow_alloc.restore(snap.req("slow_alloc")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TieredMemory {
        TieredMemory::new(TieredMemoryConfig::with_frames(4, 8))
    }

    #[test]
    fn address_layout_fast_low_slow_high() {
        let m = tiny();
        assert_eq!(m.slow_base(), PageNum::new(4));
        assert_eq!(m.tier_of(PageNum::new(0)), Tier::Fast);
        assert_eq!(m.tier_of(PageNum::new(3)), Tier::Fast);
        assert_eq!(m.tier_of(PageNum::new(4)), Tier::Slow);
        assert_eq!(m.tier_of(PageNum::new(11)), Tier::Slow);
    }

    #[test]
    fn first_touch_fills_fast_then_spills() {
        let mut m = tiny();
        for i in 0..4 {
            let f = m.alloc_preferring(Tier::Fast).unwrap();
            assert_eq!(m.tier_of(f), Tier::Fast, "alloc {i} should be fast");
        }
        let spill = m.alloc_preferring(Tier::Fast).unwrap();
        assert_eq!(m.tier_of(spill), Tier::Slow, "fifth alloc spills to CXL");
    }

    #[test]
    fn service_routes_to_owning_node() {
        let mut m = tiny();
        let tf = m.service(PageNum::new(0), AccessKind::Read, Nanos::ZERO);
        let ts = m.service(PageNum::new(5), AccessKind::Read, Nanos::ZERO);
        assert_eq!(tf, Nanos::new(118));
        assert_eq!(ts, Nanos::new(430));
        assert_eq!(m.node(Tier::Fast).stats().reads, 1);
        assert_eq!(m.node(Tier::Slow).stats().reads, 1);
    }

    #[test]
    fn free_returns_to_owner() {
        let mut m = tiny();
        let f = m.alloc_preferring(Tier::Slow).unwrap();
        assert_eq!(m.tier_of(f), Tier::Slow);
        m.free(f);
        assert_eq!(m.allocator(Tier::Slow).free_frames(), 8);
    }

    #[test]
    fn ratio_config_shapes() {
        let c = TieredMemoryConfig::for_ratio(900, 2);
        assert_eq!(c.fast.capacity_frames, 300);
        assert!(c.slow.capacity_frames >= 600);
        let c8 = TieredMemoryConfig::for_ratio(900, 8);
        assert_eq!(c8.fast.capacity_frames, 100);
        c.validate().unwrap();
        c8.validate().unwrap();
    }

    #[test]
    fn oom_when_both_tiers_full() {
        let mut m = TieredMemory::new(TieredMemoryConfig::with_frames(1, 1));
        m.alloc_preferring(Tier::Fast).unwrap();
        m.alloc_preferring(Tier::Fast).unwrap();
        assert!(m.alloc_preferring(Tier::Fast).is_err());
    }
}
