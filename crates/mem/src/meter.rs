//! Bandwidth metering, as performed by NeoProf's state monitor.
//!
//! The paper defines bandwidth utilisation as
//! `B = (read + write) / total_cycles` where `read`/`write` are cycles
//! the device spent transferring data during the sampling window
//! (§V-A). We meter busy *nanoseconds* instead of cycles — the ratio is
//! identical.

use neomem_types::json::Json;
use neomem_types::{AccessKind, Nanos, Result};

/// One completed metering window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BandwidthSample {
    /// Nanoseconds spent transferring reads in the window.
    pub read_busy: Nanos,
    /// Nanoseconds spent transferring writes in the window.
    pub write_busy: Nanos,
    /// Window length.
    pub window: Nanos,
}

impl BandwidthSample {
    /// Utilisation `B ∈ [0, 1]`: busy time over window time.
    pub fn utilization(&self) -> f64 {
        if self.window.is_zero() {
            return 0.0;
        }
        let busy = (self.read_busy + self.write_busy).as_nanos() as f64;
        (busy / self.window.as_nanos() as f64).min(1.0)
    }

    /// Read share of the busy time, `0.5` when idle.
    pub fn read_fraction(&self) -> f64 {
        let busy = (self.read_busy + self.write_busy).as_nanos();
        if busy == 0 {
            0.5
        } else {
            self.read_busy.as_nanos() as f64 / busy as f64
        }
    }

    /// Read-only utilisation over the window.
    pub fn read_utilization(&self) -> f64 {
        if self.window.is_zero() {
            return 0.0;
        }
        (self.read_busy.as_nanos() as f64 / self.window.as_nanos() as f64).min(1.0)
    }

    /// Write-only utilisation over the window.
    pub fn write_utilization(&self) -> f64 {
        if self.window.is_zero() {
            return 0.0;
        }
        (self.write_busy.as_nanos() as f64 / self.window.as_nanos() as f64).min(1.0)
    }
}

/// Accumulates busy time within the current window.
#[derive(Debug, Clone, Default)]
pub struct BandwidthMeter {
    read_busy: Nanos,
    write_busy: Nanos,
    window_start: Nanos,
}

impl BandwidthMeter {
    /// Creates an empty meter with the window starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `busy` transfer time of the given kind.
    pub fn record(&mut self, kind: AccessKind, busy: Nanos) {
        match kind {
            AccessKind::Read => self.read_busy += busy,
            AccessKind::Write => self.write_busy += busy,
        }
    }

    /// Closes the current window at `now`, returning its sample, and
    /// starts a fresh window.
    pub fn roll(&mut self, now: Nanos) -> BandwidthSample {
        let sample = BandwidthSample {
            read_busy: self.read_busy,
            write_busy: self.write_busy,
            window: now.saturating_sub(self.window_start),
        };
        self.read_busy = Nanos::ZERO;
        self.write_busy = Nanos::ZERO;
        self.window_start = now;
        sample
    }

    /// Peeks at the in-progress window without resetting it.
    pub fn peek(&self, now: Nanos) -> BandwidthSample {
        BandwidthSample {
            read_busy: self.read_busy,
            write_busy: self.write_busy,
            window: now.saturating_sub(self.window_start),
        }
    }

    /// Serialises the in-progress window for a machine snapshot.
    pub fn snapshot(&self) -> Json {
        Json::obj([
            ("read_busy", Json::U64(self.read_busy.as_nanos())),
            ("write_busy", Json::U64(self.write_busy.as_nanos())),
            ("window_start", Json::U64(self.window_start.as_nanos())),
        ])
    }

    /// Restores [`BandwidthMeter::snapshot`] state.
    ///
    /// # Errors
    ///
    /// Returns [`neomem_types::Error::Snapshot`] on missing/malformed
    /// fields.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        self.read_busy = Nanos::new(snap.req_u64("read_busy")?);
        self.write_busy = Nanos::new(snap.req_u64("write_busy")?);
        self.window_start = Nanos::new(snap.req_u64("window_start")?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_over_window() {
        let mut m = BandwidthMeter::new();
        m.record(AccessKind::Read, Nanos::new(30));
        m.record(AccessKind::Write, Nanos::new(20));
        let s = m.roll(Nanos::new(100));
        assert!((s.utilization() - 0.5).abs() < 1e-12);
        assert!((s.read_fraction() - 0.6).abs() < 1e-12);
        assert!((s.read_utilization() - 0.3).abs() < 1e-12);
        assert!((s.write_utilization() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn roll_resets_window() {
        let mut m = BandwidthMeter::new();
        m.record(AccessKind::Read, Nanos::new(50));
        m.roll(Nanos::new(100));
        let s2 = m.roll(Nanos::new(200));
        assert_eq!(s2.read_busy, Nanos::ZERO);
        assert_eq!(s2.window, Nanos::new(100));
    }

    #[test]
    fn utilization_clamped_to_one() {
        let mut m = BandwidthMeter::new();
        m.record(AccessKind::Read, Nanos::new(500));
        let s = m.roll(Nanos::new(100));
        assert_eq!(s.utilization(), 1.0);
    }

    #[test]
    fn empty_window_is_zero_util() {
        let s = BandwidthSample::default();
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.read_fraction(), 0.5);
        assert_eq!(s.read_utilization(), 0.0);
        assert_eq!(s.write_utilization(), 0.0);
    }

    #[test]
    fn peek_does_not_reset() {
        let mut m = BandwidthMeter::new();
        m.record(AccessKind::Write, Nanos::new(10));
        let p = m.peek(Nanos::new(40));
        assert_eq!(p.write_busy, Nanos::new(10));
        let s = m.roll(Nanos::new(40));
        assert_eq!(s.write_busy, Nanos::new(10), "peek must not clear");
    }
}
