//! A single memory node: latency + bandwidth queueing model.

use neomem_types::json::Json;
use neomem_types::{AccessKind, Bandwidth, Error, Nanos, NodeId, Result, Tier, LINE_SIZE};

use crate::meter::BandwidthMeter;

/// Configuration of one memory node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeConfig {
    /// Which NUMA node this is.
    pub id: NodeId,
    /// Fast (DDR) or slow (CXL) tier.
    pub tier: Tier,
    /// Capacity in 4 KiB frames.
    pub capacity_frames: u64,
    /// Unloaded read latency.
    pub read_latency: Nanos,
    /// Unloaded write latency (writes post to buffers; typically cheaper
    /// at the CPU but the device still occupies the channel).
    pub write_latency: Nanos,
    /// Peak sustainable bandwidth.
    pub bandwidth: Bandwidth,
}

impl NodeConfig {
    /// The paper's host DDR5-4800 node: ≈118 ns loaded latency (Fig. 3a).
    pub fn ddr_fast(capacity_frames: u64) -> Self {
        Self {
            id: NodeId::FAST,
            tier: Tier::Fast,
            capacity_frames,
            read_latency: Nanos::new(118),
            write_latency: Nanos::new(90),
            bandwidth: Bandwidth::from_gib_per_sec(30.0),
        }
    }

    /// The paper's FPGA CXL prototype: ≈430 ns (Fig. 3a), DDR4-2666 x2
    /// behind a CXL 1.1 x16 link.
    pub fn cxl_prototype(capacity_frames: u64) -> Self {
        Self {
            id: NodeId::SLOW,
            tier: Tier::Slow,
            capacity_frames,
            read_latency: Nanos::new(430),
            write_latency: Nanos::new(380),
            bandwidth: Bandwidth::from_gib_per_sec(12.0),
        }
    }

    /// An "ideal" ASIC CXL device at 210 ns, the middle of the 170–250 ns
    /// band prior emulation studies assume (paper §II-A).
    pub fn cxl_ideal(capacity_frames: u64) -> Self {
        Self {
            id: NodeId::SLOW,
            tier: Tier::Slow,
            capacity_frames,
            read_latency: Nanos::new(210),
            write_latency: Nanos::new(180),
            bandwidth: Bandwidth::from_gib_per_sec(20.0),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a zero-capacity node or
    /// zero bandwidth.
    pub fn validate(&self) -> Result<()> {
        if self.capacity_frames == 0 {
            return Err(Error::invalid_config(format!("{} has zero capacity", self.id)));
        }
        if self.bandwidth.bytes_per_sec() <= 0.0 {
            return Err(Error::invalid_config(format!("{} has zero bandwidth", self.id)));
        }
        Ok(())
    }
}

/// Per-node access counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Line reads serviced.
    pub reads: u64,
    /// Line writes serviced.
    pub writes: u64,
    /// Extra queueing delay accumulated when the channel was saturated.
    pub queueing: Nanos,
}

/// A memory node servicing 64-byte line requests.
///
/// The service model is latency + M/D/1-ish queueing: each request
/// occupies the channel for `line / bandwidth`; if a request arrives
/// while the channel is still busy it waits, which surfaces as the
/// bandwidth wall the paper observes when all threads hammer CXL memory.
#[derive(Debug, Clone)]
pub struct MemoryNode {
    config: NodeConfig,
    /// Simulated time until which the channel is busy.
    busy_until: Nanos,
    line_occupancy: Nanos,
    meter: BandwidthMeter,
    stats: NodeStats,
}

impl MemoryNode {
    /// Creates the node.
    ///
    /// # Panics
    ///
    /// Panics on an invalid config; pre-validate with
    /// [`NodeConfig::validate`].
    pub fn new(config: NodeConfig) -> Self {
        config.validate().expect("invalid node config");
        let line_occupancy = config.bandwidth.transfer_time(neomem_types::Bytes::new(LINE_SIZE));
        Self {
            config,
            busy_until: Nanos::ZERO,
            line_occupancy,
            meter: BandwidthMeter::new(),
            stats: NodeStats::default(),
        }
    }

    /// Returns the node configuration.
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }

    /// Services one 64-byte request arriving at `now`; returns the total
    /// service time (queueing + latency) experienced by the requester.
    pub fn service(&mut self, kind: AccessKind, now: Nanos) -> Nanos {
        let wait = self.busy_until.saturating_sub(now);
        let start = now + wait;
        self.busy_until = start + self.line_occupancy;
        self.meter.record(kind, self.line_occupancy);
        match kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        self.stats.queueing += wait;
        let latency = match kind {
            AccessKind::Read => self.config.read_latency,
            AccessKind::Write => self.config.write_latency,
        };
        wait + latency
    }

    /// Charges a bulk transfer (page migration) of `bytes` starting at
    /// `now`; returns its completion time contribution.
    pub fn bulk_transfer(&mut self, bytes: neomem_types::Bytes, now: Nanos) -> Nanos {
        let wait = self.busy_until.saturating_sub(now);
        let occupy = self.config.bandwidth.transfer_time(bytes);
        self.busy_until = now + wait + occupy;
        self.meter.record(AccessKind::Write, occupy);
        wait + occupy
    }

    /// The node's bandwidth meter (consumed by NeoProf's state monitor).
    pub fn meter(&self) -> &BandwidthMeter {
        &self.meter
    }

    /// Begins a new metering window at `now` and returns the finished one.
    pub fn roll_meter(&mut self, now: Nanos) -> crate::meter::BandwidthSample {
        self.meter.roll(now)
    }

    /// Returns accumulated counters.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// Channel occupancy of a single line transfer.
    pub fn line_occupancy(&self) -> Nanos {
        self.line_occupancy
    }

    /// Serialises the node's mutable state (channel busy horizon, meter
    /// window, counters) for a machine snapshot. The configuration and
    /// derived line occupancy are not included — a snapshot is restored
    /// onto a node built with the same config.
    pub fn snapshot(&self) -> Json {
        Json::obj([
            ("busy_until", Json::U64(self.busy_until.as_nanos())),
            ("meter", self.meter.snapshot()),
            ("reads", Json::U64(self.stats.reads)),
            ("writes", Json::U64(self.stats.writes)),
            ("queueing", Json::U64(self.stats.queueing.as_nanos())),
        ])
    }

    /// Restores [`MemoryNode::snapshot`] state.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on missing/malformed fields.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        let busy_until = Nanos::new(snap.req_u64("busy_until")?);
        let stats = NodeStats {
            reads: snap.req_u64("reads")?,
            writes: snap.req_u64("writes")?,
            queueing: Nanos::new(snap.req_u64("queueing")?),
        };
        self.meter.restore(snap.req("meter")?)?;
        self.busy_until = busy_until;
        self.stats = stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_paper_latencies() {
        let fast = NodeConfig::ddr_fast(100);
        let proto = NodeConfig::cxl_prototype(100);
        let ideal = NodeConfig::cxl_ideal(100);
        assert_eq!(fast.read_latency, Nanos::new(118));
        assert_eq!(proto.read_latency, Nanos::new(430));
        assert!(ideal.read_latency >= Nanos::new(170) && ideal.read_latency <= Nanos::new(250));
        // Prototype is ~3.6x host latency (Fig. 3a).
        let ratio = proto.read_latency.as_nanos() as f64 / fast.read_latency.as_nanos() as f64;
        assert!(ratio > 3.0 && ratio < 4.2, "ratio {ratio}");
    }

    #[test]
    fn unloaded_access_costs_latency_only() {
        let mut n = MemoryNode::new(NodeConfig::ddr_fast(10));
        let t = n.service(AccessKind::Read, Nanos::from_micros(5));
        assert_eq!(t, Nanos::new(118));
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut n = MemoryNode::new(NodeConfig::cxl_prototype(10));
        let now = Nanos::ZERO;
        let first = n.service(AccessKind::Read, now);
        let second = n.service(AccessKind::Read, now);
        assert!(second > first, "second request must absorb queueing delay");
        assert!(n.stats().queueing > Nanos::ZERO);
    }

    #[test]
    fn queue_drains_with_time() {
        let mut n = MemoryNode::new(NodeConfig::cxl_prototype(10));
        n.service(AccessKind::Read, Nanos::ZERO);
        // Arrive long after the channel freed up: no queueing.
        let t = n.service(AccessKind::Read, Nanos::from_millis(1));
        assert_eq!(t, Nanos::new(430));
    }

    #[test]
    fn reads_writes_counted_separately() {
        let mut n = MemoryNode::new(NodeConfig::ddr_fast(10));
        n.service(AccessKind::Read, Nanos::ZERO);
        n.service(AccessKind::Write, Nanos::from_micros(1));
        n.service(AccessKind::Write, Nanos::from_micros(2));
        assert_eq!(n.stats().reads, 1);
        assert_eq!(n.stats().writes, 2);
    }

    #[test]
    fn bulk_transfer_occupies_channel() {
        let mut n = MemoryNode::new(NodeConfig::ddr_fast(10));
        let t = n.bulk_transfer(neomem_types::Bytes::from_kib(4), Nanos::ZERO);
        assert!(t > Nanos::ZERO);
        // A line access right after the bulk transfer should queue.
        let access = n.service(AccessKind::Read, Nanos::ZERO);
        assert!(access > Nanos::new(118));
    }

    #[test]
    fn validation_rejects_zero_capacity() {
        let mut cfg = NodeConfig::ddr_fast(0);
        assert!(cfg.validate().is_err());
        cfg.capacity_frames = 1;
        cfg.validate().unwrap();
    }
}
