//! A single memory node: latency + bandwidth queueing model.

use neomem_types::json::Json;
use neomem_types::{AccessKind, Bandwidth, Error, Nanos, NodeId, Result, Tier, LINE_SIZE};

use crate::meter::BandwidthMeter;

/// Configuration of one memory node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeConfig {
    /// Which NUMA node this is.
    pub id: NodeId,
    /// Fast (DDR) or slow (CXL) tier.
    pub tier: Tier,
    /// Capacity in 4 KiB frames.
    pub capacity_frames: u64,
    /// Unloaded read latency.
    pub read_latency: Nanos,
    /// Unloaded write latency (writes post to buffers; typically cheaper
    /// at the CPU but the device still occupies the channel).
    pub write_latency: Nanos,
    /// Peak sustainable bandwidth.
    pub bandwidth: Bandwidth,
}

impl NodeConfig {
    /// The paper's host DDR5-4800 node: ≈118 ns loaded latency (Fig. 3a).
    pub fn ddr_fast(capacity_frames: u64) -> Self {
        Self {
            id: NodeId::FAST,
            tier: Tier::Fast,
            capacity_frames,
            read_latency: Nanos::new(118),
            write_latency: Nanos::new(90),
            bandwidth: Bandwidth::from_gib_per_sec(30.0),
        }
    }

    /// The paper's FPGA CXL prototype: ≈430 ns (Fig. 3a), DDR4-2666 x2
    /// behind a CXL 1.1 x16 link.
    pub fn cxl_prototype(capacity_frames: u64) -> Self {
        Self {
            id: NodeId::SLOW,
            tier: Tier::Slow,
            capacity_frames,
            read_latency: Nanos::new(430),
            write_latency: Nanos::new(380),
            bandwidth: Bandwidth::from_gib_per_sec(12.0),
        }
    }

    /// An "ideal" ASIC CXL device at 210 ns, the middle of the 170–250 ns
    /// band prior emulation studies assume (paper §II-A).
    pub fn cxl_ideal(capacity_frames: u64) -> Self {
        Self {
            id: NodeId::SLOW,
            tier: Tier::Slow,
            capacity_frames,
            read_latency: Nanos::new(210),
            write_latency: Nanos::new(180),
            bandwidth: Bandwidth::from_gib_per_sec(20.0),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a zero-capacity node or
    /// zero bandwidth.
    pub fn validate(&self) -> Result<()> {
        if self.capacity_frames == 0 {
            return Err(Error::invalid_config(format!("{} has zero capacity", self.id)));
        }
        if self.bandwidth.bytes_per_sec() <= 0.0 {
            return Err(Error::invalid_config(format!("{} has zero bandwidth", self.id)));
        }
        Ok(())
    }
}

/// Per-node access counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Line reads serviced.
    pub reads: u64,
    /// Line writes serviced.
    pub writes: u64,
    /// Extra queueing delay accumulated when the channel was saturated.
    pub queueing: Nanos,
}

/// A memory node servicing 64-byte line requests.
///
/// The service model is latency + M/D/1-ish queueing: each request
/// occupies the channel for `line / bandwidth`; if a request arrives
/// while the channel is still busy it waits, which surfaces as the
/// bandwidth wall the paper observes when all threads hammer CXL memory.
#[derive(Debug, Clone)]
pub struct MemoryNode {
    config: NodeConfig,
    /// Simulated time until which the channel is busy.
    busy_until: Nanos,
    line_occupancy: Nanos,
    meter: BandwidthMeter,
    stats: NodeStats,
    /// Link-degradation latency multiplier (1 = healthy). Set by the
    /// fault layer for brownout windows.
    latency_x: u64,
    /// Link-degradation bandwidth divisor (1 = healthy): every channel
    /// occupancy is multiplied by it, throttling effective bandwidth.
    bandwidth_div: u64,
}

impl MemoryNode {
    /// Creates the node.
    ///
    /// # Panics
    ///
    /// Panics on an invalid config; pre-validate with
    /// [`NodeConfig::validate`].
    pub fn new(config: NodeConfig) -> Self {
        config.validate().expect("invalid node config");
        let line_occupancy = config.bandwidth.transfer_time(neomem_types::Bytes::new(LINE_SIZE));
        Self {
            config,
            busy_until: Nanos::ZERO,
            line_occupancy,
            meter: BandwidthMeter::new(),
            stats: NodeStats::default(),
            latency_x: 1,
            bandwidth_div: 1,
        }
    }

    /// Applies a link-degradation window: latency is multiplied by
    /// `latency_x` and every channel occupancy by `bandwidth_div`
    /// until [`MemoryNode::clear_degradation`]. Healthy values (1, 1)
    /// leave service times bit-identical.
    pub fn set_degradation(&mut self, latency_x: u64, bandwidth_div: u64) {
        self.latency_x = latency_x.max(1);
        self.bandwidth_div = bandwidth_div.max(1);
    }

    /// Ends a link-degradation window.
    pub fn clear_degradation(&mut self) {
        self.latency_x = 1;
        self.bandwidth_div = 1;
    }

    /// Current latency multiplier (1 = healthy).
    pub fn latency_multiplier(&self) -> u64 {
        self.latency_x
    }

    /// Current bandwidth divisor (1 = healthy).
    pub fn bandwidth_divisor(&self) -> u64 {
        self.bandwidth_div
    }

    /// The occupancy one line transfer charges under the current
    /// degradation state.
    fn effective_line_occupancy(&self) -> Nanos {
        Nanos::new(self.line_occupancy.as_nanos().saturating_mul(self.bandwidth_div))
    }

    /// Returns the node configuration.
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }

    /// Services one 64-byte request arriving at `now`; returns the total
    /// service time (queueing + latency) experienced by the requester.
    pub fn service(&mut self, kind: AccessKind, now: Nanos) -> Nanos {
        let occupancy = self.effective_line_occupancy();
        let wait = self.busy_until.saturating_sub(now);
        let start = now + wait;
        self.busy_until = start + occupancy;
        self.meter.record(kind, occupancy);
        match kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        self.stats.queueing += wait;
        let latency = match kind {
            AccessKind::Read => self.config.read_latency,
            AccessKind::Write => self.config.write_latency,
        };
        wait + Nanos::new(latency.as_nanos().saturating_mul(self.latency_x))
    }

    /// Charges a bulk transfer (page migration) of `bytes` starting at
    /// `now`; returns its completion time contribution.
    pub fn bulk_transfer(&mut self, bytes: neomem_types::Bytes, now: Nanos) -> Nanos {
        let wait = self.busy_until.saturating_sub(now);
        let base = self.config.bandwidth.transfer_time(bytes);
        let occupy = Nanos::new(base.as_nanos().saturating_mul(self.bandwidth_div));
        self.busy_until = now + wait + occupy;
        self.meter.record(AccessKind::Write, occupy);
        wait + occupy
    }

    /// The node's bandwidth meter (consumed by NeoProf's state monitor).
    pub fn meter(&self) -> &BandwidthMeter {
        &self.meter
    }

    /// Begins a new metering window at `now` and returns the finished one.
    pub fn roll_meter(&mut self, now: Nanos) -> crate::meter::BandwidthSample {
        self.meter.roll(now)
    }

    /// Returns accumulated counters.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// Channel occupancy of a single line transfer.
    pub fn line_occupancy(&self) -> Nanos {
        self.line_occupancy
    }

    /// Channel occupancy of a single line transfer under the current
    /// degradation state — what one [`MemoryNode::service`] call adds
    /// to the busy horizon.
    pub fn service_occupancy(&self) -> Nanos {
        self.effective_line_occupancy()
    }

    /// Outstanding channel backlog at `now`: how long a request
    /// arriving now would queue behind already-admitted traffic. Zero
    /// for an idle channel.
    pub fn backlog(&self, now: Nanos) -> Nanos {
        self.busy_until.saturating_sub(now)
    }

    /// Serialises the node's mutable state (channel busy horizon, meter
    /// window, counters) for a machine snapshot. The configuration and
    /// derived line occupancy are not included — a snapshot is restored
    /// onto a node built with the same config.
    pub fn snapshot(&self) -> Json {
        Json::obj([
            ("busy_until", Json::U64(self.busy_until.as_nanos())),
            ("meter", self.meter.snapshot()),
            ("reads", Json::U64(self.stats.reads)),
            ("writes", Json::U64(self.stats.writes)),
            ("queueing", Json::U64(self.stats.queueing.as_nanos())),
            ("latency_x", Json::U64(self.latency_x)),
            ("bandwidth_div", Json::U64(self.bandwidth_div)),
        ])
    }

    /// Restores [`MemoryNode::snapshot`] state.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on missing/malformed fields.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        let busy_until = Nanos::new(snap.req_u64("busy_until")?);
        let stats = NodeStats {
            reads: snap.req_u64("reads")?,
            writes: snap.req_u64("writes")?,
            queueing: Nanos::new(snap.req_u64("queueing")?),
        };
        self.meter.restore(snap.req("meter")?)?;
        self.busy_until = busy_until;
        self.stats = stats;
        self.latency_x = snap.req_u64("latency_x")?.max(1);
        self.bandwidth_div = snap.req_u64("bandwidth_div")?.max(1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_paper_latencies() {
        let fast = NodeConfig::ddr_fast(100);
        let proto = NodeConfig::cxl_prototype(100);
        let ideal = NodeConfig::cxl_ideal(100);
        assert_eq!(fast.read_latency, Nanos::new(118));
        assert_eq!(proto.read_latency, Nanos::new(430));
        assert!(ideal.read_latency >= Nanos::new(170) && ideal.read_latency <= Nanos::new(250));
        // Prototype is ~3.6x host latency (Fig. 3a).
        let ratio = proto.read_latency.as_nanos() as f64 / fast.read_latency.as_nanos() as f64;
        assert!(ratio > 3.0 && ratio < 4.2, "ratio {ratio}");
    }

    #[test]
    fn unloaded_access_costs_latency_only() {
        let mut n = MemoryNode::new(NodeConfig::ddr_fast(10));
        let t = n.service(AccessKind::Read, Nanos::from_micros(5));
        assert_eq!(t, Nanos::new(118));
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut n = MemoryNode::new(NodeConfig::cxl_prototype(10));
        let now = Nanos::ZERO;
        let first = n.service(AccessKind::Read, now);
        let second = n.service(AccessKind::Read, now);
        assert!(second > first, "second request must absorb queueing delay");
        assert!(n.stats().queueing > Nanos::ZERO);
    }

    #[test]
    fn queue_drains_with_time() {
        let mut n = MemoryNode::new(NodeConfig::cxl_prototype(10));
        n.service(AccessKind::Read, Nanos::ZERO);
        // Arrive long after the channel freed up: no queueing.
        let t = n.service(AccessKind::Read, Nanos::from_millis(1));
        assert_eq!(t, Nanos::new(430));
    }

    #[test]
    fn reads_writes_counted_separately() {
        let mut n = MemoryNode::new(NodeConfig::ddr_fast(10));
        n.service(AccessKind::Read, Nanos::ZERO);
        n.service(AccessKind::Write, Nanos::from_micros(1));
        n.service(AccessKind::Write, Nanos::from_micros(2));
        assert_eq!(n.stats().reads, 1);
        assert_eq!(n.stats().writes, 2);
    }

    #[test]
    fn bulk_transfer_occupies_channel() {
        let mut n = MemoryNode::new(NodeConfig::ddr_fast(10));
        let t = n.bulk_transfer(neomem_types::Bytes::from_kib(4), Nanos::ZERO);
        assert!(t > Nanos::ZERO);
        // A line access right after the bulk transfer should queue.
        let access = n.service(AccessKind::Read, Nanos::ZERO);
        assert!(access > Nanos::new(118));
    }

    #[test]
    fn degradation_multiplies_latency_and_throttles_bandwidth() {
        let mut n = MemoryNode::new(NodeConfig::cxl_prototype(10));
        let healthy = n.service(AccessKind::Read, Nanos::from_millis(1));
        n.set_degradation(3, 4);
        let degraded = n.service(AccessKind::Read, Nanos::from_millis(2));
        assert_eq!(degraded.as_nanos(), healthy.as_nanos() * 3, "latency multiplier");
        // Back-to-back under a bandwidth divisor queues 4x as long.
        let queued = n.service(AccessKind::Read, Nanos::from_millis(2));
        assert_eq!(
            queued.as_nanos(),
            n.line_occupancy().as_nanos() * 4 + healthy.as_nanos() * 3,
            "occupancy is divided bandwidth"
        );
        n.clear_degradation();
        let recovered = n.service(AccessKind::Read, Nanos::from_millis(9));
        assert_eq!(recovered, healthy, "recovery restores healthy service");
        // Degradation state survives a snapshot round trip.
        n.set_degradation(2, 2);
        let snap = n.snapshot();
        let mut other = MemoryNode::new(NodeConfig::cxl_prototype(10));
        other.restore(&snap).unwrap();
        let a = n.service(AccessKind::Read, Nanos::from_millis(20));
        let b = other.service(AccessKind::Read, Nanos::from_millis(20));
        assert_eq!(a, b);
    }

    #[test]
    fn validation_rejects_zero_capacity() {
        let mut cfg = NodeConfig::ddr_fast(0);
        assert!(cfg.validate().is_err());
        cfg.capacity_frames = 1;
        cfg.validate().unwrap();
    }
}
