//! Tiered memory-node model.
//!
//! Models the two memory nodes of the paper's platform (Table III):
//! CPU-attached DDR5 (fast tier, ≈118 ns loaded latency) and the
//! FPGA-based CXL Type-3 device (slow tier, ≈430 ns; configurable down to
//! the 170–250 ns "ideal CXL" band used by emulation studies). Each node
//! charges a per-access latency plus a bandwidth-dependent queueing term,
//! and meters busy cycles so NeoProf's state monitor can report the
//! read/write bandwidth utilisation that drives Algorithm 1.
//!
//! # Example
//!
//! ```
//! use neomem_mem::{MemoryNode, NodeConfig};
//! use neomem_types::{AccessKind, Nanos, Tier};
//!
//! let mut node = MemoryNode::new(NodeConfig::cxl_prototype(1024));
//! let t = node.service(AccessKind::Read, Nanos::ZERO);
//! assert!(t.as_nanos() >= 430);
//! assert_eq!(node.config().tier, Tier::Slow);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocator;
mod meter;
mod node;
mod tiered;

pub use allocator::FrameAllocator;
pub use meter::{BandwidthMeter, BandwidthSample};
pub use node::{MemoryNode, NodeConfig};
pub use tiered::{TieredMemory, TieredMemoryConfig};
