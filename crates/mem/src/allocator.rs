//! Per-node physical frame allocation.

use neomem_types::json::{hex_from_u64s, Json};
use neomem_types::{Error, NodeId, PageNum, Result};

/// A free-list frame allocator over a contiguous frame range.
///
/// Frames are handed out lowest-first from a contiguous window
/// `[base, base + capacity)`; freed frames are recycled LIFO. The window
/// layout mirrors how the simulator carves the physical address space:
/// the fast node owns the low frames and the CXL node the frames above
/// it, exactly like the address-mapped NUMA layout in Fig. 1(b).
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    node: NodeId,
    base: PageNum,
    capacity: u64,
    next_fresh: u64,
    free_list: Vec<PageNum>,
    /// Frames hot-removed from the top of the window by a fault
    /// (`[base + capacity - blocked, base + capacity)`): never handed
    /// out while blocked. 0 on a healthy machine.
    blocked: u64,
    /// Freed frames parked because they fall in the blocked range;
    /// they rejoin `free_list` when the block lifts.
    blocked_free: Vec<PageNum>,
}

impl FrameAllocator {
    /// Creates an allocator owning `[base, base + capacity)`.
    pub fn new(node: NodeId, base: PageNum, capacity: u64) -> Self {
        Self {
            node,
            base,
            capacity,
            next_fresh: 0,
            free_list: Vec::new(),
            blocked: 0,
            blocked_free: Vec::new(),
        }
    }

    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// First frame of the window.
    pub fn base(&self) -> PageNum {
        self.base
    }

    /// Total frames in the window.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Frames usable right now: capacity minus any fault-blocked range.
    pub fn usable_capacity(&self) -> u64 {
        self.capacity - self.blocked
    }

    /// Frames currently blocked by a capacity-loss fault.
    pub fn blocked_frames(&self) -> u64 {
        self.blocked
    }

    /// Frames currently available for allocation (blocked frames are
    /// not available).
    pub fn free_frames(&self) -> u64 {
        self.usable_capacity().saturating_sub(self.next_fresh) + self.free_list.len() as u64
    }

    /// Frames currently handed out.
    pub fn used_frames(&self) -> u64 {
        self.next_fresh - self.free_list.len() as u64 - self.blocked_free.len() as u64
    }

    /// Fill ratio in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            1.0
        } else {
            self.used_frames() as f64 / self.capacity as f64
        }
    }

    /// Whether `frame` belongs to this allocator's window.
    pub fn owns(&self, frame: PageNum) -> bool {
        frame >= self.base && frame.index() < self.base.index() + self.capacity
    }

    /// Allocates one frame.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfMemory`] when the node is full.
    pub fn alloc(&mut self) -> Result<PageNum> {
        if let Some(frame) = self.free_list.pop() {
            return Ok(frame);
        }
        if self.next_fresh < self.usable_capacity() {
            let frame = self.base.offset(self.next_fresh);
            self.next_fresh += 1;
            return Ok(frame);
        }
        Err(Error::OutOfMemory { node: self.node })
    }

    /// Returns a frame to the allocator.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) when `frame` is outside this node's window —
    /// that indicates a cross-node accounting bug in the caller.
    pub fn free(&mut self, frame: PageNum) {
        debug_assert!(self.owns(frame), "freeing foreign frame {frame}");
        if self.is_blocked(frame) {
            self.blocked_free.push(frame);
        } else {
            self.free_list.push(frame);
        }
    }

    /// Whether `frame` sits in the currently blocked top range.
    pub fn is_blocked(&self, frame: PageNum) -> bool {
        self.blocked > 0 && frame.index() >= self.base.index() + self.capacity - self.blocked
    }

    /// Hot-removes (or restores) the top `frames` of the window:
    /// `set_blocked(n)` blocks `[base + capacity - n, base + capacity)`,
    /// `set_blocked(0)` lifts the block. Free frames crossing the
    /// boundary are re-parked deterministically (insertion order is
    /// preserved), so the same call sequence always yields the same
    /// allocator state. Frames still in use inside the blocked range
    /// stay mapped — the caller is responsible for migrating them away
    /// and freeing them.
    pub fn set_blocked(&mut self, frames: u64) {
        self.blocked = frames.min(self.capacity);
        let floor = self.base.index() + self.capacity - self.blocked;
        let mut free_list = Vec::with_capacity(self.free_list.len());
        let mut blocked_free = Vec::with_capacity(self.blocked_free.len());
        // Stable re-partition of both parking lists across the new
        // boundary, oldest first.
        for frame in self.free_list.drain(..).chain(self.blocked_free.drain(..)) {
            if frame.index() >= floor {
                blocked_free.push(frame);
            } else {
                free_list.push(frame);
            }
        }
        self.free_list = free_list;
        self.blocked_free = blocked_free;
    }

    /// Serialises the allocator's mutable state (fresh-frame cursor and
    /// free list, in recycling order) for a machine snapshot.
    pub fn snapshot(&self) -> Json {
        Json::obj([
            ("next_fresh", Json::U64(self.next_fresh)),
            (
                "free_list",
                Json::Str(hex_from_u64s(
                    &self.free_list.iter().map(|f| f.index()).collect::<Vec<u64>>(),
                )),
            ),
            ("blocked", Json::U64(self.blocked)),
            (
                "blocked_free",
                Json::Str(hex_from_u64s(
                    &self.blocked_free.iter().map(|f| f.index()).collect::<Vec<u64>>(),
                )),
            ),
        ])
    }

    /// Restores [`FrameAllocator::snapshot`] state onto an allocator with
    /// the same window.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] when the cursor exceeds the capacity
    /// or a free-list frame is outside this allocator's window.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        let next_fresh = snap.req_u64("next_fresh")?;
        if next_fresh > self.capacity {
            return Err(Error::snapshot(format!(
                "allocator cursor {next_fresh} exceeds capacity {}",
                self.capacity
            )));
        }
        let blocked = snap.req_u64("blocked")?;
        if blocked > self.capacity {
            return Err(Error::snapshot(format!(
                "blocked count {blocked} exceeds capacity {}",
                self.capacity
            )));
        }
        let mut free_list = Vec::new();
        for raw in snap.req_u64s("free_list")? {
            let frame = PageNum::new(raw);
            if !self.owns(frame) || raw >= self.base.index() + next_fresh {
                return Err(Error::snapshot(format!(
                    "free frame {raw} is outside the allocated window of {}",
                    self.node
                )));
            }
            free_list.push(frame);
        }
        let blocked_floor = self.base.index() + self.capacity - blocked;
        let mut blocked_free = Vec::new();
        for raw in snap.req_u64s("blocked_free")? {
            let frame = PageNum::new(raw);
            if !self.owns(frame) || raw < blocked_floor || raw >= self.base.index() + next_fresh {
                return Err(Error::snapshot(format!(
                    "blocked free frame {raw} is outside the blocked window of {}",
                    self.node
                )));
            }
            blocked_free.push(frame);
        }
        self.next_fresh = next_fresh;
        self.free_list = free_list;
        self.blocked = blocked;
        self.blocked_free = blocked_free;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc4() -> FrameAllocator {
        FrameAllocator::new(NodeId::FAST, PageNum::new(100), 4)
    }

    #[test]
    fn allocates_lowest_first() {
        let mut a = alloc4();
        assert_eq!(a.alloc().unwrap(), PageNum::new(100));
        assert_eq!(a.alloc().unwrap(), PageNum::new(101));
        assert_eq!(a.free_frames(), 2);
        assert_eq!(a.used_frames(), 2);
    }

    #[test]
    fn exhaustion_returns_oom() {
        let mut a = alloc4();
        for _ in 0..4 {
            a.alloc().unwrap();
        }
        assert_eq!(a.alloc(), Err(Error::OutOfMemory { node: NodeId::FAST }));
    }

    #[test]
    fn free_recycles() {
        let mut a = alloc4();
        let f0 = a.alloc().unwrap();
        let _f1 = a.alloc().unwrap();
        a.free(f0);
        assert_eq!(a.alloc().unwrap(), f0, "freed frame is reused first");
    }

    #[test]
    fn ownership_window() {
        let a = alloc4();
        assert!(a.owns(PageNum::new(100)));
        assert!(a.owns(PageNum::new(103)));
        assert!(!a.owns(PageNum::new(99)));
        assert!(!a.owns(PageNum::new(104)));
    }

    #[test]
    fn utilization_tracks_usage() {
        let mut a = alloc4();
        assert_eq!(a.utilization(), 0.0);
        a.alloc().unwrap();
        a.alloc().unwrap();
        assert!((a.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn blocked_top_frames_are_never_handed_out() {
        let mut a = alloc4();
        a.set_blocked(2);
        assert_eq!(a.usable_capacity(), 2);
        assert_eq!(a.free_frames(), 2);
        assert_eq!(a.alloc().unwrap(), PageNum::new(100));
        assert_eq!(a.alloc().unwrap(), PageNum::new(101));
        assert_eq!(a.alloc(), Err(Error::OutOfMemory { node: NodeId::FAST }));
        assert!(a.is_blocked(PageNum::new(102)));
        assert!(!a.is_blocked(PageNum::new(101)));
        // Recovery restores the full window.
        a.set_blocked(0);
        assert_eq!(a.alloc().unwrap(), PageNum::new(102));
        assert_eq!(a.alloc().unwrap(), PageNum::new(103));
    }

    #[test]
    fn frames_freed_while_blocked_are_parked_until_recovery() {
        let mut a = alloc4();
        let frames: Vec<_> = (0..4).map(|_| a.alloc().unwrap()).collect();
        a.set_blocked(2);
        a.free(frames[3]); // In the blocked range: parked.
        a.free(frames[0]); // Healthy range: immediately reusable.
        assert_eq!(a.free_frames(), 1);
        assert_eq!(a.used_frames(), 2);
        assert_eq!(a.alloc().unwrap(), frames[0]);
        assert!(a.alloc().is_err(), "parked frame must not be allocatable");
        a.set_blocked(0);
        assert_eq!(a.alloc().unwrap(), frames[3], "parked frame returns on recovery");
    }

    #[test]
    fn blocked_state_round_trips_through_snapshot() {
        let mut a = alloc4();
        let frames: Vec<_> = (0..4).map(|_| a.alloc().unwrap()).collect();
        a.set_blocked(2);
        a.free(frames[3]);
        a.free(frames[1]);
        let snap = a.snapshot();
        let mut b = alloc4();
        b.restore(&snap).unwrap();
        assert_eq!(b.blocked_frames(), 2);
        assert_eq!(b.free_frames(), a.free_frames());
        assert_eq!(b.alloc(), a.alloc());
        // Hostile: a blocked-free frame outside the blocked window.
        let mut bad = snap.clone();
        if let Json::Obj(fields) = &mut bad {
            for (k, v) in fields.iter_mut() {
                if k == "blocked_free" {
                    *v = Json::Str(hex_from_u64s(&[100]));
                }
            }
        }
        assert!(alloc4().restore(&bad).is_err());
    }

    #[test]
    fn full_cycle_alloc_free_all() {
        let mut a = alloc4();
        let frames: Vec<_> = (0..4).map(|_| a.alloc().unwrap()).collect();
        for f in frames {
            a.free(f);
        }
        assert_eq!(a.free_frames(), 4);
        // Can allocate the full capacity again.
        for _ in 0..4 {
            a.alloc().unwrap();
        }
        assert!(a.alloc().is_err());
    }
}
