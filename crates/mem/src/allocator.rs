//! Per-node physical frame allocation.

use neomem_types::json::{hex_from_u64s, Json};
use neomem_types::{Error, NodeId, PageNum, Result};

/// A free-list frame allocator over a contiguous frame range.
///
/// Frames are handed out lowest-first from a contiguous window
/// `[base, base + capacity)`; freed frames are recycled LIFO. The window
/// layout mirrors how the simulator carves the physical address space:
/// the fast node owns the low frames and the CXL node the frames above
/// it, exactly like the address-mapped NUMA layout in Fig. 1(b).
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    node: NodeId,
    base: PageNum,
    capacity: u64,
    next_fresh: u64,
    free_list: Vec<PageNum>,
}

impl FrameAllocator {
    /// Creates an allocator owning `[base, base + capacity)`.
    pub fn new(node: NodeId, base: PageNum, capacity: u64) -> Self {
        Self { node, base, capacity, next_fresh: 0, free_list: Vec::new() }
    }

    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// First frame of the window.
    pub fn base(&self) -> PageNum {
        self.base
    }

    /// Total frames in the window.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Frames currently available.
    pub fn free_frames(&self) -> u64 {
        (self.capacity - self.next_fresh) + self.free_list.len() as u64
    }

    /// Frames currently handed out.
    pub fn used_frames(&self) -> u64 {
        self.capacity - self.free_frames()
    }

    /// Fill ratio in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            1.0
        } else {
            self.used_frames() as f64 / self.capacity as f64
        }
    }

    /// Whether `frame` belongs to this allocator's window.
    pub fn owns(&self, frame: PageNum) -> bool {
        frame >= self.base && frame.index() < self.base.index() + self.capacity
    }

    /// Allocates one frame.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfMemory`] when the node is full.
    pub fn alloc(&mut self) -> Result<PageNum> {
        if let Some(frame) = self.free_list.pop() {
            return Ok(frame);
        }
        if self.next_fresh < self.capacity {
            let frame = self.base.offset(self.next_fresh);
            self.next_fresh += 1;
            return Ok(frame);
        }
        Err(Error::OutOfMemory { node: self.node })
    }

    /// Returns a frame to the allocator.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) when `frame` is outside this node's window —
    /// that indicates a cross-node accounting bug in the caller.
    pub fn free(&mut self, frame: PageNum) {
        debug_assert!(self.owns(frame), "freeing foreign frame {frame}");
        self.free_list.push(frame);
    }

    /// Serialises the allocator's mutable state (fresh-frame cursor and
    /// free list, in recycling order) for a machine snapshot.
    pub fn snapshot(&self) -> Json {
        Json::obj([
            ("next_fresh", Json::U64(self.next_fresh)),
            (
                "free_list",
                Json::Str(hex_from_u64s(
                    &self.free_list.iter().map(|f| f.index()).collect::<Vec<u64>>(),
                )),
            ),
        ])
    }

    /// Restores [`FrameAllocator::snapshot`] state onto an allocator with
    /// the same window.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] when the cursor exceeds the capacity
    /// or a free-list frame is outside this allocator's window.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        let next_fresh = snap.req_u64("next_fresh")?;
        if next_fresh > self.capacity {
            return Err(Error::snapshot(format!(
                "allocator cursor {next_fresh} exceeds capacity {}",
                self.capacity
            )));
        }
        let mut free_list = Vec::new();
        for raw in snap.req_u64s("free_list")? {
            let frame = PageNum::new(raw);
            if !self.owns(frame) || raw >= self.base.index() + next_fresh {
                return Err(Error::snapshot(format!(
                    "free frame {raw} is outside the allocated window of {}",
                    self.node
                )));
            }
            free_list.push(frame);
        }
        self.next_fresh = next_fresh;
        self.free_list = free_list;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc4() -> FrameAllocator {
        FrameAllocator::new(NodeId::FAST, PageNum::new(100), 4)
    }

    #[test]
    fn allocates_lowest_first() {
        let mut a = alloc4();
        assert_eq!(a.alloc().unwrap(), PageNum::new(100));
        assert_eq!(a.alloc().unwrap(), PageNum::new(101));
        assert_eq!(a.free_frames(), 2);
        assert_eq!(a.used_frames(), 2);
    }

    #[test]
    fn exhaustion_returns_oom() {
        let mut a = alloc4();
        for _ in 0..4 {
            a.alloc().unwrap();
        }
        assert_eq!(a.alloc(), Err(Error::OutOfMemory { node: NodeId::FAST }));
    }

    #[test]
    fn free_recycles() {
        let mut a = alloc4();
        let f0 = a.alloc().unwrap();
        let _f1 = a.alloc().unwrap();
        a.free(f0);
        assert_eq!(a.alloc().unwrap(), f0, "freed frame is reused first");
    }

    #[test]
    fn ownership_window() {
        let a = alloc4();
        assert!(a.owns(PageNum::new(100)));
        assert!(a.owns(PageNum::new(103)));
        assert!(!a.owns(PageNum::new(99)));
        assert!(!a.owns(PageNum::new(104)));
    }

    #[test]
    fn utilization_tracks_usage() {
        let mut a = alloc4();
        assert_eq!(a.utilization(), 0.0);
        a.alloc().unwrap();
        a.alloc().unwrap();
        assert!((a.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn full_cycle_alloc_free_all() {
        let mut a = alloc4();
        let frames: Vec<_> = (0..4).map(|_| a.alloc().unwrap()).collect();
        for f in frames {
            a.free(f);
        }
        assert_eq!(a.free_frames(), 4);
        // Can allocate the full capacity again.
        for _ in 0..4 {
            a.alloc().unwrap();
        }
        assert!(a.alloc().is_err());
    }
}
