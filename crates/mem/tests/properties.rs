//! Property-based tests for the memory-node model.

use neomem_mem::{FrameAllocator, MemoryNode, NodeConfig, TieredMemory, TieredMemoryConfig};
use neomem_types::{AccessKind, Nanos, NodeId, PageNum, Tier};
use proptest::prelude::*;

proptest! {
    // Fixed case count and no failure-persistence files: runs are
    // deterministic and CI-reproducible.
    #![proptest_config(ProptestConfig {
        cases: 64,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]
    /// Allocator conservation: free + used always equals capacity, and
    /// no frame is handed out twice while live.
    #[test]
    fn allocator_conserves_frames(
        ops in prop::collection::vec(prop::bool::ANY, 1..400),
    ) {
        let mut alloc = FrameAllocator::new(NodeId::FAST, PageNum::new(0), 32);
        let mut live = Vec::new();
        for &do_alloc in &ops {
            if do_alloc {
                if let Ok(frame) = alloc.alloc() {
                    prop_assert!(!live.contains(&frame), "frame {} double-allocated", frame);
                    live.push(frame);
                }
            } else if let Some(frame) = live.pop() {
                alloc.free(frame);
            }
            prop_assert_eq!(alloc.used_frames() + alloc.free_frames(), 32);
            prop_assert_eq!(alloc.used_frames(), live.len() as u64);
        }
    }

    /// Node service time is monotone in load: a request arriving later
    /// never experiences *more* queueing than one arriving at the back
    /// of the same burst.
    #[test]
    fn queueing_decays_with_arrival_gap(gap_ns in 0u64..10_000) {
        let mut burst = MemoryNode::new(NodeConfig::cxl_prototype(64));
        for _ in 0..32 {
            burst.service(AccessKind::Read, Nanos::ZERO);
        }
        let immediately = burst.service(AccessKind::Read, Nanos::ZERO);
        let mut later = MemoryNode::new(NodeConfig::cxl_prototype(64));
        for _ in 0..32 {
            later.service(AccessKind::Read, Nanos::ZERO);
        }
        let delayed = later.service(AccessKind::Read, Nanos::new(gap_ns));
        prop_assert!(delayed <= immediately, "delay must not increase service time");
    }

    /// The bandwidth meter's utilisation is within [0, 1] and the
    /// read fraction is consistent with what was recorded.
    #[test]
    fn meter_utilisation_bounded(
        reqs in prop::collection::vec(prop::bool::ANY, 0..200),
        window_us in 1u64..100,
    ) {
        let mut node = MemoryNode::new(NodeConfig::ddr_fast(64));
        let mut reads = 0u64;
        for &is_read in &reqs {
            let kind = if is_read { AccessKind::Read } else { AccessKind::Write };
            if is_read {
                reads += 1;
            }
            node.service(kind, Nanos::ZERO);
        }
        let sample = node.roll_meter(Nanos::from_micros(window_us));
        let util = sample.utilization();
        prop_assert!((0.0..=1.0).contains(&util));
        if reqs.is_empty() {
            prop_assert_eq!(sample.read_fraction(), 0.5);
        } else if reads == reqs.len() as u64 {
            prop_assert!((sample.read_fraction() - 1.0).abs() < 1e-9);
        } else if reads == 0 {
            prop_assert!(sample.read_fraction().abs() < 1e-9);
        }
    }

    /// Tiered memory invariants: `tier_of` partitions the frame space
    /// at `slow_base`, and first-touch fallback allocation never fails
    /// while frames remain anywhere.
    #[test]
    fn tiered_layout_partition(fast in 1u64..32, slow in 1u64..64) {
        let mut mem = TieredMemory::new(TieredMemoryConfig::with_frames(fast, slow));
        prop_assert_eq!(mem.slow_base().index(), fast);
        for _ in 0..(fast + slow) {
            let frame = mem.alloc_preferring(Tier::Fast).unwrap();
            let expected = if frame.index() < fast { Tier::Fast } else { Tier::Slow };
            prop_assert_eq!(mem.tier_of(frame), expected);
        }
        prop_assert!(mem.alloc_preferring(Tier::Fast).is_err(), "all frames handed out");
    }
}
