//! A set-associative TLB model.
//!
//! The TLB determines what the *software* profiling baselines can see:
//! PTE accessed bits are set by the page walker on TLB fills, and
//! hint-fault "poisoned" pages fault when their translation is absent.
//! Page migration and PTE poisoning trigger TLB shootdowns, which the
//! simulator charges time for.

use neomem_types::json::{hex_from_u64s, Json};
use neomem_types::{Error, Result, VirtPage};

use crate::swar;

/// TLB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

impl TlbConfig {
    /// A 2048-entry, 8-way TLB, in the range of modern x86 STLBs.
    pub fn scaled_default() -> Self {
        Self { entries: 2048, ways: 8 }
    }

    /// A 256-entry TLB whose coverage relative to quick-simulation
    /// footprints matches a real STLB's coverage of a 10+ GB RSS.
    pub fn scaled_small() -> Self {
        Self { entries: 256, ways: 4 }
    }

    /// A 8-entry TLB for unit tests.
    pub fn tiny() -> Self {
        Self { entries: 8, ways: 2 }
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] unless `entries` is a non-zero
    /// multiple of `ways` with a power-of-two set count.
    pub fn validate(&self) -> Result<()> {
        if self.entries == 0 || self.ways == 0 || !self.entries.is_multiple_of(self.ways) {
            return Err(Error::invalid_config("tlb entries must be a non-zero multiple of ways"));
        }
        if !(self.entries / self.ways).is_power_of_two() {
            return Err(Error::invalid_config("tlb set count must be a power of two"));
        }
        Ok(())
    }
}

/// Hit/miss/shootdown counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Translations served from the TLB.
    pub hits: u64,
    /// Translations requiring a page walk.
    pub misses: u64,
    /// Entries invalidated by shootdowns.
    pub shootdowns: u64,
}

impl TlbStats {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Top bit of a key-lane word: the entry holds a live translation. The
/// payload below it is the VPN, so a whole match (validity + VPN) is one
/// `u64` compare. VPNs are bounded far below 2^63 by the dense workload
/// ranges; [`Tlb::restore`] rejects anything wider.
const KEY_VALID: u64 = 1 << 63;

/// A set-associative, LRU TLB over virtual pages.
///
/// Entries are structure-of-arrays: a key lane (`valid | vpn` fused into
/// one word, so the hot lookup scan compares one contiguous `u64` per
/// way) and a last-use lane read only on the miss/fill path.
///
/// ```
/// use neomem_cache::{Tlb, TlbConfig};
/// use neomem_types::VirtPage;
///
/// let mut tlb = Tlb::new(TlbConfig::tiny());
/// assert!(!tlb.access(VirtPage::new(3))); // cold miss, then filled
/// assert!(tlb.access(VirtPage::new(3))); // hit
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    /// `KEY_VALID | vpn` per entry; `0` (or any word without the valid
    /// bit) never matches a lookup key.
    keys: Vec<u64>,
    /// LRU timestamps, parallel to `keys`.
    last_uses: Vec<u64>,
    set_mask: u64,
    tick: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates the TLB.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry; pre-validate with
    /// [`TlbConfig::validate`].
    pub fn new(config: TlbConfig) -> Self {
        config.validate().expect("invalid tlb config");
        let sets = config.entries / config.ways;
        Self {
            config,
            keys: vec![0; config.entries],
            last_uses: vec![0; config.entries],
            set_mask: sets as u64 - 1,
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// Looks up `vpage`, filling the entry on miss. Returns `true` on hit.
    #[inline]
    pub fn access(&mut self, vpage: VirtPage) -> bool {
        self.tick += 1;
        let key = KEY_VALID | vpage.index();
        let set = (vpage.index() & self.set_mask) as usize;
        let base = set * self.config.ways;
        let ways = self.config.ways;

        // Branch-free whole-set scan; at most one way can match.
        if let Some(i) = swar::scan_hit(&self.keys[base..base + ways], key) {
            self.last_uses[base + i] = self.tick;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        // Fill: prefer invalid, else LRU.
        let victim = base
            + swar::select_victim(
                &self.keys[base..base + ways],
                &self.last_uses[base..base + ways],
                u64::MAX,
            );
        self.keys[victim] = key;
        self.last_uses[victim] = self.tick;
        false
    }

    /// Invalidates `vpage` (one shootdown), returning whether it was
    /// present.
    pub fn shootdown(&mut self, vpage: VirtPage) -> bool {
        let key = KEY_VALID | vpage.index();
        let set = (vpage.index() & self.set_mask) as usize;
        let base = set * self.config.ways;
        for i in base..base + self.config.ways {
            if self.keys[i] == key {
                self.keys[i] = 0;
                self.last_uses[i] = 0;
                self.stats.shootdowns += 1;
                return true;
            }
        }
        false
    }

    /// Flushes the whole TLB (counted as one shootdown per valid entry).
    pub fn flush(&mut self) {
        for (k, last_use) in self.keys.iter_mut().zip(&mut self.last_uses) {
            if *k & KEY_VALID != 0 {
                self.stats.shootdowns += 1;
                *k = 0;
                *last_use = 0;
            }
        }
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Returns the geometry.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Serialises the translation entries, LRU tick and counters for a
    /// machine snapshot. Validity is packed as a bitmask word array.
    pub fn snapshot(&self) -> Json {
        let vpns: Vec<u64> = self.keys.iter().map(|k| k & !KEY_VALID).collect();
        let mut valid = vec![0u64; self.keys.len().div_ceil(64)];
        for (i, k) in self.keys.iter().enumerate() {
            if k & KEY_VALID != 0 {
                valid[i / 64] |= 1 << (i % 64);
            }
        }
        Json::obj([
            ("vpns", Json::Str(hex_from_u64s(&vpns))),
            ("last_uses", Json::Str(hex_from_u64s(&self.last_uses))),
            ("valid", Json::Str(hex_from_u64s(&valid))),
            ("tick", Json::U64(self.tick)),
            ("hits", Json::U64(self.stats.hits)),
            ("misses", Json::U64(self.stats.misses)),
            ("shootdowns", Json::U64(self.stats.shootdowns)),
        ])
    }

    /// Restores [`Tlb::snapshot`] state onto a TLB with the same
    /// geometry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on missing/malformed fields, arrays
    /// sized for a different geometry, or a VPN wide enough to collide
    /// with the key lane's valid bit.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        let vpns = snap.req_u64s("vpns")?;
        let last_uses = snap.req_u64s("last_uses")?;
        let valid = snap.req_u64s("valid")?;
        if vpns.len() != self.keys.len()
            || last_uses.len() != self.keys.len()
            || valid.len() != self.keys.len().div_ceil(64)
        {
            return Err(Error::snapshot(format!(
                "tlb snapshot has {} entries, expected {}",
                vpns.len(),
                self.keys.len()
            )));
        }
        if let Some(vpn) = vpns.iter().find(|v| **v & KEY_VALID != 0) {
            return Err(Error::snapshot(format!("tlb vpn {vpn:#x} exceeds the key lane")));
        }
        self.tick = snap.req_u64("tick")?;
        self.stats = TlbStats {
            hits: snap.req_u64("hits")?,
            misses: snap.req_u64("misses")?,
            shootdowns: snap.req_u64("shootdowns")?,
        };
        for i in 0..self.keys.len() {
            let is_valid = (valid[i / 64] >> (i % 64)) & 1 == 1;
            self.keys[i] = vpns[i] | if is_valid { KEY_VALID } else { 0 };
            self.last_uses[i] = last_uses[i];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        TlbConfig::scaled_default().validate().unwrap();
        TlbConfig::tiny().validate().unwrap();
        assert!(TlbConfig { entries: 0, ways: 1 }.validate().is_err());
        assert!(TlbConfig { entries: 9, ways: 2 }.validate().is_err());
        assert!(TlbConfig { entries: 12, ways: 2 }.validate().is_err());
    }

    #[test]
    fn miss_then_hit() {
        let mut tlb = Tlb::new(TlbConfig::tiny());
        assert!(!tlb.access(VirtPage::new(1)));
        assert!(tlb.access(VirtPage::new(1)));
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut tlb = Tlb::new(TlbConfig::tiny()); // 4 sets x 2 ways
        // Pages 0, 4, 8 all map to set 0.
        tlb.access(VirtPage::new(0));
        tlb.access(VirtPage::new(4));
        tlb.access(VirtPage::new(0)); // refresh
        tlb.access(VirtPage::new(8)); // evicts 4
        assert!(tlb.access(VirtPage::new(0)));
        assert!(!tlb.access(VirtPage::new(4)));
    }

    #[test]
    fn shootdown_removes_translation() {
        let mut tlb = Tlb::new(TlbConfig::tiny());
        tlb.access(VirtPage::new(2));
        assert!(tlb.shootdown(VirtPage::new(2)));
        assert!(!tlb.access(VirtPage::new(2)), "must miss after shootdown");
        assert!(!tlb.shootdown(VirtPage::new(99)), "absent page");
        assert_eq!(tlb.stats().shootdowns, 1);
    }

    #[test]
    fn flush_empties_everything() {
        let mut tlb = Tlb::new(TlbConfig::tiny());
        for i in 0..8u64 {
            tlb.access(VirtPage::new(i));
        }
        tlb.flush();
        for i in 0..8u64 {
            assert!(!tlb.access(VirtPage::new(i)), "page {i} must miss after flush");
        }
        assert!(tlb.stats().shootdowns >= 8);
    }

    #[test]
    fn page_zero_translates_like_any_other() {
        let mut tlb = Tlb::new(TlbConfig::tiny());
        assert!(!tlb.access(VirtPage::new(0)), "cold miss");
        assert!(tlb.access(VirtPage::new(0)), "page 0 is a real entry, not an empty slot");
        assert!(tlb.shootdown(VirtPage::new(0)));
        assert!(!tlb.access(VirtPage::new(0)));
    }

    #[test]
    fn miss_ratio_empty_is_zero() {
        let tlb = Tlb::new(TlbConfig::tiny());
        assert_eq!(tlb.stats().miss_ratio(), 0.0);
    }
}
