//! A set-associative TLB model.
//!
//! The TLB determines what the *software* profiling baselines can see:
//! PTE accessed bits are set by the page walker on TLB fills, and
//! hint-fault "poisoned" pages fault when their translation is absent.
//! Page migration and PTE poisoning trigger TLB shootdowns, which the
//! simulator charges time for.

use neomem_types::json::{hex_from_u64s, Json};
use neomem_types::{Error, Result, VirtPage};

/// TLB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

impl TlbConfig {
    /// A 2048-entry, 8-way TLB, in the range of modern x86 STLBs.
    pub fn scaled_default() -> Self {
        Self { entries: 2048, ways: 8 }
    }

    /// A 256-entry TLB whose coverage relative to quick-simulation
    /// footprints matches a real STLB's coverage of a 10+ GB RSS.
    pub fn scaled_small() -> Self {
        Self { entries: 256, ways: 4 }
    }

    /// A 8-entry TLB for unit tests.
    pub fn tiny() -> Self {
        Self { entries: 8, ways: 2 }
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] unless `entries` is a non-zero
    /// multiple of `ways` with a power-of-two set count.
    pub fn validate(&self) -> Result<()> {
        if self.entries == 0 || self.ways == 0 || !self.entries.is_multiple_of(self.ways) {
            return Err(Error::invalid_config("tlb entries must be a non-zero multiple of ways"));
        }
        if !(self.entries / self.ways).is_power_of_two() {
            return Err(Error::invalid_config("tlb set count must be a power of two"));
        }
        Ok(())
    }
}

/// Hit/miss/shootdown counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Translations served from the TLB.
    pub hits: u64,
    /// Translations requiring a page walk.
    pub misses: u64,
    /// Entries invalidated by shootdowns.
    pub shootdowns: u64,
}

impl TlbStats {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TlbEntry {
    vpn: u64,
    valid: bool,
    last_use: u64,
}

/// A set-associative, LRU TLB over virtual pages.
///
/// ```
/// use neomem_cache::{Tlb, TlbConfig};
/// use neomem_types::VirtPage;
///
/// let mut tlb = Tlb::new(TlbConfig::tiny());
/// assert!(!tlb.access(VirtPage::new(3))); // cold miss, then filled
/// assert!(tlb.access(VirtPage::new(3))); // hit
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    entries: Vec<TlbEntry>,
    set_mask: u64,
    tick: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates the TLB.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry; pre-validate with
    /// [`TlbConfig::validate`].
    pub fn new(config: TlbConfig) -> Self {
        config.validate().expect("invalid tlb config");
        let sets = config.entries / config.ways;
        Self {
            config,
            entries: vec![TlbEntry::default(); config.entries],
            set_mask: sets as u64 - 1,
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// Looks up `vpage`, filling the entry on miss. Returns `true` on hit.
    pub fn access(&mut self, vpage: VirtPage) -> bool {
        self.tick += 1;
        let set = (vpage.index() & self.set_mask) as usize;
        let base = set * self.config.ways;
        let ways = self.config.ways;

        for e in &mut self.entries[base..base + ways] {
            if e.valid && e.vpn == vpage.index() {
                e.last_use = self.tick;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        // Fill: prefer invalid, else LRU.
        let mut victim = base;
        let mut best = u64::MAX;
        for (i, e) in self.entries[base..base + ways].iter().enumerate() {
            if !e.valid {
                victim = base + i;
                break;
            }
            if e.last_use < best {
                best = e.last_use;
                victim = base + i;
            }
        }
        self.entries[victim] = TlbEntry { vpn: vpage.index(), valid: true, last_use: self.tick };
        false
    }

    /// Invalidates `vpage` (one shootdown), returning whether it was
    /// present.
    pub fn shootdown(&mut self, vpage: VirtPage) -> bool {
        let set = (vpage.index() & self.set_mask) as usize;
        let base = set * self.config.ways;
        for e in &mut self.entries[base..base + self.config.ways] {
            if e.valid && e.vpn == vpage.index() {
                *e = TlbEntry::default();
                self.stats.shootdowns += 1;
                return true;
            }
        }
        false
    }

    /// Flushes the whole TLB (counted as one shootdown per valid entry).
    pub fn flush(&mut self) {
        for e in &mut self.entries {
            if e.valid {
                self.stats.shootdowns += 1;
                *e = TlbEntry::default();
            }
        }
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Returns the geometry.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Serialises the translation entries, LRU tick and counters for a
    /// machine snapshot. Validity is packed as a bitmask word array.
    pub fn snapshot(&self) -> Json {
        let vpns: Vec<u64> = self.entries.iter().map(|e| e.vpn).collect();
        let last_uses: Vec<u64> = self.entries.iter().map(|e| e.last_use).collect();
        let mut valid = vec![0u64; self.entries.len().div_ceil(64)];
        for (i, e) in self.entries.iter().enumerate() {
            if e.valid {
                valid[i / 64] |= 1 << (i % 64);
            }
        }
        Json::obj([
            ("vpns", Json::Str(hex_from_u64s(&vpns))),
            ("last_uses", Json::Str(hex_from_u64s(&last_uses))),
            ("valid", Json::Str(hex_from_u64s(&valid))),
            ("tick", Json::U64(self.tick)),
            ("hits", Json::U64(self.stats.hits)),
            ("misses", Json::U64(self.stats.misses)),
            ("shootdowns", Json::U64(self.stats.shootdowns)),
        ])
    }

    /// Restores [`Tlb::snapshot`] state onto a TLB with the same
    /// geometry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on missing/malformed fields or arrays
    /// sized for a different geometry.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        let vpns = snap.req_u64s("vpns")?;
        let last_uses = snap.req_u64s("last_uses")?;
        let valid = snap.req_u64s("valid")?;
        if vpns.len() != self.entries.len()
            || last_uses.len() != self.entries.len()
            || valid.len() != self.entries.len().div_ceil(64)
        {
            return Err(Error::snapshot(format!(
                "tlb snapshot has {} entries, expected {}",
                vpns.len(),
                self.entries.len()
            )));
        }
        self.tick = snap.req_u64("tick")?;
        self.stats = TlbStats {
            hits: snap.req_u64("hits")?,
            misses: snap.req_u64("misses")?,
            shootdowns: snap.req_u64("shootdowns")?,
        };
        for (i, e) in self.entries.iter_mut().enumerate() {
            *e = TlbEntry {
                vpn: vpns[i],
                valid: (valid[i / 64] >> (i % 64)) & 1 == 1,
                last_use: last_uses[i],
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        TlbConfig::scaled_default().validate().unwrap();
        TlbConfig::tiny().validate().unwrap();
        assert!(TlbConfig { entries: 0, ways: 1 }.validate().is_err());
        assert!(TlbConfig { entries: 9, ways: 2 }.validate().is_err());
        assert!(TlbConfig { entries: 12, ways: 2 }.validate().is_err());
    }

    #[test]
    fn miss_then_hit() {
        let mut tlb = Tlb::new(TlbConfig::tiny());
        assert!(!tlb.access(VirtPage::new(1)));
        assert!(tlb.access(VirtPage::new(1)));
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut tlb = Tlb::new(TlbConfig::tiny()); // 4 sets x 2 ways
        // Pages 0, 4, 8 all map to set 0.
        tlb.access(VirtPage::new(0));
        tlb.access(VirtPage::new(4));
        tlb.access(VirtPage::new(0)); // refresh
        tlb.access(VirtPage::new(8)); // evicts 4
        assert!(tlb.access(VirtPage::new(0)));
        assert!(!tlb.access(VirtPage::new(4)));
    }

    #[test]
    fn shootdown_removes_translation() {
        let mut tlb = Tlb::new(TlbConfig::tiny());
        tlb.access(VirtPage::new(2));
        assert!(tlb.shootdown(VirtPage::new(2)));
        assert!(!tlb.access(VirtPage::new(2)), "must miss after shootdown");
        assert!(!tlb.shootdown(VirtPage::new(99)), "absent page");
        assert_eq!(tlb.stats().shootdowns, 1);
    }

    #[test]
    fn flush_empties_everything() {
        let mut tlb = Tlb::new(TlbConfig::tiny());
        for i in 0..8u64 {
            tlb.access(VirtPage::new(i));
        }
        tlb.flush();
        for i in 0..8u64 {
            assert!(!tlb.access(VirtPage::new(i)), "page {i} must miss after flush");
        }
        assert!(tlb.stats().shootdowns >= 8);
    }

    #[test]
    fn miss_ratio_empty_is_zero() {
        let tlb = Tlb::new(TlbConfig::tiny());
        assert_eq!(tlb.stats().miss_ratio(), 0.0);
    }
}
