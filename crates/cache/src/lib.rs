//! Cache hierarchy and TLB simulation.
//!
//! NeoProf's defining property (design goal **G3**) is that it observes
//! *true LLC misses* — the requests that actually reach the CXL memory
//! device — rather than the TLB-level events that PTE-scan and hint-fault
//! profiling see. Reproducing that distinction requires simulating the
//! cache hierarchy that filters CPU accesses, and the TLB whose misses/
//! faults drive the software baselines.
//!
//! The hierarchy is a classic three-level, write-back, write-allocate,
//! LRU set-associative model. Caches are indexed by *virtual* line
//! address: the simulated workloads have a single address space, and
//! indexing virtually keeps cache state independent of page migration
//! (data contents don't change when the kernel moves a page between
//! tiers), matching the behaviour a physically-indexed cache converges to
//! after a migration without requiring a line-walk per move. Translation
//! to physical frames happens at LLC-miss time in the simulator.
//!
//! # Example
//!
//! ```
//! use neomem_cache::{CacheHierarchy, HierarchyConfig, HitLevel};
//! use neomem_types::{AccessKind, CacheLine};
//!
//! let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
//! let line = CacheLine::new(0x40);
//! let first = h.access(line, AccessKind::Read);
//! assert_eq!(first.level, HitLevel::Memory); // cold miss
//! let second = h.access(line, AccessKind::Read);
//! assert_eq!(second.level, HitLevel::L1);    // now cached
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hierarchy;
mod set_assoc;
mod swar;
mod tlb;

pub use hierarchy::{CacheHierarchy, HierarchyConfig, HierarchyStats, HitLevel, MemoryTraffic};
pub use set_assoc::{CacheConfig, CacheStats, LevelOutcome, SetAssocCache};
pub use tlb::{Tlb, TlbConfig, TlbStats};
