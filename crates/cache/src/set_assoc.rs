//! A single set-associative, write-back, write-allocate cache level.

use neomem_types::json::{hex_from_u64s, Json};
use neomem_types::{CacheLine, Error, Result};

use crate::swar;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Capacity in bytes. Must be `ways * line_size * 2^k` for integer `k`.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (64 everywhere in this workspace).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Creates a config with 64-byte lines.
    pub fn new(capacity_bytes: u64, ways: usize) -> Self {
        Self { capacity_bytes, ways, line_bytes: 64 }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (self.ways as u64 * self.line_bytes)
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] unless the set count is a power of
    /// two and every dimension is non-zero.
    pub fn validate(&self) -> Result<()> {
        if self.ways == 0 || self.line_bytes == 0 || self.capacity_bytes == 0 {
            return Err(Error::invalid_config("cache dimensions must be non-zero"));
        }
        if !self.capacity_bytes.is_multiple_of(self.ways as u64 * self.line_bytes) {
            return Err(Error::invalid_config("capacity must be a multiple of ways*line"));
        }
        if !self.sets().is_power_of_two() {
            return Err(Error::invalid_config("cache set count must be a power of two"));
        }
        Ok(())
    }
}

/// Hit/miss/writeback counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty victims written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; 0 when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Validity flag of a key-lane word. The payload below it is the line
/// tag, so tag matching (validity + tag) is one `u64` compare and the
/// miss path of a set scan touches only the key lane. Tags have
/// `64 - set_bits` significant bits and real line indices sit far below
/// 2^63; [`SetAssocCache::restore`] rejects anything wider.
const KEY_VALID: u64 = 1 << 63;
/// Dirty flag of a meta-lane word.
const META_DIRTY: u64 = 1 << 62;
/// Low bits of a meta-lane word: the LRU timestamp. 62 tick bits
/// overflow after ~4.6e18 probes, far beyond any simulated run.
const META_TICK_MASK: u64 = META_DIRTY - 1;

/// One set-associative cache level with true-LRU replacement.
///
/// The cache stores line *tags* only — the simulation has no data —
/// and models write-back/write-allocate: a store marks the line dirty;
/// evicting a dirty line surfaces a writeback the caller must forward to
/// the next level (or to memory, for the LLC).
///
/// Ways are structure-of-arrays: a key lane (`valid | tag` in one word)
/// the probe loop scans contiguously, and a meta lane (dirty flag + LRU
/// timestamp) touched only on hits and fills. A probe miss — the common
/// case in every level below a thrashing working set — therefore reads
/// half the bytes the old interleaved `{tag, meta}` pairs did.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// `KEY_VALID | tag` per way; a word without the valid bit never
    /// matches a probe.
    keys: Vec<u64>,
    /// `dirty | tick` per way, parallel to `keys`.
    metas: Vec<u64>,
    set_mask: u64,
    /// Bits of the set index — cached at construction so the hot
    /// probe/fill/writeback paths never recount mask bits.
    set_bits: u32,
    set_shift_ways: usize,
    tick: u64,
    stats: CacheStats,
}

/// Outcome of one cache access or fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// A dirty victim evicted to make room (only on fills that replace a
    /// dirty line).
    pub writeback: Option<CacheLine>,
}

impl SetAssocCache {
    /// Creates the cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`CacheConfig::validate`] to pre-check untrusted configs.
    pub fn new(config: CacheConfig) -> Self {
        config.validate().expect("invalid cache config");
        let sets = config.sets() as usize;
        Self {
            config,
            keys: vec![0; sets * config.ways],
            metas: vec![0; sets * config.ways],
            set_mask: sets as u64 - 1,
            set_bits: (sets as u64).trailing_zeros(),
            set_shift_ways: config.ways,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Returns the configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    #[inline]
    fn set_range(&self, line: CacheLine) -> (usize, u64) {
        let set = (line.index() & self.set_mask) as usize;
        let tag = line.index() >> self.set_bits;
        (set * self.set_shift_ways, tag)
    }

    /// Probes for `line`; on hit, refreshes LRU and applies `dirty`.
    /// Does **not** allocate on miss — pair with [`fill`](Self::fill).
    ///
    /// Dispatches once on the way count so the common geometries run a
    /// fully monomorphic body: fixed-width lane arrays, unrolled scans,
    /// no per-kernel width re-dispatch.
    #[inline]
    pub fn probe(&mut self, line: CacheLine, dirty: bool) -> bool {
        match self.config.ways {
            2 => self.probe_w::<2>(line, dirty),
            4 => self.probe_w::<4>(line, dirty),
            8 => self.probe_w::<8>(line, dirty),
            16 => self.probe_w::<16>(line, dirty),
            _ => self.probe_any(line, dirty),
        }
    }

    #[inline(always)]
    fn probe_w<const N: usize>(&mut self, line: CacheLine, dirty: bool) -> bool {
        self.tick += 1;
        let set = (line.index() & self.set_mask) as usize;
        let tag = line.index() >> self.set_bits;
        let base = set * N;
        let key = KEY_VALID | tag;
        // Branch-free whole-set scan; at most one way can match. The
        // slice length is the const width, so the kernel's width
        // dispatch folds away.
        if let Some(i) = swar::scan_hit(&self.keys[base..base + N], key) {
            // Refresh the timestamp, keep (or set) the dirty bit.
            let meta = &mut self.metas[base + i];
            *meta = (*meta & META_DIRTY) | (if dirty { META_DIRTY } else { 0 }) | self.tick;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        false
    }

    /// Width-generic probe for uncommon geometries; scan-equivalent to
    /// the monomorphic bodies.
    fn probe_any(&mut self, line: CacheLine, dirty: bool) -> bool {
        self.tick += 1;
        let (base, tag) = self.set_range(line);
        let key = KEY_VALID | tag;
        let ways = self.config.ways;
        if let Some(i) = self.keys[base..base + ways].iter().position(|k| *k == key) {
            let meta = &mut self.metas[base + i];
            *meta = (*meta & META_DIRTY) | (if dirty { META_DIRTY } else { 0 }) | self.tick;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        false
    }

    /// Inserts `line` (after a miss), evicting the LRU way of its set.
    /// Returns the dirty victim, if any.
    #[inline]
    pub fn fill(&mut self, line: CacheLine, dirty: bool) -> Option<CacheLine> {
        match self.config.ways {
            2 => self.fill_w::<2>(line, dirty),
            4 => self.fill_w::<4>(line, dirty),
            8 => self.fill_w::<8>(line, dirty),
            16 => self.fill_w::<16>(line, dirty),
            _ => self.fill_any(line, dirty),
        }
    }

    #[inline(always)]
    fn fill_w<const N: usize>(&mut self, line: CacheLine, dirty: bool) -> Option<CacheLine> {
        self.tick += 1;
        let set_index = line.index() & self.set_mask;
        let tag = line.index() >> self.set_bits;
        let base = set_index as usize * N;
        // Prefer an invalid way; otherwise evict true-LRU.
        let victim = base
            + swar::select_victim(
                &self.keys[base..base + N],
                &self.metas[base..base + N],
                META_TICK_MASK,
            );
        self.replace(victim, tag, set_index, dirty)
    }

    /// Width-generic fill for uncommon geometries.
    fn fill_any(&mut self, line: CacheLine, dirty: bool) -> Option<CacheLine> {
        self.tick += 1;
        let (base, tag) = self.set_range(line);
        let ways = self.config.ways;
        let set_index = line.index() & self.set_mask;
        let victim = base
            + swar::select_victim(
                &self.keys[base..base + ways],
                &self.metas[base..base + ways],
                META_TICK_MASK,
            );
        self.replace(victim, tag, set_index, dirty)
    }

    /// Shared fill tail: evicts `victim` (counting a dirty writeback and
    /// reconstructing its line address) and installs the new tag.
    #[inline(always)]
    fn replace(&mut self, victim: usize, tag: u64, set_index: u64, dirty: bool) -> Option<CacheLine> {
        let evicted = if self.keys[victim] & KEY_VALID != 0 && self.metas[victim] & META_DIRTY != 0
        {
            self.stats.writebacks += 1;
            Some(CacheLine::new(((self.keys[victim] & !KEY_VALID) << self.set_bits) | set_index))
        } else {
            None
        };
        self.keys[victim] = KEY_VALID | tag;
        self.metas[victim] = if dirty { META_DIRTY } else { 0 } | self.tick;
        evicted
    }

    /// Fused probe-or-fill: bit-identical to `probe` followed (on miss)
    /// by `fill` — same stats, same double tick bump, same victim — but
    /// the key lane is swept once, yielding the hit way and the
    /// invalid-way mask together, so the miss path goes straight to LRU
    /// selection over the meta lane.
    #[inline]
    pub fn access(&mut self, line: CacheLine, dirty: bool) -> LevelOutcome {
        match self.config.ways {
            2 => self.access_w::<2>(line, dirty),
            4 => self.access_w::<4>(line, dirty),
            8 => self.access_w::<8>(line, dirty),
            16 => self.access_w::<16>(line, dirty),
            _ => {
                if self.probe_any(line, dirty) {
                    LevelOutcome { hit: true, writeback: None }
                } else {
                    let writeback = self.fill_any(line, dirty);
                    LevelOutcome { hit: false, writeback }
                }
            }
        }
    }

    #[inline(always)]
    fn access_w<const N: usize>(&mut self, line: CacheLine, dirty: bool) -> LevelOutcome {
        self.tick += 1;
        let set_index = line.index() & self.set_mask;
        let tag = line.index() >> self.set_bits;
        let base = set_index as usize * N;
        let key = KEY_VALID | tag;
        let (hit, invalid) = swar::scan_set(&self.keys[base..base + N], key);
        if let Some(i) = hit {
            let meta = &mut self.metas[base + i];
            *meta = (*meta & META_DIRTY) | (if dirty { META_DIRTY } else { 0 }) | self.tick;
            self.stats.hits += 1;
            return LevelOutcome { hit: true, writeback: None };
        }
        self.stats.misses += 1;
        // Fill half, with its own tick bump exactly as `fill` takes.
        self.tick += 1;
        let victim = base
            + if invalid != 0 {
                invalid.trailing_zeros() as usize
            } else {
                swar::lru_way(&self.metas[base..base + N], META_TICK_MASK)
            };
        let writeback = self.replace(victim, tag, set_index, dirty);
        LevelOutcome { hit: false, writeback }
    }

    /// Invalidates `line` if present; returns `true` if it was dirty.
    pub fn invalidate(&mut self, line: CacheLine) -> bool {
        let (base, tag) = self.set_range(line);
        let key = KEY_VALID | tag;
        for i in base..base + self.config.ways {
            if self.keys[i] == key {
                let was_dirty = self.metas[i] & META_DIRTY != 0;
                self.keys[i] = 0;
                self.metas[i] = 0;
                return was_dirty;
            }
        }
        false
    }

    /// Drops all contents and statistics.
    pub fn reset(&mut self) {
        self.keys.fill(0);
        self.metas.fill(0);
        self.tick = 0;
        self.stats = CacheStats::default();
    }

    /// Number of currently valid lines (diagnostics).
    pub fn resident_lines(&self) -> usize {
        self.keys.iter().filter(|k| **k & KEY_VALID != 0).count()
    }

    /// Serialises the tag array (tags + packed metadata words), LRU tick
    /// and counters for a machine snapshot.
    pub fn snapshot(&self) -> Json {
        let tags: Vec<u64> = self.keys.iter().map(|k| k & !KEY_VALID).collect();
        // The wire format predates the split lanes: one packed word per
        // way with valid (bit 63) | dirty (bit 62) | tick.
        let metas: Vec<u64> = self
            .keys
            .iter()
            .zip(&self.metas)
            .map(|(k, m)| (k & KEY_VALID) | m)
            .collect();
        Json::obj([
            ("tags", Json::Str(hex_from_u64s(&tags))),
            ("metas", Json::Str(hex_from_u64s(&metas))),
            ("tick", Json::U64(self.tick)),
            ("hits", Json::U64(self.stats.hits)),
            ("misses", Json::U64(self.stats.misses)),
            ("writebacks", Json::U64(self.stats.writebacks)),
        ])
    }

    /// Restores [`SetAssocCache::snapshot`] state onto a cache with the
    /// same geometry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on missing/malformed fields, a tag
    /// array sized for a different geometry, or a tag wide enough to
    /// collide with the key lane's valid bit.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        let tags = snap.req_u64s("tags")?;
        let metas = snap.req_u64s("metas")?;
        if tags.len() != self.keys.len() || metas.len() != self.keys.len() {
            return Err(Error::snapshot(format!(
                "cache tag array has {} ways, expected {}",
                tags.len(),
                self.keys.len()
            )));
        }
        if let Some(tag) = tags.iter().find(|t| **t & KEY_VALID != 0) {
            return Err(Error::snapshot(format!("cache tag {tag:#x} exceeds the key lane")));
        }
        self.tick = snap.req_u64("tick")?;
        self.stats = CacheStats {
            hits: snap.req_u64("hits")?,
            misses: snap.req_u64("misses")?,
            writebacks: snap.req_u64("writebacks")?,
        };
        for i in 0..self.keys.len() {
            self.keys[i] = tags[i] | (metas[i] & KEY_VALID);
            self.metas[i] = metas[i] & (META_DIRTY | META_TICK_MASK);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neomem_types::AccessKind;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways x 64B = 512B.
        SetAssocCache::new(CacheConfig::new(512, 2))
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::new(512, 2);
        assert_eq!(c.sets(), 4);
        c.validate().unwrap();
        assert!(CacheConfig::new(0, 2).validate().is_err());
        assert!(CacheConfig::new(500, 2).validate().is_err());
        assert!(CacheConfig { capacity_bytes: 512, ways: 0, line_bytes: 64 }.validate().is_err());
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        let line = CacheLine::new(10);
        assert!(!c.access(line, false).hit);
        assert!(c.access(line, false).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines mapping to set 0: indices 0, 4, 8 (4 sets).
        c.access(CacheLine::new(0), false);
        c.access(CacheLine::new(4), false);
        c.access(CacheLine::new(0), false); // refresh 0; LRU is now 4
        c.access(CacheLine::new(8), false); // evicts 4
        assert!(c.access(CacheLine::new(0), false).hit, "0 should survive");
        assert!(!c.access(CacheLine::new(4), false).hit, "4 was evicted");
    }

    #[test]
    fn dirty_eviction_surfaces_writeback() {
        let mut c = tiny();
        c.access(CacheLine::new(0), true); // dirty
        c.access(CacheLine::new(4), false);
        let out = c.access(CacheLine::new(8), false); // evicts 0 (LRU, dirty)
        assert_eq!(out.writeback, Some(CacheLine::new(0)));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = tiny();
        c.access(CacheLine::new(0), false);
        c.access(CacheLine::new(4), false);
        let out = c.access(CacheLine::new(8), false);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(CacheLine::new(0), false); // clean fill
        c.access(CacheLine::new(0), true); // write hit dirties it
        c.access(CacheLine::new(4), false);
        let out = c.access(CacheLine::new(8), false);
        assert_eq!(out.writeback, Some(CacheLine::new(0)));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.access(CacheLine::new(0), true);
        assert!(c.invalidate(CacheLine::new(0)), "was dirty");
        assert!(!c.access(CacheLine::new(0), false).hit);
        assert!(!c.invalidate(CacheLine::new(99)), "absent line");
    }

    #[test]
    fn reset_clears_all() {
        let mut c = tiny();
        c.access(CacheLine::new(3), false);
        c.reset();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn writeback_reconstructs_full_line_address() {
        // 4 sets → set bits = 2. Line 0b1101 = set 1, tag 3.
        let mut c = tiny();
        let line = CacheLine::new(0b1101);
        c.access(line, true);
        // Fill the same set with two more lines to force eviction.
        c.access(CacheLine::new(0b0101), false);
        let out = c.access(CacheLine::new(0b1001), false);
        assert_eq!(out.writeback, Some(line), "victim address must round-trip");
    }

    #[test]
    fn tag_zero_is_a_real_line() {
        let mut c = tiny();
        // Line 0 has tag 0: its key must still be distinguishable from
        // an empty way.
        assert!(!c.access(CacheLine::new(0), false).hit);
        assert!(c.access(CacheLine::new(0), false).hit);
        assert!(!c.invalidate(CacheLine::new(0)), "clean line");
        assert!(!c.access(CacheLine::new(0), false).hit, "gone after invalidate");
    }

    #[test]
    fn miss_ratio() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_ratio(), 0.0);
        c.access(CacheLine::new(1), false);
        c.access(CacheLine::new(1), false);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
        let _ = AccessKind::Read; // silence unused-import lint paths in some cfgs
    }
}
