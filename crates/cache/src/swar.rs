//! Branchless word-level (SWAR) way-set scans shared by the cache and
//! TLB models.
//!
//! Both structures fuse validity and payload into one key word per way
//! (`1 << 63 | tag`), stored contiguously per set, so a whole-way match
//! is one `u64` compare. The scans here turn the per-way early-exit
//! loops into fixed-width branch-free kernels: every way of the set is
//! compared unconditionally (broadcast key XOR + zero-word detection,
//! the word-wide form of the classic SWAR `haszero` trick) and the
//! result folds into a bitmask reduced with `trailing_zeros`. With the
//! way count known at monomorphisation time the compiler unrolls the
//! loop fully and autovectorises it — no external SIMD crates, no
//! `unsafe`.
//!
//! Invariants the callers guarantee (documented in
//! ARCHITECTURE.md § SWAR kernels):
//!
//! - bit 63 of a key word is the validity flag; payloads never reach it,
//!   so an invalid way can never equal a probe key;
//! - at most one way of a set matches a given key (fills never duplicate
//!   a resident tag), so "first match" and "any match" coincide;
//! - way counts are fixed per structure; common geometries (2/4/8/16
//!   ways) get dedicated monomorphic kernels, anything else takes the
//!   variable-width fallback, which is scan-equivalent.

/// Validity flag of a key word (bit 63), shared with the callers'
/// key-lane layout.
pub(crate) const KEY_VALID: u64 = 1 << 63;

/// `1` when `x != 0`, `0` when `x == 0`, without a branch: for any
/// non-zero `x`, `x | -x` has the top bit set (two's complement).
#[inline(always)]
fn nonzero(x: u64) -> u32 {
    ((x | x.wrapping_neg()) >> 63) as u32
}

/// Fixed-width match scan: bit `i` of the result is set iff
/// `keys[i] == key`.
#[inline(always)]
fn eq_mask<const N: usize>(keys: &[u64; N], key: u64) -> u32 {
    let mut mask = 0u32;
    for (i, k) in keys.iter().enumerate() {
        mask |= (nonzero(k ^ key) ^ 1) << i;
    }
    mask
}

/// Fixed-width validity scan: bit `i` set iff way `i` is *invalid*.
#[inline(always)]
fn invalid_mask<const N: usize>(keys: &[u64; N]) -> u32 {
    let mut mask = 0u32;
    for (i, k) in keys.iter().enumerate() {
        mask |= (((k >> 63) as u32) ^ 1) << i;
    }
    mask
}

#[inline(always)]
fn hit_n<const N: usize>(keys: &[u64], key: u64) -> Option<usize> {
    let keys: &[u64; N] = keys.try_into().expect("way-set slice width");
    let mask = eq_mask(keys, key);
    if mask == 0 {
        None
    } else {
        Some(mask.trailing_zeros() as usize)
    }
}

/// Scans one way-set's key lane for `key`; returns the matching way.
///
/// `keys` must be exactly the set's `ways` words. Equivalent to
/// `keys.iter().position(|k| *k == key)` — the monomorphic widths just
/// run it branch-free over the whole set.
#[inline(always)]
pub(crate) fn scan_hit(keys: &[u64], key: u64) -> Option<usize> {
    match keys.len() {
        2 => hit_n::<2>(keys, key),
        4 => hit_n::<4>(keys, key),
        8 => hit_n::<8>(keys, key),
        16 => hit_n::<16>(keys, key),
        _ => keys.iter().position(|k| *k == key),
    }
}

#[inline(always)]
fn scan_set_n<const N: usize>(keys: &[u64], key: u64) -> (Option<usize>, u32) {
    let keys: &[u64; N] = keys.try_into().expect("way-set slice width");
    let mut hit = 0u32;
    let mut invalid = 0u32;
    for (i, k) in keys.iter().enumerate() {
        hit |= (nonzero(k ^ key) ^ 1) << i;
        invalid |= (((k >> 63) as u32) ^ 1) << i;
    }
    let way = if hit == 0 { None } else { Some(hit.trailing_zeros() as usize) };
    (way, invalid)
}

/// One pass over a way-set's key lane producing both probe results a
/// fused probe-or-fill needs: the matching way (if any) and the
/// invalid-way bitmask for victim selection. Equivalent to running
/// [`scan_hit`] and collecting `!(keys[i] >> 63)` bits separately, in a
/// single sweep of the lane.
#[inline(always)]
pub(crate) fn scan_set(keys: &[u64], key: u64) -> (Option<usize>, u32) {
    match keys.len() {
        2 => scan_set_n::<2>(keys, key),
        4 => scan_set_n::<4>(keys, key),
        8 => scan_set_n::<8>(keys, key),
        16 => scan_set_n::<16>(keys, key),
        _ => {
            let mut invalid = 0u32;
            let mut way = None;
            for (i, k) in keys.iter().enumerate() {
                if *k == key && way.is_none() {
                    way = Some(i);
                }
                if k & KEY_VALID == 0 {
                    invalid |= 1 << i;
                }
            }
            (way, invalid)
        }
    }
}

#[inline(always)]
fn lru_n<const N: usize>(stamps: &[u64], stamp_mask: u64) -> usize {
    let stamps: &[u64; N] = stamps.try_into().expect("way-set slice width");
    let mut victim = 0usize;
    let mut best = stamps[0] & stamp_mask;
    for (i, s) in stamps.iter().enumerate().skip(1) {
        let s = s & stamp_mask;
        let take = s < best;
        victim = if take { i } else { victim };
        best = if take { s } else { best };
    }
    victim
}

/// True-LRU way of a set whose ways are all valid: minimum masked
/// stamp, earliest index on ties (the strict-less scan of
/// [`select_victim`] without the invalid-way pre-pass, for callers that
/// already have the invalid mask from [`scan_set`]).
#[inline(always)]
pub(crate) fn lru_way(stamps: &[u64], stamp_mask: u64) -> usize {
    match stamps.len() {
        2 => lru_n::<2>(stamps, stamp_mask),
        4 => lru_n::<4>(stamps, stamp_mask),
        8 => lru_n::<8>(stamps, stamp_mask),
        16 => lru_n::<16>(stamps, stamp_mask),
        _ => {
            let mut victim = 0usize;
            let mut best = u64::MAX;
            for (i, s) in stamps.iter().enumerate() {
                let s = s & stamp_mask;
                if s < best {
                    best = s;
                    victim = i;
                }
            }
            victim
        }
    }
}

#[inline(always)]
fn victim_n<const N: usize>(keys: &[u64], stamps: &[u64], stamp_mask: u64) -> usize {
    let keys: &[u64; N] = keys.try_into().expect("way-set slice width");
    let stamps: &[u64; N] = stamps.try_into().expect("way-set slice width");
    let invalid = invalid_mask(keys);
    if invalid != 0 {
        return invalid.trailing_zeros() as usize;
    }
    // True-LRU with the reference path's tie-break: strict less, so the
    // earliest way wins among equal stamps.
    let mut victim = 0usize;
    let mut best = stamps[0] & stamp_mask;
    for (i, s) in stamps.iter().enumerate().skip(1) {
        let s = s & stamp_mask;
        let take = s < best;
        victim = if take { i } else { victim };
        best = if take { s } else { best };
    }
    victim
}

/// Picks the fill victim of one way-set: the first invalid way, else the
/// true-LRU way (minimum `stamps[i] & stamp_mask`, earliest index on
/// ties).
///
/// `keys` and `stamps` must be the same set's parallel lanes.
#[inline(always)]
pub(crate) fn select_victim(keys: &[u64], stamps: &[u64], stamp_mask: u64) -> usize {
    match keys.len() {
        2 => victim_n::<2>(keys, stamps, stamp_mask),
        4 => victim_n::<4>(keys, stamps, stamp_mask),
        8 => victim_n::<8>(keys, stamps, stamp_mask),
        16 => victim_n::<16>(keys, stamps, stamp_mask),
        _ => {
            let mut victim = 0usize;
            let mut best = u64::MAX;
            for (i, k) in keys.iter().enumerate() {
                if k & KEY_VALID == 0 {
                    return i;
                }
                let s = stamps[i] & stamp_mask;
                if s < best {
                    best = s;
                    victim = i;
                }
            }
            victim
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementations the kernels must agree with, at every
    /// width (the monomorphic ones and the fallback).
    fn ref_hit(keys: &[u64], key: u64) -> Option<usize> {
        keys.iter().position(|k| *k == key)
    }

    fn ref_victim(keys: &[u64], stamps: &[u64], stamp_mask: u64) -> usize {
        let mut victim = 0;
        let mut best = u64::MAX;
        for (i, k) in keys.iter().enumerate() {
            if k & KEY_VALID == 0 {
                return i;
            }
            let s = stamps[i] & stamp_mask;
            if s < best {
                best = s;
                victim = i;
            }
        }
        victim
    }

    #[test]
    fn matches_reference_at_every_width() {
        // Deterministic pseudo-random fill (splitmix64).
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for ways in [2usize, 3, 4, 6, 8, 16] {
            for trial in 0..200 {
                let mut keys: Vec<u64> = (0..ways)
                    .map(|_| {
                        let tag = next() % 64;
                        if next() % 4 == 0 {
                            tag // invalid way
                        } else {
                            KEY_VALID | tag
                        }
                    })
                    .collect();
                let stamps: Vec<u64> = (0..ways).map(|_| next() % 8).collect();
                // Sometimes plant a guaranteed match.
                let probe = if trial % 2 == 0 {
                    keys[(next() as usize) % ways]
                } else {
                    KEY_VALID | (next() % 64)
                };
                // Fills never duplicate a resident tag; dedup to honour
                // the at-most-one-match invariant.
                for i in 1..ways {
                    while keys[..i].contains(&keys[i]) {
                        keys[i] = keys[i].wrapping_add(1) | (keys[i] & KEY_VALID);
                    }
                }
                assert_eq!(scan_hit(&keys, probe), ref_hit(&keys, probe), "{ways} ways");
                assert_eq!(
                    select_victim(&keys, &stamps, u64::MAX),
                    ref_victim(&keys, &stamps, u64::MAX),
                    "{ways} ways keys={keys:?} stamps={stamps:?}"
                );
            }
        }
    }

    #[test]
    fn lru_tie_break_takes_earliest_way() {
        let keys = [KEY_VALID | 1, KEY_VALID | 2, KEY_VALID | 3, KEY_VALID | 4];
        assert_eq!(select_victim(&keys, &[5, 5, 5, 5], u64::MAX), 0);
        assert_eq!(select_victim(&keys, &[7, 5, 5, 9], u64::MAX), 1);
    }

    #[test]
    fn first_invalid_way_wins_over_lru() {
        let keys = [KEY_VALID | 1, 0, KEY_VALID | 3, 0];
        assert_eq!(select_victim(&keys, &[0, 9, 9, 9], u64::MAX), 1);
    }

    #[test]
    fn stamp_mask_strips_flag_bits() {
        let keys = [KEY_VALID | 1, KEY_VALID | 2];
        // High flag bit on way 0 must not make it look recent.
        let stamps = [(1 << 62) | 3, 4];
        assert_eq!(select_victim(&keys, &stamps, (1 << 62) - 1), 0);
    }
}
