//! Property-based tests for the cache hierarchy and TLB.

use neomem_cache::{CacheConfig, CacheHierarchy, HierarchyConfig, SetAssocCache, Tlb, TlbConfig};
use neomem_types::{AccessKind, CacheLine, VirtPage};
use proptest::prelude::*;

fn tiny_hierarchy() -> CacheHierarchy {
    CacheHierarchy::new(HierarchyConfig::tiny())
}

proptest! {
    // Fixed case count and no failure-persistence files: runs are
    // deterministic and CI-reproducible.
    #![proptest_config(ProptestConfig {
        cases: 64,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]
    /// A cache never holds more lines than its capacity, regardless of
    /// the access pattern.
    #[test]
    fn capacity_is_never_exceeded(lines in prop::collection::vec(0u64..10_000, 1..2000)) {
        let config = CacheConfig::new(2 << 10, 4); // 32 lines
        let mut cache = SetAssocCache::new(config);
        for &l in &lines {
            cache.access(CacheLine::new(l), false);
        }
        prop_assert!(cache.resident_lines() as u64 <= config.capacity_bytes / config.line_bytes);
    }

    /// Re-accessing a line immediately after it was touched always hits
    /// (temporal locality is never destroyed by the bookkeeping).
    #[test]
    fn immediate_reuse_hits(lines in prop::collection::vec(0u64..100_000, 1..500)) {
        let mut cache = SetAssocCache::new(CacheConfig::new(4 << 10, 8));
        for &l in &lines {
            cache.access(CacheLine::new(l), false);
            prop_assert!(cache.access(CacheLine::new(l), false).hit, "line {} must hit", l);
        }
    }

    /// Hit + miss counters account for every access.
    #[test]
    fn counters_conserve_accesses(lines in prop::collection::vec(0u64..4096, 0..3000)) {
        let mut hier = tiny_hierarchy();
        for &l in &lines {
            hier.access(CacheLine::new(l), AccessKind::Read);
        }
        let stats = hier.stats();
        prop_assert_eq!(stats.accesses, lines.len() as u64);
        prop_assert_eq!(stats.l1.hits + stats.l1.misses, lines.len() as u64);
        prop_assert!(stats.llc_misses <= lines.len() as u64);
    }

    /// Every writeback the hierarchy emits is a line that was written
    /// at some point (clean data never generates memory writes).
    #[test]
    fn writebacks_only_for_written_lines(
        ops in prop::collection::vec((0u64..512, prop::bool::ANY), 1..3000),
    ) {
        let mut hier = tiny_hierarchy();
        let mut written = std::collections::HashSet::new();
        for &(line, is_write) in &ops {
            if is_write {
                written.insert(line);
            }
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            let out = hier.access(CacheLine::new(line), kind);
            if let Some(wb) = out.traffic.writeback {
                prop_assert!(
                    written.contains(&wb.index()),
                    "writeback of never-written line {}",
                    wb.index()
                );
            }
        }
    }

    /// The memory-traffic invariant: a fill is reported exactly when
    /// the access misses all three levels.
    #[test]
    fn fill_iff_llc_miss(lines in prop::collection::vec(0u64..2048, 1..2000)) {
        let mut hier = tiny_hierarchy();
        for &l in &lines {
            let out = hier.access(CacheLine::new(l), AccessKind::Read);
            prop_assert_eq!(out.level.is_llc_miss(), out.traffic.fill.is_some());
        }
    }

    /// TLB counters conserve accesses, and a shot-down translation
    /// always misses on its next access.
    #[test]
    fn tlb_conservation_and_shootdown(
        pages in prop::collection::vec(0u64..256, 1..1000),
        victim in 0u64..256,
    ) {
        let mut tlb = Tlb::new(TlbConfig::tiny());
        for &p in &pages {
            tlb.access(VirtPage::new(p));
        }
        let stats = tlb.stats();
        prop_assert_eq!(stats.hits + stats.misses, pages.len() as u64);
        let was_resident = tlb.shootdown(VirtPage::new(victim));
        let hit_after = tlb.access(VirtPage::new(victim));
        prop_assert!(!hit_after, "victim must miss after shootdown");
        // And the shootdown return value reflects prior residency: if it
        // claimed residency, the page had indeed been touched.
        if was_resident {
            prop_assert!(pages.contains(&victim));
        }
    }

    /// Cache behaviour is deterministic: identical streams produce
    /// identical statistics.
    #[test]
    fn deterministic_stats(lines in prop::collection::vec(0u64..4096, 0..1500)) {
        let mut a = tiny_hierarchy();
        let mut b = tiny_hierarchy();
        for &l in &lines {
            a.access(CacheLine::new(l), AccessKind::Write);
            b.access(CacheLine::new(l), AccessKind::Write);
        }
        prop_assert_eq!(a.stats(), b.stats());
    }
}
