//! The campaign runner's headline guarantee: a grid run serialises to
//! byte-identical JSON at any thread count.

use neomem::prelude::*;
use neomem_runner::{ExperimentGrid, SeedMode};

fn grid() -> ExperimentGrid {
    ExperimentGrid::new("determinism")
        .workloads([WorkloadKind::Gups, WorkloadKind::Silo])
        .policies([PolicyKind::NeoMem, PolicyKind::FirstTouch])
        .rss_pages(1024)
        .budgets([20_000])
        .seeds([2024])
}

#[test]
fn grid_json_is_byte_identical_across_thread_counts() {
    let sequential = grid().run(1).expect("grid runs").to_json().render_pretty();
    let parallel = grid().run(4).expect("grid runs").to_json().render_pretty();
    assert_eq!(sequential, parallel, "thread count leaked into results");
}

#[test]
fn per_cell_seed_mode_is_also_thread_count_invariant() {
    let grid = || grid().seed_mode(SeedMode::PerCell);
    let sequential = grid().run(1).expect("grid runs").to_json().render();
    let parallel = grid().run(3).expect("grid runs").to_json().render();
    assert_eq!(sequential, parallel);
}
