//! [`RunReport`] → JSON serialisation.

use neomem::prelude::RunReport;

use crate::json::Json;

/// The flat metrics of a run as an ordered JSON object.
///
/// Every value is a simulated (virtual-clock) quantity, so the object
/// is byte-identical across hosts and thread counts.
pub fn metrics_json(report: &RunReport) -> Json {
    Json::Obj(
        report.scalar_metrics().into_iter().map(|(k, v)| (k.to_string(), Json::U64(v))).collect(),
    )
}

/// A standalone run record: workload + policy labels and the metrics.
pub fn report_json(report: &RunReport) -> Json {
    Json::obj([
        ("workload", Json::from(report.workload.as_str())),
        ("policy", Json::from(report.policy.as_str())),
        ("metrics", metrics_json(report)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use neomem::prelude::*;

    #[test]
    fn metrics_include_runtime_and_counters() {
        let report = Experiment::builder()
            .workload(WorkloadKind::Gups)
            .policy(PolicyKind::FirstTouch)
            .rss_pages(512)
            .accesses(5_000)
            .build()
            .expect("valid experiment")
            .run();
        let json = report_json(&report);
        assert_eq!(json.get("workload").and_then(Json::as_str), Some("GUPS"));
        let metrics = json.get("metrics").expect("metrics object");
        assert!(metrics.get("runtime_ns").and_then(Json::as_u64).unwrap() > 0);
        assert!(metrics.get("accesses").and_then(Json::as_u64).unwrap() >= 5_000);
        for key in ["llc_misses", "promotions", "tlb_misses", "profiling_overhead_ns"] {
            assert!(metrics.get(key).is_some(), "missing metric {key}");
        }
    }
}
