//! The deterministic worker pool.
//!
//! Cells are pulled from a shared atomic cursor and their results are
//! written back into the slot matching their index, so the output order
//! — and therefore any serialisation of it — is a pure function of the
//! input, never of thread scheduling. A panicking cell propagates out
//! of [`run_indexed`] when the scope joins its workers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a requested thread count: `0` means "all available cores".
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Maps `f` over `cells` on `threads` workers, returning results in
/// input order regardless of scheduling.
///
/// `threads == 0` uses all available cores; a single thread (or a
/// single cell) degrades to a plain sequential map with no pool
/// overhead.
pub fn run_indexed<C, T, F>(cells: &[C], threads: usize, f: F) -> Vec<T>
where
    C: Sync,
    T: Send,
    F: Fn(usize, &C) -> T + Sync,
{
    let threads = effective_threads(threads).min(cells.len().max(1));
    if threads <= 1 {
        return cells.iter().enumerate().map(|(i, c)| f(i, c)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let result = f(i, &cells[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every cell index was claimed and completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_input_order_at_any_thread_count() {
        let cells: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = cells.iter().map(|c| c * 3).collect();
        for threads in [1, 2, 4, 16] {
            let got = run_indexed(&cells, threads, |_, c| c * 3);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn passes_cell_indices() {
        let cells = ["a", "b", "c"];
        let got = run_indexed(&cells, 2, |i, c| format!("{i}{c}"));
        assert_eq!(got, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn runs_every_cell_exactly_once() {
        let count = AtomicU64::new(0);
        let cells: Vec<u32> = (0..64).collect();
        let _ = run_indexed(&cells, 8, |_, _| count.fetch_add(1, Ordering::Relaxed));
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u64> = run_indexed(&[] as &[u64], 4, |_, c| *c);
        assert!(got.is_empty());
    }

    #[test]
    fn effective_threads_resolves_zero_to_cores() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }
}
