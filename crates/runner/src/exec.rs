//! The deterministic worker pool.
//!
//! Cells are pulled from a shared atomic cursor and their results are
//! written back into the slot matching their index, so the output order
//! — and therefore any serialisation of it — is a pure function of the
//! input, never of thread scheduling. A panicking cell is caught at the
//! call site and re-raised on the main thread with the cell's label and
//! the original panic payload, so a failure names the cell that caused
//! it instead of surfacing as an anonymous poisoned slot.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Resolves a requested thread count: `0` means "all available cores".
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Environment variable configuring the slow-cell watchdog: a cell
/// whose wall-clock time exceeds this multiple of the median completed
/// cell gets a stderr warning naming it. `0` disables the watchdog;
/// unset uses [`WATCHDOG_DEFAULT_MULT`].
pub const WATCHDOG_ENV: &str = "NEOMEM_WATCHDOG_MULT";

/// Default watchdog multiple over the median completed-cell time.
pub const WATCHDOG_DEFAULT_MULT: u32 = 8;

/// Completed cells required before the watchdog trusts its median.
const WATCHDOG_MIN_SAMPLES: usize = 4;

/// Flags cells that run far longer than their siblings — a stuck
/// workload, a pathological parameter point, a machine under memory
/// pressure. Purely observational: it writes to stderr only and never
/// into results, so result JSON stays byte-identical with or without
/// it.
struct Watchdog {
    mult: u32,
    durations: Mutex<Vec<Duration>>,
}

impl Watchdog {
    fn new(mult: u32) -> Option<Self> {
        (mult > 0).then(|| Watchdog { mult, durations: Mutex::new(Vec::new()) })
    }

    /// Reads [`WATCHDOG_ENV`]: `0` disables, unparsable values keep
    /// the default (a broken knob shouldn't kill the observability it
    /// configures).
    fn from_env() -> Option<Self> {
        let value = std::env::var(WATCHDOG_ENV).ok();
        Self::new(effective_mult(value.as_deref()))
    }

    /// Records one completed cell and returns the warning it earned,
    /// if any. The median is taken over cells completed *before* this
    /// one, so early long-running cells can't vote themselves normal.
    fn observe(&self, label: &str, elapsed: Duration) -> Option<String> {
        let mut durations = self.durations.lock().expect("watchdog lock poisoned");
        let warning = if durations.len() >= WATCHDOG_MIN_SAMPLES {
            let mut sorted = durations.clone();
            sorted.sort_unstable();
            let median = sorted[sorted.len() / 2];
            (!median.is_zero() && elapsed > median * self.mult).then(|| {
                format!(
                    "[watchdog] cell {label} took {elapsed:.1?}, more than {}x the \
                     {median:.1?} median of {} completed cells",
                    self.mult,
                    durations.len()
                )
            })
        } else {
            None
        };
        durations.push(elapsed);
        warning
    }

    /// [`Watchdog::observe`], reporting straight to stderr.
    fn report(&self, label: &str, elapsed: Duration) {
        if let Some(warning) = self.observe(label, elapsed) {
            eprintln!("{warning}");
        }
    }
}

/// Maps a raw [`WATCHDOG_ENV`] value to the effective multiple: unset
/// or unparsable (garbage, negatives, floats) keeps the default, `0`
/// disables. Split from the env read so the mapping is testable
/// without process-global state.
fn effective_mult(value: Option<&str>) -> u32 {
    value.and_then(|v| v.trim().parse().ok()).unwrap_or(WATCHDOG_DEFAULT_MULT)
}

/// The outcome of one cell: its value, or the payload it panicked with.
type CellResult<T> = Result<T, Box<dyn Any + Send>>;

/// Extracts the human-readable text of a panic payload. `panic!` with a
/// message produces a `&'static str` or `String` payload; anything else
/// (a `panic_any` value) has no text to recover.
fn payload_text(payload: &(dyn Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "<non-string panic payload>"
    }
}

/// Maps `f` over `cells` on `threads` workers, returning results in
/// input order regardless of scheduling.
///
/// `threads == 0` uses all available cores; a single thread (or a
/// single cell) degrades to a plain sequential map with no pool
/// overhead. A panicking cell re-raises as `cell #<index> panicked:
/// <payload>`; use [`run_labeled`] to name cells more usefully.
pub fn run_indexed<C, T, F>(cells: &[C], threads: usize, f: F) -> Vec<T>
where
    C: Sync,
    T: Send,
    F: Fn(usize, &C) -> T + Sync,
{
    run_labeled(cells, threads, |i, _| format!("#{i}"), f)
}

/// [`run_indexed`] with caller-supplied cell identities: when a cell
/// panics, the panic is re-raised on the calling thread as
/// `cell <label> panicked: <original payload>`.
///
/// Remaining cells still run to completion first — the pool drains
/// before the failure propagates, and the *first* panicking cell in
/// input order (not completion order) is the one reported.
pub fn run_labeled<C, T, F, L>(cells: &[C], threads: usize, label: L, f: F) -> Vec<T>
where
    C: Sync,
    T: Send,
    F: Fn(usize, &C) -> T + Sync,
    L: Fn(usize, &C) -> String + Sync,
{
    let finish = |i: usize, result: CellResult<T>| -> T {
        match result {
            Ok(value) => value,
            Err(payload) => panic!(
                "cell {} panicked: {}",
                label(i, &cells[i]),
                payload_text(payload.as_ref())
            ),
        }
    };
    let watchdog = Watchdog::from_env();
    let threads = effective_threads(threads).min(cells.len().max(1));
    if threads <= 1 {
        return cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let start = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(|| f(i, c)));
                if let Some(watchdog) = &watchdog {
                    watchdog.report(&label(i, c), start.elapsed());
                }
                finish(i, result)
            })
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CellResult<T>>>> =
        cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let start = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(|| f(i, &cells[i])));
                if let Some(watchdog) = &watchdog {
                    watchdog.report(&label(i, &cells[i]), start.elapsed());
                }
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            let result = slot
                .into_inner()
                .expect("result slot poisoned")
                .expect("every cell index was claimed and completed");
            finish(i, result)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_input_order_at_any_thread_count() {
        let cells: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = cells.iter().map(|c| c * 3).collect();
        for threads in [1, 2, 4, 16] {
            let got = run_indexed(&cells, threads, |_, c| c * 3);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn passes_cell_indices() {
        let cells = ["a", "b", "c"];
        let got = run_indexed(&cells, 2, |i, c| format!("{i}{c}"));
        assert_eq!(got, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn runs_every_cell_exactly_once() {
        let count = AtomicU64::new(0);
        let cells: Vec<u32> = (0..64).collect();
        let _ = run_indexed(&cells, 8, |_, _| count.fetch_add(1, Ordering::Relaxed));
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u64> = run_indexed(&[] as &[u64], 4, |_, c| *c);
        assert!(got.is_empty());
    }

    #[test]
    fn effective_threads_resolves_zero_to_cores() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn panicking_cell_reports_its_label_and_payload() {
        for threads in [1, 4] {
            let cells: Vec<u64> = (0..8).collect();
            let payload = catch_unwind(AssertUnwindSafe(|| {
                run_labeled(
                    &cells,
                    threads,
                    |_, c| format!("grid::cell-{c}"),
                    |_, c| {
                        if *c == 5 {
                            panic!("boom at {c}");
                        }
                        *c
                    },
                )
            }))
            .expect_err("a panicking cell must propagate");
            let msg = payload_text(payload.as_ref());
            assert!(msg.contains("grid::cell-5"), "label missing from {msg:?}");
            assert!(msg.contains("boom at 5"), "payload missing from {msg:?}");
        }
    }

    #[test]
    fn watchdog_flags_outliers_against_the_median() {
        let watchdog = Watchdog::new(8).expect("multiple 8 enables the watchdog");
        let ms = Duration::from_millis;
        // Too few samples: even a huge cell passes silently.
        assert_eq!(watchdog.observe("grid::warmup", ms(10_000)), None);
        for _ in 0..4 {
            assert_eq!(watchdog.observe("grid::fast", ms(10)), None);
        }
        // Median is 10ms (the warmup outlier sits above it); 50ms is
        // within 8x, 100ms is over and gets named.
        assert_eq!(watchdog.observe("grid::slowish", ms(50)), None);
        let warning = watchdog.observe("grid::stuck/r4/s7", ms(100)).expect("must warn");
        assert!(warning.contains("grid::stuck/r4/s7"), "{warning}");
        assert!(warning.contains("8x"), "{warning}");
    }

    #[test]
    fn watchdog_multiple_zero_disables() {
        assert!(Watchdog::new(0).is_none());
    }

    #[test]
    fn watchdog_env_parsing_covers_garbage() {
        // Unset and every flavour of garbage keep the default: a broken
        // knob must not silently disable (or hyper-sensitise) the
        // watchdog it configures.
        for broken in [None, Some(""), Some("  "), Some("banana"), Some("-3"), Some("2.5")] {
            assert_eq!(effective_mult(broken), WATCHDOG_DEFAULT_MULT, "{broken:?}");
        }
        assert_eq!(effective_mult(Some("16")), 16);
        assert_eq!(effective_mult(Some(" 12 ")), 12, "whitespace-padded values parse");
        // `0` is the one deliberate off-switch.
        assert_eq!(effective_mult(Some("0")), 0);
        assert!(Watchdog::new(effective_mult(Some("0"))).is_none());
    }

    #[test]
    fn watchdog_needs_exactly_min_samples_before_judging() {
        // The clock is injected (observe takes the elapsed time), so
        // the boundary is exact: calls 1..=MIN_SAMPLES are recorded
        // but never judged, call MIN_SAMPLES + 1 is the first one
        // compared against a median — even when the early samples are
        // wildly slow.
        let watchdog = Watchdog::new(2).expect("multiple 2 enables the watchdog");
        let ms = Duration::from_millis;
        for i in 0..WATCHDOG_MIN_SAMPLES {
            let slow = ms(1_000 * (i as u64 + 1));
            assert_eq!(watchdog.observe(&format!("cell-{i}"), slow), None, "sample {i}");
        }
        // Median of 1s..4s is 3s; at mult 2 a 60s cell is named.
        let warning = watchdog.observe("grid::outlier", ms(60_000)).expect("must warn now");
        assert!(warning.contains("grid::outlier"), "{warning}");
    }

    #[test]
    fn watchdog_warnings_stay_on_stderr_and_out_of_results() {
        // The stderr-only guarantee: with the most trigger-happy
        // watchdog possible, pool results are still a pure function of
        // the cells — warnings go to stderr, never into the output.
        let saved = std::env::var(WATCHDOG_ENV).ok();
        std::env::set_var(WATCHDOG_ENV, "1");
        let cells: Vec<u64> = (0..12).collect();
        let got = run_labeled(
            &cells,
            4,
            |i, _| format!("stderr-only-{i}"),
            |_, c| {
                if *c == 9 {
                    // One cell far over any median its siblings set.
                    std::thread::sleep(Duration::from_millis(30));
                }
                c * 7
            },
        );
        match saved {
            Some(value) => std::env::set_var(WATCHDOG_ENV, value),
            None => std::env::remove_var(WATCHDOG_ENV),
        }
        let expected: Vec<u64> = cells.iter().map(|c| c * 7).collect();
        assert_eq!(got, expected, "watchdog must never alter results");
    }

    #[test]
    fn first_panicking_cell_in_input_order_wins() {
        let cells: Vec<u64> = (0..16).collect();
        let payload = catch_unwind(AssertUnwindSafe(|| {
            run_labeled(
                &cells,
                4,
                |i, _| format!("#{i}"),
                |_, c| {
                    if *c >= 9 {
                        panic!("cell {c} failed");
                    }
                    *c
                },
            )
        }))
        .expect_err("must panic");
        let msg = payload_text(payload.as_ref());
        assert!(msg.contains("cell #9 panicked"), "got {msg:?}");
        assert!(msg.contains("cell 9 failed"), "got {msg:?}");
    }
}
