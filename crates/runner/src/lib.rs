//! # `neomem_runner` — the parallel experiment-campaign layer
//!
//! The figure/table regeneration harness and any large parameter sweep
//! share the same needs: describe a cartesian grid of experiments, fan
//! the cells out across threads without sacrificing reproducibility,
//! and emit results a machine can diff. This crate provides exactly
//! those three pieces, with no external dependencies (the offline
//! vendor set has no serde or rayon):
//!
//! - [`ExperimentGrid`]: a sweep over workload × policy × ratio ×
//!   override × budget × seed, expanded in a fixed row-major order with
//!   per-cell seeds derived purely from grid coordinates.
//! - [`run_indexed`]: a `std::thread` worker pool whose output order is
//!   a function of the input only — serialised results are
//!   byte-identical at any thread count.
//! - [`Json`]: a hand-rolled JSON tree (serialiser + parser) behind the
//!   `target/bench-results/<name>.json` artifacts and the checked-in
//!   `BENCH_*.json` baselines.
//! - [`compare`]: the CI perf-regression gate, comparing per-cell
//!   simulated runtimes against a baseline within a tolerance band.
//!
//! ```
//! use neomem::prelude::*;
//! use neomem_runner::ExperimentGrid;
//!
//! let run = ExperimentGrid::new("demo")
//!     .workloads([WorkloadKind::Gups])
//!     .policies([PolicyKind::FirstTouch])
//!     .rss_pages(512)
//!     .budgets([5_000])
//!     .run(0)?; // 0 = all cores
//! assert!(run.report_for(WorkloadKind::Gups, PolicyKind::FirstTouch).runtime.as_nanos() > 0);
//! # Ok::<(), neomem::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compare;
mod exec;
mod grid;
pub mod registry;
mod report;

/// The JSON value model (re-exported from `neomem_types`, where it
/// moved so the simulator's snapshot subsystem can serialise through
/// it without depending on the runner).
pub use neomem::types::json;

pub use compare::{compare, Drift, GateConfig, GateReport};
pub use exec::{effective_threads, run_indexed, run_labeled};
pub use grid::{
    policy_name, replicate_seeds, splitmix64, CellRun, CorunCellSpec, CorunSections,
    ExperimentGrid, GridCell, GridRun, RunMode, ScenarioCellSpec, ScenarioSections, SeedMode,
    WarmStats,
};
pub use json::{Json, JsonError, MAX_PARSE_DEPTH};
pub use registry::Registry;
pub use report::{metrics_json, report_json};
