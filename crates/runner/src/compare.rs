//! The perf-regression gate.
//!
//! Compares two machine-readable result documents (a checked-in
//! baseline and a fresh run) cell by cell. Because every metric is
//! simulated time, drift can only come from behavioural code changes —
//! the tolerance band absorbs intentional small shifts while failing CI
//! on real regressions.

use core::fmt;

use crate::json::Json;

/// Gate parameters.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Allowed relative drift of the compared metric: a cell fails when
    /// `|current / baseline - 1| > tolerance`.
    pub tolerance: f64,
    /// The metric compared per cell.
    pub metric: &'static str,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self { tolerance: 0.10, metric: "runtime_ns" }
    }
}

/// One cell's drift measurement.
#[derive(Debug, Clone)]
pub struct Drift {
    /// Cell identity (`grid::workload/policy/...`).
    pub key: String,
    /// Baseline metric value.
    pub baseline: f64,
    /// Current metric value.
    pub current: f64,
}

impl Drift {
    /// `current / baseline`; infinite when the baseline is zero.
    pub fn ratio(&self) -> f64 {
        if self.baseline == 0.0 {
            if self.current == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.current / self.baseline
        }
    }
}

impl fmt::Display for Drift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // A zero baseline has no meaningful relative drift — spell the
        // situation out instead of printing `(+inf%)`.
        if self.baseline == 0.0 && self.current != 0.0 {
            return write!(f, "{}: baseline 0 -> current {} (new)", self.key, self.current);
        }
        write!(
            f,
            "{}: baseline {} -> current {} ({:+.2}%)",
            self.key,
            self.baseline,
            self.current,
            (self.ratio() - 1.0) * 100.0
        )
    }
}

/// The gate verdict.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Number of cells compared.
    pub checked: usize,
    /// Cells outside the tolerance band.
    pub failures: Vec<Drift>,
    /// Structural problems: missing cells, unreadable documents.
    pub structural: Vec<String>,
    /// The largest observed |ratio − 1| across all compared cells.
    pub max_drift: f64,
}

impl GateReport {
    /// `true` when every cell is inside the band and the documents are
    /// structurally compatible.
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && self.structural.is_empty()
    }

    /// A multi-line human summary suitable for CI logs.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "regression gate: {} cells checked, max drift {:.2}%, {} failures, {} structural issues\n",
            self.checked,
            self.max_drift * 100.0,
            self.failures.len(),
            self.structural.len()
        );
        for issue in &self.structural {
            out.push_str(&format!("  structural: {issue}\n"));
        }
        for drift in &self.failures {
            out.push_str(&format!("  drift: {drift}\n"));
        }
        if self.passed() {
            out.push_str("  PASS\n");
        } else {
            out.push_str("  FAIL\n");
        }
        out
    }
}

/// Extracts `(key, metric)` pairs from a result document.
///
/// Understands the `neomem-bench` schema: a top-level `"grids"` array
/// of grid objects, and/or a top-level `"cells"` array. Cells missing
/// the metric are reported through `problems`.
fn collect_cells(doc: &Json, metric: &str, problems: &mut Vec<String>) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut scan_cells = |grid_name: &str, cells: &[Json], out: &mut Vec<(String, f64)>| {
        for (i, cell) in cells.iter().enumerate() {
            let field = |key: &str| {
                cell.get(key)
                    .map(|v| match v {
                        Json::Str(s) => s.clone(),
                        other => other.render(),
                    })
                    .unwrap_or_default()
            };
            let key = format!(
                "{grid_name}::{}/{}/r{}/a{}/s{}/{}",
                field("workload"),
                field("policy"),
                field("ratio"),
                field("accesses"),
                field("seed"),
                field("label"),
            );
            match cell.get("metrics").and_then(|m| m.get(metric)).and_then(Json::as_f64) {
                Some(value) => out.push((key, value)),
                None => problems.push(format!(
                    "{grid_name} cell {i} ({key}) has no metric {metric:?}"
                )),
            }
        }
    };
    if let Some(grids) = doc.get("grids").and_then(Json::as_arr) {
        for grid in grids {
            let name = grid.get("name").and_then(Json::as_str).unwrap_or("<unnamed>");
            if let Some(cells) = grid.get("cells").and_then(Json::as_arr) {
                scan_cells(name, cells, &mut out);
            }
        }
    }
    if let Some(cells) = doc.get("cells").and_then(Json::as_arr) {
        scan_cells(doc.get("name").and_then(Json::as_str).unwrap_or("<root>"), cells, &mut out);
    }
    out
}

/// Compares `current` against `baseline` under `config`.
pub fn compare(baseline: &Json, current: &Json, config: &GateConfig) -> GateReport {
    let mut report = GateReport::default();
    let base_cells = collect_cells(baseline, config.metric, &mut report.structural);
    let cur_cells = collect_cells(current, config.metric, &mut report.structural);
    if base_cells.is_empty() {
        report.structural.push("baseline document contains no comparable cells".to_string());
        return report;
    }
    for (key, _) in &cur_cells {
        if !base_cells.iter().any(|(k, _)| k == key) {
            report.structural.push(format!("cell {key} missing from baseline"));
        }
    }
    for (key, base_value) in &base_cells {
        let Some((_, cur_value)) = cur_cells.iter().find(|(k, _)| k == key) else {
            report.structural.push(format!("cell {key} missing from current results"));
            continue;
        };
        // A NaN/∞ metric means the producing code is broken — a drift
        // comparison against it would silently pass (NaN comparisons
        // are false), so flag it structurally instead.
        if !base_value.is_finite() || !cur_value.is_finite() {
            report.structural.push(format!(
                "cell {key}: non-finite metric {:?} (baseline {base_value}, current {cur_value})",
                config.metric
            ));
            continue;
        }
        report.checked += 1;
        let drift = Drift { key: key.clone(), baseline: *base_value, current: *cur_value };
        let off_by = (drift.ratio() - 1.0).abs();
        if off_by > report.max_drift {
            report.max_drift = off_by;
        }
        if off_by > config.tolerance {
            report.failures.push(drift);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(runtimes: &[(&str, u64)]) -> Json {
        Json::obj([(
            "grids",
            Json::Arr(vec![Json::obj([
                ("name", Json::from("g")),
                (
                    "cells",
                    Json::Arr(
                        runtimes
                            .iter()
                            .map(|(policy, rt)| {
                                Json::obj([
                                    ("workload", Json::from("GUPS")),
                                    ("policy", Json::from(*policy)),
                                    ("ratio", Json::U64(2)),
                                    ("label", Json::from("")),
                                    ("accesses", Json::U64(1000)),
                                    ("seed", Json::U64(2024)),
                                    ("metrics", Json::obj([("runtime_ns", Json::U64(*rt))])),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])]),
        )])
    }

    #[test]
    fn identical_documents_pass() {
        let a = doc(&[("NeoMem", 100), ("PEBS", 150)]);
        let report = compare(&a, &a, &GateConfig::default());
        assert!(report.passed(), "{}", report.summary());
        assert_eq!(report.checked, 2);
        assert_eq!(report.max_drift, 0.0);
    }

    #[test]
    fn drift_inside_band_passes_and_is_reported() {
        let base = doc(&[("NeoMem", 100)]);
        let cur = doc(&[("NeoMem", 105)]);
        let report = compare(&base, &cur, &GateConfig::default());
        assert!(report.passed());
        assert!((report.max_drift - 0.05).abs() < 1e-12);
    }

    #[test]
    fn drift_outside_band_fails() {
        let base = doc(&[("NeoMem", 100), ("PEBS", 200)]);
        let cur = doc(&[("NeoMem", 125), ("PEBS", 200)]);
        let report = compare(&base, &cur, &GateConfig::default());
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].key.contains("NeoMem"));
        assert!(report.summary().contains("FAIL"));
    }

    #[test]
    fn missing_and_extra_cells_are_structural_failures() {
        let base = doc(&[("NeoMem", 100), ("PEBS", 200)]);
        let cur = doc(&[("NeoMem", 100), ("TPP", 300)]);
        let report = compare(&base, &cur, &GateConfig::default());
        assert!(!report.passed());
        assert_eq!(report.structural.len(), 2);
    }

    #[test]
    fn empty_baseline_is_structural_failure() {
        let empty = Json::obj([("grids", Json::Arr(vec![]))]);
        let cur = doc(&[("NeoMem", 100)]);
        let report = compare(&empty, &cur, &GateConfig::default());
        assert!(!report.passed());
    }

    #[test]
    fn zero_baseline_metric_handled() {
        let base = doc(&[("NeoMem", 0)]);
        let same = compare(&base, &doc(&[("NeoMem", 0)]), &GateConfig::default());
        assert!(same.passed());
        let grew = compare(&base, &doc(&[("NeoMem", 5)]), &GateConfig::default());
        assert!(!grew.passed());
    }

    fn doc_with_metric(metric: Json) -> Json {
        Json::obj([(
            "grids",
            Json::Arr(vec![Json::obj([
                ("name", Json::from("g")),
                (
                    "cells",
                    Json::Arr(vec![Json::obj([
                        ("workload", Json::from("GUPS")),
                        ("policy", Json::from("NeoMem")),
                        ("ratio", Json::U64(2)),
                        ("label", Json::from("")),
                        ("accesses", Json::U64(1000)),
                        ("seed", Json::U64(2024)),
                        ("metrics", Json::obj([("runtime_ns", metric)])),
                    ])]),
                ),
            ])]),
        )])
    }

    #[test]
    fn non_finite_metric_is_a_structural_failure() {
        let base = doc(&[("NeoMem", 100)]);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let cur = doc_with_metric(Json::F64(bad));
            let report = compare(&base, &cur, &GateConfig::default());
            assert!(!report.passed(), "non-finite current ({bad}) must fail the gate");
            assert!(
                report.structural.iter().any(|s| s.contains("non-finite")),
                "expected a non-finite structural issue, got {:?}",
                report.structural
            );
            assert_eq!(report.checked, 0, "a non-finite cell must not count as checked");
        }
        // And a poisoned baseline is caught the same way.
        let report =
            compare(&doc_with_metric(Json::F64(f64::NAN)), &base, &GateConfig::default());
        assert!(!report.passed());
    }

    #[test]
    fn zero_baseline_drift_displays_explicitly() {
        let grown = Drift { key: "g::c".to_string(), baseline: 0.0, current: 5.0 };
        assert_eq!(grown.to_string(), "g::c: baseline 0 -> current 5 (new)");
        let unchanged = Drift { key: "g::c".to_string(), baseline: 0.0, current: 0.0 };
        assert!(unchanged.to_string().ends_with("(+0.00%)"), "got {unchanged}");
    }

    #[test]
    fn zero_to_zero_drift_is_unchanged_not_new() {
        // A metric that is zero in both baseline and current (e.g.
        // cross-tenant evictions under first-touch) is *unchanged* —
        // reporting it as "(new)" would flag every quiet counter on
        // every gate run.
        let unchanged = Drift { key: "g::c".to_string(), baseline: 0.0, current: 0.0 };
        assert_eq!(unchanged.ratio(), 1.0, "0 -> 0 is a perfect match");
        assert!(!unchanged.to_string().contains("(new)"), "got {unchanged}");
        // And the gate agrees: identical all-zero documents pass.
        let report = compare(&doc(&[("NeoMem", 0)]), &doc(&[("NeoMem", 0)]), &Default::default());
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.checked, 1);
    }

    #[test]
    fn drift_ratio_covers_the_zero_baseline_edges() {
        let ratio = |baseline, current| Drift { key: String::new(), baseline, current }.ratio();
        assert_eq!(ratio(0.0, 0.0), 1.0);
        assert_eq!(ratio(0.0, 3.0), f64::INFINITY, "growth from zero is unbounded drift");
        assert_eq!(ratio(50.0, 75.0), 1.5);
        assert_eq!(ratio(4.0, 0.0), 0.0, "collapse to zero is a finite ratio");
    }

    #[test]
    fn custom_tolerance_widens_the_band() {
        let base = doc(&[("NeoMem", 100)]);
        let cur = doc(&[("NeoMem", 125)]);
        let cfg = GateConfig { tolerance: 0.30, ..Default::default() };
        assert!(compare(&base, &cur, &cfg).passed());
    }
}
