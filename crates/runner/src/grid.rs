//! Cartesian experiment grids.
//!
//! An [`ExperimentGrid`] describes a sweep over workload × ratio ×
//! policy × override × access-budget × seed, expands it into
//! [`GridCell`]s in a fixed row-major order, and runs the cells on the
//! worker pool. Per-cell seeds are a pure function of the grid
//! coordinates — never of scheduling — so a run's serialised results
//! are byte-identical at any thread count.

use neomem::prelude::*;
use neomem::Error;

use crate::exec;
use crate::json::Json;
use crate::report::metrics_json;

/// SplitMix64: a cheap, well-mixed 64-bit hash used to derive seeds.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives `n` replicate seeds from a base seed. The first replicate
/// keeps the base seed itself (so single-seed grids reproduce the
/// legacy sequential sweeps exactly); later replicates are SplitMix64
/// descendants.
pub fn replicate_seeds(base: u64, n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| if i == 0 { base } else { splitmix64(base.wrapping_add(i)) }).collect()
}

/// How a cell's workload seed is derived from its coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedMode {
    /// Every cell with the same seed-axis value shares that seed —
    /// the paper's convention (all Fig. 11 points use seed 2024).
    #[default]
    Shared,
    /// Each cell mixes the seed-axis value with its full grid
    /// coordinates through SplitMix64, decorrelating the sweep.
    PerCell,
}

/// A stable display name for a policy, distinguishing fixed-threshold
/// NeoMem variants that share a figure label.
pub fn policy_name(kind: PolicyKind) -> String {
    match kind {
        PolicyKind::NeoMemFixed(theta) => format!("NeoMem-fixed({theta})"),
        other => other.label().to_string(),
    }
}

/// A cartesian sweep description.
///
/// Cells expand workload-major, then ratio, policy, override,
/// access budget, and seed innermost.
#[derive(Debug, Clone)]
pub struct ExperimentGrid {
    name: String,
    workloads: Vec<WorkloadKind>,
    policies: Vec<PolicyKind>,
    ratios: Vec<u64>,
    overrides: Vec<(String, PolicyOverrides)>,
    budgets: Vec<u64>,
    seeds: Vec<u64>,
    seed_mode: SeedMode,
    rss_pages: u64,
    time_scale: u64,
    large_machine: bool,
    configure: Option<fn(&mut SimConfig)>,
}

impl ExperimentGrid {
    /// Starts a grid with the [`ExperimentBuilder`] defaults: GUPS ×
    /// NeoMem, ratio 1:2, 4096 pages, 500 k accesses, seed 42.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            workloads: vec![WorkloadKind::Gups],
            policies: vec![PolicyKind::NeoMem],
            ratios: vec![2],
            overrides: vec![(String::new(), PolicyOverrides::default())],
            budgets: vec![500_000],
            seeds: vec![42],
            seed_mode: SeedMode::Shared,
            rss_pages: 4096,
            time_scale: 1000,
            large_machine: false,
            configure: None,
        }
    }

    /// Sets the workload axis.
    pub fn workloads(mut self, axis: impl IntoIterator<Item = WorkloadKind>) -> Self {
        self.workloads = axis.into_iter().collect();
        self
    }

    /// Sets the policy axis.
    pub fn policies(mut self, axis: impl IntoIterator<Item = PolicyKind>) -> Self {
        self.policies = axis.into_iter().collect();
        self
    }

    /// Sets the fast:slow ratio axis (`1:r` per entry).
    pub fn ratios(mut self, axis: impl IntoIterator<Item = u64>) -> Self {
        self.ratios = axis.into_iter().collect();
        self
    }

    /// Sets a labelled policy-override axis (Fig. 15-style sweeps).
    pub fn overrides_axis(
        mut self,
        axis: impl IntoIterator<Item = (String, PolicyOverrides)>,
    ) -> Self {
        self.overrides = axis.into_iter().collect();
        self
    }

    /// Sets the access-budget axis.
    pub fn budgets(mut self, axis: impl IntoIterator<Item = u64>) -> Self {
        self.budgets = axis.into_iter().collect();
        self
    }

    /// Sets the seed axis (one replicate per seed).
    pub fn seeds(mut self, axis: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = axis.into_iter().collect();
        self
    }

    /// Selects the per-cell seed derivation.
    pub fn seed_mode(mut self, mode: SeedMode) -> Self {
        self.seed_mode = mode;
        self
    }

    /// Sets the footprint in 4 KiB pages.
    pub fn rss_pages(mut self, pages: u64) -> Self {
        self.rss_pages = pages;
        self
    }

    /// Divides the paper's daemon cadences by `scale`.
    pub fn time_scale(mut self, scale: u64) -> Self {
        self.time_scale = scale.max(1);
        self
    }

    /// Uses the full-size cache/TLB presets.
    pub fn large_machine(mut self, large: bool) -> Self {
        self.large_machine = large;
        self
    }

    /// Installs a final [`SimConfig`] hook applied to every cell.
    pub fn configure(mut self, hook: fn(&mut SimConfig)) -> Self {
        self.configure = Some(hook);
        self
    }

    /// The number of cells the grid expands to.
    pub fn len(&self) -> usize {
        self.workloads.len()
            * self.ratios.len()
            * self.policies.len()
            * self.overrides.len()
            * self.budgets.len()
            * self.seeds.len()
    }

    /// `true` when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the cartesian product into cells, in row-major order.
    pub fn cells(&self) -> Vec<GridCell> {
        let mut cells = Vec::with_capacity(self.len());
        for (wi, &workload) in self.workloads.iter().enumerate() {
            for (ri, &ratio) in self.ratios.iter().enumerate() {
                for (pi, &policy) in self.policies.iter().enumerate() {
                    for (oi, (label, overrides)) in self.overrides.iter().enumerate() {
                        for (bi, &accesses) in self.budgets.iter().enumerate() {
                            for &base_seed in &self.seeds {
                                let seed = match self.seed_mode {
                                    SeedMode::Shared => base_seed,
                                    SeedMode::PerCell => {
                                        // Chain the coordinates through the
                                        // mixer; scheduling never enters.
                                        let coords =
                                            [wi as u64, ri as u64, pi as u64, oi as u64, bi as u64];
                                        coords.iter().fold(base_seed, |acc, &c| {
                                            splitmix64(acc ^ splitmix64(c))
                                        })
                                    }
                                };
                                cells.push(GridCell {
                                    index: cells.len(),
                                    workload,
                                    policy,
                                    ratio,
                                    override_label: label.clone(),
                                    overrides: *overrides,
                                    accesses,
                                    base_seed,
                                    seed,
                                });
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    fn builder_for(&self, cell: &GridCell) -> ExperimentBuilder {
        let mut builder = Experiment::builder()
            .workload(cell.workload)
            .policy(cell.policy)
            .rss_pages(self.rss_pages)
            .ratio(cell.ratio)
            .accesses(cell.accesses)
            .seed(cell.seed)
            .time_scale(self.time_scale)
            .large_machine(self.large_machine)
            .overrides(cell.overrides);
        if let Some(hook) = self.configure {
            builder = builder.configure(hook);
        }
        builder
    }

    /// Runs every cell on `threads` workers (`0` = all cores).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any cell fails to build —
    /// validated up front, before any simulation starts.
    pub fn run(&self, threads: usize) -> Result<GridRun, Error> {
        let cells = self.cells();
        // Validate every cell before spending simulation time on any.
        for cell in &cells {
            self.builder_for(cell).build().map_err(|e| {
                Error::invalid_config(format!(
                    "grid '{}' cell {} ({} / {}): {e}",
                    self.name,
                    cell.index,
                    cell.workload.label(),
                    policy_name(cell.policy),
                ))
            })?;
        }
        let reports = exec::run_indexed(&cells, threads, |_, cell| {
            self.builder_for(cell).build().expect("cell validated above").run()
        });
        Ok(GridRun {
            name: self.name.clone(),
            rss_pages: self.rss_pages,
            time_scale: self.time_scale,
            cells: cells.into_iter().zip(reports).map(|(cell, report)| CellRun { cell, report }).collect(),
        })
    }
}

/// One point of a grid: fully resolved experiment parameters.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Position in the grid's row-major expansion.
    pub index: usize,
    /// Workload under test.
    pub workload: WorkloadKind,
    /// Tiering policy under test.
    pub policy: PolicyKind,
    /// Fast:slow capacity ratio (`1:ratio`).
    pub ratio: u64,
    /// Label of the override-axis entry (empty for the default).
    pub override_label: String,
    /// Policy parameter overrides in force.
    pub overrides: PolicyOverrides,
    /// CPU-access budget.
    pub accesses: u64,
    /// The seed-axis value this cell came from.
    pub base_seed: u64,
    /// The derived workload seed (see [`SeedMode`]).
    pub seed: u64,
}

/// A completed cell: its coordinates plus the simulation outcome.
#[derive(Debug, Clone)]
pub struct CellRun {
    /// The grid coordinates.
    pub cell: GridCell,
    /// The simulation outcome.
    pub report: RunReport,
}

/// The outcome of a full grid campaign, in cell order.
#[derive(Debug, Clone)]
pub struct GridRun {
    /// Grid name (used as the JSON `name` and in gate keys).
    pub name: String,
    /// Footprint shared by all cells.
    pub rss_pages: u64,
    /// Daemon-cadence divisor shared by all cells.
    pub time_scale: u64,
    /// Completed cells, row-major.
    pub cells: Vec<CellRun>,
}

impl GridRun {
    /// The first cell matching `pred`.
    pub fn find(&self, pred: impl Fn(&GridCell) -> bool) -> Option<&CellRun> {
        self.cells.iter().find(|run| pred(&run.cell))
    }

    /// The report of the first cell matching `pred`.
    ///
    /// # Panics
    ///
    /// Panics when no cell matches — a programming error in figure
    /// code, not a data condition.
    pub fn report_where(&self, pred: impl Fn(&GridCell) -> bool) -> &RunReport {
        &self.find(pred).expect("no grid cell matches predicate").report
    }

    /// The report for a (workload, policy) point — the common lookup.
    pub fn report_for(&self, workload: WorkloadKind, policy: PolicyKind) -> &RunReport {
        self.report_where(|c| c.workload == workload && c.policy == policy)
    }

    /// Serialises the campaign: grid header plus one record per cell
    /// (coordinates + flat metrics). Deterministic at any thread count.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("rss_pages", Json::U64(self.rss_pages)),
            ("time_scale", Json::U64(self.time_scale)),
            (
                "cells",
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|run| {
                            Json::obj([
                                ("workload", Json::from(run.cell.workload.label())),
                                ("policy", Json::from(policy_name(run.cell.policy))),
                                ("ratio", Json::U64(run.cell.ratio)),
                                ("label", Json::from(run.cell.override_label.as_str())),
                                ("accesses", Json::U64(run.cell.accesses)),
                                ("seed", Json::U64(run.cell.seed)),
                                ("metrics", metrics_json(&run.report)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_order_is_row_major_and_stable() {
        let grid = ExperimentGrid::new("order")
            .workloads([WorkloadKind::Gups, WorkloadKind::Silo])
            .ratios([2, 4])
            .policies([PolicyKind::NeoMem, PolicyKind::Pebs]);
        let cells = grid.cells();
        assert_eq!(cells.len(), 8);
        assert_eq!(grid.len(), 8);
        assert_eq!(cells[0].workload, WorkloadKind::Gups);
        assert_eq!((cells[0].ratio, cells[0].policy), (2, PolicyKind::NeoMem));
        assert_eq!((cells[1].ratio, cells[1].policy), (2, PolicyKind::Pebs));
        assert_eq!((cells[2].ratio, cells[2].policy), (4, PolicyKind::NeoMem));
        assert_eq!(cells[4].workload, WorkloadKind::Silo);
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
        }
    }

    #[test]
    fn shared_seed_mode_reproduces_legacy_seeds() {
        let cells = ExperimentGrid::new("seeds")
            .workloads([WorkloadKind::Gups, WorkloadKind::Silo])
            .seeds([2024])
            .cells();
        assert!(cells.iter().all(|c| c.seed == 2024));
    }

    #[test]
    fn per_cell_seed_mode_decorrelates_cells() {
        let cells = ExperimentGrid::new("seeds")
            .workloads([WorkloadKind::Gups, WorkloadKind::Silo])
            .policies([PolicyKind::NeoMem, PolicyKind::Pebs])
            .seeds([2024])
            .seed_mode(SeedMode::PerCell)
            .cells();
        let mut seeds: Vec<u64> = cells.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), cells.len(), "per-cell seeds must be distinct");
        // And derivation is stable: same grid, same seeds.
        let again = ExperimentGrid::new("seeds")
            .workloads([WorkloadKind::Gups, WorkloadKind::Silo])
            .policies([PolicyKind::NeoMem, PolicyKind::Pebs])
            .seeds([2024])
            .seed_mode(SeedMode::PerCell)
            .cells();
        assert!(cells.iter().zip(&again).all(|(a, b)| a.seed == b.seed));
    }

    #[test]
    fn replicate_seeds_start_at_base_and_diverge() {
        let seeds = replicate_seeds(2024, 4);
        assert_eq!(seeds[0], 2024);
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4);
        assert_eq!(seeds, replicate_seeds(2024, 4));
    }

    #[test]
    fn invalid_cells_fail_before_any_simulation() {
        let err = ExperimentGrid::new("invalid").rss_pages(0).run(1);
        assert!(err.is_err());
    }

    #[test]
    fn policy_names_distinguish_fixed_thresholds() {
        assert_eq!(policy_name(PolicyKind::NeoMem), "NeoMem");
        assert_eq!(policy_name(PolicyKind::NeoMemFixed(8)), "NeoMem-fixed(8)");
        assert_ne!(
            policy_name(PolicyKind::NeoMemFixed(2)),
            policy_name(PolicyKind::NeoMemFixed(4))
        );
    }

    #[test]
    fn grid_run_lookup_and_json() {
        let run = ExperimentGrid::new("mini")
            .workloads([WorkloadKind::Gups])
            .policies([PolicyKind::FirstTouch, PolicyKind::PinnedFast])
            .rss_pages(512)
            .budgets([5_000])
            .run(2)
            .expect("mini grid runs");
        assert_eq!(run.cells.len(), 2);
        let report = run.report_for(WorkloadKind::Gups, PolicyKind::PinnedFast);
        assert!(report.runtime.as_nanos() > 0);
        let json = run.to_json();
        assert_eq!(json.get("name").and_then(Json::as_str), Some("mini"));
        assert_eq!(json.get("cells").and_then(Json::as_arr).unwrap().len(), 2);
    }
}
