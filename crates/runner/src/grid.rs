//! Cartesian experiment grids.
//!
//! An [`ExperimentGrid`] describes a sweep over workload × ratio ×
//! policy × override × access-budget × seed, expands it into
//! [`GridCell`]s in a fixed row-major order, and runs the cells on the
//! worker pool. Per-cell seeds are a pure function of the grid
//! coordinates — never of scheduling — so a run's serialised results
//! are byte-identical at any thread count.
//!
//! The workload axis can mix single-tenant workloads with co-run
//! tenant mixes ([`ExperimentGrid::corun`]): a co-run entry expands
//! against the same ratio/policy/override/budget/seed axes, runs
//! through [`CoRunSimulation`], and its cells carry per-tenant and
//! contention sections in addition to the machine-wide metrics.

use std::path::{Path, PathBuf};

use neomem::prelude::*;
use neomem::sim::{CoRunContention, CoRunReport, TenantEpoch, TenantRunReport};
use neomem::workloads::{TenantEvent, TenantEventKind};
use neomem::Error;

use crate::exec;
use crate::json::Json;
use crate::report::metrics_json;

/// One cell's simulation outcome: the machine-wide report plus the
/// optional co-run / scenario extension sections.
type CellOutcome = (RunReport, Option<CorunSections>, Option<ScenarioSections>);

/// SplitMix64: a cheap, well-mixed 64-bit hash used to derive seeds.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives `n` replicate seeds from a base seed. The first replicate
/// keeps the base seed itself (so single-seed grids reproduce the
/// legacy sequential sweeps exactly); later replicates are SplitMix64
/// descendants.
pub fn replicate_seeds(base: u64, n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| if i == 0 { base } else { splitmix64(base.wrapping_add(i)) }).collect()
}

/// How a cell's workload seed is derived from its coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedMode {
    /// Every cell with the same seed-axis value shares that seed —
    /// the paper's convention (all Fig. 11 points use seed 2024).
    #[default]
    Shared,
    /// Each cell mixes the seed-axis value with its full grid
    /// coordinates through SplitMix64, decorrelating the sweep.
    PerCell,
}

/// A stable display name for a policy, distinguishing fixed-threshold
/// NeoMem variants that share a figure label.
pub fn policy_name(kind: PolicyKind) -> String {
    match kind {
        PolicyKind::NeoMemFixed(theta) => format!("NeoMem-fixed({theta})"),
        other => other.label().to_string(),
    }
}

/// A cartesian sweep description.
///
/// Cells expand workload-major, then ratio, policy, override,
/// access budget, and seed innermost.
#[derive(Debug, Clone)]
pub struct ExperimentGrid {
    name: String,
    workloads: Vec<GridWorkload>,
    policies: Vec<PolicyKind>,
    ratios: Vec<u64>,
    overrides: Vec<(String, PolicyOverrides)>,
    budgets: Vec<u64>,
    seeds: Vec<u64>,
    seed_mode: SeedMode,
    rss_pages: u64,
    time_scale: u64,
    large_machine: bool,
    machine: Option<MachineDescription>,
    corun_quantum: usize,
    configure: Option<fn(&mut SimConfig)>,
}

/// One entry of the workload axis: a classic single-tenant workload, a
/// labelled co-run tenant mix, or a labelled dynamic-tenancy scenario.
#[derive(Debug, Clone)]
enum GridWorkload {
    Single(WorkloadKind),
    CoRun(String, TenantMix),
    Scenario(String, Scenario),
}

impl ExperimentGrid {
    /// Starts a grid with the [`ExperimentBuilder`] defaults: GUPS ×
    /// NeoMem, ratio 1:2, 4096 pages, 500 k accesses, seed 42.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            workloads: vec![GridWorkload::Single(WorkloadKind::Gups)],
            policies: vec![PolicyKind::NeoMem],
            ratios: vec![2],
            overrides: vec![(String::new(), PolicyOverrides::default())],
            budgets: vec![500_000],
            seeds: vec![42],
            seed_mode: SeedMode::Shared,
            rss_pages: 4096,
            time_scale: 1000,
            large_machine: false,
            machine: None,
            corun_quantum: 64,
            configure: None,
        }
    }

    /// Sets the workload axis (replacing any co-run entries added so
    /// far — call [`ExperimentGrid::corun`] afterwards to append them).
    pub fn workloads(mut self, axis: impl IntoIterator<Item = WorkloadKind>) -> Self {
        self.workloads = axis.into_iter().map(GridWorkload::Single).collect();
        self
    }

    /// Appends a labelled co-run tenant mix to the workload axis. The
    /// entry expands against the same ratio/policy/override/budget/seed
    /// axes as single-tenant workloads; its cells run through
    /// [`CoRunSimulation`] with the mix's own footprint (the grid's
    /// `rss_pages` does not apply). The seed axis applies through
    /// [`TenantMix::reseeded`] — tenant `i` runs with `cell seed + i`,
    /// so seed sweeps decorrelate co-run cells exactly like
    /// single-tenant ones. Run [`CoRunSimulation`] directly for full
    /// per-tenant seed control.
    pub fn corun(mut self, label: impl Into<String>, mix: TenantMix) -> Self {
        self.workloads.push(GridWorkload::CoRun(label.into(), mix));
        self
    }

    /// Appends a labelled dynamic-tenancy scenario to the workload
    /// axis. Like [`ExperimentGrid::corun`], the entry expands against
    /// the full ratio/policy/override/budget/seed axes; its cells run
    /// through [`CoRunSimulation::with_scenario`] (tenant arrivals,
    /// departures, weight changes and phased workloads all apply) and
    /// carry a `scenario` JSON section — timeline and tenant-epochs —
    /// on top of the usual co-run sections. The seed axis applies
    /// through [`Scenario::reseeded`].
    pub fn scenario(mut self, label: impl Into<String>, scenario: Scenario) -> Self {
        self.workloads.push(GridWorkload::Scenario(label.into(), scenario));
        self
    }

    /// Sets the co-run interleave quantum (events a weight-1 tenant
    /// runs per scheduling round; default 64). Applies to both co-run
    /// and scenario cells; single-tenant cells are unaffected.
    pub fn corun_quantum(mut self, quantum: usize) -> Self {
        self.corun_quantum = quantum;
        self
    }

    /// Sets the policy axis.
    pub fn policies(mut self, axis: impl IntoIterator<Item = PolicyKind>) -> Self {
        self.policies = axis.into_iter().collect();
        self
    }

    /// Sets the fast:slow ratio axis (`1:r` per entry).
    pub fn ratios(mut self, axis: impl IntoIterator<Item = u64>) -> Self {
        self.ratios = axis.into_iter().collect();
        self
    }

    /// Sets a labelled policy-override axis (Fig. 15-style sweeps).
    pub fn overrides_axis(
        mut self,
        axis: impl IntoIterator<Item = (String, PolicyOverrides)>,
    ) -> Self {
        self.overrides = axis.into_iter().collect();
        self
    }

    /// Sets the access-budget axis.
    pub fn budgets(mut self, axis: impl IntoIterator<Item = u64>) -> Self {
        self.budgets = axis.into_iter().collect();
        self
    }

    /// Sets the seed axis (one replicate per seed).
    pub fn seeds(mut self, axis: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = axis.into_iter().collect();
        self
    }

    /// Selects the per-cell seed derivation.
    pub fn seed_mode(mut self, mode: SeedMode) -> Self {
        self.seed_mode = mode;
        self
    }

    /// Sets the footprint in 4 KiB pages.
    pub fn rss_pages(mut self, pages: u64) -> Self {
        self.rss_pages = pages;
        self
    }

    /// Divides the paper's daemon cadences by `scale`.
    pub fn time_scale(mut self, scale: u64) -> Self {
        self.time_scale = scale.max(1);
        self
    }

    /// Uses the full-size cache/TLB presets.
    pub fn large_machine(mut self, large: bool) -> Self {
        self.large_machine = large;
        self
    }

    /// Builds every cell's machine from a declarative description
    /// (registry/config-file path) instead of the quick/large presets.
    /// The description's own preset supersedes
    /// [`ExperimentGrid::large_machine`], and its `[neoprof]` knobs
    /// fold into each cell's policy overrides. A description with no
    /// overrides reproduces the preset path exactly, so switching an
    /// existing campaign to an equivalent machine file does not change
    /// its result bytes.
    pub fn machine(mut self, machine: MachineDescription) -> Self {
        self.machine = Some(machine);
        self
    }

    /// The machine configuration a cell of the given footprint and
    /// ratio runs on: the declarative description when one is set,
    /// otherwise the quick/large preset.
    fn machine_config(&self, rss_pages: u64, ratio: u64) -> SimConfig {
        match &self.machine {
            Some(machine) => machine.sim_config(rss_pages, ratio),
            None if self.large_machine => SimConfig::large(rss_pages, ratio),
            None => SimConfig::quick(rss_pages, ratio),
        }
    }

    /// A cell's effective policy overrides: the cell's own, plus the
    /// machine description's NeoProf knobs when one is set.
    fn cell_overrides(&self, cell: &GridCell) -> PolicyOverrides {
        match &self.machine {
            Some(machine) => cell.overrides.with_machine(machine),
            None => cell.overrides,
        }
    }

    /// Installs a final [`SimConfig`] hook applied to every cell.
    pub fn configure(mut self, hook: fn(&mut SimConfig)) -> Self {
        self.configure = Some(hook);
        self
    }

    /// The number of cells the grid expands to.
    pub fn len(&self) -> usize {
        self.workloads.len()
            * self.ratios.len()
            * self.policies.len()
            * self.overrides.len()
            * self.budgets.len()
            * self.seeds.len()
    }

    /// `true` when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the cartesian product into cells, in row-major order.
    pub fn cells(&self) -> Vec<GridCell> {
        let mut cells = Vec::with_capacity(self.len());
        for (wi, entry) in self.workloads.iter().enumerate() {
            let (workload, corun, scenario) = match entry {
                GridWorkload::Single(kind) => (*kind, None, None),
                GridWorkload::CoRun(label, mix) => (
                    // The kind slot is a placeholder for co-run cells
                    // (the first tenant's kind); lookups key on the
                    // `corun` label instead.
                    mix.tenants()[0].kind,
                    Some(CorunCellSpec {
                        label: label.clone(),
                        mix: mix.clone(),
                        interleave_quantum: self.corun_quantum,
                    }),
                    None,
                ),
                GridWorkload::Scenario(label, scenario) => (
                    scenario.mix().tenants()[0].kind,
                    None,
                    Some(ScenarioCellSpec {
                        label: label.clone(),
                        scenario: scenario.clone(),
                        interleave_quantum: self.corun_quantum,
                    }),
                ),
            };
            for (ri, &ratio) in self.ratios.iter().enumerate() {
                for (pi, &policy) in self.policies.iter().enumerate() {
                    for (oi, (label, overrides)) in self.overrides.iter().enumerate() {
                        for (bi, &accesses) in self.budgets.iter().enumerate() {
                            for &base_seed in &self.seeds {
                                let seed = match self.seed_mode {
                                    SeedMode::Shared => base_seed,
                                    SeedMode::PerCell => {
                                        // Chain the coordinates through the
                                        // mixer; scheduling never enters.
                                        let coords =
                                            [wi as u64, ri as u64, pi as u64, oi as u64, bi as u64];
                                        coords.iter().fold(base_seed, |acc, &c| {
                                            splitmix64(acc ^ splitmix64(c))
                                        })
                                    }
                                };
                                cells.push(GridCell {
                                    index: cells.len(),
                                    workload,
                                    corun: corun.clone(),
                                    scenario: scenario.clone(),
                                    policy,
                                    ratio,
                                    override_label: label.clone(),
                                    overrides: *overrides,
                                    accesses,
                                    base_seed,
                                    seed,
                                });
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    fn builder_for(&self, cell: &GridCell) -> ExperimentBuilder {
        let mut builder = Experiment::builder()
            .workload(cell.workload)
            .policy(cell.policy)
            .rss_pages(self.rss_pages)
            .ratio(cell.ratio)
            .accesses(cell.accesses)
            .seed(cell.seed)
            .time_scale(self.time_scale)
            .large_machine(self.large_machine)
            .overrides(cell.overrides);
        if let Some(machine) = &self.machine {
            builder = builder.machine(machine.clone());
        }
        if let Some(hook) = self.configure {
            builder = builder.configure(hook);
        }
        builder
    }

    /// Builds the [`CoRunSimulation`] of a co-run cell: the machine is
    /// sized for the mix's total footprint at the cell's ratio, the
    /// policy comes from the same [`build_policy`] path as
    /// single-tenant cells, and the overrides' fairness cap flows into
    /// the tenant layout.
    fn corun_simulation_for(&self, cell: &GridCell) -> Result<CoRunSimulation, Error> {
        let spec = cell.corun.as_ref().expect("corun cell");
        let mut config = self.machine_config(spec.mix.total_rss_pages(), cell.ratio);
        config.max_accesses = cell.accesses;
        if let Some(hook) = self.configure {
            hook(&mut config);
        }
        let overrides = self.cell_overrides(cell);
        let policy = build_policy(cell.policy, &config, self.time_scale, overrides)?;
        let corun_config = CoRunConfig {
            sim: config,
            interleave_quantum: spec.interleave_quantum,
            fast_share_cap: overrides.corun_fast_share_cap,
        };
        // The seed axis drives tenant seeds (tenant i gets seed + i),
        // so seed sweeps produce genuinely different co-runs.
        CoRunSimulation::new(corun_config, &spec.mix.reseeded(cell.seed), policy)
    }

    /// Builds the [`CoRunSimulation`] of a scenario cell: identical to
    /// [`ExperimentGrid::corun`] cells except the engine follows the
    /// scenario's dynamic-tenancy timeline.
    fn scenario_simulation_for(&self, cell: &GridCell) -> Result<CoRunSimulation, Error> {
        let spec = cell.scenario.as_ref().expect("scenario cell");
        let total_rss = spec.scenario.mix().total_rss_pages();
        let mut config = self.machine_config(total_rss, cell.ratio);
        config.max_accesses = cell.accesses;
        // The scenario's fault timeline rides into the machine config —
        // an empty plan (the common case) leaves the config untouched.
        config.faults = spec.scenario.faults().clone();
        if let Some(hook) = self.configure {
            hook(&mut config);
        }
        let overrides = self.cell_overrides(cell);
        let policy = build_policy(cell.policy, &config, self.time_scale, overrides)?;
        let corun_config = CoRunConfig {
            sim: config,
            interleave_quantum: spec.interleave_quantum,
            fast_share_cap: overrides.corun_fast_share_cap,
        };
        CoRunSimulation::with_scenario(
            corun_config,
            &spec.scenario.reseeded(cell.seed),
            policy,
        )
    }

    /// Validates every cell before spending simulation time on any.
    fn validate_cells(&self, cells: &[GridCell]) -> Result<(), Error> {
        for cell in cells {
            let check = if cell.scenario.is_some() {
                self.scenario_simulation_for(cell).map(|_| ())
            } else if cell.corun.is_some() {
                self.corun_simulation_for(cell).map(|_| ())
            } else {
                self.builder_for(cell).build().map(|_| ())
            };
            check.map_err(|e| {
                Error::invalid_config(format!(
                    "grid '{}' cell {} ({} / {}): {e}",
                    self.name,
                    cell.index,
                    cell.workload_label(),
                    policy_name(cell.policy),
                ))
            })?;
        }
        Ok(())
    }

    /// Packages a finished [`CoRunReport`] into a cell outcome.
    fn corun_outcome(cell: &GridCell, outcome: CoRunReport) -> CellOutcome {
        let occupancy_fairness = outcome.occupancy_fairness();
        let scenario = cell.scenario.as_ref().map(|spec| ScenarioSections {
            events: spec.scenario.events().to_vec(),
            epochs: outcome.epochs.clone(),
        });
        (
            outcome.combined,
            Some(CorunSections {
                tenants: outcome.tenants,
                contention: outcome.contention,
                occupancy_fairness,
            }),
            scenario,
        )
    }

    /// Runs one (pre-validated) cell from a cold machine.
    fn run_cell_cold(&self, cell: &GridCell) -> CellOutcome {
        if cell.corun.is_some() || cell.scenario.is_some() {
            let outcome = if cell.scenario.is_some() {
                self.scenario_simulation_for(cell).expect("cell validated above").run()
            } else {
                self.corun_simulation_for(cell).expect("cell validated above").run()
            };
            Self::corun_outcome(cell, outcome)
        } else {
            (
                self.builder_for(cell).build().expect("cell validated above").run(),
                None,
                None,
            )
        }
    }

    /// Runs one (pre-validated) cell, restoring from a warmed snapshot
    /// in `dir` when one matches the cell's content hash. Any failure
    /// to load or restore — missing file, corrupt JSON, fingerprint
    /// mismatch from changed inputs — falls back to a cold run, so the
    /// result is identical either way. Returns the outcome and whether
    /// the warm path was taken.
    fn run_cell_warm(&self, cell: &GridCell, dir: &Path) -> (CellOutcome, bool) {
        if let Some(snap) = self.load_snapshot(dir, cell) {
            if cell.corun.is_some() || cell.scenario.is_some() {
                let sim = if cell.scenario.is_some() {
                    self.scenario_simulation_for(cell)
                } else {
                    self.corun_simulation_for(cell)
                }
                .expect("cell validated above");
                if let Ok(outcome) = sim.run_from(&snap) {
                    return (Self::corun_outcome(cell, outcome), true);
                }
            } else {
                let sim = self
                    .builder_for(cell)
                    .build()
                    .expect("cell validated above")
                    .into_simulation();
                if let Ok(report) = sim.run_from(&snap) {
                    return ((report, None, None), true);
                }
            }
        }
        (self.run_cell_cold(cell), false)
    }

    /// Zips cells and outcomes into a [`GridRun`].
    fn assemble(&self, cells: Vec<GridCell>, outcomes: Vec<CellOutcome>) -> GridRun {
        GridRun {
            name: self.name.clone(),
            rss_pages: self.rss_pages,
            time_scale: self.time_scale,
            cells: cells
                .into_iter()
                .zip(outcomes)
                .map(|(cell, (report, corun, scenario))| CellRun {
                    cell,
                    report,
                    corun,
                    scenario,
                })
                .collect(),
        }
    }

    /// Content hash of one cell: FNV-1a over the grid's machine shape
    /// plus the cell's fully resolved parameters (workload/mix/scenario
    /// identity, policy, ratio, overrides, budget, seeds). Warm-start
    /// snapshots are keyed by this hash, so any change to a cell's
    /// inputs changes its key and the cell re-runs cold.
    pub fn cell_hash(&self, cell: &GridCell) -> u64 {
        let mut ident = format!(
            "{}|rss{}|ts{}|large{}|q{}|{cell:?}",
            self.name, self.rss_pages, self.time_scale, self.large_machine, self.corun_quantum,
        );
        // Grids without a machine description keep the legacy key, so
        // existing snapshot corpora stay warm.
        if let Some(machine) = &self.machine {
            ident.push_str(&format!("|machine{machine:?}"));
        }
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in ident.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// The snapshot file a cell maps to under `dir`.
    fn snapshot_path(&self, dir: &Path, cell: &GridCell) -> PathBuf {
        dir.join(format!("{:016x}.json", self.cell_hash(cell)))
    }

    /// Loads and parses a cell's snapshot, if present and readable.
    fn load_snapshot(&self, dir: &Path, cell: &GridCell) -> Option<Json> {
        let text = std::fs::read_to_string(self.snapshot_path(dir, cell)).ok()?;
        Json::parse(&text).ok()
    }

    /// Runs one (pre-validated) cell to its horizon and returns the
    /// warmed snapshot envelope.
    fn snapshot_cell(&self, cell: &GridCell) -> Json {
        let horizon = Nanos::new(u64::MAX);
        if cell.scenario.is_some() {
            self.scenario_simulation_for(cell).expect("cell validated above").snapshot_at(horizon)
        } else if cell.corun.is_some() {
            self.corun_simulation_for(cell).expect("cell validated above").snapshot_at(horizon)
        } else {
            self.builder_for(cell)
                .build()
                .expect("cell validated above")
                .into_simulation()
                .snapshot_at(horizon)
        }
    }

    /// The panic label of a cell: the gate key it would fail under.
    fn cell_label(&self, cell: &GridCell) -> String {
        format!("{}::{}", self.name, cell.key())
    }

    /// Runs every cell on `threads` workers (`0` = all cores).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any cell fails to build —
    /// validated up front, before any simulation starts.
    pub fn run(&self, threads: usize) -> Result<GridRun, Error> {
        let cells = self.cells();
        self.validate_cells(&cells)?;
        let outcomes = exec::run_labeled(
            &cells,
            threads,
            |_, cell| self.cell_label(cell),
            |_, cell| self.run_cell_cold(cell),
        );
        Ok(self.assemble(cells, outcomes))
    }

    /// Runs every cell to completion and writes one warmed snapshot
    /// per cell into `dir`, named `<content-hash>.json` (see
    /// [`ExperimentGrid::cell_hash`]). A later [`ExperimentGrid::run_warm`]
    /// against the same directory restores each unchanged cell instead
    /// of replaying it. Returns the number of snapshots written.
    ///
    /// # Errors
    ///
    /// Returns an error when a cell fails validation or a snapshot file
    /// cannot be written.
    pub fn write_snapshots(&self, threads: usize, dir: &Path) -> Result<usize, Error> {
        let cells = self.cells();
        self.validate_cells(&cells)?;
        std::fs::create_dir_all(dir).map_err(|e| {
            Error::snapshot(format!("cannot create snapshot directory {}: {e}", dir.display()))
        })?;
        let snaps = exec::run_labeled(
            &cells,
            threads,
            |_, cell| self.cell_label(cell),
            |_, cell| self.snapshot_cell(cell).render_pretty(),
        );
        for (cell, text) in cells.iter().zip(&snaps) {
            let path = self.snapshot_path(dir, cell);
            std::fs::write(&path, text).map_err(|e| {
                Error::snapshot(format!("cannot write snapshot {}: {e}", path.display()))
            })?;
        }
        Ok(snaps.len())
    }

    /// [`ExperimentGrid::run`], warm-starting every cell whose content
    /// hash matches a snapshot in `dir` (written earlier by
    /// [`ExperimentGrid::write_snapshots`]). Restored cells skip the
    /// machine simulation entirely — only the workload generator is
    /// replayed to its cut position — and produce bit-identical
    /// reports, so the run's JSON is byte-identical to a cold run.
    /// Cells without a usable snapshot (missing, corrupt, or stale
    /// after an input change) silently run cold; the split is reported
    /// in the returned [`WarmStats`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any cell fails to build —
    /// validated up front, before any simulation starts.
    pub fn run_warm(&self, threads: usize, dir: &Path) -> Result<(GridRun, WarmStats), Error> {
        let cells = self.cells();
        self.validate_cells(&cells)?;
        let outcomes = exec::run_labeled(
            &cells,
            threads,
            |_, cell| self.cell_label(cell),
            |_, cell| self.run_cell_warm(cell, dir),
        );
        let mut stats = WarmStats::default();
        let outcomes = outcomes
            .into_iter()
            .map(|(outcome, warm)| {
                if warm {
                    stats.restored += 1;
                } else {
                    stats.cold += 1;
                }
                outcome
            })
            .collect();
        Ok((self.assemble(cells, outcomes), stats))
    }
}

/// How a grid campaign executes: worker count plus optional
/// warm-start via a snapshot directory. [`ExperimentGrid::run_mode`]
/// dispatches on it, so figure code can stay agnostic of whether a
/// campaign is cold, snapshot-producing, or warm-started.
#[derive(Debug, Clone, Default)]
pub struct RunMode {
    /// Worker threads (`0` = all cores).
    pub threads: usize,
    /// Snapshot directory for warm-starting; `None` runs cold.
    pub warm_dir: Option<PathBuf>,
    /// When set (and `warm_dir` is given), write fresh snapshots for
    /// every cell before the run, so the run and all later ones
    /// warm-start from them.
    pub write_snapshots: bool,
}

impl ExperimentGrid {
    /// Runs the grid under `mode`: plain [`ExperimentGrid::run`]
    /// without a warm directory, otherwise [`ExperimentGrid::write_snapshots`]
    /// (when requested) followed by [`ExperimentGrid::run_warm`].
    /// Result JSON is byte-identical in all modes; warm-start
    /// accounting goes to stderr, never into results.
    ///
    /// # Errors
    ///
    /// Returns an error when a cell fails validation or snapshots
    /// cannot be written.
    pub fn run_mode(&self, mode: &RunMode) -> Result<GridRun, Error> {
        let Some(dir) = &mode.warm_dir else {
            return self.run(mode.threads);
        };
        if mode.write_snapshots {
            let written = self.write_snapshots(mode.threads, dir)?;
            eprintln!(
                "[warm-start] {}: wrote {written} cell snapshots -> {}",
                self.name,
                dir.display()
            );
        }
        let (run, stats) = self.run_warm(mode.threads, dir)?;
        eprintln!(
            "[warm-start] {}: restored {}/{} cells from {}",
            self.name,
            stats.restored,
            stats.restored + stats.cold,
            dir.display()
        );
        Ok(run)
    }
}

/// How a warm-started grid run split between restored and cold cells.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Cells restored from a warmed snapshot.
    pub restored: usize,
    /// Cells replayed cold: no snapshot file, or one that failed to
    /// parse or restore (e.g. stale after an input change).
    pub cold: usize,
}

/// The co-run parameters of a grid cell (present when the cell came
/// from an [`ExperimentGrid::corun`] axis entry).
#[derive(Debug, Clone)]
pub struct CorunCellSpec {
    /// The axis label — the cell's `workload` identity in JSON and
    /// gate keys.
    pub label: String,
    /// The tenant mix under test.
    pub mix: TenantMix,
    /// Interleave quantum in force.
    pub interleave_quantum: usize,
}

/// The scenario parameters of a grid cell (present when the cell came
/// from an [`ExperimentGrid::scenario`] axis entry).
#[derive(Debug, Clone)]
pub struct ScenarioCellSpec {
    /// The axis label — the cell's `workload` identity in JSON and
    /// gate keys.
    pub label: String,
    /// The dynamic-tenancy scenario under test.
    pub scenario: Scenario,
    /// Interleave quantum in force.
    pub interleave_quantum: usize,
}

/// One point of a grid: fully resolved experiment parameters.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Position in the grid's row-major expansion.
    pub index: usize,
    /// Workload under test. For co-run and scenario cells this slot
    /// holds the first tenant's kind as a placeholder — identify those
    /// cells through [`GridCell::corun`] / [`GridCell::scenario`] /
    /// [`GridCell::workload_label`] instead.
    pub workload: WorkloadKind,
    /// Co-run parameters; `None` for classic single-tenant cells.
    pub corun: Option<CorunCellSpec>,
    /// Scenario parameters; `None` unless the cell came from an
    /// [`ExperimentGrid::scenario`] axis entry.
    pub scenario: Option<ScenarioCellSpec>,
    /// Tiering policy under test.
    pub policy: PolicyKind,
    /// Fast:slow capacity ratio (`1:ratio`).
    pub ratio: u64,
    /// Label of the override-axis entry (empty for the default).
    pub override_label: String,
    /// Policy parameter overrides in force.
    pub overrides: PolicyOverrides,
    /// CPU-access budget.
    pub accesses: u64,
    /// The seed-axis value this cell came from.
    pub base_seed: u64,
    /// The derived workload seed (see [`SeedMode`]). Co-run cells
    /// derive tenant seeds from it: tenant `i` runs with `seed + i`.
    pub seed: u64,
}

impl GridCell {
    /// The cell's workload identity: the paper label for single-tenant
    /// cells, the co-run/scenario axis label otherwise.
    pub fn workload_label(&self) -> String {
        if let Some(spec) = &self.scenario {
            return spec.label.clone();
        }
        match &self.corun {
            Some(spec) => spec.label.clone(),
            None => self.workload.label().to_string(),
        }
    }

    /// The cell's identity in the same shape the regression gate
    /// derives from result JSON:
    /// `workload/policy/r<ratio>/a<accesses>/s<seed>/<override label>`.
    /// Worker-pool panics are labelled with this key (prefixed by the
    /// grid name), so a failing cell can be cross-referenced with gate
    /// output directly.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/r{}/a{}/s{}/{}",
            self.workload_label(),
            policy_name(self.policy),
            self.ratio,
            self.accesses,
            self.seed,
            self.override_label,
        )
    }
}

/// The co-run sections of a completed cell: per-tenant attribution
/// plus shared-tier contention.
#[derive(Debug, Clone)]
pub struct CorunSections {
    /// Per-tenant reports, in mix order.
    pub tenants: Vec<TenantRunReport>,
    /// Shared-tier contention metrics.
    pub contention: CoRunContention,
    /// Jain's fairness index over weighted fast-tier occupancy (see
    /// [`CoRunReport::occupancy_fairness`]).
    pub occupancy_fairness: f64,
}

/// The scenario sections of a completed cell: the timeline that was
/// applied and the per-residency tenant-epoch attribution.
#[derive(Debug, Clone)]
pub struct ScenarioSections {
    /// The scenario timeline, sorted by time.
    pub events: Vec<TenantEvent>,
    /// Tenant epochs, ordered by (tenant, epoch).
    pub epochs: Vec<TenantEpoch>,
}

/// A completed cell: its coordinates plus the simulation outcome.
#[derive(Debug, Clone)]
pub struct CellRun {
    /// The grid coordinates.
    pub cell: GridCell,
    /// The simulation outcome (the machine-wide combined report for
    /// co-run cells).
    pub report: RunReport,
    /// Per-tenant + contention sections, present for co-run and
    /// scenario cells.
    pub corun: Option<CorunSections>,
    /// Timeline + epoch sections, present for scenario cells only.
    pub scenario: Option<ScenarioSections>,
}

/// The outcome of a full grid campaign, in cell order.
#[derive(Debug, Clone)]
pub struct GridRun {
    /// Grid name (used as the JSON `name` and in gate keys).
    pub name: String,
    /// Footprint shared by all cells.
    pub rss_pages: u64,
    /// Daemon-cadence divisor shared by all cells.
    pub time_scale: u64,
    /// Completed cells, row-major.
    pub cells: Vec<CellRun>,
}

impl GridRun {
    /// The first cell matching `pred`.
    pub fn find(&self, pred: impl Fn(&GridCell) -> bool) -> Option<&CellRun> {
        self.cells.iter().find(|run| pred(&run.cell))
    }

    /// The report of the first cell matching `pred`.
    ///
    /// # Panics
    ///
    /// Panics when no cell matches — a programming error in figure
    /// code, not a data condition.
    pub fn report_where(&self, pred: impl Fn(&GridCell) -> bool) -> &RunReport {
        &self.find(pred).expect("no grid cell matches predicate").report
    }

    /// The report for a (workload, policy) point — the common lookup.
    /// Skips co-run and scenario cells; look those up with
    /// [`GridRun::corun_for`] / [`GridRun::scenario_for`].
    pub fn report_for(&self, workload: WorkloadKind, policy: PolicyKind) -> &RunReport {
        self.report_where(|c| {
            c.corun.is_none()
                && c.scenario.is_none()
                && c.workload == workload
                && c.policy == policy
        })
    }

    /// The first co-run cell with the given axis label, policy and
    /// override label.
    ///
    /// # Panics
    ///
    /// Panics when no cell matches — a programming error in figure
    /// code, not a data condition.
    pub fn corun_for(&self, label: &str, policy: PolicyKind, override_label: &str) -> &CellRun {
        self.cells
            .iter()
            .find(|run| {
                run.cell.policy == policy
                    && run.cell.override_label == override_label
                    && run.cell.corun.as_ref().is_some_and(|s| s.label == label)
            })
            .expect("no co-run cell matches label/policy")
    }

    /// The first scenario cell with the given axis label, policy and
    /// override label.
    ///
    /// # Panics
    ///
    /// Panics when no cell matches — a programming error in figure
    /// code, not a data condition.
    pub fn scenario_for(
        &self,
        label: &str,
        policy: PolicyKind,
        override_label: &str,
    ) -> &CellRun {
        self.cells
            .iter()
            .find(|run| {
                run.cell.policy == policy
                    && run.cell.override_label == override_label
                    && run.cell.scenario.as_ref().is_some_and(|s| s.label == label)
            })
            .expect("no scenario cell matches label/policy")
    }

    /// Serialises the campaign: grid header plus one record per cell
    /// (coordinates + flat metrics). Deterministic at any thread count.
    ///
    /// Single-tenant cells keep the exact v1 record shape. Co-run cells
    /// use their axis label as the `workload` identity and append a
    /// `corun` section (tenants + contention) — a schema extension, no
    /// existing key is renamed.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("rss_pages", Json::U64(self.rss_pages)),
            ("time_scale", Json::U64(self.time_scale)),
            (
                "cells",
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|run| {
                            let mut fields = vec![
                                (
                                    "workload".to_string(),
                                    Json::Str(run.cell.workload_label()),
                                ),
                                ("policy".to_string(), Json::Str(policy_name(run.cell.policy))),
                                ("ratio".to_string(), Json::U64(run.cell.ratio)),
                                (
                                    "label".to_string(),
                                    Json::from(run.cell.override_label.as_str()),
                                ),
                                ("accesses".to_string(), Json::U64(run.cell.accesses)),
                                ("seed".to_string(), Json::U64(run.cell.seed)),
                                ("metrics".to_string(), metrics_json(&run.report)),
                            ];
                            if let Some(sections) = &run.corun {
                                fields.push(("corun".to_string(), corun_json(sections)));
                            }
                            if let Some(sections) = &run.scenario {
                                fields.push(("scenario".to_string(), scenario_json(sections)));
                            }
                            Json::Obj(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Serialises a cell's co-run sections: contention scalars plus one
/// record per tenant. Metric names are part of the result schema —
/// extend, don't rename.
fn corun_json(sections: &CorunSections) -> Json {
    // Co-run cells size the machine from the mix, not the grid header's
    // rss_pages — record the real footprint with the cell.
    let total_rss: u64 = sections.tenants.iter().map(|t| t.rss_pages).sum();
    Json::obj([
        ("total_rss_pages", Json::U64(total_rss)),
        ("interleave_quantum", Json::U64(sections.contention.interleave_quantum)),
        ("fast_capacity_pages", Json::U64(sections.contention.fast_capacity_pages)),
        ("cross_tenant_evictions", Json::U64(sections.contention.cross_tenant_evictions)),
        ("rounds", Json::U64(sections.contention.rounds)),
        ("slices", Json::U64(sections.contention.slices)),
        ("occupancy_fairness", Json::F64(sections.occupancy_fairness)),
        (
            "tenants",
            Json::Arr(
                sections
                    .tenants
                    .iter()
                    .map(|t| {
                        Json::obj([
                            ("tenant", Json::U64(t.tenant as u64)),
                            ("workload", Json::from(t.workload.as_str())),
                            ("weight", Json::U64(t.weight as u64)),
                            ("rss_pages", Json::U64(t.rss_pages)),
                            ("base_page", Json::U64(t.base_page)),
                            ("seed", Json::U64(t.seed)),
                            ("mean_fast_share", Json::F64(t.mean_fast_share)),
                            (
                                "metrics",
                                Json::Obj(
                                    t.scalar_metrics()
                                        .into_iter()
                                        .map(|(k, v)| (k.to_string(), Json::U64(v)))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Serialises a cell's scenario sections: the applied timeline plus
/// per-residency tenant epochs. Metric names are part of the result
/// schema — extend, don't rename.
fn scenario_json(sections: &ScenarioSections) -> Json {
    let event_json = |event: &TenantEvent| {
        let (kind, weight) = match event.kind {
            TenantEventKind::Arrive => ("arrive", None),
            TenantEventKind::Depart => ("depart", None),
            TenantEventKind::SetWeight(w) => ("set_weight", Some(w)),
        };
        let mut fields = vec![
            ("at_ns".to_string(), Json::U64(event.at.as_nanos())),
            ("tenant".to_string(), Json::U64(event.tenant as u64)),
            ("kind".to_string(), Json::from(kind)),
        ];
        if let Some(w) = weight {
            fields.push(("weight".to_string(), Json::U64(w as u64)));
        }
        Json::Obj(fields)
    };
    let arrivals =
        sections.events.iter().filter(|e| e.kind == TenantEventKind::Arrive).count();
    let departures =
        sections.events.iter().filter(|e| e.kind == TenantEventKind::Depart).count();
    let weight_changes = sections.events.len() - arrivals - departures;
    Json::obj([
        ("arrivals", Json::U64(arrivals as u64)),
        ("departures", Json::U64(departures as u64)),
        ("weight_changes", Json::U64(weight_changes as u64)),
        ("events", Json::Arr(sections.events.iter().map(event_json).collect())),
        (
            "epochs",
            Json::Arr(
                sections
                    .epochs
                    .iter()
                    .map(|e| {
                        Json::obj([
                            ("tenant", Json::U64(e.tenant as u64)),
                            ("epoch", Json::U64(e.epoch as u64)),
                            ("start_ns", Json::U64(e.start.as_nanos())),
                            ("end_ns", Json::U64(e.end.as_nanos())),
                            ("accesses", Json::U64(e.accesses)),
                            ("slow_tier_accesses", Json::U64(e.slow_tier_accesses)),
                            ("evicted_by_others", Json::U64(e.evicted_by_others)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_order_is_row_major_and_stable() {
        let grid = ExperimentGrid::new("order")
            .workloads([WorkloadKind::Gups, WorkloadKind::Silo])
            .ratios([2, 4])
            .policies([PolicyKind::NeoMem, PolicyKind::Pebs]);
        let cells = grid.cells();
        assert_eq!(cells.len(), 8);
        assert_eq!(grid.len(), 8);
        assert_eq!(cells[0].workload, WorkloadKind::Gups);
        assert_eq!((cells[0].ratio, cells[0].policy), (2, PolicyKind::NeoMem));
        assert_eq!((cells[1].ratio, cells[1].policy), (2, PolicyKind::Pebs));
        assert_eq!((cells[2].ratio, cells[2].policy), (4, PolicyKind::NeoMem));
        assert_eq!(cells[4].workload, WorkloadKind::Silo);
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
        }
    }

    #[test]
    fn shared_seed_mode_reproduces_legacy_seeds() {
        let cells = ExperimentGrid::new("seeds")
            .workloads([WorkloadKind::Gups, WorkloadKind::Silo])
            .seeds([2024])
            .cells();
        assert!(cells.iter().all(|c| c.seed == 2024));
    }

    #[test]
    fn per_cell_seed_mode_decorrelates_cells() {
        let cells = ExperimentGrid::new("seeds")
            .workloads([WorkloadKind::Gups, WorkloadKind::Silo])
            .policies([PolicyKind::NeoMem, PolicyKind::Pebs])
            .seeds([2024])
            .seed_mode(SeedMode::PerCell)
            .cells();
        let mut seeds: Vec<u64> = cells.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), cells.len(), "per-cell seeds must be distinct");
        // And derivation is stable: same grid, same seeds.
        let again = ExperimentGrid::new("seeds")
            .workloads([WorkloadKind::Gups, WorkloadKind::Silo])
            .policies([PolicyKind::NeoMem, PolicyKind::Pebs])
            .seeds([2024])
            .seed_mode(SeedMode::PerCell)
            .cells();
        assert!(cells.iter().zip(&again).all(|(a, b)| a.seed == b.seed));
    }

    #[test]
    fn replicate_seeds_start_at_base_and_diverge() {
        let seeds = replicate_seeds(2024, 4);
        assert_eq!(seeds[0], 2024);
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4);
        assert_eq!(seeds, replicate_seeds(2024, 4));
    }

    #[test]
    fn invalid_cells_fail_before_any_simulation() {
        let err = ExperimentGrid::new("invalid").rss_pages(0).run(1);
        assert!(err.is_err());
    }

    #[test]
    fn policy_names_distinguish_fixed_thresholds() {
        assert_eq!(policy_name(PolicyKind::NeoMem), "NeoMem");
        assert_eq!(policy_name(PolicyKind::NeoMemFixed(8)), "NeoMem-fixed(8)");
        assert_ne!(
            policy_name(PolicyKind::NeoMemFixed(2)),
            policy_name(PolicyKind::NeoMemFixed(4))
        );
    }

    fn tiny_mix() -> TenantMix {
        TenantMix::builder()
            .tenant(WorkloadKind::Gups, 512, 5)
            .weighted_tenant(WorkloadKind::Silo, 512, 2, 6)
            .build()
            .expect("valid mix")
    }

    #[test]
    fn corun_axis_expands_against_the_other_axes() {
        let grid = ExperimentGrid::new("mixed")
            .workloads([WorkloadKind::Gups])
            .corun("pair", tiny_mix())
            .policies([PolicyKind::FirstTouch, PolicyKind::PinnedFast])
            .budgets([4_000]);
        let cells = grid.cells();
        assert_eq!(cells.len(), 4, "2 workload-axis entries x 2 policies");
        assert!(cells[0].corun.is_none());
        assert!(cells[2].corun.is_some());
        assert_eq!(cells[2].workload_label(), "pair");
        assert_eq!(cells[0].workload_label(), "GUPS");
    }

    #[test]
    fn corun_cells_run_and_carry_tenant_sections() {
        let run = ExperimentGrid::new("corun")
            .workloads([])
            .corun("pair", tiny_mix())
            .policies([PolicyKind::FirstTouch])
            .budgets([8_000])
            .run(2)
            .expect("corun grid runs");
        assert_eq!(run.cells.len(), 1);
        let cell = run.corun_for("pair", PolicyKind::FirstTouch, "");
        let sections = cell.corun.as_ref().expect("corun sections present");
        assert_eq!(sections.tenants.len(), 2);
        let attributed: u64 = sections.tenants.iter().map(|t| t.accesses).sum();
        assert_eq!(attributed, cell.report.accesses);
        assert!(sections.occupancy_fairness > 0.0 && sections.occupancy_fairness <= 1.0);
        // JSON carries the extension section under the mix label.
        let json = run.to_json();
        let cells = json.get("cells").and_then(Json::as_arr).unwrap();
        assert_eq!(cells[0].get("workload").and_then(Json::as_str), Some("pair"));
        let corun = cells[0].get("corun").expect("corun section");
        assert!(corun.get("cross_tenant_evictions").and_then(Json::as_u64).is_some());
        let tenants = corun.get("tenants").and_then(Json::as_arr).unwrap();
        assert_eq!(tenants.len(), 2);
        assert!(tenants[0].get("metrics").and_then(|m| m.get("slow_tier_accesses")).is_some());
    }

    #[test]
    fn corun_json_is_thread_count_invariant() {
        let grid = ExperimentGrid::new("threads")
            .workloads([WorkloadKind::Gups])
            .corun("pair", tiny_mix())
            .policies([PolicyKind::FirstTouch, PolicyKind::NeoMem])
            .rss_pages(512)
            .budgets([6_000]);
        let one = grid.run(1).expect("1 thread").to_json().render_pretty();
        let four = grid.run(4).expect("4 threads").to_json().render_pretty();
        assert_eq!(one, four, "corun grids must serialise byte-identically at any thread count");
    }

    #[test]
    fn report_for_skips_corun_cells() {
        // A corun cell whose placeholder kind collides with the single
        // axis entry must not shadow it.
        let run = ExperimentGrid::new("shadow")
            .workloads([WorkloadKind::Gups])
            .corun("gups-pair", TenantMix::homogeneous(WorkloadKind::Gups, 2, 512, 9).unwrap())
            .policies([PolicyKind::FirstTouch])
            .rss_pages(512)
            .budgets([4_000])
            .run(2)
            .expect("grid runs");
        let single = run.report_for(WorkloadKind::Gups, PolicyKind::FirstTouch);
        assert!(!single.workload.starts_with("corun["));
    }

    #[test]
    fn invalid_corun_cells_fail_before_any_simulation() {
        // A zero quantum is rejected up front with cell context.
        let err = ExperimentGrid::new("invalid-corun")
            .workloads([])
            .corun("pair", tiny_mix())
            .corun_quantum(0)
            .policies([PolicyKind::FirstTouch])
            .run(1);
        assert!(err.is_err());
    }

    fn churn_scenario() -> Scenario {
        let mix = TenantMix::builder()
            .tenant(WorkloadKind::Gups, 512, 5)
            .tenant(WorkloadKind::Silo, 512, 6)
            .build()
            .expect("valid mix");
        Scenario::builder(mix)
            .arrive(1, Nanos::from_micros(200))
            .depart(1, Nanos::from_millis(2))
            .build()
            .expect("valid scenario")
    }

    #[test]
    fn scenario_axis_runs_and_carries_sections() {
        let run = ExperimentGrid::new("scenario")
            .workloads([])
            .scenario("churn", churn_scenario())
            .policies([PolicyKind::FirstTouch])
            .budgets([8_000])
            .run(2)
            .expect("scenario grid runs");
        assert_eq!(run.cells.len(), 1);
        let cell = run.scenario_for("churn", PolicyKind::FirstTouch, "");
        assert_eq!(cell.cell.workload_label(), "churn");
        let corun = cell.corun.as_ref().expect("co-run sections present");
        assert_eq!(corun.tenants.len(), 2);
        let scenario = cell.scenario.as_ref().expect("scenario sections present");
        assert_eq!(scenario.events.len(), 2);
        assert!(!scenario.epochs.is_empty());
        // JSON carries both extension sections under the axis label.
        let json = run.to_json();
        let cells = json.get("cells").and_then(Json::as_arr).unwrap();
        assert_eq!(cells[0].get("workload").and_then(Json::as_str), Some("churn"));
        assert!(cells[0].get("corun").is_some());
        let section = cells[0].get("scenario").expect("scenario section");
        assert_eq!(section.get("arrivals").and_then(Json::as_u64), Some(1));
        assert_eq!(section.get("departures").and_then(Json::as_u64), Some(1));
        let events = section.get("events").and_then(Json::as_arr).unwrap();
        assert_eq!(events[0].get("kind").and_then(Json::as_str), Some("arrive"));
        let epochs = section.get("epochs").and_then(Json::as_arr).unwrap();
        assert!(epochs[0].get("accesses").and_then(Json::as_u64).is_some());
    }

    #[test]
    fn scenario_json_is_thread_count_invariant() {
        let grid = ExperimentGrid::new("scenario-threads")
            .workloads([])
            .scenario("churn", churn_scenario())
            .policies([PolicyKind::FirstTouch, PolicyKind::NeoMem])
            .budgets([6_000]);
        let one = grid.run(1).expect("1 thread").to_json().render_pretty();
        let four = grid.run(4).expect("4 threads").to_json().render_pretty();
        assert_eq!(one, four, "scenario grids must serialise byte-identically at any thread count");
    }

    #[test]
    fn report_for_skips_scenario_cells() {
        let run = ExperimentGrid::new("scenario-shadow")
            .workloads([WorkloadKind::Gups])
            .scenario("gups-churn", churn_scenario())
            .policies([PolicyKind::FirstTouch])
            .rss_pages(512)
            .budgets([4_000])
            .run(2)
            .expect("grid runs");
        let single = run.report_for(WorkloadKind::Gups, PolicyKind::FirstTouch);
        assert!(!single.workload.starts_with("corun["));
    }

    #[test]
    fn no_override_machine_description_reproduces_preset_grids() {
        // A machine file with no overrides must leave every cell type —
        // single-tenant, co-run, scenario — byte-identical to the
        // preset-built path. This is the registry's reproducibility
        // contract.
        let base = ExperimentGrid::new("machine-id")
            .workloads([WorkloadKind::Gups])
            .corun("pair", tiny_mix())
            .scenario("churn", churn_scenario())
            .policies([PolicyKind::FirstTouch, PolicyKind::NeoMem])
            .rss_pages(512)
            .budgets([4_000]);
        let plain = base.clone().run(2).expect("preset grid").to_json().render_pretty();
        let desc =
            MachineDescription::parse("schema = 1\nkind = machine\nname = default\n").unwrap();
        let with_machine =
            base.machine(desc).run(2).expect("machine grid").to_json().render_pretty();
        assert_eq!(plain, with_machine, "no-override machine must not change result bytes");
    }

    #[test]
    fn machine_description_overrides_change_results() {
        let base = ExperimentGrid::new("machine-diff")
            .workloads([WorkloadKind::Gups])
            .policies([PolicyKind::FirstTouch])
            .rss_pages(512)
            .budgets([4_000]);
        let plain = base.clone().run(1).expect("preset grid").to_json().render_pretty();
        let desc = MachineDescription::parse(
            "schema = 1\nkind = machine\nname = far\n\
             [memory]\nslow_read_latency = 900ns\n",
        )
        .unwrap();
        let slower = base.machine(desc).run(1).expect("machine grid").to_json().render_pretty();
        assert_ne!(plain, slower, "a slower far tier must show up in the results");
    }

    fn warm_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("neomem-warm-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn warm_start_reproduces_cold_run_bytes() {
        // Single-tenant, co-run and scenario cells, two policies each:
        // the full cell taxonomy goes through snapshot → restore.
        let grid = ExperimentGrid::new("warm")
            .workloads([WorkloadKind::Gups])
            .corun("pair", tiny_mix())
            .scenario("churn", churn_scenario())
            .policies([PolicyKind::FirstTouch, PolicyKind::NeoMem])
            .rss_pages(512)
            .budgets([6_000]);
        let dir = warm_dir("roundtrip");
        let cold = grid.run(2).expect("cold run").to_json().render_pretty();
        let written = grid.write_snapshots(2, &dir).expect("snapshots written");
        assert_eq!(written, grid.len());
        let (warm, stats) = grid.run_warm(2, &dir).expect("warm run");
        assert_eq!(stats, WarmStats { restored: grid.len(), cold: 0 });
        assert_eq!(
            warm.to_json().render_pretty(),
            cold,
            "warm-started grid JSON must be byte-identical to a cold run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unusable_snapshots_fall_back_to_cold_runs() {
        let grid = ExperimentGrid::new("warm-fallback")
            .workloads([WorkloadKind::Gups])
            .policies([PolicyKind::FirstTouch, PolicyKind::NeoMem])
            .rss_pages(512)
            .budgets([4_000]);
        let cold = grid.run(1).expect("cold").to_json().render_pretty();
        // A directory with no snapshots at all: every cell runs cold.
        let empty = warm_dir("empty");
        let (run, stats) = grid.run_warm(1, &empty).expect("warm run, empty dir");
        assert_eq!(stats, WarmStats { restored: 0, cold: 2 });
        assert_eq!(run.to_json().render_pretty(), cold);
        // A corrupted snapshot file: that cell falls back, the rest
        // restore, and the result bytes don't change either way.
        let dir = warm_dir("corrupt");
        grid.write_snapshots(1, &dir).expect("snapshots written");
        let cells = grid.cells();
        std::fs::write(grid.snapshot_path(&dir, &cells[0]), "{ not json").unwrap();
        let (run, stats) = grid.run_warm(1, &dir).expect("warm run, corrupt file");
        assert_eq!(stats, WarmStats { restored: 1, cold: 1 });
        assert_eq!(run.to_json().render_pretty(), cold);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cell_hash_is_stable_and_tracks_inputs() {
        let grid = ExperimentGrid::new("hash").rss_pages(512);
        let cell = &grid.cells()[0];
        let hash = grid.cell_hash(cell);
        assert_eq!(hash, grid.cell_hash(cell), "hash must be stable");
        let reseeded = ExperimentGrid::new("hash").rss_pages(512).seeds([43]);
        assert_ne!(hash, reseeded.cell_hash(&reseeded.cells()[0]), "seed must change the key");
        let renamed = ExperimentGrid::new("hash2").rss_pages(512);
        assert_ne!(hash, renamed.cell_hash(cell), "grid name must change the key");
        let resized = ExperimentGrid::new("hash").rss_pages(1024);
        assert_ne!(hash, resized.cell_hash(cell), "machine shape must change the key");
    }

    #[test]
    fn cell_keys_match_gate_identity() {
        let cells = ExperimentGrid::new("keys").rss_pages(512).cells();
        assert_eq!(cells[0].key(), "GUPS/NeoMem/r2/a500000/s42/");
    }

    #[test]
    fn grid_run_lookup_and_json() {
        let run = ExperimentGrid::new("mini")
            .workloads([WorkloadKind::Gups])
            .policies([PolicyKind::FirstTouch, PolicyKind::PinnedFast])
            .rss_pages(512)
            .budgets([5_000])
            .run(2)
            .expect("mini grid runs");
        assert_eq!(run.cells.len(), 2);
        let report = run.report_for(WorkloadKind::Gups, PolicyKind::PinnedFast);
        assert!(report.runtime.as_nanos() > 0);
        let json = run.to_json();
        assert_eq!(json.get("name").and_then(Json::as_str), Some("mini"));
        assert_eq!(json.get("cells").and_then(Json::as_arr).unwrap().len(), 2);
    }
}
