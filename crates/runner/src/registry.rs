//! The named machine & scenario registry.
//!
//! A registry is a directory of text-config files — by convention the
//! repository's `scenarios/` — each declaring one machine
//! ([`neomem::sim::MachineDescription`]) or one scenario
//! ([`neomem::workloads::ScenarioConfig`]). Loading the directory
//! parses and validates every file, enforces that each file's stem
//! matches its declared `name` (so `run scenario:<name>` always maps
//! to `scenarios/<name>.cfg`), and resolves cross-file references
//! (a scenario's `machine = <name>`). Lookups are by declared name,
//! with near-miss suggestions on typos.
//!
//! ```no_run
//! use neomem_runner::registry::Registry;
//!
//! let registry = Registry::discover()?;
//! let scenario = registry.scenario("diurnal-web")?;
//! let machine = registry.machine("cxl-prototype")?;
//! # Ok::<(), neomem::Error>(())
//! ```

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use neomem::prelude::*;
use neomem::types::config::ConfigDoc;
use neomem::types::suggest;
use neomem::workloads::ScenarioConfig;
use neomem::Error;

/// File extension of registry entries (`<name>.cfg`).
pub const CONFIG_EXT: &str = "cfg";

/// Default corpus directory name, searched upward from the working
/// directory by [`Registry::discover`].
pub const DEFAULT_DIR: &str = "scenarios";

/// Environment variable overriding the corpus directory.
pub const DIR_ENV: &str = "NEOMEM_SCENARIO_DIR";

/// A loaded, fully validated corpus of named machines and scenarios.
#[derive(Debug, Clone)]
pub struct Registry {
    dir: PathBuf,
    machines: BTreeMap<String, MachineDescription>,
    scenarios: BTreeMap<String, ScenarioConfig>,
}

impl Registry {
    /// Loads every `*.cfg` file under `dir` (non-recursive, sorted by
    /// file name so diagnostics are deterministic).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] — prefixed with the offending
    /// file's path — on the first unreadable, unparsable, or invalid
    /// file; on a file whose stem differs from its declared `name`; on
    /// duplicate names; and on a scenario referencing an unknown
    /// machine. An empty or missing directory is an error: a registry
    /// with nothing in it means the corpus wasn't found.
    pub fn load(dir: impl Into<PathBuf>) -> Result<Self, Error> {
        let dir = dir.into();
        let entries = std::fs::read_dir(&dir).map_err(|e| {
            Error::invalid_config(format!(
                "cannot read scenario directory {}: {e}",
                dir.display()
            ))
        })?;
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(CONFIG_EXT))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(Error::invalid_config(format!(
                "scenario directory {} contains no .{CONFIG_EXT} files",
                dir.display()
            )));
        }
        let mut registry = Registry {
            dir,
            machines: BTreeMap::new(),
            scenarios: BTreeMap::new(),
        };
        for path in &paths {
            registry.load_file(path)?;
        }
        registry.check_cross_refs()?;
        Ok(registry)
    }

    /// Locates and loads the corpus: `$NEOMEM_SCENARIO_DIR` when set,
    /// otherwise the nearest `scenarios/` directory walking up from
    /// the current working directory (so the registry resolves from a
    /// crate subdirectory as well as the repository root).
    ///
    /// # Errors
    ///
    /// As for [`Registry::load`], plus a not-found error when no
    /// corpus directory exists on the walk up. A set but unusable
    /// `$NEOMEM_SCENARIO_DIR` — missing, unreadable, or empty of
    /// `.cfg` files — is an error naming that path: an explicit
    /// override never falls through to walk-up discovery (that would
    /// silently load a different corpus than the one asked for).
    pub fn discover() -> Result<Self, Error> {
        // `var_os`, not `var`: a non-UTF-8 value must still be honored
        // as a path override, not skipped as if the variable were unset.
        if let Some(dir) = std::env::var_os(DIR_ENV) {
            let dir = PathBuf::from(dir);
            if !dir.is_dir() {
                return Err(Error::invalid_config(format!(
                    "{DIR_ENV} points at {}, which is not a readable directory \
                     (unset it to use walk-up discovery)",
                    dir.display()
                )));
            }
            return Self::load(dir);
        }
        let start = std::env::current_dir().map_err(|e| {
            Error::invalid_config(format!("cannot determine working directory: {e}"))
        })?;
        let mut cursor = Some(start.as_path());
        while let Some(dir) = cursor {
            let candidate = dir.join(DEFAULT_DIR);
            if candidate.is_dir() {
                return Self::load(candidate);
            }
            cursor = dir.parent();
        }
        Err(Error::invalid_config(format!(
            "no {DEFAULT_DIR}/ directory found from {} upward (set {DIR_ENV} to override)",
            start.display()
        )))
    }

    /// Parses one file and files it under its declared name.
    fn load_file(&mut self, path: &Path) -> Result<(), Error> {
        let fail = |msg: String| Error::invalid_config(format!("{}: {msg}", path.display()));
        let text = std::fs::read_to_string(path).map_err(|e| fail(e.to_string()))?;
        let doc = ConfigDoc::parse(&text).map_err(|e| fail(e.to_string()))?;
        let kind =
            neomem::workloads::config::doc_kind(&doc).map_err(|e| fail(e.to_string()))?;
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or_default();
        let check_stem = |name: &str| {
            if name == stem {
                Ok(())
            } else {
                Err(fail(format!(
                    "file stem {stem:?} does not match declared name {name:?} \
                     (rename the file or the config)"
                )))
            }
        };
        match kind.as_str() {
            "machine" => {
                let machine =
                    MachineDescription::from_doc(&doc).map_err(|e| fail(e.to_string()))?;
                check_stem(&machine.name)?;
                if self.machines.insert(machine.name.clone(), machine).is_some() {
                    return Err(fail(format!("duplicate machine name {stem:?}")));
                }
            }
            _ => {
                let scenario = ScenarioConfig::from_doc(&doc).map_err(|e| fail(e.to_string()))?;
                check_stem(&scenario.name)?;
                if self.scenarios.insert(scenario.name.clone(), scenario).is_some() {
                    return Err(fail(format!("duplicate scenario name {stem:?}")));
                }
            }
        }
        Ok(())
    }

    /// Every scenario's `machine = <name>` must resolve inside this
    /// registry.
    fn check_cross_refs(&self) -> Result<(), Error> {
        for scenario in self.scenarios.values() {
            if let Some(machine) = &scenario.machine {
                if !self.machines.contains_key(machine) {
                    let hint = suggest::closest(machine, self.machine_names())
                        .map(|s| format!(" (did you mean {s:?}?)"))
                        .unwrap_or_default();
                    return Err(Error::invalid_config(format!(
                        "{}: scenario {:?} references unknown machine {machine:?}{hint}",
                        self.path_of(&scenario.name).display(),
                        scenario.name,
                    )));
                }
            }
        }
        Ok(())
    }

    /// The directory the corpus was loaded from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a named entry lives in (by the stem-equals-name rule).
    pub fn path_of(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.{CONFIG_EXT}"))
    }

    /// Scenario names, sorted.
    pub fn scenario_names(&self) -> impl Iterator<Item = &str> {
        self.scenarios.keys().map(String::as_str)
    }

    /// Machine names, sorted.
    pub fn machine_names(&self) -> impl Iterator<Item = &str> {
        self.machines.keys().map(String::as_str)
    }

    /// Number of entries (machines + scenarios).
    pub fn len(&self) -> usize {
        self.machines.len() + self.scenarios.len()
    }

    /// `true` when the registry holds no entries (never the case for a
    /// successfully loaded corpus).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a scenario by declared name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] listing the available names —
    /// and the closest near-miss, if any — when the name is unknown.
    pub fn scenario(&self, name: &str) -> Result<&ScenarioConfig, Error> {
        self.scenarios
            .get(name)
            .ok_or_else(|| self.unknown("scenario", name, self.scenario_names().collect()))
    }

    /// Looks up a machine by declared name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] listing the available names —
    /// and the closest near-miss, if any — when the name is unknown.
    pub fn machine(&self, name: &str) -> Result<&MachineDescription, Error> {
        self.machines
            .get(name)
            .ok_or_else(|| self.unknown("machine", name, self.machine_names().collect()))
    }

    /// The machine a scenario runs on: its `machine = <name>` entry
    /// resolved, or `None` for the default machine.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the scenario name is
    /// unknown (the machine reference itself was validated at load).
    pub fn machine_for(&self, scenario: &str) -> Result<Option<&MachineDescription>, Error> {
        let config = self.scenario(scenario)?;
        Ok(match &config.machine {
            Some(name) => Some(self.machine(name)?),
            None => None,
        })
    }

    fn unknown(&self, what: &str, name: &str, available: Vec<&str>) -> Error {
        let hint = suggest::closest(name, available.iter().copied())
            .map(|s| format!(" (did you mean {s:?}?)"))
            .unwrap_or_default();
        let menu = if available.is_empty() {
            "none loaded".to_string()
        } else {
            available.join(", ")
        };
        Error::invalid_config(format!(
            "unknown {what} {name:?} in {}; available: {menu}{hint}",
            self.dir.display()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neomem::sim::TierSizing;

    fn corpus(tag: &str, files: &[(&str, &str)]) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("neomem-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for (name, text) in files {
            std::fs::write(dir.join(format!("{name}.{CONFIG_EXT}")), text).unwrap();
        }
        dir
    }

    const MACHINE: &str = "schema = 1\nkind = machine\nname = base\n[memory]\nratio = 4\n";
    const SCENARIO: &str = "\
schema = 1
kind = scenario
name = pair
machine = base

[tenant]
workload = gups
rss_pages = 512
seed = 1

[tenant]
workload = silo
rss_pages = 512
seed = 2
";

    #[test]
    fn loads_and_resolves_by_name() {
        let dir = corpus("ok", &[("base", MACHINE), ("pair", SCENARIO)]);
        let registry = Registry::load(&dir).unwrap();
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.machine("base").unwrap().sizing, TierSizing::Ratio(4));
        assert_eq!(registry.scenario("pair").unwrap().scenario.mix().len(), 2);
        let machine = registry.machine_for("pair").unwrap().expect("machine ref resolves");
        assert_eq!(machine.name, "base");
        assert_eq!(registry.path_of("pair"), dir.join("pair.cfg"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_names_suggest_near_misses() {
        let dir = corpus("nearmiss", &[("base", MACHINE), ("pair", SCENARIO)]);
        let registry = Registry::load(&dir).unwrap();
        let err = registry.scenario("pari").unwrap_err().to_string();
        assert!(err.contains("available: pair"), "{err}");
        assert!(err.contains("did you mean \"pair\"?"), "{err}");
        let err = registry.machine("bse").unwrap_err().to_string();
        assert!(err.contains("did you mean \"base\"?"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stem_must_match_declared_name() {
        let dir = corpus("stem", &[("renamed", MACHINE)]);
        let err = Registry::load(&dir).unwrap_err().to_string();
        assert!(
            err.contains("file stem \"renamed\" does not match declared name \"base\""),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dangling_machine_refs_fail_at_load() {
        let scenario = SCENARIO.replace("machine = base", "machine = bigbox");
        let dir = corpus("dangling", &[("base", MACHINE), ("pair", &scenario)]);
        let err = Registry::load(&dir).unwrap_err().to_string();
        assert!(err.contains("references unknown machine \"bigbox\""), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_errors_carry_the_file_path() {
        let dir = corpus("bad", &[("broken", "schema = 1\nkind = machine\nname = broken\n[memory]\nratio = zero\n")]);
        let err = Registry::load(&dir).unwrap_err().to_string();
        assert!(err.contains("broken.cfg"), "{err}");
        assert!(err.contains("line 5"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directories_are_an_error() {
        let dir = corpus("empty", &[]);
        assert!(Registry::load(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn env_override_pointing_nowhere_errors_with_the_path() {
        // The env override is process-global, so this test covers both
        // the unusable and usable cases in one body (no other test in
        // this crate calls `discover`).
        let missing = std::env::temp_dir().join("neomem-no-such-corpus");
        let _ = std::fs::remove_dir_all(&missing);
        std::env::set_var(DIR_ENV, &missing);
        let err = Registry::discover().unwrap_err().to_string();
        assert!(err.contains(DIR_ENV), "{err}");
        assert!(err.contains(&missing.display().to_string()), "{err}");
        // A usable override still loads normally.
        let dir = corpus("env", &[("base", MACHINE)]);
        std::env::set_var(DIR_ENV, &dir);
        assert_eq!(Registry::discover().unwrap().len(), 1);
        std::env::remove_var(DIR_ENV);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
