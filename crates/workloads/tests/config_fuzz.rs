//! Property-based tests for the scenario-file reader: no input — junk
//! or scenario-shaped — ever panics [`ScenarioConfig::parse`]; every
//! outcome is a parsed scenario or a `ConfigError`.

use neomem_workloads::config::ScenarioConfig;
use proptest::prelude::*;

/// A plausible identifier for names/values.
fn ident() -> impl Strategy<Value = String> {
    let chars: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789_-".chars().collect();
    prop::collection::vec(prop::sample::select(chars), 1..12)
        .prop_map(|cs| cs.into_iter().collect())
}

/// One scenario-file-shaped line: section headers, plausible keys with
/// plausible-to-absurd values, comments, or junk.
fn line() -> impl Strategy<Value = String> {
    let keys = prop::sample::select(vec![
        "schema", "kind", "name", "title", "machine", "quantum", "workload", "rss_pages",
        "seed", "weight", "at", "tenant", "action", "events", "ratio", "duration",
        "latency_x", "bandwidth_div", "frames",
    ]);
    let values = prop_oneof![
        ident(),
        (0u64..u64::MAX).prop_map(|n| n.to_string()),
        (0u64..10_000).prop_map(|n| format!("{n}ms")),
        prop::sample::select(vec![
            "scenario", "machine", "gups", "silo", "redis", "arrive", "depart", "set-weight",
            "true", "\"quoted text\"", "1, 2, 3", "30GiB/s", "512KiB", "-1", "1e999",
            "neoprof-outage", "link-degraded", "capacity-loss", "neoprof-outge",
        ])
        .prop_map(str::to_string),
    ];
    prop_oneof![
        prop::sample::select(vec![
            "[tenant]", "[event]", "[phase]", "[fault]", "[memory]", "[junk]",
        ])
        .prop_map(str::to_string),
        (keys, values).prop_map(|(k, v)| format!("{k} = {v}")),
        (ident(), ident()).prop_map(|(k, v)| format!("{k} = {v}")),
        ident().prop_map(|c| format!("# {c}")),
        Just(String::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    /// Arbitrary printable text never panics the scenario reader.
    #[test]
    fn arbitrary_text_never_panics(
        chars in prop::collection::vec(
            prop::sample::select(
                (b' '..=b'~').map(char::from).chain(['\n', '\t']).collect::<Vec<_>>(),
            ),
            0..400,
        ),
    ) {
        let input: String = chars.into_iter().collect();
        let _ = ScenarioConfig::parse(&input);
    }

    /// Scenario-shaped documents — valid headers, shuffled sections,
    /// plausible and absurd values — never panic either. This drives
    /// the reader much deeper than raw character soup: most inputs get
    /// past the grammar into schema and semantic validation.
    #[test]
    fn scenario_shaped_documents_never_panic(
        lines in prop::collection::vec(line(), 0..30),
        header in prop::bool::ANY,
    ) {
        let mut text = String::new();
        if header {
            text.push_str("schema = 1\nkind = scenario\nname = fuzz\n");
        }
        for l in &lines {
            text.push_str(l);
            text.push('\n');
        }
        let _ = ScenarioConfig::parse(&text);
    }

    /// Hostile `[fault]` sections — shuffled kinds, mismatched keys,
    /// absurd times and counts — never panic; the reader either builds
    /// a valid plan or reports a `ConfigError`.
    #[test]
    fn junk_fault_sections_never_panic(
        sections in prop::collection::vec(
            (
                prop::sample::select(vec![
                    "neoprof-outage", "link-degraded", "capacity-loss", "meteor-strike", "",
                ]),
                prop::collection::vec(
                    (
                        prop::sample::select(vec![
                            "kind", "at", "duration", "latency_x", "bandwidth_div", "frames",
                            "tenant", "junk",
                        ]),
                        prop_oneof![
                            (0u64..u64::MAX).prop_map(|n| n.to_string()),
                            (0u64..10_000).prop_map(|n| format!("{n}us")),
                            ident(),
                        ],
                    ),
                    0..6,
                ),
            ),
            1..5,
        ),
    ) {
        let mut text = String::from(
            "schema = 1\nkind = scenario\nname = fuzz\n\
             [tenant]\nworkload = gups\nrss_pages = 64\nseed = 1\n",
        );
        for (kind, keys) in &sections {
            text.push_str("[fault]\n");
            if !kind.is_empty() {
                text.push_str(&format!("kind = {kind}\n"));
            }
            for (k, v) in keys {
                text.push_str(&format!("{k} = {v}\n"));
            }
        }
        let _ = ScenarioConfig::parse(&text);
    }
}
