//! DeathStarBench: a micro-service mix.
//!
//! DeathStarBench (social-network style) blends (a) hot per-user session
//! and cache state read with zipf popularity, (b) append-heavy logging/
//! tracing, and (c) a slowly *drifting* working set as request mixes and
//! content popularity shift. The drift is what stresses a tiering
//! system's adaptivity and why the paper calls it "a representative
//! data-center benchmark".

use neomem_types::{Access, AccessKind, VirtPage};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::perm::Permutation;
use crate::zipf::Zipf;
use crate::{Marker, Workload, WorkloadEvent};

/// Fraction of the footprint for session/cache state.
const SESSION_FRACTION: f64 = 0.3;
/// Fraction for log/trace buffers.
const LOG_FRACTION: f64 = 0.2;
/// Accesses between working-set drift steps.
const DRIFT_PERIOD: u64 = 200_000;
/// Fraction of the content region that is "currently popular".
const WINDOW_FRACTION: f64 = 0.2;

/// The DeathStarBench generator.
#[derive(Debug, Clone)]
pub struct DeathStar {
    rss_pages: u64,
    session_pages: u64,
    log_pages: u64,
    content_pages: u64,
    session_skew: Zipf,
    /// Session rank → page: hot sessions are heap-scattered.
    session_placement: Permutation,
    rng: SmallRng,
    log_cursor: u64,
    window_base: u64,
    accesses: u64,
    drifts: u32,
    queued: Vec<Access>,
}

impl DeathStar {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if `rss_pages < 64`.
    pub fn new(rss_pages: u64, seed: u64) -> Self {
        assert!(rss_pages >= 64, "deathstar needs at least 64 pages");
        let session_pages = ((rss_pages as f64 * SESSION_FRACTION) as u64).max(8);
        let log_pages = ((rss_pages as f64 * LOG_FRACTION) as u64).max(4);
        let content_pages = rss_pages - session_pages - log_pages;
        Self {
            rss_pages,
            session_pages,
            log_pages,
            content_pages,
            session_skew: Zipf::new(session_pages as usize, 0.9),
            session_placement: Permutation::new(session_pages as usize, seed),
            rng: SmallRng::seed_from_u64(seed ^ 0x4453_4221),
            log_cursor: 0,
            window_base: 0,
            accesses: 0,
            drifts: 0,
            queued: Vec::new(),
        }
    }

    /// Number of drift steps so far.
    pub fn drifts(&self) -> u32 {
        self.drifts
    }

    fn window_pages(&self) -> u64 {
        ((self.content_pages as f64 * WINDOW_FRACTION) as u64).max(1)
    }
}

impl Workload for DeathStar {
    crate::impl_batched_fill_events!();

    fn name(&self) -> &'static str {
        "DeathStarBench"
    }

    fn rss_pages(&self) -> u64 {
        self.rss_pages
    }

    fn next_event(&mut self) -> WorkloadEvent {
        if let Some(a) = self.queued.pop() {
            return WorkloadEvent::Access(a);
        }
        self.accesses += 1;
        if self.accesses.is_multiple_of(DRIFT_PERIOD) {
            // Shift the popular-content window by half its width.
            self.drifts += 1;
            self.window_base =
                (self.window_base + self.window_pages() / 2) % (self.content_pages - self.window_pages());
            return WorkloadEvent::Marker(Marker { id: self.drifts, label: "popularity-drift" });
        }
        // One request: session read (+5% update), content read from the
        // popular window (80%) or the long tail, and a log append.
        let session = self.session_placement.apply(self.session_skew.sample(&mut self.rng));
        let session_kind =
            if self.rng.gen_bool(0.05) { AccessKind::Write } else { AccessKind::Read };
        self.queued.push(Access::new(
            VirtPage::new(session),
            self.rng.gen_range(0..64u8),
            session_kind,
        ));
        let content_base = self.session_pages + self.log_pages;
        let content = if self.rng.gen_bool(0.8) {
            content_base + self.window_base + self.rng.gen_range(0..self.window_pages())
        } else {
            content_base + self.rng.gen_range(0..self.content_pages)
        };
        self.queued.push(Access::new(
            VirtPage::new(content.min(self.rss_pages - 1)),
            self.rng.gen_range(0..64u8),
            AccessKind::Read,
        ));
        let log = self.session_pages + self.log_cursor % self.log_pages;
        self.log_cursor += 1;
        WorkloadEvent::Access(Access::new(
            VirtPage::new(log),
            (self.log_cursor % 64) as u8,
            AccessKind::Write,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_mix_has_all_three_components() {
        let mut d = DeathStar::new(2048, 1);
        let (mut session, mut log, mut content) = (0u32, 0u32, 0u32);
        for _ in 0..30_000 {
            if let WorkloadEvent::Access(a) = d.next_event() {
                let p = a.vpage.index();
                if p < d.session_pages {
                    session += 1;
                } else if p < d.session_pages + d.log_pages {
                    log += 1;
                } else {
                    content += 1;
                }
            }
        }
        assert!(session > 0 && log > 0 && content > 0, "{session}/{log}/{content}");
    }

    #[test]
    fn drift_markers_move_window() {
        let mut d = DeathStar::new(1024, 2);
        let before = d.window_base;
        let mut saw = false;
        for _ in 0..(DRIFT_PERIOD as usize * 4) {
            if let WorkloadEvent::Marker(m) = d.next_event() {
                assert_eq!(m.label, "popularity-drift");
                saw = true;
                break;
            }
        }
        assert!(saw, "drift marker expected within one period of events");
        assert_ne!(d.window_base, before);
        assert_eq!(d.drifts(), 1);
    }

    #[test]
    fn popular_window_concentrates_content_reads() {
        let mut d = DeathStar::new(4096, 3);
        let content_base = d.session_pages + d.log_pages;
        let win = (d.window_base, d.window_base + d.window_pages());
        let (mut inside, mut outside) = (0u64, 0u64);
        for _ in 0..60_000 {
            if let WorkloadEvent::Access(a) = d.next_event() {
                let p = a.vpage.index();
                if p >= content_base {
                    let rel = p - content_base;
                    if rel >= win.0 && rel < win.1 {
                        inside += 1;
                    } else {
                        outside += 1;
                    }
                }
            }
            if d.drifts() > 0 {
                break; // window moved; stop counting
            }
        }
        assert!(inside > outside, "window must dominate: {inside} vs {outside}");
    }
}
