//! Dynamic-tenancy scenarios: tenant arrival/departure timelines and
//! phased workloads.
//!
//! A [`TenantMix`] describes *who* shares the machine; a [`Scenario`]
//! additionally describes *when*. It wraps a mix (every tenant that
//! ever exists, so the address-space layout is fixed for the whole run)
//! with a validated, time-sorted list of [`TenantEvent`]s — arrivals,
//! departures and weight changes at virtual-time points — plus optional
//! per-tenant phase schedules ([`PhasedWorkload`]) that switch a
//! tenant's generator kind/working-set at deterministic event-count
//! boundaries.
//!
//! The co-run engine's `DynamicSchedule` slice scheduler
//! (`neomem_sim`) consumes a scenario: tenants whose first event is an
//! [`TenantEventKind::Arrive`] start idle and are admitted at their
//! arrival time; departed tenants have their fast-tier pages reclaimed
//! through the normal eviction path. A scenario with no events and no
//! phases is exactly the static mix — the scheduler-equivalence suite
//! holds that bit-for-bit.

use neomem_types::{FaultPlan, Nanos};

use crate::{Marker, TenantMix, Workload, WorkloadEvent, WorkloadKind};

/// What happens to a tenant at a [`TenantEvent`]'s timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantEventKind {
    /// The tenant starts running. A tenant whose *first* event is an
    /// arrival is idle from time zero until then.
    Arrive,
    /// The tenant stops running; its fast-tier pages are reclaimed
    /// through the normal eviction (demotion) path.
    Depart,
    /// The tenant's interleave weight changes to the given value.
    SetWeight(u32),
}

/// One point of a scenario timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantEvent {
    /// Virtual time at which the event takes effect (applied at the
    /// first slice boundary at or after this instant).
    pub at: Nanos,
    /// Index of the tenant in the scenario's mix.
    pub tenant: usize,
    /// What happens.
    pub kind: TenantEventKind,
}

/// One phase of a [`PhasedWorkload`]: a generator kind, its working
/// set, and how many events the phase lasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpec {
    /// Generator run during the phase.
    pub kind: WorkloadKind,
    /// The phase's working set in 4 KiB pages (≤ the tenant's declared
    /// footprint — phases live inside the tenant's address-space slot).
    pub rss_pages: u64,
    /// Events the phase emits before the next phase starts.
    pub events: u64,
}

/// A workload that cycles through [`PhaseSpec`]s, switching generator
/// kind and working set at deterministic event-count boundaries.
///
/// Each boundary emits one [`WorkloadEvent::Marker`] (label
/// `"phase-shift"`, id = number of completed phases) and then rebuilds
/// the next phase's generator with a seed derived from the base seed
/// and the phase-entry ordinal — so re-entering a phase on a later
/// cycle produces a fresh, decorrelated stream while the whole
/// composite stays a pure function of `(phases, seed)`.
///
/// The [`Workload::fill_events`] override pulls whole within-phase runs
/// through the inner generator's own batched path, so the batch
/// contract (bit-identical to `n` successive
/// [`Workload::next_event`] calls) holds across phase edges.
///
/// ```
/// use neomem_workloads::{PhaseSpec, PhasedWorkload, Workload, WorkloadKind};
///
/// let phases = vec![
///     PhaseSpec { kind: WorkloadKind::Gups, rss_pages: 1024, events: 5_000 },
///     PhaseSpec { kind: WorkloadKind::Silo, rss_pages: 512, events: 5_000 },
/// ];
/// let mut w = PhasedWorkload::new(phases, 1024, 7).expect("valid phases");
/// assert_eq!(w.rss_pages(), 1024);
/// // The stream switches from GUPS-shaped to Silo-shaped after 5 000
/// // events, announced by a phase-shift marker.
/// let mut saw_marker = false;
/// for _ in 0..5_001 {
///     if let neomem_workloads::WorkloadEvent::Marker(m) = w.next_event() {
///         saw_marker |= m.label == "phase-shift";
///     }
/// }
/// assert!(saw_marker);
/// ```
pub struct PhasedWorkload {
    phases: Vec<PhaseSpec>,
    rss_pages: u64,
    seed: u64,
    /// Index into `phases` of the running phase.
    current: usize,
    /// Events the running phase has emitted so far.
    produced: u64,
    /// Total phase entries so far (seeds later cycles and ids markers).
    entries: u32,
    inner: Box<dyn Workload>,
}

impl std::fmt::Debug for PhasedWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhasedWorkload")
            .field("phases", &self.phases)
            .field("rss_pages", &self.rss_pages)
            .field("seed", &self.seed)
            .field("current", &self.current)
            .field("produced", &self.produced)
            .field("entries", &self.entries)
            .finish_non_exhaustive()
    }
}

/// SplitMix64 finalizer — decorrelates per-phase-entry seeds.
fn mix_seed(seed: u64, entry: u64) -> u64 {
    let mut z = seed ^ entry.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl PhasedWorkload {
    /// Builds the composite over `phases`, with `rss_pages` as the
    /// declared footprint (the tenant's address-space slot).
    ///
    /// # Errors
    ///
    /// Returns a message when `phases` is empty, any phase has zero
    /// events or a zero working set, or a phase's working set exceeds
    /// `rss_pages`.
    pub fn new(phases: Vec<PhaseSpec>, rss_pages: u64, seed: u64) -> Result<Self, String> {
        if phases.is_empty() {
            return Err("a phased workload needs at least one phase".into());
        }
        for (i, phase) in phases.iter().enumerate() {
            if phase.events == 0 {
                return Err(format!("phase {i} ({}) has zero events", phase.kind.label()));
            }
            if phase.rss_pages == 0 {
                return Err(format!("phase {i} ({}) has a zero working set", phase.kind.label()));
            }
            if phase.rss_pages > rss_pages {
                return Err(format!(
                    "phase {i} ({}) working set {} exceeds the declared footprint {}",
                    phase.kind.label(),
                    phase.rss_pages,
                    rss_pages
                ));
            }
        }
        let inner = phases[0].kind.build(phases[0].rss_pages, mix_seed(seed, 0));
        Ok(Self { phases, rss_pages, seed, current: 0, produced: 0, entries: 0, inner })
    }

    /// The phase schedule.
    pub fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    /// Advances to the next phase (cyclic) and rebuilds its generator.
    fn switch(&mut self) -> Marker {
        self.entries += 1;
        self.current = (self.current + 1) % self.phases.len();
        self.produced = 0;
        let phase = self.phases[self.current];
        self.inner = phase.kind.build(phase.rss_pages, mix_seed(self.seed, self.entries as u64));
        Marker { id: self.entries, label: "phase-shift" }
    }
}

impl Workload for PhasedWorkload {
    fn name(&self) -> &'static str {
        "Phased"
    }

    fn rss_pages(&self) -> u64 {
        self.rss_pages
    }

    fn next_event(&mut self) -> WorkloadEvent {
        if self.produced == self.phases[self.current].events {
            return WorkloadEvent::Marker(self.switch());
        }
        self.produced += 1;
        self.inner.next_event()
    }

    fn fill_events(&mut self, buf: &mut Vec<WorkloadEvent>, n: usize) {
        // Within-phase runs go through the inner generator's own
        // batched path; boundaries interleave the phase-shift marker at
        // exactly the position `next_event` would emit it.
        buf.reserve(n);
        let mut remaining = n as u64;
        while remaining > 0 {
            let left_in_phase = self.phases[self.current].events - self.produced;
            if left_in_phase == 0 {
                let marker = self.switch();
                buf.push(WorkloadEvent::Marker(marker));
                remaining -= 1;
                continue;
            }
            let take = remaining.min(left_in_phase);
            self.inner.fill_events(buf, take as usize);
            self.produced += take;
            remaining -= take;
        }
    }
}

/// A dynamic-tenancy timeline over a [`TenantMix`].
///
/// Build one with [`Scenario::builder`]:
///
/// ```
/// use neomem_types::Nanos;
/// use neomem_workloads::{Scenario, TenantMix, WorkloadKind};
///
/// let mix = TenantMix::builder()
///     .tenant(WorkloadKind::Silo, 2048, 7)
///     .tenant(WorkloadKind::Gups, 2048, 8)
///     .build()
///     .expect("valid mix");
/// // Tenant 1 arrives 5 ms in and departs at 20 ms.
/// let scenario = Scenario::builder(mix)
///     .arrive(1, Nanos::from_millis(5))
///     .depart(1, Nanos::from_millis(20))
///     .build()
///     .expect("valid scenario");
/// assert_eq!(scenario.initially_active(), vec![true, false]);
/// assert_eq!(scenario.arrivals(), 1);
/// assert_eq!(scenario.departures(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    mix: TenantMix,
    /// Sorted by `at` (stable: ties keep insertion order).
    events: Vec<TenantEvent>,
    /// Per-tenant phase schedule; `None` = the mix's plain generator.
    phases: Vec<Option<Vec<PhaseSpec>>>,
    /// Machine faults injected during the run; empty = healthy machine
    /// (bit-identical to a scenario without fault support).
    faults: FaultPlan,
}

impl Scenario {
    /// Starts a scenario over `mix` with no events and no phases.
    pub fn builder(mix: TenantMix) -> ScenarioBuilder {
        let tenants = mix.len();
        ScenarioBuilder {
            mix,
            events: Vec::new(),
            phases: vec![None; tenants],
            faults: FaultPlan::empty(),
            error: None,
        }
    }

    /// A scenario with no events and no phases — scheduling-equivalent
    /// to running `mix` through the static round-robin.
    pub fn steady(mix: TenantMix) -> Self {
        Self::builder(mix).build().expect("event-free scenarios are always valid")
    }

    /// The underlying mix (every tenant that ever exists).
    pub fn mix(&self) -> &TenantMix {
        &self.mix
    }

    /// The timeline, sorted by time.
    pub fn events(&self) -> &[TenantEvent] {
        &self.events
    }

    /// The per-tenant phase schedules, in mix order.
    pub fn phases(&self) -> &[Option<Vec<PhaseSpec>>] {
        &self.phases
    }

    /// The machine-fault timeline injected during the run (empty for a
    /// healthy machine).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Which tenants run from time zero: everyone except tenants whose
    /// first event is an [`TenantEventKind::Arrive`].
    pub fn initially_active(&self) -> Vec<bool> {
        let mut active = vec![true; self.mix.len()];
        let mut seen = vec![false; self.mix.len()];
        for event in &self.events {
            if !seen[event.tenant] {
                seen[event.tenant] = true;
                if event.kind == TenantEventKind::Arrive {
                    active[event.tenant] = false;
                }
            }
        }
        active
    }

    /// Number of arrival events.
    pub fn arrivals(&self) -> usize {
        self.events.iter().filter(|e| e.kind == TenantEventKind::Arrive).count()
    }

    /// Number of departure events.
    pub fn departures(&self) -> usize {
        self.events.iter().filter(|e| e.kind == TenantEventKind::Depart).count()
    }

    /// Number of weight-change events.
    pub fn weight_changes(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, TenantEventKind::SetWeight(_))).count()
    }

    /// Builds tenant `i`'s generator: its phase schedule when one is
    /// set, the mix's plain generator otherwise.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range — scenario construction
    /// validates every referenced tenant index.
    pub fn build_workload(&self, i: usize) -> Box<dyn Workload> {
        let spec = self.mix.tenants()[i];
        match &self.phases[i] {
            Some(phases) => Box::new(
                PhasedWorkload::new(phases.clone(), spec.rss_pages, spec.seed)
                    .expect("phases validated at scenario build"),
            ),
            None => spec.kind.build(spec.rss_pages, spec.seed),
        }
    }

    /// A copy with every tenant seed re-derived from `base_seed`
    /// (tenant `i` gets `base_seed + i`), mirroring
    /// [`TenantMix::reseeded`] so experiment grids can put scenarios on
    /// a seed axis. Events and phase schedules are unchanged.
    pub fn reseeded(&self, base_seed: u64) -> Self {
        Self {
            mix: self.mix.reseeded(base_seed),
            events: self.events.clone(),
            phases: self.phases.clone(),
            faults: self.faults.clone(),
        }
    }

    /// A compact label: the mix label plus the event count, e.g.
    /// `GUPS+Silo@3ev`.
    pub fn label(&self) -> String {
        let mut label = if self.events.is_empty() {
            self.mix.label()
        } else {
            format!("{}@{}ev", self.mix.label(), self.events.len())
        };
        if !self.faults.is_empty() {
            label.push_str(&format!("+{}flt", self.faults.len()));
        }
        label
    }
}

/// Builder for [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    mix: TenantMix,
    events: Vec<TenantEvent>,
    phases: Vec<Option<Vec<PhaseSpec>>>,
    faults: FaultPlan,
    /// First violation hit by an infallible builder method; reported
    /// by [`ScenarioBuilder::build`].
    error: Option<String>,
}

impl ScenarioBuilder {
    /// Schedules tenant `tenant` to arrive at `at`. A tenant whose
    /// first event is an arrival is idle from time zero.
    pub fn arrive(self, tenant: usize, at: Nanos) -> Self {
        self.event(TenantEvent { at, tenant, kind: TenantEventKind::Arrive })
    }

    /// Schedules tenant `tenant` to depart at `at`.
    pub fn depart(self, tenant: usize, at: Nanos) -> Self {
        self.event(TenantEvent { at, tenant, kind: TenantEventKind::Depart })
    }

    /// Schedules tenant `tenant`'s interleave weight to change to
    /// `weight` at `at`.
    pub fn set_weight(self, tenant: usize, at: Nanos, weight: u32) -> Self {
        self.event(TenantEvent { at, tenant, kind: TenantEventKind::SetWeight(weight) })
    }

    /// Adds a fully specified event.
    pub fn event(mut self, event: TenantEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Injects a machine-fault timeline (see
    /// [`neomem_types::FaultPlan`]) into the run. Replaces any plan set
    /// earlier. The plan is validated by its own builder; scenarios
    /// accept it as-is.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Gives tenant `tenant` a phase schedule (see [`PhasedWorkload`]).
    /// Replaces any schedule set earlier for the same tenant.
    pub fn phased(mut self, tenant: usize, phases: Vec<PhaseSpec>) -> Self {
        if tenant < self.phases.len() {
            self.phases[tenant] = Some(phases);
        } else if self.error.is_none() {
            // Remember the violation; build() reports it (the builder
            // itself stays infallible for chaining).
            self.error = Some(format!(
                "phase schedule references tenant {tenant} of a {}-tenant mix",
                self.phases.len()
            ));
        }
        self
    }

    /// Validates, sorts and builds the scenario.
    ///
    /// Events are stably sorted by time (ties keep insertion order).
    /// Validation rules:
    ///
    /// * every event's tenant index is in range;
    /// * weight changes set a non-zero weight;
    /// * per tenant, arrivals and departures alternate: a tenant whose
    ///   first event is an arrival starts idle, everyone else starts
    ///   active; departures require the tenant to be active, arrivals
    ///   require it idle;
    /// * phase schedules are non-empty, with non-zero event counts and
    ///   working sets that fit the tenant's declared footprint.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violation.
    pub fn build(mut self) -> Result<Scenario, String> {
        if let Some(error) = self.error {
            return Err(error);
        }
        let tenants = self.mix.len();
        for event in &self.events {
            if event.tenant >= tenants {
                return Err(format!(
                    "event at {} references tenant {} of a {}-tenant mix",
                    event.at, event.tenant, tenants
                ));
            }
            if let TenantEventKind::SetWeight(w) = event.kind {
                if w == 0 {
                    return Err(format!(
                        "event at {} sets tenant {}'s weight to zero",
                        event.at, event.tenant
                    ));
                }
            }
        }
        self.events.sort_by_key(|e| e.at);
        // Arrival/departure alternation per tenant.
        let mut active = vec![true; tenants];
        let mut seen = vec![false; tenants];
        for event in &self.events {
            let t = event.tenant;
            if !seen[t] {
                seen[t] = true;
                if event.kind == TenantEventKind::Arrive {
                    active[t] = false;
                }
            }
            match event.kind {
                TenantEventKind::Arrive => {
                    if active[t] {
                        return Err(format!(
                            "tenant {t} arrives at {} while already running",
                            event.at
                        ));
                    }
                    active[t] = true;
                }
                TenantEventKind::Depart => {
                    if !active[t] {
                        return Err(format!(
                            "tenant {t} departs at {} while not running",
                            event.at
                        ));
                    }
                    active[t] = false;
                }
                TenantEventKind::SetWeight(_) => {}
            }
        }
        // Phase schedules: validate through the PhasedWorkload
        // constructor so the rules can never diverge.
        for (i, phases) in self.phases.iter().enumerate() {
            if let Some(phases) = phases {
                let spec = self.mix.tenants()[i];
                PhasedWorkload::new(phases.clone(), spec.rss_pages, spec.seed)
                    .map_err(|e| format!("tenant {i} phase schedule: {e}"))?;
            }
        }
        Ok(Scenario {
            mix: self.mix,
            events: self.events,
            phases: self.phases,
            faults: self.faults,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix_2() -> TenantMix {
        TenantMix::builder()
            .tenant(WorkloadKind::Gups, 1024, 3)
            .tenant(WorkloadKind::Silo, 1024, 5)
            .build()
            .unwrap()
    }

    #[test]
    fn steady_scenario_has_no_events_and_everyone_active() {
        let s = Scenario::steady(mix_2());
        assert!(s.events().is_empty());
        assert_eq!(s.initially_active(), vec![true, true]);
        assert_eq!(s.label(), "GUPS+Silo");
        assert_eq!((s.arrivals(), s.departures(), s.weight_changes()), (0, 0, 0));
    }

    #[test]
    fn events_sort_stably_by_time() {
        let s = Scenario::builder(mix_2())
            .depart(1, Nanos::from_millis(9))
            .set_weight(0, Nanos::from_millis(3), 4)
            .arrive(1, Nanos::from_millis(3))
            .build()
            .unwrap();
        let times: Vec<_> = s.events().iter().map(|e| e.at).collect();
        assert_eq!(times, vec![Nanos::from_millis(3), Nanos::from_millis(3), Nanos::from_millis(9)]);
        // Stable: the weight change was inserted before the arrival.
        assert_eq!(s.events()[0].kind, TenantEventKind::SetWeight(4));
        assert_eq!(s.events()[1].kind, TenantEventKind::Arrive);
        // Tenant 1's first event is that arrival, so it starts idle.
        assert_eq!(s.initially_active(), vec![true, false]);
        assert_eq!(s.label(), "GUPS+Silo@3ev");
    }

    #[test]
    fn alternation_and_ranges_validated() {
        let at = Nanos::from_millis(1);
        let later = Nanos::from_millis(2);
        assert!(
            Scenario::builder(mix_2()).depart(5, at).build().is_err(),
            "tenant index out of range"
        );
        assert!(
            Scenario::builder(mix_2()).set_weight(0, at, 0).build().is_err(),
            "zero weight"
        );
        assert!(
            Scenario::builder(mix_2()).depart(0, at).depart(0, later).build().is_err(),
            "double departure"
        );
        // An initially-active tenant can depart and re-arrive.
        assert!(Scenario::builder(mix_2())
            .depart(0, at)
            .arrive(0, later)
            .build()
            .is_ok());
    }

    #[test]
    fn arrive_first_means_initially_idle_and_is_valid() {
        let s = Scenario::builder(mix_2()).arrive(1, Nanos::from_millis(4)).build().unwrap();
        assert_eq!(s.initially_active(), vec![true, false]);
        // A second arrival without a departure in between is invalid.
        assert!(Scenario::builder(mix_2())
            .arrive(1, Nanos::from_millis(4))
            .arrive(1, Nanos::from_millis(8))
            .build()
            .is_err());
    }

    #[test]
    fn reseeded_keeps_timeline_and_phases() {
        let s = Scenario::builder(mix_2())
            .depart(1, Nanos::from_millis(7))
            .phased(
                0,
                vec![PhaseSpec { kind: WorkloadKind::Gups, rss_pages: 512, events: 100 }],
            )
            .build()
            .unwrap()
            .reseeded(100);
        assert_eq!(s.mix().tenants()[0].seed, 100);
        assert_eq!(s.mix().tenants()[1].seed, 101);
        assert_eq!(s.events().len(), 1);
        assert!(s.phases()[0].is_some());
    }

    #[test]
    fn fault_plan_rides_along_and_marks_the_label() {
        let plan = FaultPlan::builder()
            .outage(Nanos::from_millis(1), Nanos::from_millis(2))
            .link_degraded(Nanos::from_millis(5), Nanos::from_millis(1), 4, 2)
            .build()
            .unwrap();
        let s = Scenario::builder(mix_2())
            .depart(1, Nanos::from_millis(9))
            .faults(plan.clone())
            .build()
            .unwrap();
        assert_eq!(s.faults(), &plan);
        assert_eq!(s.label(), "GUPS+Silo@1ev+2flt");
        // Reseeding keeps the plan.
        assert_eq!(s.reseeded(7).faults(), &plan);
        // Healthy scenarios keep the pre-fault label.
        assert_eq!(Scenario::steady(mix_2()).label(), "GUPS+Silo");
    }

    #[test]
    fn phase_schedules_validated_at_build() {
        let phase = |rss, events| PhaseSpec { kind: WorkloadKind::Gups, rss_pages: rss, events };
        assert!(Scenario::builder(mix_2()).phased(0, vec![]).build().is_err(), "empty");
        assert!(
            Scenario::builder(mix_2()).phased(0, vec![phase(512, 0)]).build().is_err(),
            "zero events"
        );
        assert!(
            Scenario::builder(mix_2()).phased(0, vec![phase(0, 10)]).build().is_err(),
            "zero rss"
        );
        assert!(
            Scenario::builder(mix_2()).phased(0, vec![phase(2048, 10)]).build().is_err(),
            "working set exceeds footprint"
        );
        assert!(
            Scenario::builder(mix_2()).phased(7, vec![phase(512, 10)]).build().is_err(),
            "tenant index out of range"
        );
        let ok = Scenario::builder(mix_2()).phased(0, vec![phase(512, 10)]).build().unwrap();
        assert!(ok.build_workload(0).rss_pages() == 1024, "declared footprint kept");
    }

    #[test]
    fn phased_workload_switches_kind_at_boundaries() {
        let phases = vec![
            PhaseSpec { kind: WorkloadKind::Gups, rss_pages: 1024, events: 200 },
            PhaseSpec { kind: WorkloadKind::Silo, rss_pages: 512, events: 300 },
        ];
        let mut w = PhasedWorkload::new(phases, 1024, 9).unwrap();
        assert_eq!(w.name(), "Phased");
        assert_eq!(w.rss_pages(), 1024);
        let mut markers = Vec::new();
        for i in 0..1002 {
            if let WorkloadEvent::Marker(m) = w.next_event() {
                if m.label == "phase-shift" {
                    markers.push((i, m.id));
                }
            }
        }
        // Boundaries at event 200 (into Silo) and 501 (back to GUPS):
        // the marker itself occupies one event slot.
        assert_eq!(markers[0], (200, 1));
        assert_eq!(markers[1], (501, 2));
        // Pages stay inside each phase's working set, which stays
        // inside the declared footprint.
        let mut w2 = PhasedWorkload::new(w.phases().to_vec(), 1024, 9).unwrap();
        for _ in 0..2000 {
            if let WorkloadEvent::Access(a) = w2.next_event() {
                assert!(a.vpage.index() < 1024);
            }
        }
    }

    #[test]
    fn phased_fill_events_matches_next_event_across_edges() {
        let phases = vec![
            PhaseSpec { kind: WorkloadKind::Gups, rss_pages: 768, events: 97 },
            PhaseSpec { kind: WorkloadKind::Silo, rss_pages: 512, events: 41 },
            PhaseSpec { kind: WorkloadKind::Btree, rss_pages: 768, events: 63 },
        ];
        for batch in [1usize, 7, 64, 257] {
            let mut reference = PhasedWorkload::new(phases.clone(), 768, 11).unwrap();
            let mut batched = PhasedWorkload::new(phases.clone(), 768, 11).unwrap();
            let mut buf = Vec::new();
            let mut compared = 0usize;
            while compared < 2000 {
                buf.clear();
                batched.fill_events(&mut buf, batch);
                assert_eq!(buf.len(), batch, "short batch at batch={batch}");
                for ev in &buf {
                    assert_eq!(*ev, reference.next_event(), "batch={batch}");
                    compared += 1;
                }
            }
        }
    }

    #[test]
    fn phase_cycles_are_decorrelated() {
        // The same phase re-entered on the next cycle gets a different
        // seed, so the stream does not repeat verbatim.
        // 3000 events per phase with a 256-page set: long enough that
        // the seeded random part dominates GUPS's deterministic
        // table-init sweep (4 writes per page = 1024 init events).
        let phases = vec![PhaseSpec { kind: WorkloadKind::Gups, rss_pages: 256, events: 3000 }];
        let mut w = PhasedWorkload::new(phases, 256, 3).unwrap();
        let first: Vec<WorkloadEvent> = (0..3000).map(|_| w.next_event()).collect();
        let _boundary = w.next_event(); // the phase-shift marker
        let second: Vec<WorkloadEvent> = (0..3000).map(|_| w.next_event()).collect();
        assert_ne!(first, second, "cycles must not repeat verbatim");
    }
}
