//! Btree: Mitosis-style in-memory index lookups.
//!
//! Each lookup walks root → internal → leaf. Upper levels occupy few
//! pages but are touched on *every* lookup (extremely hot); leaves are
//! uniform-random (cold). This produces the clean hot/cold split that
//! lets accurate profilers shine as the fast tier shrinks (Fig. 12's
//! widening NeoMem-vs-PEBS gap on Btree).
//!
//! Address layout mirrors a bulk-loaded tree: leaves are written first
//! (low addresses) and the index levels are built on top of them (high
//! addresses) — so the hot inner nodes do *not* coincide with the pages
//! first-touch NUMA happens to place in fast memory.

use neomem_types::{Access, AccessKind, VirtPage};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{Workload, WorkloadEvent};

/// Tree depth (levels touched per lookup). Level 0 is the root, level
/// `LEVELS - 1` the leaves.
pub const LEVELS: usize = 4;
/// Fraction of pages per inner level, root-first; leaves get the rest.
const LEVEL_FRACTIONS: [f64; LEVELS - 1] = [0.0005, 0.005, 0.05];
/// Probability a lookup is an insert (leaf write).
const INSERT_PROB: f64 = 0.1;

/// The Btree generator.
#[derive(Debug, Clone)]
pub struct Btree {
    rss_pages: u64,
    /// `(lo, hi)` page range per level, root-first.
    ranges: [(u64, u64); LEVELS],
    rng: SmallRng,
    queued: Vec<Access>,
}

impl Btree {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if `rss_pages < 64`.
    pub fn new(rss_pages: u64, seed: u64) -> Self {
        assert!(rss_pages >= 64, "btree needs at least 64 pages");
        let mut ranges = [(0u64, 0u64); LEVELS];
        let mut top = rss_pages;
        for (level, frac) in LEVEL_FRACTIONS.iter().enumerate() {
            let size = ((rss_pages as f64 * frac) as u64).max(1);
            ranges[level] = (top - size, top);
            top -= size;
        }
        ranges[LEVELS - 1] = (0, top); // leaves fill the low addresses
        Self {
            rss_pages,
            ranges,
            rng: SmallRng::seed_from_u64(seed ^ 0x4254_5245),
            queued: Vec::new(),
        }
    }

    /// Page range of one level (root is level 0).
    pub fn level_range(&self, level: usize) -> (u64, u64) {
        self.ranges[level]
    }

    fn page_in_level(&mut self, level: usize) -> VirtPage {
        let (lo, hi) = self.ranges[level];
        VirtPage::new(self.rng.gen_range(lo..hi))
    }
}

impl Workload for Btree {
    crate::impl_batched_fill_events!();

    fn name(&self) -> &'static str {
        "Btree"
    }

    fn rss_pages(&self) -> u64 {
        self.rss_pages
    }

    fn next_event(&mut self) -> WorkloadEvent {
        if let Some(a) = self.queued.pop() {
            return WorkloadEvent::Access(a);
        }
        // One lookup: queue leaf + mid levels, return the root access.
        let is_insert = self.rng.gen_bool(INSERT_PROB);
        let leaf = self.page_in_level(LEVELS - 1);
        let leaf_kind = if is_insert { AccessKind::Write } else { AccessKind::Read };
        self.queued.push(Access::new(leaf, self.rng.gen_range(0..64u8), leaf_kind));
        for level in (1..LEVELS - 1).rev() {
            let page = self.page_in_level(level);
            self.queued.push(Access::new(page, self.rng.gen_range(0..64u8), AccessKind::Read));
        }
        let root = self.page_in_level(0);
        WorkloadEvent::Access(Access::new(root, self.rng.gen_range(0..64u8), AccessKind::Read))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_partition_rss() {
        let b = Btree::new(10_000, 1);
        // Leaves start at 0; inner levels stack contiguously to the top.
        let (leaf_lo, leaf_hi) = b.level_range(LEVELS - 1);
        assert_eq!(leaf_lo, 0);
        let mut cursor = leaf_hi;
        for level in (0..LEVELS - 1).rev() {
            let (lo, hi) = b.level_range(level);
            assert_eq!(lo, cursor, "level {level} must stack on the previous");
            assert!(hi > lo);
            cursor = hi;
        }
        assert_eq!(cursor, 10_000);
    }

    #[test]
    fn inner_levels_live_above_leaves() {
        let b = Btree::new(10_000, 1);
        let (_, leaf_hi) = b.level_range(LEVELS - 1);
        for level in 0..LEVELS - 1 {
            let (lo, _) = b.level_range(level);
            assert!(lo >= leaf_hi, "inner level {level} must sit above the leaves");
        }
        // Root occupies the very top of the address space.
        let (_, root_hi) = b.level_range(0);
        assert_eq!(root_hi, 10_000);
    }

    #[test]
    fn upper_levels_exponentially_hotter() {
        let mut b = Btree::new(10_000, 2);
        let mut level_hits = [0u64; LEVELS];
        for _ in 0..100_000 {
            if let WorkloadEvent::Access(a) = b.next_event() {
                let p = a.vpage.index();
                for (level, hits) in level_hits.iter_mut().enumerate() {
                    let (lo, hi) = b.level_range(level);
                    if p >= lo && p < hi {
                        *hits += 1;
                        break;
                    }
                }
            }
        }
        // Per-page intensity must decrease sharply with level.
        let mut prev = f64::INFINITY;
        for (level, &hits) in level_hits.iter().enumerate() {
            let (lo, hi) = b.level_range(level);
            let per_page = hits as f64 / (hi - lo) as f64;
            assert!(per_page < prev, "level {level} per-page {per_page} not colder");
            prev = per_page;
        }
    }

    #[test]
    fn every_lookup_touches_all_levels() {
        let mut b = Btree::new(1000, 3);
        let mut touched = [false; LEVELS];
        for _ in 0..LEVELS {
            if let WorkloadEvent::Access(a) = b.next_event() {
                for (level, touched) in touched.iter_mut().enumerate() {
                    let (lo, hi) = b.level_range(level);
                    if a.vpage.index() >= lo && a.vpage.index() < hi {
                        *touched = true;
                    }
                }
            }
        }
        assert!(touched.iter().all(|&t| t), "one lookup must touch all {LEVELS} levels");
    }

    #[test]
    fn inserts_write_leaves_only() {
        let mut b = Btree::new(1000, 4);
        let (_, leaf_hi) = b.level_range(LEVELS - 1);
        for _ in 0..10_000 {
            if let WorkloadEvent::Access(a) = b.next_event() {
                if a.kind == AccessKind::Write {
                    assert!(a.vpage.index() < leaf_hi, "writes must target leaves");
                }
            }
        }
    }
}
