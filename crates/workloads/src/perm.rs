//! Deterministic page permutations.
//!
//! Real applications' hot objects are scattered across their heap by the
//! allocator rather than packed at the lowest addresses. Generators use
//! a seeded permutation to map popularity ranks to pages so that the
//! hot set does not accidentally coincide with the pages first-touch
//! places in fast memory.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded bijection `0..n → 0..n` (Fisher–Yates).
#[derive(Debug, Clone)]
pub(crate) struct Permutation {
    map: Vec<u32>,
}

impl Permutation {
    pub(crate) fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0 && n <= u32::MAX as usize, "permutation size out of range");
        let mut map: Vec<u32> = (0..n as u32).collect();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5045_524D);
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            map.swap(i, j);
        }
        Self { map }
    }

    #[inline]
    pub(crate) fn apply(&self, rank: usize) -> u64 {
        self.map[rank] as u64
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_a_bijection() {
        let p = Permutation::new(1000, 42);
        let mut seen = vec![false; 1000];
        for i in 0..1000 {
            let v = p.apply(i) as usize;
            assert!(!seen[v], "duplicate image {v}");
            seen[v] = true;
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Permutation::new(100, 7);
        let b = Permutation::new(100, 7);
        let c = Permutation::new(100, 8);
        assert!((0..100).all(|i| a.apply(i) == b.apply(i)));
        assert!((0..100).any(|i| a.apply(i) != c.apply(i)));
    }

    #[test]
    fn scatters_low_ranks() {
        // The top ranks must not cluster in the low pages.
        let p = Permutation::new(10_000, 3);
        let low_hits = (0..100).filter(|&r| p.apply(r) < 1000).count();
        assert!(low_hits < 30, "{low_hits} of the top-100 ranks landed in the low 10%");
        assert_eq!(p.len(), 10_000);
    }
}
