//! GAP Page-Rank: a graph build phase followed by rank iterations.
//!
//! The Fig. 14 methodology runs Page-Rank for sixteen timed iterations
//! after building the graph. Structurally: the *edge arrays* are streamed
//! sequentially each iteration (CSR traversal), while *vertex data*
//! (ranks) is accessed with power-law skew — high-degree vertices are
//! touched once per in-edge, so a small set of vertex pages is very hot.
//! The generator emits a marker after the build phase and one per
//! completed iteration.

use neomem_types::{Access, AccessKind, VirtPage};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;
use crate::{Marker, Workload, WorkloadEvent};

/// Fraction of the footprint holding vertex (rank) data; the rest is
/// edge/offset arrays.
const VERTEX_FRACTION: f64 = 0.3;
/// Edge visits per vertex per iteration (average degree proxy).
const DEGREE: u64 = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Sequential initialisation of the whole footprint.
    Build { next_page: u64, line: u8 },
    /// Rank iterations.
    Iterate { iteration: u32, edge_cursor: u64, step_in_edge: u64 },
}

/// The Page-Rank generator.
#[derive(Debug, Clone)]
pub struct PageRank {
    rss_pages: u64,
    vertex_pages: u64,
    edge_pages: u64,
    vertex_skew: Zipf,
    rng: SmallRng,
    phase: Phase,
    queued: Vec<Access>,
}

impl PageRank {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if `rss_pages < 64`.
    pub fn new(rss_pages: u64, seed: u64) -> Self {
        assert!(rss_pages >= 64, "pagerank needs at least 64 pages");
        let vertex_pages = ((rss_pages as f64 * VERTEX_FRACTION) as u64).max(8);
        let edge_pages = rss_pages - vertex_pages;
        Self {
            rss_pages,
            vertex_pages,
            edge_pages,
            // Power-law vertex popularity (in-degree distribution).
            vertex_skew: Zipf::new(vertex_pages as usize, 0.8),
            rng: SmallRng::seed_from_u64(seed ^ 0x5052_4752),
            phase: Phase::Build { next_page: 0, line: 0 },
            queued: Vec::new(),
        }
    }

    /// Pages holding vertex (rank) data — the hot region, living at
    /// the top of the address space.
    pub fn vertex_pages(&self) -> u64 {
        self.vertex_pages
    }

    /// Current iteration (0 while building).
    pub fn iteration(&self) -> u32 {
        match self.phase {
            Phase::Build { .. } => 0,
            Phase::Iterate { iteration, .. } => iteration,
        }
    }

    fn vertex_page(&mut self) -> VirtPage {
        // CSR construction allocates the big edge arrays first; the rank
        // vectors land above them — the hot vertex pages therefore sit
        // at high addresses, outside the first-touch fast prefix.
        let rank = self.vertex_skew.sample(&mut self.rng) as u64;
        VirtPage::new(self.edge_pages + rank)
    }

    fn edge_page(&self, cursor: u64) -> VirtPage {
        VirtPage::new(cursor % self.edge_pages)
    }
}

impl Workload for PageRank {
    crate::impl_batched_fill_events!();

    fn name(&self) -> &'static str {
        "Page-Rank"
    }

    fn rss_pages(&self) -> u64 {
        self.rss_pages
    }

    fn next_event(&mut self) -> WorkloadEvent {
        if let Some(a) = self.queued.pop() {
            return WorkloadEvent::Access(a);
        }
        match self.phase {
            Phase::Build { next_page, line } => {
                if next_page >= self.rss_pages {
                    self.phase = Phase::Iterate { iteration: 1, edge_cursor: 0, step_in_edge: 0 };
                    return WorkloadEvent::Marker(Marker { id: 0, label: "graph-built" });
                }
                // Touch 4 lines per page during build (writes).
                let next_line = (line + 16) % 64;
                self.phase = if next_line == 0 {
                    Phase::Build { next_page: next_page + 1, line: 0 }
                } else {
                    Phase::Build { next_page, line: next_line }
                };
                WorkloadEvent::Access(Access::new(VirtPage::new(next_page), line, AccessKind::Write))
            }
            Phase::Iterate { iteration, edge_cursor, step_in_edge } => {
                // One iteration streams all edge pages once.
                if edge_cursor >= self.edge_pages {
                    self.phase =
                        Phase::Iterate { iteration: iteration + 1, edge_cursor: 0, step_in_edge: 0 };
                    return WorkloadEvent::Marker(Marker { id: iteration, label: "iteration" });
                }
                // Per edge-page step: stream the edge page, then visit
                // DEGREE skewed vertex pages (rank reads) and write one
                // rank update.
                let edge = self.edge_page(edge_cursor);
                let line = (step_in_edge % 64) as u8;
                for _ in 0..DEGREE {
                    let v = self.vertex_page();
                    let vline = self.rng.gen_range(0..64u8);
                    self.queued.push(Access::new(v, vline, AccessKind::Read));
                }
                let dst = self.vertex_page();
                self.queued.push(Access::new(dst, self.rng.gen_range(0..64u8), AccessKind::Write));
                self.phase = Phase::Iterate {
                    iteration,
                    edge_cursor: edge_cursor + 1,
                    step_in_edge: step_in_edge + 1,
                };
                WorkloadEvent::Access(Access::new(edge, line, AccessKind::Read))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_phase_is_sequential_writes() {
        let mut pr = PageRank::new(128, 1);
        let mut last_page = 0;
        for _ in 0..64 {
            match pr.next_event() {
                WorkloadEvent::Access(a) => {
                    assert_eq!(a.kind, AccessKind::Write);
                    assert!(a.vpage.index() >= last_page, "build must be sequential");
                    last_page = a.vpage.index();
                }
                WorkloadEvent::Marker(_) => break,
            }
        }
    }

    #[test]
    fn build_marker_then_iteration_markers() {
        let mut pr = PageRank::new(128, 2);
        let mut markers = Vec::new();
        for _ in 0..200_000 {
            if let WorkloadEvent::Marker(m) = pr.next_event() {
                markers.push((m.id, m.label));
                if markers.len() >= 3 {
                    break;
                }
            }
        }
        assert_eq!(markers[0], (0, "graph-built"));
        assert_eq!(markers[1], (1, "iteration"));
        assert_eq!(markers[2], (2, "iteration"));
    }

    #[test]
    fn vertex_pages_hotter_than_edge_pages() {
        let mut pr = PageRank::new(512, 3);
        // Skip build.
        while !matches!(pr.next_event(), WorkloadEvent::Marker(_)) {}
        let edge_limit = pr.edge_pages;
        let mut vertex_hits = 0u64;
        let mut edge_hits = 0u64;
        for _ in 0..100_000 {
            if let WorkloadEvent::Access(a) = pr.next_event() {
                if a.vpage.index() >= edge_limit {
                    vertex_hits += 1;
                } else {
                    edge_hits += 1;
                }
            }
        }
        // DEGREE+1 vertex touches per edge page step.
        assert!(vertex_hits > edge_hits * 4, "vertex {vertex_hits} vs edge {edge_hits}");
    }

    #[test]
    fn iteration_counter_advances() {
        let mut pr = PageRank::new(128, 4);
        assert_eq!(pr.iteration(), 0);
        let mut seen_iters = 0;
        for _ in 0..300_000 {
            if let WorkloadEvent::Marker(m) = pr.next_event() {
                if m.label == "iteration" {
                    seen_iters += 1;
                    if seen_iters == 16 {
                        break;
                    }
                }
            }
        }
        assert_eq!(seen_iters, 16, "sixteen iterations must be reachable");
    }
}
