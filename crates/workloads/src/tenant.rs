//! Multi-tenant workload composition.
//!
//! A [`TenantMix`] describes `N` independent workloads — each with its
//! own footprint, interleave weight and seed — that the co-run engine
//! (`neomem_sim::CoRunSimulation`) runs against one shared tiered
//! memory. Each tenant keeps a private page-id namespace: tenant `i`'s
//! virtual pages `[0, rss_i)` are placed at a disjoint base offset in
//! the machine's global address space, so generators stay completely
//! unaware of their co-runners.

use crate::{Workload, WorkloadKind};

/// One tenant of a co-run: a workload kind plus its private sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSpec {
    /// Generator to run.
    pub kind: WorkloadKind,
    /// Private footprint in 4 KiB pages.
    pub rss_pages: u64,
    /// Interleave weight: a tenant with weight `w` executes `w` event
    /// slices per round of the co-run scheduler.
    pub weight: u32,
    /// Private generator seed.
    pub seed: u64,
}

/// An ordered set of tenants sharing one tiered-memory machine.
///
/// Build one with [`TenantMix::builder`]:
///
/// ```
/// use neomem_workloads::{TenantMix, WorkloadKind};
///
/// let mix = TenantMix::builder()
///     .tenant(WorkloadKind::Gups, 2048, 7)
///     .weighted_tenant(WorkloadKind::PageRank, 4096, 2, 8)
///     .build()
///     .expect("non-empty mix");
/// assert_eq!(mix.len(), 2);
/// assert_eq!(mix.total_rss_pages(), 6144);
/// // Tenant page-id namespaces are disjoint base offsets.
/// assert_eq!(mix.bases(), vec![0, 2048]);
/// assert_eq!(mix.label(), "GUPS+2*Page-Rank");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantMix {
    tenants: Vec<TenantSpec>,
}

impl TenantMix {
    /// Starts an empty mix.
    pub fn builder() -> TenantMixBuilder {
        TenantMixBuilder { tenants: Vec::new() }
    }

    /// `n` tenants of the same kind and footprint, seeded
    /// `base_seed, base_seed + 1, …` — the tenant-count sweep shape.
    ///
    /// # Errors
    ///
    /// Returns a message when `n` is zero or `rss_pages` is zero.
    pub fn homogeneous(
        kind: WorkloadKind,
        n: usize,
        rss_pages: u64,
        base_seed: u64,
    ) -> Result<Self, String> {
        let mut builder = Self::builder();
        for i in 0..n as u64 {
            builder = builder.tenant(kind, rss_pages, base_seed.wrapping_add(i));
        }
        builder.build()
    }

    /// The tenants, in scheduling order.
    pub fn tenants(&self) -> &[TenantSpec] {
        &self.tenants
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// A mix is never empty ([`TenantMixBuilder::build`] rejects that),
    /// so this always returns `false`; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Total footprint across tenants — the machine's address-space and
    /// physical-sizing requirement.
    pub fn total_rss_pages(&self) -> u64 {
        self.tenants.iter().map(|t| t.rss_pages).sum()
    }

    /// Each tenant's base offset in the global page-id space: the
    /// prefix sums of the footprints, starting at 0.
    pub fn bases(&self) -> Vec<u64> {
        let mut bases = Vec::with_capacity(self.tenants.len());
        let mut base = 0;
        for t in &self.tenants {
            bases.push(base);
            base += t.rss_pages;
        }
        bases
    }

    /// The interleave weights, in tenant order.
    pub fn weights(&self) -> Vec<u64> {
        self.tenants.iter().map(|t| t.weight as u64).collect()
    }

    /// Builds every tenant's generator, in tenant order.
    pub fn build_workloads(&self) -> Vec<Box<dyn Workload>> {
        self.tenants.iter().map(|t| t.kind.build(t.rss_pages, t.seed)).collect()
    }

    /// A copy of the mix with every tenant seed re-derived from
    /// `base_seed` (tenant `i` gets `base_seed + i`), so experiment
    /// grids can put a mix on a seed axis.
    pub fn reseeded(&self, base_seed: u64) -> Self {
        let tenants = self
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| TenantSpec { seed: base_seed.wrapping_add(i as u64), ..*t })
            .collect();
        Self { tenants }
    }

    /// A compact human label: `GUPS+2*Page-Rank` for a GUPS tenant at
    /// weight 1 plus a Page-Rank tenant at weight 2.
    pub fn label(&self) -> String {
        self.tenants
            .iter()
            .map(|t| {
                if t.weight == 1 {
                    t.kind.label().to_string()
                } else {
                    format!("{}*{}", t.weight, t.kind.label())
                }
            })
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// Builder for [`TenantMix`].
#[derive(Debug, Clone)]
pub struct TenantMixBuilder {
    tenants: Vec<TenantSpec>,
}

impl TenantMixBuilder {
    /// Adds a tenant at interleave weight 1.
    pub fn tenant(self, kind: WorkloadKind, rss_pages: u64, seed: u64) -> Self {
        self.weighted_tenant(kind, rss_pages, 1, seed)
    }

    /// Adds a tenant with an explicit interleave weight.
    pub fn weighted_tenant(
        mut self,
        kind: WorkloadKind,
        rss_pages: u64,
        weight: u32,
        seed: u64,
    ) -> Self {
        self.tenants.push(TenantSpec { kind, rss_pages, weight, seed });
        self
    }

    /// Adds a fully specified tenant.
    pub fn spec(mut self, spec: TenantSpec) -> Self {
        self.tenants.push(spec);
        self
    }

    /// Validates and builds the mix.
    ///
    /// # Errors
    ///
    /// Returns a message when the mix is empty or any tenant has a zero
    /// footprint or zero weight.
    pub fn build(self) -> Result<TenantMix, String> {
        if self.tenants.is_empty() {
            return Err("a tenant mix needs at least one tenant".into());
        }
        for (i, t) in self.tenants.iter().enumerate() {
            if t.rss_pages == 0 {
                return Err(format!("tenant {i} ({}) has a zero footprint", t.kind.label()));
            }
            if t.weight == 0 {
                return Err(format!("tenant {i} ({}) has a zero weight", t.kind.label()));
            }
        }
        Ok(TenantMix { tenants: self.tenants })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadEvent;

    fn two_tenant_mix() -> TenantMix {
        TenantMix::builder()
            .tenant(WorkloadKind::Gups, 1024, 3)
            .weighted_tenant(WorkloadKind::Silo, 2048, 3, 4)
            .build()
            .unwrap()
    }

    #[test]
    fn bases_are_prefix_sums_and_totals_add_up() {
        let mix = two_tenant_mix();
        assert_eq!(mix.bases(), vec![0, 1024]);
        assert_eq!(mix.total_rss_pages(), 3072);
        assert_eq!(mix.weights(), vec![1, 3]);
        assert!(!mix.is_empty());
    }

    #[test]
    fn build_workloads_respects_specs() {
        let mix = two_tenant_mix();
        let mut workloads = mix.build_workloads();
        assert_eq!(workloads.len(), 2);
        assert_eq!(workloads[0].rss_pages(), 1024);
        assert_eq!(workloads[1].rss_pages(), 2048);
        // Streams are private: page ids stay inside each tenant's RSS.
        for w in &mut workloads {
            let rss = w.rss_pages();
            for _ in 0..500 {
                if let WorkloadEvent::Access(a) = w.next_event() {
                    assert!(a.vpage.index() < rss);
                }
            }
        }
    }

    #[test]
    fn homogeneous_derives_distinct_seeds() {
        let mix = TenantMix::homogeneous(WorkloadKind::Gups, 3, 512, 40).unwrap();
        let seeds: Vec<u64> = mix.tenants().iter().map(|t| t.seed).collect();
        assert_eq!(seeds, vec![40, 41, 42]);
        assert_eq!(mix.label(), "GUPS+GUPS+GUPS");
    }

    #[test]
    fn reseeded_keeps_structure() {
        let mix = two_tenant_mix().reseeded(100);
        assert_eq!(mix.tenants()[0].seed, 100);
        assert_eq!(mix.tenants()[1].seed, 101);
        assert_eq!(mix.total_rss_pages(), 3072);
        assert_eq!(mix.tenants()[1].weight, 3);
    }

    #[test]
    fn invalid_mixes_rejected() {
        assert!(TenantMix::builder().build().is_err(), "empty mix");
        assert!(
            TenantMix::builder().tenant(WorkloadKind::Gups, 0, 1).build().is_err(),
            "zero rss"
        );
        assert!(
            TenantMix::builder().weighted_tenant(WorkloadKind::Gups, 64, 0, 1).build().is_err(),
            "zero weight"
        );
        assert!(TenantMix::homogeneous(WorkloadKind::Gups, 0, 64, 1).is_err(), "zero tenants");
    }

    #[test]
    fn labels_fold_weights() {
        let mix = TenantMix::builder()
            .tenant(WorkloadKind::Gups, 64, 1)
            .weighted_tenant(WorkloadKind::PageRank, 64, 2, 2)
            .build()
            .unwrap();
        assert_eq!(mix.label(), "GUPS+2*Page-Rank");
    }
}
