//! Silo under YCSB-C: zipfian point reads over an in-memory table.
//!
//! YCSB-C is 100 % reads with zipfian key popularity (α = 0.99); Silo
//! additionally appends to a redo log and touches index nodes. We model:
//! 80 % of the footprint as records read via zipf, 10 % as a hot index
//! region touched on every transaction, and 10 % as a circularly-written
//! log (a small write fraction keeps the YCSB-C spirit while exercising
//! the demotion path).

use neomem_types::{Access, AccessKind, VirtPage};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::perm::Permutation;
use crate::zipf::Zipf;
use crate::{Workload, WorkloadEvent};

const RECORD_FRACTION: f64 = 0.8;
const INDEX_FRACTION: f64 = 0.1;
/// Fraction of transactions that append to the log.
const LOG_WRITE_PROB: f64 = 0.05;

/// The Silo/YCSB-C generator.
#[derive(Debug, Clone)]
pub struct Silo {
    rss_pages: u64,
    record_pages: u64,
    index_pages: u64,
    skew: Zipf,
    /// Key rank → record page: hot records are heap-scattered.
    placement: Permutation,
    rng: SmallRng,
    log_cursor: u64,
    queued: Vec<Access>,
}

impl Silo {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if `rss_pages < 64`.
    pub fn new(rss_pages: u64, seed: u64) -> Self {
        assert!(rss_pages >= 64, "silo needs at least 64 pages");
        let record_pages = ((rss_pages as f64 * RECORD_FRACTION) as u64).max(16);
        let index_pages = ((rss_pages as f64 * INDEX_FRACTION) as u64).max(4);
        Self {
            rss_pages,
            record_pages,
            index_pages,
            skew: Zipf::new(record_pages as usize, 0.99),
            placement: Permutation::new(record_pages as usize, seed),
            rng: SmallRng::seed_from_u64(seed ^ 0x5349_4C4F),
            log_cursor: 0,
            queued: Vec::new(),
        }
    }
}

impl Workload for Silo {
    crate::impl_batched_fill_events!();

    fn name(&self) -> &'static str {
        "Silo"
    }

    fn rss_pages(&self) -> u64 {
        self.rss_pages
    }

    fn next_event(&mut self) -> WorkloadEvent {
        if let Some(a) = self.queued.pop() {
            return WorkloadEvent::Access(a);
        }
        // One transaction: index probe → record read [→ log append].
        let record = self.placement.apply(self.skew.sample(&mut self.rng));
        self.queued.push(Access::new(
            VirtPage::new(record),
            self.rng.gen_range(0..64u8),
            AccessKind::Read,
        ));
        if self.rng.gen_bool(LOG_WRITE_PROB) {
            let log_base = self.record_pages + self.index_pages;
            let log_pages = self.rss_pages - log_base;
            let page = log_base + self.log_cursor % log_pages;
            self.log_cursor += 1;
            self.queued.push(Access::new(
                VirtPage::new(page),
                (self.log_cursor % 64) as u8,
                AccessKind::Write,
            ));
        }
        let index = self.record_pages + self.rng.gen_range(0..self.index_pages);
        WorkloadEvent::Access(Access::new(
            VirtPage::new(index),
            self.rng.gen_range(0..64u8),
            AccessKind::Read,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mostly_reads_ycsb_c() {
        let mut s = Silo::new(1024, 1);
        let mut reads = 0u32;
        let mut writes = 0u32;
        for _ in 0..20_000 {
            if let WorkloadEvent::Access(a) = s.next_event() {
                match a.kind {
                    AccessKind::Read => reads += 1,
                    AccessKind::Write => writes += 1,
                }
            }
        }
        let frac = reads as f64 / (reads + writes) as f64;
        assert!(frac > 0.95, "read fraction {frac}");
    }

    #[test]
    fn index_region_hotter_per_page_than_records() {
        let mut s = Silo::new(2048, 2);
        let rec = s.record_pages;
        let idx_end = rec + s.index_pages;
        let mut index_hits = 0u64;
        let mut record_hits = 0u64;
        for _ in 0..100_000 {
            if let WorkloadEvent::Access(a) = s.next_event() {
                let p = a.vpage.index();
                if p >= rec && p < idx_end {
                    index_hits += 1;
                } else if p < rec {
                    record_hits += 1;
                }
            }
        }
        let per_index_page = index_hits as f64 / s.index_pages as f64;
        let per_record_page = record_hits as f64 / rec as f64;
        assert!(per_index_page > per_record_page * 2.0);
    }

    #[test]
    fn log_writes_are_sequential_circular() {
        let mut s = Silo::new(512, 3);
        let log_base = s.record_pages + s.index_pages;
        let mut log_pages = Vec::new();
        for _ in 0..200_000 {
            if let WorkloadEvent::Access(a) = s.next_event() {
                if a.kind == AccessKind::Write {
                    log_pages.push(a.vpage.index());
                    if log_pages.len() > 50 {
                        break;
                    }
                }
            }
        }
        assert!(log_pages.iter().all(|&p| p >= log_base));
    }
}
