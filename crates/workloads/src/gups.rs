//! GUPS (giga-updates per second) with HeMem-style skew.
//!
//! The paper follows HeMem's practice of making "some memory access
//! regions hotter than the others": 90 % of updates land in a hot region
//! covering 10 % of the footprint, the rest are uniform over the whole
//! working set (§VI-D "Convergence Analysis"). Each update is a
//! read-modify-write of one random 8-byte word → a read followed by a
//! write to the same line.
//!
//! Like the real benchmark, the generator first *initialises* its table
//! with a sequential sweep; under first-touch NUMA this fills the fast
//! tier with the low pages, while the hot region sits at 55 % of the
//! footprint — squarely in CXL memory until a tiering policy moves it.
//! The hot set can be relocated mid-run to reproduce Fig. 16's
//! convergence experiment.

use neomem_types::{Access, AccessKind, VirtPage};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{Marker, Workload, WorkloadEvent};

/// Fraction of accesses that hit the hot region.
pub const HOT_ACCESS_FRACTION: f64 = 0.9;
/// Fraction of the footprint covered by the hot region.
pub const HOT_REGION_FRACTION: f64 = 0.1;
/// Where the hot region starts, as a fraction of the footprint.
const HOT_BASE_FRACTION: f64 = 0.55;

/// The GUPS generator.
#[derive(Debug, Clone)]
pub struct Gups {
    rss_pages: u64,
    hot_pages: u64,
    hot_base: u64,
    rng: SmallRng,
    /// Sequential table-initialisation cursor; `None` once initialised.
    init_cursor: Option<u64>,
    /// Write half of an in-flight read-modify-write.
    pending_write: Option<Access>,
    accesses: u64,
    relocate_after: Option<u64>,
    relocations: u32,
}

impl Gups {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if `rss_pages < 64`.
    pub fn new(rss_pages: u64, seed: u64) -> Self {
        assert!(rss_pages >= 64, "gups needs at least 64 pages");
        Self {
            rss_pages,
            hot_pages: ((rss_pages as f64 * HOT_REGION_FRACTION) as u64).max(1),
            hot_base: (rss_pages as f64 * HOT_BASE_FRACTION) as u64,
            rng: SmallRng::seed_from_u64(seed ^ 0x6750_5355),
            init_cursor: Some(0),
            pending_write: None,
            accesses: 0,
            relocate_after: None,
            relocations: 0,
        }
    }

    /// Relocates the hot set every `accesses` update accesses, emitting
    /// a marker — the Fig. 16 "Hot Set Changed" event.
    pub fn with_relocation(mut self, accesses: u64) -> Self {
        assert!(accesses > 0, "relocation period must be positive");
        self.relocate_after = Some(accesses);
        self
    }

    /// Skips the initialisation sweep (unit tests of steady state).
    pub fn without_init(mut self) -> Self {
        self.init_cursor = None;
        self
    }

    /// Immediately moves the hot region to a disjoint area.
    pub fn relocate_hot_set(&mut self) {
        self.relocations += 1;
        // Jump half the footprint ahead, wrapping: guaranteed disjoint
        // from the previous region (hot region is 10% of RSS).
        self.hot_base = (self.hot_base + self.rss_pages / 2) % (self.rss_pages - self.hot_pages);
    }

    /// First page of the current hot region.
    pub fn hot_base(&self) -> VirtPage {
        VirtPage::new(self.hot_base)
    }

    /// Pages in the hot region.
    pub fn hot_pages(&self) -> u64 {
        self.hot_pages
    }

    fn pick_page(&mut self) -> u64 {
        if self.rng.gen_bool(HOT_ACCESS_FRACTION) {
            self.hot_base + self.rng.gen_range(0..self.hot_pages)
        } else {
            self.rng.gen_range(0..self.rss_pages)
        }
    }
}

impl Workload for Gups {
    crate::impl_batched_fill_events!();

    fn name(&self) -> &'static str {
        "GUPS"
    }

    fn rss_pages(&self) -> u64 {
        self.rss_pages
    }

    fn next_event(&mut self) -> WorkloadEvent {
        if let Some(write) = self.pending_write.take() {
            return WorkloadEvent::Access(write);
        }
        // Initialisation sweep: 4 sequential line writes per page.
        if let Some(cursor) = self.init_cursor {
            let page = cursor / 4;
            if page >= self.rss_pages {
                self.init_cursor = None;
                return WorkloadEvent::Marker(Marker { id: 0, label: "table-initialized" });
            }
            self.init_cursor = Some(cursor + 1);
            let line = ((cursor % 4) * 16) as u8;
            return WorkloadEvent::Access(Access::new(VirtPage::new(page), line, AccessKind::Write));
        }
        if let Some(period) = self.relocate_after {
            if self.accesses > 0 && self.accesses.is_multiple_of(period) {
                self.accesses += 1; // avoid re-triggering on the same count
                self.relocate_hot_set();
                return WorkloadEvent::Marker(Marker { id: self.relocations, label: "hot-set-moved" });
            }
        }
        let page = self.pick_page();
        let line = self.rng.gen_range(0..64u8);
        self.accesses += 1;
        let vp = VirtPage::new(page);
        self.pending_write = Some(Access::new(vp, line, AccessKind::Write));
        WorkloadEvent::Access(Access::new(vp, line, AccessKind::Read))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_sweep_is_sequential_then_marked() {
        let mut g = Gups::new(64, 1);
        let mut last = 0u64;
        let mut steps = 0;
        loop {
            match g.next_event() {
                WorkloadEvent::Access(a) => {
                    assert_eq!(a.kind, AccessKind::Write);
                    assert!(a.vpage.index() >= last);
                    last = a.vpage.index();
                    steps += 1;
                }
                WorkloadEvent::Marker(m) => {
                    assert_eq!(m.label, "table-initialized");
                    break;
                }
            }
        }
        assert_eq!(steps, 64 * 4);
    }

    #[test]
    fn rmw_pairs_read_then_write_same_line() {
        let mut g = Gups::new(1024, 1).without_init();
        for _ in 0..100 {
            let r = g.next_event();
            let w = g.next_event();
            match (r, w) {
                (WorkloadEvent::Access(r), WorkloadEvent::Access(w)) => {
                    assert_eq!(r.kind, AccessKind::Read);
                    assert_eq!(w.kind, AccessKind::Write);
                    assert_eq!(r.vpage, w.vpage);
                    assert_eq!(r.line_in_page, w.line_in_page);
                }
                other => panic!("expected access pair, got {other:?}"),
            }
        }
    }

    #[test]
    fn ninety_percent_hits_hot_region() {
        let mut g = Gups::new(10_000, 2).without_init();
        let lo = g.hot_base().index();
        let hi = lo + g.hot_pages();
        let mut hot = 0u32;
        let mut total = 0u32;
        for _ in 0..40_000 {
            if let WorkloadEvent::Access(a) = g.next_event() {
                if a.kind == AccessKind::Read {
                    total += 1;
                    let p = a.vpage.index();
                    if p >= lo && p < hi {
                        hot += 1;
                    }
                }
            }
        }
        let frac = hot as f64 / total as f64;
        // 90% targeted + ~1% of uniform spill also lands in the region.
        assert!((frac - 0.91).abs() < 0.03, "hot fraction {frac}");
    }

    #[test]
    fn hot_region_not_in_first_touch_prefix() {
        // At the default 1:2 ratio the fast tier holds the first third of
        // pages; the hot region must start above that.
        let g = Gups::new(9000, 3);
        assert!(g.hot_base().index() > 9000 / 3);
    }

    #[test]
    fn relocation_moves_region_and_marks() {
        let mut g = Gups::new(4096, 3).without_init().with_relocation(1000);
        let before = g.hot_base();
        let mut saw_marker = false;
        for _ in 0..3000 {
            if let WorkloadEvent::Marker(m) = g.next_event() {
                assert_eq!(m.label, "hot-set-moved");
                saw_marker = true;
                break;
            }
        }
        assert!(saw_marker, "relocation marker expected");
        assert_ne!(g.hot_base(), before);
        // New region must be disjoint from the old one.
        let old = before.index()..before.index() + g.hot_pages();
        let new = g.hot_base().index();
        assert!(!old.contains(&new));
    }

    #[test]
    fn hot_region_is_tenth_of_rss() {
        let g = Gups::new(10_000, 4);
        assert_eq!(g.hot_pages(), 1000);
    }
}
