//! XSBench: Monte-Carlo neutronics cross-section lookups.
//!
//! XSBench's working set is a large read-only nuclide grid; each lookup
//! binary-searches an energy grid and gathers cross-section rows. The
//! paper classes it (with GUPS) as an "HPC workload characterized by
//! skewed hot memory regions" — a minority of grid pages absorbs most
//! lookups. We model each lookup as a short burst of zipf-skewed reads
//! over the table region plus an occasional uniform tally write.

use neomem_types::{Access, AccessKind, VirtPage};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::perm::Permutation;
use crate::zipf::Zipf;
use crate::{Workload, WorkloadEvent};

/// Fraction of the footprint holding the read-only cross-section tables.
const TABLE_FRACTION: f64 = 0.85;
/// Pages touched per lookup (energy grid walk + gather).
const PAGES_PER_LOOKUP: usize = 5;
/// Probability a lookup ends with a tally write.
const TALLY_WRITE_PROB: f64 = 0.05;

/// The XSBench generator.
#[derive(Debug, Clone)]
pub struct XsBench {
    rss_pages: u64,
    table_pages: u64,
    skew: Zipf,
    /// Popularity rank → table page: hot grid rows are scattered across
    /// the tables by construction order, not packed at low addresses.
    placement: Permutation,
    rng: SmallRng,
    queued: Vec<Access>,
}

impl XsBench {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if `rss_pages < 64`.
    pub fn new(rss_pages: u64, seed: u64) -> Self {
        assert!(rss_pages >= 64, "xsbench needs at least 64 pages");
        let table_pages = ((rss_pages as f64 * TABLE_FRACTION) as u64).max(16);
        Self {
            rss_pages,
            table_pages,
            // Strong skew: unionised energy grid hot rows.
            skew: Zipf::new(table_pages as usize, 1.1),
            placement: Permutation::new(table_pages as usize, seed),
            rng: SmallRng::seed_from_u64(seed ^ 0x5853_4245),
            queued: Vec::new(),
        }
    }

    fn table_page(&mut self) -> u64 {
        let rank = self.skew.sample(&mut self.rng);
        self.placement.apply(rank)
    }

    /// Pages of the read-only table region.
    pub fn table_pages(&self) -> u64 {
        self.table_pages
    }
}

impl Workload for XsBench {
    crate::impl_batched_fill_events!();

    fn name(&self) -> &'static str {
        "XSBench"
    }

    fn rss_pages(&self) -> u64 {
        self.rss_pages
    }

    fn next_event(&mut self) -> WorkloadEvent {
        if let Some(a) = self.queued.pop() {
            return WorkloadEvent::Access(a);
        }
        // Start a new lookup burst.
        for _ in 0..PAGES_PER_LOOKUP - 1 {
            let page = self.table_page();
            let line = self.rng.gen_range(0..64u8);
            self.queued.push(Access::new(VirtPage::new(page), line, AccessKind::Read));
        }
        if self.rng.gen_bool(TALLY_WRITE_PROB) {
            let tally = self.table_pages + self.rng.gen_range(0..self.rss_pages - self.table_pages);
            self.queued.push(Access::new(
                VirtPage::new(tally),
                self.rng.gen_range(0..64u8),
                AccessKind::Write,
            ));
        }
        let first = self.table_page();
        WorkloadEvent::Access(Access::new(
            VirtPage::new(first),
            self.rng.gen_range(0..64u8),
            AccessKind::Read,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_dominated() {
        let mut x = XsBench::new(1024, 1);
        let mut reads = 0u32;
        let mut writes = 0u32;
        for _ in 0..20_000 {
            if let WorkloadEvent::Access(a) = x.next_event() {
                match a.kind {
                    AccessKind::Read => reads += 1,
                    AccessKind::Write => writes += 1,
                }
            }
        }
        assert!(reads as f64 / (reads + writes) as f64 > 0.95, "reads {reads} writes {writes}");
    }

    #[test]
    fn skewed_hot_region() {
        let mut x = XsBench::new(4096, 2);
        let mut counts = vec![0u32; 4096];
        for _ in 0..100_000 {
            if let WorkloadEvent::Access(a) = x.next_event() {
                counts[a.vpage.index() as usize] += 1;
            }
        }
        let total: u32 = counts.iter().sum();
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u32 = sorted[..409].iter().sum();
        assert!(
            top10 as f64 / total as f64 > 0.5,
            "top-10% pages should absorb most accesses, got {}",
            top10 as f64 / total as f64
        );
    }

    #[test]
    fn table_region_is_majority() {
        let x = XsBench::new(1000, 3);
        assert!(x.table_pages() >= 800);
        assert!(x.table_pages() < 1000);
    }
}
