//! Streaming scientific kernels: 603.bwaves and 654.roms.
//!
//! Both SPEC codes sweep large multi-dimensional arrays with near-unit
//! stride and little temporal reuse — chosen by the paper for their
//! "substantial Resident Set Size". Tiering gains are modest here
//! (Fig. 11): the win comes from keeping the most-revisited array
//! partitions in fast memory. We model `arrays` interleaved sequential
//! sweeps (reads from source arrays, writes to a destination array) with
//! a small stencil-neighbourhood reuse term, plus per-sweep markers.

use neomem_types::{Access, AccessKind, VirtPage};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{Marker, Workload, WorkloadEvent};

/// Which SPEC kernel to imitate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// 603.bwaves_s: 3 logical arrays, read-heavy block solver.
    Bwaves,
    /// 654.roms_s: 5 logical arrays, higher write share (ocean state
    /// updates).
    Roms,
}

impl StreamKind {
    fn arrays(self) -> u64 {
        match self {
            StreamKind::Bwaves => 3,
            StreamKind::Roms => 5,
        }
    }

    fn write_prob(self) -> f64 {
        match self {
            StreamKind::Bwaves => 0.2,
            StreamKind::Roms => 0.35,
        }
    }

    fn label(self) -> &'static str {
        match self {
            StreamKind::Bwaves => "603.bwaves",
            StreamKind::Roms => "654.roms",
        }
    }
}

/// The streaming-HPC generator.
#[derive(Debug, Clone)]
pub struct StreamingHpc {
    kind: StreamKind,
    rss_pages: u64,
    array_pages: u64,
    cursor: u64,
    line: u8,
    sweep: u32,
    rng: SmallRng,
}

impl StreamingHpc {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if `rss_pages < 64`.
    pub fn new(kind: StreamKind, rss_pages: u64, seed: u64) -> Self {
        assert!(rss_pages >= 64, "streaming kernel needs at least 64 pages");
        Self {
            kind,
            rss_pages,
            array_pages: rss_pages / kind.arrays(),
            cursor: 0,
            line: 0,
            sweep: 0,
            rng: SmallRng::seed_from_u64(seed ^ 0x5354_524D),
        }
    }

    /// The imitated kernel.
    pub fn kind(&self) -> StreamKind {
        self.kind
    }

    /// Completed sweeps over the footprint.
    pub fn sweeps(&self) -> u32 {
        self.sweep
    }
}

impl Workload for StreamingHpc {
    crate::impl_batched_fill_events!();

    fn name(&self) -> &'static str {
        self.kind.label()
    }

    fn rss_pages(&self) -> u64 {
        self.rss_pages
    }

    fn next_event(&mut self) -> WorkloadEvent {
        if self.cursor >= self.array_pages {
            self.cursor = 0;
            self.sweep += 1;
            return WorkloadEvent::Marker(Marker { id: self.sweep, label: "sweep" });
        }
        // Touch the same logical index across all arrays, line-sequential
        // within each page; the last array is the write destination.
        let arrays = self.kind.arrays();
        let array = (self.line as u64 + self.cursor) % arrays;
        let page = array * self.array_pages + self.cursor;
        let kind = if self.rng.gen_bool(self.kind.write_prob()) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let line = self.line;
        self.line = (self.line + 8) % 64;
        if self.line == 0 {
            self.cursor += 1;
        }
        WorkloadEvent::Access(Access::new(VirtPage::new(page.min(self.rss_pages - 1)), line, kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_sequentially_with_sweep_markers() {
        let mut s = StreamingHpc::new(StreamKind::Bwaves, 300, 1);
        let mut pages_before_marker = 0u64;
        loop {
            match s.next_event() {
                WorkloadEvent::Access(_) => pages_before_marker += 1,
                WorkloadEvent::Marker(m) => {
                    assert_eq!(m.label, "sweep");
                    break;
                }
            }
        }
        // One sweep = array_pages * 8 line steps.
        assert_eq!(pages_before_marker, (300 / 3) * 8);
        assert_eq!(s.sweeps(), 1);
    }

    #[test]
    fn roms_writes_more_than_bwaves() {
        let count_writes = |kind: StreamKind| {
            let mut s = StreamingHpc::new(kind, 3000, 2);
            let mut writes = 0u32;
            for _ in 0..50_000 {
                if let WorkloadEvent::Access(a) = s.next_event() {
                    if a.kind == AccessKind::Write {
                        writes += 1;
                    }
                }
            }
            writes
        };
        assert!(count_writes(StreamKind::Roms) > count_writes(StreamKind::Bwaves));
    }

    #[test]
    fn low_reuse_touches_whole_footprint() {
        let mut s = StreamingHpc::new(StreamKind::Roms, 500, 3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 * 10 {
            if let WorkloadEvent::Access(a) = s.next_event() {
                seen.insert(a.vpage.index());
            }
        }
        assert!(seen.len() as u64 > 400, "streaming must cover the footprint");
    }

    #[test]
    fn names_match_spec_labels() {
        assert_eq!(StreamingHpc::new(StreamKind::Bwaves, 64, 0).name(), "603.bwaves");
        assert_eq!(StreamingHpc::new(StreamKind::Roms, 64, 0).name(), "654.roms");
    }
}
