//! Redis: zipfian GET/SET over a key/value heap.
//!
//! Used by the paper's Fig. 4b motivation study (TLB-vs-LLC access
//! decorrelation on a Redis trace) and the Fig. 3b slowdown
//! characterisation. GETs dominate; each operation touches a hashtable
//! bucket page and the value's heap page(s). Hot keys are concentrated
//! by zipf, but bucket pages are *hash-scattered*, which is exactly what
//! makes TLB-level profiling misleading: a bucket page can be TLB-hot
//! (many key probes) while its values are cache-resident.

use neomem_types::{Access, AccessKind, VirtPage};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;
use crate::{Workload, WorkloadEvent};

/// Fraction of the footprint holding the hash table (buckets).
const TABLE_FRACTION: f64 = 0.25;
/// Probability of a SET (write) operation.
const SET_PROB: f64 = 0.1;
/// Number of distinct logical keys modelled.
const KEY_SPACE: usize = 1 << 16;

/// The Redis generator.
#[derive(Debug, Clone)]
pub struct Redis {
    rss_pages: u64,
    table_pages: u64,
    key_skew: Zipf,
    rng: SmallRng,
    queued: Vec<Access>,
}

impl Redis {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if `rss_pages < 64`.
    pub fn new(rss_pages: u64, seed: u64) -> Self {
        assert!(rss_pages >= 64, "redis needs at least 64 pages");
        let table_pages = ((rss_pages as f64 * TABLE_FRACTION) as u64).max(8);
        Self {
            rss_pages,
            table_pages,
            key_skew: Zipf::new(KEY_SPACE, 1.0),
            rng: SmallRng::seed_from_u64(seed ^ 0x5245_4449),
            queued: Vec::new(),
        }
    }

    /// Deterministic hash spreading keys over pages (FNV-1a fold).
    fn hash_key(key: u64, salt: u64) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ salt;
        for byte in key.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

impl Workload for Redis {
    crate::impl_batched_fill_events!();

    fn name(&self) -> &'static str {
        "Redis"
    }

    fn rss_pages(&self) -> u64 {
        self.rss_pages
    }

    fn next_event(&mut self) -> WorkloadEvent {
        if let Some(a) = self.queued.pop() {
            return WorkloadEvent::Access(a);
        }
        let key = self.key_skew.sample(&mut self.rng) as u64;
        let is_set = self.rng.gen_bool(SET_PROB);
        // Value heap page, hash-placed above the table region.
        let value_span = self.rss_pages - self.table_pages;
        let value_page = self.table_pages + Self::hash_key(key, 1) % value_span;
        let value_kind = if is_set { AccessKind::Write } else { AccessKind::Read };
        self.queued.push(Access::new(
            VirtPage::new(value_page),
            (Self::hash_key(key, 2) % 64) as u8,
            value_kind,
        ));
        // Bucket probe first.
        let bucket = Self::hash_key(key, 0) % self.table_pages;
        WorkloadEvent::Access(Access::new(
            VirtPage::new(bucket),
            (Self::hash_key(key, 3) % 64) as u8,
            AccessKind::Read,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_dominated() {
        let mut r = Redis::new(1024, 1);
        let (mut reads, mut writes) = (0u32, 0u32);
        for _ in 0..20_000 {
            if let WorkloadEvent::Access(a) = r.next_event() {
                match a.kind {
                    AccessKind::Read => reads += 1,
                    AccessKind::Write => writes += 1,
                }
            }
        }
        let frac = reads as f64 / (reads + writes) as f64;
        assert!(frac > 0.9, "read fraction {frac}");
    }

    #[test]
    fn same_key_maps_to_same_pages() {
        assert_eq!(Redis::hash_key(42, 0), Redis::hash_key(42, 0));
        assert_ne!(Redis::hash_key(42, 0), Redis::hash_key(42, 1));
        assert_ne!(Redis::hash_key(42, 0), Redis::hash_key(43, 0));
    }

    #[test]
    fn hot_keys_concentrate_value_accesses() {
        let mut r = Redis::new(4096, 2);
        let table = r.table_pages;
        let mut counts = std::collections::HashMap::<u64, u32>::new();
        for _ in 0..100_000 {
            if let WorkloadEvent::Access(a) = r.next_event() {
                if a.vpage.index() >= table {
                    *counts.entry(a.vpage.index()).or_default() += 1;
                }
            }
        }
        let mut sorted: Vec<u32> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let total: u32 = sorted.iter().sum();
        let top_decile: u32 = sorted[..sorted.len() / 10].iter().sum();
        assert!(
            top_decile as f64 / total as f64 > 0.3,
            "zipf keys must concentrate value pages ({})",
            top_decile as f64 / total as f64
        );
    }
}
