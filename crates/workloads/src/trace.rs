//! Trace capture and replay.
//!
//! The paper's motivation study (Fig. 4b) analyses a recorded Redis
//! trace through a cache simulator. This module makes that workflow a
//! first-class library feature: record any generator's stream into a
//! [`Trace`], optionally round-trip it through a compact text format,
//! and replay it as a [`Workload`] — byte-for-byte reproducible input
//! for cross-policy comparisons or external traces.

use neomem_types::{Access, AccessKind, VirtPage};

use crate::{Marker, Workload, WorkloadEvent};

/// A recorded event stream.
///
/// Record any generator, round-trip through the text format, and
/// replay — the replayed stream reproduces the recording exactly:
///
/// ```
/// use neomem_workloads::{Trace, Workload, WorkloadKind};
///
/// let mut generator = WorkloadKind::Redis.build(512, 7);
/// let trace = Trace::record(generator.as_mut(), 100);
/// assert_eq!(trace.len(), 100);
///
/// // The compact text form survives a parse round-trip…
/// let parsed = Trace::from_text(&trace.to_text()).expect("well-formed");
/// assert_eq!(parsed.len(), trace.len());
///
/// // …and replaying the trace repeats the recorded stream event for
/// // event (a fresh same-seed generator is the reference).
/// let mut replay = trace.replay();
/// let mut reference = WorkloadKind::Redis.build(512, 7);
/// for _ in 0..100 {
///     assert_eq!(replay.next_event(), reference.next_event());
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    events: Vec<WorkloadEvent>,
    rss_pages: u64,
}

impl Trace {
    /// Records `n` events from a generator.
    pub fn record(workload: &mut dyn Workload, n: usize) -> Self {
        let events = (0..n).map(|_| workload.next_event()).collect();
        Self { events, rss_pages: workload.rss_pages() }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialises the trace in a compact line format:
    /// `R|W <vpage> <line>` for accesses, `M <id> <label>` for markers,
    /// preceded by a `# rss <pages>` header.
    pub fn to_text(&self) -> String {
        let mut out = format!("# rss {}\n", self.rss_pages);
        for ev in &self.events {
            match ev {
                WorkloadEvent::Access(a) => {
                    let k = if a.kind.is_read() { 'R' } else { 'W' };
                    out.push_str(&format!("{k} {} {}\n", a.vpage.index(), a.line_in_page));
                }
                WorkloadEvent::Marker(m) => {
                    out.push_str(&format!("M {} {}\n", m.id, m.label));
                }
            }
        }
        out
    }

    /// Parses the [`to_text`](Self::to_text) format. Marker labels are
    /// interned as `"trace-marker"` (labels are `&'static str`; external
    /// traces keep only the id).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        let mut rss_pages = 0u64;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("#") => {
                    if parts.next() == Some("rss") {
                        rss_pages = parts
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| format!("line {}: bad rss header", lineno + 1))?;
                    }
                }
                Some(k @ ("R" | "W")) => {
                    let vpage: u64 = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| format!("line {}: bad page", lineno + 1))?;
                    let lip: u8 = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&l| l < 64)
                        .ok_or_else(|| format!("line {}: bad line index", lineno + 1))?;
                    let kind = if k == "R" { AccessKind::Read } else { AccessKind::Write };
                    events.push(WorkloadEvent::Access(Access::new(VirtPage::new(vpage), lip, kind)));
                }
                Some("M") => {
                    let id: u32 = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| format!("line {}: bad marker id", lineno + 1))?;
                    events.push(WorkloadEvent::Marker(Marker { id, label: "trace-marker" }));
                }
                other => return Err(format!("line {}: unknown record {:?}", lineno + 1, other)),
            }
        }
        if rss_pages == 0 {
            return Err("missing `# rss <pages>` header".into());
        }
        Ok(Self { events, rss_pages })
    }

    /// Wraps the trace as a replayable workload that loops forever.
    pub fn replay(self) -> TraceReplay {
        TraceReplay { trace: self, cursor: 0 }
    }
}

/// Replays a [`Trace`] as an infinite [`Workload`] (wrapping around at
/// the end, like the generators it was recorded from).
#[derive(Debug, Clone)]
pub struct TraceReplay {
    trace: Trace,
    cursor: usize,
}

impl Workload for TraceReplay {
    fn name(&self) -> &'static str {
        "TraceReplay"
    }

    fn rss_pages(&self) -> u64 {
        self.trace.rss_pages
    }

    fn next_event(&mut self) -> WorkloadEvent {
        assert!(!self.trace.is_empty(), "cannot replay an empty trace");
        let ev = self.trace.events[self.cursor];
        self.cursor = (self.cursor + 1) % self.trace.events.len();
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadKind;

    #[test]
    fn record_and_replay_reproduce_the_stream() {
        let mut gen1 = WorkloadKind::Redis.build(512, 4);
        let trace = Trace::record(gen1.as_mut(), 500);
        assert_eq!(trace.len(), 500);
        let mut replay = trace.clone().replay();
        let mut gen2 = WorkloadKind::Redis.build(512, 4);
        for _ in 0..500 {
            assert_eq!(replay.next_event(), gen2.next_event());
        }
        // Replay wraps around.
        let first_again = replay.next_event();
        assert_eq!(first_again, trace.events[0]);
    }

    #[test]
    fn text_round_trip() {
        let mut gen = WorkloadKind::Gups.build(256, 9);
        let trace = Trace::record(gen.as_mut(), 300);
        let text = trace.to_text();
        let parsed = Trace::from_text(&text).expect("well-formed text");
        assert_eq!(parsed.rss_pages, 256);
        assert_eq!(parsed.len(), trace.len());
        // Accesses survive exactly; markers keep their ids.
        for (a, b) in trace.events.iter().zip(&parsed.events) {
            match (a, b) {
                (WorkloadEvent::Access(x), WorkloadEvent::Access(y)) => assert_eq!(x, y),
                (WorkloadEvent::Marker(x), WorkloadEvent::Marker(y)) => assert_eq!(x.id, y.id),
                other => panic!("event kind changed: {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_text_rejected() {
        assert!(Trace::from_text("R 1 2\n").is_err(), "missing rss header");
        assert!(Trace::from_text("# rss 64\nX 1 2\n").is_err(), "unknown record");
        assert!(Trace::from_text("# rss 64\nR 1 99\n").is_err(), "line index out of range");
        assert!(Trace::from_text("# rss 64\nR abc 0\n").is_err(), "bad page number");
    }

    #[test]
    fn replay_is_a_valid_workload() {
        let mut gen = WorkloadKind::Silo.build(128, 2);
        let trace = Trace::record(gen.as_mut(), 100);
        let mut replay = trace.replay();
        assert_eq!(replay.rss_pages(), 128);
        for _ in 0..250 {
            if let WorkloadEvent::Access(a) = replay.next_event() {
                assert!(a.vpage.index() < 128);
            }
        }
    }
}
