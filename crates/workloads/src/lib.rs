//! Synthetic workload generators for the NeoMem evaluation.
//!
//! The paper evaluates eight benchmarks (§VI-A): GUPS, Page-Rank,
//! XSBench, Silo (YCSB-C), Btree, 603.bwaves, 654.roms and
//! DeathStarBench, plus Redis for the motivation experiments. Running
//! the real binaries is impossible inside a memory-system simulator, and
//! unnecessary: tiering outcomes are driven by the page-granularity
//! locality structure of the access stream. Each generator here
//! reproduces its benchmark's qualitative structure as described in the
//! paper and its citations:
//!
//! | Generator | Structure |
//! |---|---|
//! | [`Gups`] | uniform random updates, 90 % confined to a hot region (HeMem-style skew), with an optional hot-set relocation event (Fig. 16) |
//! | [`PageRank`] | build phase (sequential writes) then iterations of power-law vertex visits with per-iteration markers (Fig. 14) |
//! | [`XsBench`] | read-dominated zipfian lookups over large cross-section tables — "skewed hot memory regions" |
//! | [`Silo`] | YCSB-C zipfian point reads over records + small log writes |
//! | [`Btree`] | root-to-leaf index walks: exponentially hotter upper levels |
//! | [`StreamingHpc`] | bwaves/roms-style multi-array sequential sweeps with low reuse |
//! | [`Redis`] | zipfian GET/SET over a key/value heap |
//! | [`DeathStar`] | micro-service mix: zipfian session state + streaming logs + slowly rotating working set |
//!
//! All generators are deterministic given a seed and emit an infinite
//! stream of [`WorkloadEvent`]s; the simulator bounds runs by access
//! count or simulated time.
//!
//! Multi-tenant co-runs compose any of these generators through a
//! [`TenantMix`]: per-tenant footprints, interleave weights and seeds,
//! each tenant in a private page-id namespace. A [`Scenario`] adds a
//! dynamic-tenancy timeline on top — tenant arrivals, departures and
//! weight changes at virtual-time points — and [`PhasedWorkload`]
//! switches a tenant's generator kind/working-set at deterministic
//! event-count boundaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btree;
pub mod config;
mod deathstar;
mod gups;
mod pagerank;
mod perm;
mod redis;
mod scenario;
mod silo;
mod stream_hpc;
mod tenant;
mod trace;
mod xsbench;
mod zipf;

pub use btree::Btree;
pub use config::{parse_workload_kind, ScenarioConfig};
pub use deathstar::DeathStar;
pub use gups::Gups;
pub use pagerank::PageRank;
pub use redis::Redis;
pub use scenario::{
    PhaseSpec, PhasedWorkload, Scenario, ScenarioBuilder, TenantEvent, TenantEventKind,
};
pub use silo::Silo;
pub use stream_hpc::{StreamingHpc, StreamKind};
pub use tenant::{TenantMix, TenantMixBuilder, TenantSpec};
pub use trace::{Trace, TraceReplay};
pub use xsbench::XsBench;
pub use zipf::Zipf;

use neomem_types::Access;

/// A phase marker emitted inside the access stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Marker {
    /// Monotone marker index (e.g. Page-Rank iteration number).
    pub id: u32,
    /// Human-readable phase label.
    pub label: &'static str,
}

/// One element of a workload's event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadEvent {
    /// A memory access.
    Access(Access),
    /// A phase boundary (iteration end, hot-set move, ...).
    Marker(Marker),
}

/// A deterministic, infinite access-stream generator.
pub trait Workload {
    /// Short benchmark name, as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Virtual pages in the resident set.
    fn rss_pages(&self) -> u64;

    /// Produces the next event.
    fn next_event(&mut self) -> WorkloadEvent;

    /// Appends exactly `n` further events to `buf`, in stream order.
    ///
    /// The batch contract: the events appended must be *identical* to
    /// `n` successive [`next_event`](Self::next_event) calls — batching
    /// is a dispatch optimisation, never a behavioural one. The default
    /// implementation loops `next_event`; high-volume generators
    /// override it with a statically-dispatched loop so the simulator
    /// pays one virtual call per batch instead of one per access.
    fn fill_events(&mut self, buf: &mut Vec<WorkloadEvent>, n: usize) {
        buf.reserve(n);
        for _ in 0..n {
            buf.push(self.next_event());
        }
    }
}

/// Overrides [`Workload::fill_events`] inside a concrete `impl
/// Workload for …` block with the canonical batch loop over that
/// type's `next_event`. The loop body matches the trait default (which
/// is itself monomorphised per implementing type); the explicit
/// override pins the batch contract on each high-volume generator and
/// marks the spot where a genuinely specialised batch body would go.
macro_rules! impl_batched_fill_events {
    () => {
        fn fill_events(&mut self, buf: &mut Vec<$crate::WorkloadEvent>, n: usize) {
            buf.reserve(n);
            for _ in 0..n {
                buf.push(self.next_event());
            }
        }
    };
}
pub(crate) use impl_batched_fill_events;

/// The benchmark suite of the paper (Fig. 11 order), plus Redis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// GAP Page-Rank.
    PageRank,
    /// XSBench Monte-Carlo neutronics lookup kernel.
    XsBench,
    /// Silo in-memory database under YCSB-C.
    Silo,
    /// SPEC CPU2017 603.bwaves_s.
    Bwaves,
    /// SPEC CPU2017 654.roms_s.
    Roms,
    /// Mitosis Btree index.
    Btree,
    /// GUPS with HeMem-style 90/10 skew.
    Gups,
    /// DeathStarBench micro-service suite.
    DeathStarBench,
    /// Redis (used in the Fig. 4b motivation study).
    Redis,
}

impl WorkloadKind {
    /// The eight benchmarks of Fig. 11, in the paper's order.
    pub const FIG11: [WorkloadKind; 8] = [
        WorkloadKind::PageRank,
        WorkloadKind::XsBench,
        WorkloadKind::Silo,
        WorkloadKind::Bwaves,
        WorkloadKind::Roms,
        WorkloadKind::Btree,
        WorkloadKind::Gups,
        WorkloadKind::DeathStarBench,
    ];

    /// The paper-figure label.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::PageRank => "Page-Rank",
            WorkloadKind::XsBench => "XSBench",
            WorkloadKind::Silo => "Silo",
            WorkloadKind::Bwaves => "603.bwaves",
            WorkloadKind::Roms => "654.roms",
            WorkloadKind::Btree => "Btree",
            WorkloadKind::Gups => "GUPS",
            WorkloadKind::DeathStarBench => "DeathStarBench",
            WorkloadKind::Redis => "Redis",
        }
    }

    /// Builds the generator with a footprint of `rss_pages` virtual pages.
    pub fn build(self, rss_pages: u64, seed: u64) -> Box<dyn Workload> {
        match self {
            WorkloadKind::PageRank => Box::new(PageRank::new(rss_pages, seed)),
            WorkloadKind::XsBench => Box::new(XsBench::new(rss_pages, seed)),
            WorkloadKind::Silo => Box::new(Silo::new(rss_pages, seed)),
            WorkloadKind::Bwaves => Box::new(StreamingHpc::new(StreamKind::Bwaves, rss_pages, seed)),
            WorkloadKind::Roms => Box::new(StreamingHpc::new(StreamKind::Roms, rss_pages, seed)),
            WorkloadKind::Btree => Box::new(Btree::new(rss_pages, seed)),
            WorkloadKind::Gups => Box::new(Gups::new(rss_pages, seed)),
            WorkloadKind::DeathStarBench => Box::new(DeathStar::new(rss_pages, seed)),
            WorkloadKind::Redis => Box::new(Redis::new(rss_pages, seed)),
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_build_and_stream() {
        let mut kinds = WorkloadKind::FIG11.to_vec();
        kinds.push(WorkloadKind::Redis);
        for kind in kinds {
            let mut w = kind.build(1024, 42);
            assert!(!w.name().is_empty());
            assert!(w.rss_pages() >= 512, "{kind}: rss too small");
            let mut accesses = 0;
            for _ in 0..5000 {
                if let WorkloadEvent::Access(a) = w.next_event() {
                    assert!(a.vpage.index() < w.rss_pages(), "{kind}: page out of RSS");
                    accesses += 1;
                }
            }
            assert!(accesses > 4000, "{kind}: stream must be access-dominated");
        }
    }

    #[test]
    fn determinism_per_seed() {
        for kind in WorkloadKind::FIG11 {
            let mut a = kind.build(2048, 7);
            let mut b = kind.build(2048, 7);
            for _ in 0..2000 {
                assert_eq!(a.next_event(), b.next_event(), "{kind}: nondeterministic");
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = WorkloadKind::Gups.build(2048, 1);
        let mut b = WorkloadKind::Gups.build(2048, 2);
        // Skip the deterministic table-initialisation sweep.
        while !matches!(a.next_event(), WorkloadEvent::Marker(_)) {}
        while !matches!(b.next_event(), WorkloadEvent::Marker(_)) {}
        let mut diffs = 0;
        for _ in 0..1000 {
            if a.next_event() != b.next_event() {
                diffs += 1;
            }
        }
        assert!(diffs > 500, "seeds must decorrelate streams");
    }

    #[test]
    fn fill_events_matches_next_event_stream() {
        // The batch contract: fill_events (any batch size, including
        // sizes that straddle marker boundaries and queued bursts) must
        // reproduce the exact next_event stream.
        let mut kinds = WorkloadKind::FIG11.to_vec();
        kinds.push(WorkloadKind::Redis);
        for kind in kinds {
            for batch in [1usize, 3, 257] {
                let mut reference = kind.build(1024, 9);
                let mut batched = kind.build(1024, 9);
                let mut buf = Vec::new();
                let mut compared = 0usize;
                while compared < 6000 {
                    buf.clear();
                    batched.fill_events(&mut buf, batch);
                    assert_eq!(buf.len(), batch, "{kind}: short batch");
                    for ev in &buf {
                        assert_eq!(*ev, reference.next_event(), "{kind} batch={batch}");
                        compared += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn default_fill_events_appends_without_clearing() {
        // The default implementation must append, preserving prior
        // contents — the engine reuses one buffer across batches.
        struct Fixed;
        impl Workload for Fixed {
            fn name(&self) -> &'static str {
                "fixed"
            }
            fn rss_pages(&self) -> u64 {
                64
            }
            fn next_event(&mut self) -> WorkloadEvent {
                WorkloadEvent::Marker(Marker { id: 7, label: "m" })
            }
        }
        let mut w = Fixed;
        let mut buf = vec![w.next_event()];
        w.fill_events(&mut buf, 3);
        assert_eq!(buf.len(), 4);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(WorkloadKind::Bwaves.label(), "603.bwaves");
        assert_eq!(WorkloadKind::Gups.to_string(), "GUPS");
        assert_eq!(WorkloadKind::FIG11.len(), 8);
    }
}
