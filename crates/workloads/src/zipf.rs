//! A Zipf-distributed sampler.
//!
//! Key-value workloads (YCSB-C, Redis) and table-lookup kernels
//! (XSBench) exhibit Zipfian popularity. This sampler precomputes the
//! CDF once and answers samples by binary search — O(log n) per draw,
//! exact distribution, no rejection loops.

use rand::Rng;

/// A Zipf(α) distribution over ranks `0..n` (rank 0 most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` items with exponent `alpha`
    /// (YCSB default is 0.99).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is negative or non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "zipf over zero items");
        assert!(alpha.is_finite() && alpha >= 0.0, "invalid zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the top.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is degenerate (single item).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rank_zero_most_popular() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[500]);
        // Top-1% of ranks should absorb a large share under α≈1.
        let head: u32 = counts[..10].iter().sum();
        assert!(head as f64 / 100_000.0 > 0.25, "head share {}", head);
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 1_000.0, "non-uniform: {counts:?}");
        }
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(7, 1.2);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
        assert_eq!(z.len(), 7);
    }

    #[test]
    #[should_panic(expected = "zero items")]
    fn zero_items_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
