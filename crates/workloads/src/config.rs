//! Scenario files: declarative [`TenantMix`] / [`Scenario`] /
//! [`PhasedWorkload`](crate::PhasedWorkload) construction from the text-config format.
//!
//! A scenario file is a [`neomem_types::config::ConfigDoc`] with
//! `kind = scenario` that maps one-to-one onto the builder APIs of this
//! crate — the file is parsed into sections, each section is read
//! through a strict [`FieldReader`] (unknown keys are errors, with
//! near-miss suggestions), and the result is fed through the *same*
//! [`TenantMix::builder`] / [`Scenario::builder`] validation that
//! code-built scenarios use, so the rules can never diverge:
//!
//! ```text
//! schema = 1
//! kind = scenario
//! name = noisy-neighbor-duel
//!
//! [tenant]                 # tenant 0
//! name = victim
//! workload = silo
//! rss_pages = 2048
//! seed = 7
//!
//! [tenant]                 # tenant 1
//! name = aggressor
//! workload = gups
//! rss_pages = 2048
//! weight = 3
//! seed = 8
//!
//! [event]
//! at = 5ms
//! tenant = aggressor       # by name, or by index
//! action = depart
//! ```
//!
//! The schema is extend-only: new optional keys may be added, but
//! existing keys never change meaning or type, so old files stay valid.

use neomem_types::config::{ConfigDoc, ConfigError, ConfigSection, ConfigValue, FieldReader};
use neomem_types::suggest;
use neomem_types::{FaultPlan, Nanos};

use crate::{PhaseSpec, Scenario, TenantMix, WorkloadKind};

/// Current (and only) scenario-file schema version.
pub const SCHEMA_VERSION: u64 = 1;

/// Workload names accepted by [`parse_workload_kind`], in menu order.
pub const WORKLOAD_NAMES: [(&str, WorkloadKind); 9] = [
    ("pagerank", WorkloadKind::PageRank),
    ("xsbench", WorkloadKind::XsBench),
    ("silo", WorkloadKind::Silo),
    ("bwaves", WorkloadKind::Bwaves),
    ("roms", WorkloadKind::Roms),
    ("btree", WorkloadKind::Btree),
    ("gups", WorkloadKind::Gups),
    ("deathstarbench", WorkloadKind::DeathStarBench),
    ("redis", WorkloadKind::Redis),
];

/// Parses a workload name as used in config files (`gups`, `silo`,
/// `pagerank`, ... — lower-case, no punctuation; the paper-figure
/// labels `Page-Rank` / `603.bwaves` are also accepted).
pub fn parse_workload_kind(name: &str) -> Option<WorkloadKind> {
    let folded: String =
        name.chars().filter(|c| c.is_ascii_alphanumeric()).collect::<String>().to_ascii_lowercase();
    // `603bwaves` / `654roms` fold down from the paper labels.
    let folded = folded.trim_start_matches(|c: char| c.is_ascii_digit());
    WORKLOAD_NAMES.iter().find(|(n, _)| *n == folded).map(|(_, k)| *k)
}

/// A parsed, validated scenario file.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Registry name (`name = ...` in the file).
    pub name: String,
    /// Optional human title.
    pub title: Option<String>,
    /// Optional machine reference (`machine = <registry name>`); the
    /// runner resolves it, `None` means the default machine.
    pub machine: Option<String>,
    /// Optional co-run interleave quantum override: events a weight-1
    /// tenant runs per scheduling round.
    pub quantum: Option<usize>,
    /// The validated scenario (mix + timeline + phase schedules).
    pub scenario: Scenario,
    /// Tenant names in mix order (section `name =` or `tenant<i>`).
    pub tenant_names: Vec<String>,
}

impl ScenarioConfig {
    /// Parses and validates a scenario file.
    ///
    /// # Errors
    ///
    /// Returns a line-precise [`ConfigError`] on grammar errors, schema
    /// violations (unknown keys/sections, bad types, out-of-range
    /// values) and semantic violations (unknown workloads, dangling
    /// tenant references, invalid timelines or phase schedules).
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        Self::from_doc(&ConfigDoc::parse(text)?)
    }

    /// Validates an already-parsed document.
    ///
    /// # Errors
    ///
    /// As for [`ScenarioConfig::parse`], minus the grammar errors.
    pub fn from_doc(doc: &ConfigDoc) -> Result<Self, ConfigError> {
        let mut root = FieldReader::new(&doc.root);
        let schema = root.req_u64("schema")?;
        if schema != SCHEMA_VERSION {
            return Err(ConfigError::at(
                root.line_of("schema"),
                format!("unsupported schema version {schema} (this build reads {SCHEMA_VERSION})"),
            ));
        }
        let kind = root.req_str("kind")?;
        if kind != "scenario" {
            return Err(ConfigError::at(
                root.line_of("kind"),
                format!("kind {kind:?} is not \"scenario\""),
            ));
        }
        let name = root.req_str("name")?;
        if name.is_empty() {
            return Err(ConfigError::at(root.line_of("name"), "name must be non-empty".to_string()));
        }
        let title = root.take_str("title")?;
        let machine = root.take_str("machine")?;
        let quantum = root.take_u64_range("quantum", 1, 1 << 20)?.map(|q| q as usize);
        root.finish()?;

        for section in &doc.sections {
            if !matches!(section.name.as_str(), "tenant" | "event" | "phase" | "fault") {
                let hint = suggest::closest(&section.name, ["tenant", "event", "phase", "fault"])
                    .map(|s| format!(" (did you mean [{s}]?)"))
                    .unwrap_or_default();
                return Err(ConfigError::at(
                    section.line,
                    format!("unknown section [{}] in a scenario file{hint}", section.name),
                ));
            }
        }

        // Tenants, in section order.
        let mut tenant_names: Vec<String> = Vec::new();
        let mut mix_builder = TenantMix::builder();
        for (i, section) in doc.sections_named("tenant").enumerate() {
            let mut r = FieldReader::new(section);
            let tenant_name = r.take_str("name")?.unwrap_or_else(|| format!("tenant{i}"));
            if tenant_names.contains(&tenant_name) {
                return Err(ConfigError::at(
                    r.line_of("name"),
                    format!("duplicate tenant name {tenant_name:?}"),
                ));
            }
            let kind = read_workload_kind(&mut r)?;
            let rss_pages = r.req_u64_range("rss_pages", 1, u64::MAX)?;
            let weight = r.take_u64_range("weight", 1, u32::MAX as u64)?.unwrap_or(1);
            let seed = r.req_u64("seed")?;
            r.finish()?;
            tenant_names.push(tenant_name);
            mix_builder = mix_builder.weighted_tenant(kind, rss_pages, weight as u32, seed);
        }
        if tenant_names.is_empty() {
            return Err(ConfigError::whole(
                "a scenario file needs at least one [tenant] section",
            ));
        }
        let mix = mix_builder
            .build()
            .map_err(ConfigError::whole)?;

        // Phase schedules, grouped per tenant in section order.
        let mut builder = Scenario::builder(mix);
        let mut phases: Vec<Vec<PhaseSpec>> = vec![Vec::new(); tenant_names.len()];
        for section in doc.sections_named("phase") {
            let mut r = FieldReader::new(section);
            let tenant = read_tenant_ref(&mut r, &tenant_names)?;
            let kind = read_workload_kind(&mut r)?;
            let rss_pages = r.req_u64_range("rss_pages", 1, u64::MAX)?;
            let events = r.req_u64_range("events", 1, u64::MAX)?;
            r.finish()?;
            phases[tenant].push(PhaseSpec { kind, rss_pages, events });
        }
        for (tenant, schedule) in phases.into_iter().enumerate() {
            if !schedule.is_empty() {
                builder = builder.phased(tenant, schedule);
            }
        }

        // Timeline events, in section order (ties keep that order).
        let mut first_event_line = 0;
        for section in doc.sections_named("event") {
            if first_event_line == 0 {
                first_event_line = section.line;
            }
            let mut r = FieldReader::new(section);
            let at = Nanos::new(r.req_duration_ns("at")?);
            let tenant = read_tenant_ref(&mut r, &tenant_names)?;
            let action = r.req_str("action")?;
            let action_line = r.line_of("action");
            builder = match action.as_str() {
                "arrive" => {
                    r.finish()?;
                    builder.arrive(tenant, at)
                }
                "depart" => {
                    r.finish()?;
                    builder.depart(tenant, at)
                }
                "set-weight" => {
                    let weight = r.req_u64_range("weight", 1, u32::MAX as u64)?;
                    r.finish()?;
                    builder.set_weight(tenant, at, weight as u32)
                }
                other => {
                    let hint = suggest::closest(other, ["arrive", "depart", "set-weight"])
                        .map(|s| format!(" (did you mean {s:?}?)"))
                        .unwrap_or_default();
                    return Err(ConfigError::at(
                        action_line,
                        format!(
                            "unknown action {other:?} (want arrive, depart or set-weight){hint}"
                        ),
                    ));
                }
            };
        }

        // Fault windows, in section order (the shared plan builder
        // re-sorts and validates same-class overlap, exactly as for
        // code-built plans).
        let mut fault_builder = FaultPlan::builder();
        let mut first_fault_line = 0;
        for section in doc.sections_named("fault") {
            if first_fault_line == 0 {
                first_fault_line = section.line;
            }
            let mut r = FieldReader::new(section);
            let at = Nanos::new(r.req_duration_ns("at")?);
            let duration = Nanos::new(r.req_duration_ns("duration")?);
            let kind = r.req_str("kind")?;
            let kind_line = r.line_of("kind");
            fault_builder = match kind.as_str() {
                "neoprof-outage" => {
                    r.finish()?;
                    fault_builder.outage(at, duration)
                }
                "link-degraded" => {
                    let latency_x = r.take_u64_range("latency_x", 1, 1 << 20)?.unwrap_or(1);
                    let bandwidth_div = r.take_u64_range("bandwidth_div", 1, 1 << 20)?.unwrap_or(1);
                    r.finish()?;
                    fault_builder.link_degraded(at, duration, latency_x, bandwidth_div)
                }
                "capacity-loss" => {
                    let frames = r.req_u64_range("frames", 1, u64::MAX)?;
                    r.finish()?;
                    fault_builder.capacity_loss(at, duration, frames)
                }
                other => {
                    let menu = ["neoprof-outage", "link-degraded", "capacity-loss"];
                    let hint = suggest::closest(other, menu)
                        .map(|s| format!(" (did you mean {s:?}?)"))
                        .unwrap_or_default();
                    return Err(ConfigError::at(
                        kind_line,
                        format!("unknown fault kind {other:?}; available: {}{hint}", menu.join(", ")),
                    ));
                }
            };
        }
        if first_fault_line != 0 {
            let plan = fault_builder
                .build()
                .map_err(|e| ConfigError::at(first_fault_line, e.to_string()))?;
            builder = builder.faults(plan);
        }

        // Semantic validation goes through the shared builder; its
        // messages don't carry lines, so pin them to the first [event]
        // section (timeline rules are the only ones left to fail —
        // tenant indices and phase schedules were checked above).
        let scenario = builder
            .build()
            .map_err(|msg| ConfigError::at(first_event_line, msg))?;
        Ok(Self { name, title, machine, quantum, scenario, tenant_names })
    }
}

/// Reads the `workload =` key of `r` as a [`WorkloadKind`], with the
/// full menu (and a near-miss suggestion) in the error.
fn read_workload_kind(r: &mut FieldReader<'_>) -> Result<WorkloadKind, ConfigError> {
    let name = r.req_str("workload")?;
    parse_workload_kind(&name).ok_or_else(|| {
        let menu: Vec<&str> = WORKLOAD_NAMES.iter().map(|(n, _)| *n).collect();
        let hint = suggest::closest(&name, menu.iter().copied())
            .map(|s| format!(" (did you mean {s:?}?)"))
            .unwrap_or_default();
        ConfigError::at(
            r.line_of("workload"),
            format!("unknown workload {name:?}; available: {}{hint}", menu.join(", ")),
        )
    })
}

/// Reads the `tenant =` key of `r`: an index into the mix, or a tenant
/// name declared by a `[tenant]` section.
fn read_tenant_ref(
    r: &mut FieldReader<'_>,
    tenant_names: &[String],
) -> Result<usize, ConfigError> {
    let entry = r.req("tenant")?;
    let (line, section) = (entry.line, r.section().label());
    match &entry.value {
        ConfigValue::Int(i) => {
            let i = *i as usize;
            if i >= tenant_names.len() {
                return Err(ConfigError::at(
                    line,
                    format!(
                        "tenant index {i} out of range in {section} (the mix has {} tenants)",
                        tenant_names.len()
                    ),
                ));
            }
            Ok(i)
        }
        ConfigValue::Str(name) => {
            tenant_names.iter().position(|n| n == name).ok_or_else(|| {
                let hint = suggest::closest(name, tenant_names.iter().map(String::as_str))
                    .map(|s| format!(" (did you mean {s:?}?)"))
                    .unwrap_or_default();
                ConfigError::at(
                    line,
                    format!(
                        "unknown tenant {name:?} in {section}; declared tenants: {}{hint}",
                        tenant_names.join(", ")
                    ),
                )
            })
        }
        other => Err(ConfigError::at(
            line,
            format!(
                "key \"tenant\" wants an index or tenant name, found {} in {section}",
                other.type_name()
            ),
        )),
    }
}

/// Reads the root `kind =` of a parsed document — how the registry
/// routes a file to the scenario or machine reader.
///
/// # Errors
///
/// Fails when `kind` is missing, mistyped, or neither `scenario` nor
/// `machine`.
pub fn doc_kind(doc: &ConfigDoc) -> Result<String, ConfigError> {
    let entry = doc.root.get("kind").ok_or_else(|| {
        ConfigError::whole("missing required key \"kind\" (want kind = scenario or kind = machine)")
    })?;
    match &entry.value {
        ConfigValue::Str(s) if s == "scenario" || s == "machine" => Ok(s.clone()),
        ConfigValue::Str(s) => {
            let hint = suggest::closest(s, ["scenario", "machine"])
                .map(|k| format!(" (did you mean {k:?}?)"))
                .unwrap_or_default();
            Err(ConfigError::at(
                entry.line,
                format!("unknown kind {s:?} (want scenario or machine){hint}"),
            ))
        }
        other => Err(ConfigError::at(
            entry.line,
            format!("key \"kind\" wants a string, found {}", other.type_name()),
        )),
    }
}

/// Forwarding helper so callers holding only a section can still get
/// the unknown-section suggestion format used here.
#[doc(hidden)]
pub fn unknown_section_error(section: &ConfigSection, allowed: &[&'static str]) -> ConfigError {
    let hint = suggest::closest(&section.name, allowed.iter().copied())
        .map(|s| format!(" (did you mean [{s}]?)"))
        .unwrap_or_default();
    ConfigError::at(
        section.line,
        format!("unknown section [{}]{hint}", section.name),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TenantEventKind;

    const DUEL: &str = "\
schema = 1
kind = scenario
name = duel
title = \"noisy neighbor duel\"
quantum = 128

[tenant]
name = victim
workload = silo
rss_pages = 2048
seed = 7

[tenant]
name = aggressor
workload = gups
rss_pages = 2048
weight = 3
seed = 8

[event]
at = 5ms
tenant = aggressor
action = depart

[event]
at = 9ms
tenant = 1
action = arrive
";

    #[test]
    fn parses_a_full_scenario_file() {
        let cfg = ScenarioConfig::parse(DUEL).unwrap();
        assert_eq!(cfg.name, "duel");
        assert_eq!(cfg.title.as_deref(), Some("noisy neighbor duel"));
        assert_eq!(cfg.quantum, Some(128));
        assert_eq!(cfg.machine, None);
        assert_eq!(cfg.tenant_names, vec!["victim", "aggressor"]);
        let s = &cfg.scenario;
        assert_eq!(s.mix().len(), 2);
        assert_eq!(s.mix().tenants()[1].weight, 3);
        assert_eq!(s.events().len(), 2);
        assert_eq!(s.events()[0].kind, TenantEventKind::Depart);
        assert_eq!(s.events()[0].tenant, 1);
        assert_eq!(s.events()[1].at, Nanos::from_millis(9));
    }

    #[test]
    fn phases_group_per_tenant_in_order() {
        let text = "\
schema = 1
kind = scenario
name = phased
[tenant]
workload = gups
rss_pages = 1024
seed = 1
[phase]
tenant = 0
workload = gups
rss_pages = 512
events = 100
[phase]
tenant = tenant0
workload = silo
rss_pages = 256
events = 50
";
        let cfg = ScenarioConfig::parse(text).unwrap();
        let phases = cfg.scenario.phases()[0].as_ref().unwrap();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].kind, WorkloadKind::Gups);
        assert_eq!(phases[1].kind, WorkloadKind::Silo);
        assert_eq!(phases[1].events, 50);
    }

    #[test]
    fn workload_names_parse_and_reject() {
        assert_eq!(parse_workload_kind("gups"), Some(WorkloadKind::Gups));
        assert_eq!(parse_workload_kind("Page-Rank"), Some(WorkloadKind::PageRank));
        assert_eq!(parse_workload_kind("603.bwaves"), Some(WorkloadKind::Bwaves));
        assert_eq!(parse_workload_kind("654.roms"), Some(WorkloadKind::Roms));
        assert_eq!(parse_workload_kind("deathstarbench"), Some(WorkloadKind::DeathStarBench));
        assert_eq!(parse_workload_kind("mysql"), None);
    }

    #[test]
    fn diagnostics_are_precise() {
        let base = "schema = 1\nkind = scenario\nname = x\n";
        let err = |body: &str| {
            ScenarioConfig::parse(&format!("{base}{body}")).unwrap_err().to_string()
        };
        assert_eq!(
            err("[tenant]\nworkload = gupps\nrss_pages = 64\nseed = 1\n"),
            "line 5: unknown workload \"gupps\"; available: pagerank, xsbench, silo, bwaves, \
             roms, btree, gups, deathstarbench, redis (did you mean \"gups\"?)"
        );
        assert_eq!(
            err("[tenant]\nworkload = gups\nrss_pages = 0\nseed = 1\n"),
            "line 6: key \"rss_pages\" is 0, want at least 1 in [tenant]"
        );
        assert_eq!(
            err("[tenant]\nworkload = gups\nrss_pages = 64\nseed = 1\n\
                 [event]\nat = 1ms\ntenant = tenant7\naction = depart\n"),
            "line 10: unknown tenant \"tenant7\" in [event]; declared tenants: tenant0 \
             (did you mean \"tenant0\"?)"
        );
        assert_eq!(
            err("[tenant]\nworkload = gups\nrss_pages = 64\nseed = 1\n\
                 [event]\nat = 1ms\ntenant = 0\naction = vanish\n"),
            "line 11: unknown action \"vanish\" (want arrive, depart or set-weight)"
        );
        // Timeline violations surface the shared builder's message.
        let msg = err("[tenant]\nworkload = gups\nrss_pages = 64\nseed = 1\n\
                       [event]\nat = 1ms\ntenant = 0\naction = arrive\n\
                       [event]\nat = 2ms\ntenant = 0\naction = arrive\n");
        assert!(msg.contains("arrives at"), "{msg}");
        // Unknown sections suggest the close one.
        assert_eq!(
            err("[tenent]\nworkload = gups\n"),
            "line 4: unknown section [tenent] in a scenario file (did you mean [tenant]?)"
        );
    }

    #[test]
    fn schema_and_kind_are_enforced() {
        assert!(ScenarioConfig::parse("schema = 2\nkind = scenario\nname = x\n")
            .unwrap_err()
            .to_string()
            .contains("unsupported schema version 2"));
        assert!(ScenarioConfig::parse("schema = 1\nkind = machine\nname = x\n")
            .unwrap_err()
            .to_string()
            .contains("not \"scenario\""));
        let doc = ConfigDoc::parse("schema = 1\nkind = scenaro\nname = x\n").unwrap();
        assert!(doc_kind(&doc).unwrap_err().to_string().contains("did you mean \"scenario\"?"));
        let doc = ConfigDoc::parse("schema = 1\nkind = machine\nname = x\n").unwrap();
        assert_eq!(doc_kind(&doc).unwrap(), "machine");
    }

    #[test]
    fn fault_sections_lower_into_the_plan() {
        use neomem_types::FaultKind;
        let text = "\
schema = 1
kind = scenario
name = faulty
[tenant]
workload = gups
rss_pages = 1024
seed = 1
[fault]
kind = link-degraded
at = 3ms
duration = 1ms
latency_x = 4
bandwidth_div = 2
[fault]
kind = neoprof-outage
at = 1ms
duration = 500us
[fault]
kind = capacity-loss
at = 5ms
duration = 2ms
frames = 128
";
        let cfg = ScenarioConfig::parse(text).unwrap();
        let plan = cfg.scenario.faults();
        assert_eq!(plan.len(), 3);
        // The builder re-sorts by start time.
        assert_eq!(plan.events()[0].kind, FaultKind::NeoProfOutage);
        assert_eq!(plan.events()[0].at, Nanos::from_millis(1));
        assert_eq!(plan.events()[0].duration, Nanos::from_micros(500));
        assert_eq!(
            plan.events()[1].kind,
            FaultKind::LinkDegraded { latency_x: 4, bandwidth_div: 2 }
        );
        assert_eq!(plan.events()[2].kind, FaultKind::CapacityLoss { frames: 128 });
        assert!(cfg.scenario.label().ends_with("+3flt"), "{}", cfg.scenario.label());
    }

    #[test]
    fn fault_diagnostics_are_precise() {
        let base = "schema = 1\nkind = scenario\nname = x\n\
                    [tenant]\nworkload = gups\nrss_pages = 64\nseed = 1\n";
        let err = |body: &str| {
            ScenarioConfig::parse(&format!("{base}{body}")).unwrap_err().to_string()
        };
        // A mistyped kind gets the near-miss suggestion.
        assert_eq!(
            err("[fault]\nkind = neoprof-outge\nat = 1ms\nduration = 1ms\n"),
            "line 9: unknown fault kind \"neoprof-outge\"; available: neoprof-outage, \
             link-degraded, capacity-loss (did you mean \"neoprof-outage\"?)"
        );
        // A mistyped section name suggests [fault].
        assert_eq!(
            err("[falt]\nkind = neoprof-outage\nat = 1ms\nduration = 1ms\n"),
            "line 8: unknown section [falt] in a scenario file (did you mean [fault]?)"
        );
        // Kind-specific keys are rejected on the wrong kind.
        assert!(err("[fault]\nkind = neoprof-outage\nat = 1ms\nduration = 1ms\nframes = 4\n")
            .contains("unknown key \"frames\""));
        // Builder-level validation is pinned to the first [fault] line.
        assert!(err("[fault]\nkind = capacity-loss\nat = 1ms\nduration = 1ms\nframes = 0\n")
            .contains("at least 1"));
        let overlap = err("[fault]\nkind = neoprof-outage\nat = 1ms\nduration = 2ms\n\
                           [fault]\nkind = neoprof-outage\nat = 2ms\nduration = 1ms\n");
        assert!(overlap.starts_with("line 8:"), "{overlap}");
        assert!(overlap.contains("overlaps"), "{overlap}");
    }

    #[test]
    fn duplicate_and_missing_tenants_rejected() {
        let text = "schema = 1\nkind = scenario\nname = x\n\
                    [tenant]\nname = a\nworkload = gups\nrss_pages = 64\nseed = 1\n\
                    [tenant]\nname = a\nworkload = silo\nrss_pages = 64\nseed = 2\n";
        assert!(ScenarioConfig::parse(text).unwrap_err().to_string().contains("duplicate tenant"));
        assert_eq!(
            ScenarioConfig::parse("schema = 1\nkind = scenario\nname = x\n")
                .unwrap_err()
                .to_string(),
            "a scenario file needs at least one [tenant] section"
        );
    }
}
