//! Hint-fault monitoring (paper §II-C, Challenge #2): AutoNUMA, TPP and
//! Thermostat all poison sampled PTEs and harvest the resulting
//! protection faults.

use neomem_kernel::Kernel;
use neomem_types::json::{hex_from_u64s, Json};
use neomem_types::{Error, Nanos, Result, Tier, VirtPage};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Hint-fault sampler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HintFaultConfig {
    /// Pages poisoned per scan pass.
    pub poison_batch: usize,
    /// Faults required before a page becomes a promotion candidate
    /// (TPP promotes "only after two consecutive hint-faults").
    pub faults_to_promote: u32,
    /// CPU cost to poison one PTE (PTE rewrite; shootdown charged by
    /// the simulator per returned page).
    pub per_poison_cost: Nanos,
    /// Sampler seed.
    pub seed: u64,
}

impl HintFaultConfig {
    /// TPP-style: aggressive scanning, two-touch promotion.
    pub fn tpp() -> Self {
        Self { poison_batch: 512, faults_to_promote: 2, per_poison_cost: Nanos::new(120), seed: 11 }
    }

    /// AutoNUMA-style: slower scan cadence is expressed by the policy's
    /// scan interval; promotion threshold stays two-touch.
    pub fn autonuma() -> Self {
        Self { poison_batch: 256, faults_to_promote: 2, per_poison_cost: Nanos::new(120), seed: 13 }
    }
}

/// Result of one poison pass.
#[derive(Debug, Clone)]
pub struct PoisonOutcome {
    /// Pages whose PTEs were poisoned — the simulator must shoot down
    /// their TLB entries so the next touch faults.
    pub poisoned: Vec<VirtPage>,
    /// CPU time of the pass.
    pub overhead: Nanos,
}

/// The hint-fault sampling engine.
#[derive(Debug, Clone)]
pub struct HintFaultSampler {
    config: HintFaultConfig,
    rng: SmallRng,
    fault_counts: HashMap<u64, u32>,
    faults: u64,
}

impl HintFaultSampler {
    /// Creates the sampler.
    pub fn new(config: HintFaultConfig) -> Self {
        Self {
            config,
            rng: SmallRng::seed_from_u64(config.seed),
            fault_counts: HashMap::new(),
            faults: 0,
        }
    }

    /// Poisons up to `poison_batch` randomly-sampled slow-tier pages.
    /// Fast-tier pages are skipped: hint faults are used here for
    /// promotion candidates, mirroring TPP's NUMA-hint handling of the
    /// CXL node.
    pub fn poison_pass(&mut self, kernel: &mut Kernel) -> PoisonOutcome {
        // Collect the slow-tier resident set once per pass.
        let slow_pages: Vec<VirtPage> = kernel
            .page_table()
            .iter()
            .filter(|(_, pte)| !pte.poisoned)
            .filter(|(_, pte)| kernel.memory().tier_of(pte.frame) == Tier::Slow)
            .map(|(v, _)| v)
            .collect();
        // Distinct sample via partial Fisher–Yates.
        let mut candidates = slow_pages;
        let take = self.config.poison_batch.min(candidates.len());
        let mut poisoned = Vec::with_capacity(take);
        for i in 0..take {
            let j = self.rng.gen_range(i..candidates.len());
            candidates.swap(i, j);
            let pick = candidates[i];
            if kernel.page_table_mut().update(pick, |pte| pte.poisoned = true).is_ok() {
                poisoned.push(pick);
            }
        }
        poisoned.sort_unstable();
        let overhead = self.config.per_poison_cost * (poisoned.len() as u64 + 1);
        PoisonOutcome { poisoned, overhead }
    }

    /// Registers a serviced hint fault on `vpage`; returns `Some(vpage)`
    /// when the page just reached the promotion threshold.
    pub fn on_fault(&mut self, vpage: VirtPage) -> Option<VirtPage> {
        self.faults += 1;
        let count = self.fault_counts.entry(vpage.index()).or_default();
        *count += 1;
        if *count == self.config.faults_to_promote {
            Some(vpage)
        } else {
            None
        }
    }

    /// Total faults harvested.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Clears per-period fault counts.
    pub fn clear(&mut self) {
        self.fault_counts.clear();
    }

    /// The configuration in force.
    pub fn config(&self) -> &HintFaultConfig {
        &self.config
    }

    /// Serialises the sampler for a machine snapshot: the RNG stream
    /// position, the fault counter, and the per-page fault table as
    /// interleaved `(page, faults)` pairs sorted by page so the
    /// rendering is independent of hash-map iteration order.
    pub fn snapshot(&self) -> Json {
        let mut pairs: Vec<(u64, u32)> = self.fault_counts.iter().map(|(&p, &c)| (p, c)).collect();
        pairs.sort_unstable();
        let flat: Vec<u64> = pairs.iter().flat_map(|&(p, c)| [p, u64::from(c)]).collect();
        Json::obj([
            ("rng", Json::Str(hex_from_u64s(&self.rng.state()))),
            ("fault_counts", Json::Str(hex_from_u64s(&flat))),
            ("faults", Json::U64(self.faults)),
        ])
    }

    /// Restores [`HintFaultSampler::snapshot`] state, including the RNG
    /// stream position.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on missing/malformed fields, a
    /// malformed RNG state, an odd-length pair array, or a fault count
    /// exceeding `u32`.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        let rng_words = snap.req_u64s("rng")?;
        let rng_state: [u64; 4] = rng_words
            .as_slice()
            .try_into()
            .map_err(|_| Error::snapshot(format!("rng state has {} words, expected 4", rng_words.len())))?;
        let flat = snap.req_u64s("fault_counts")?;
        if flat.len() % 2 != 0 {
            return Err(Error::snapshot("odd-length hint-fault pair array"));
        }
        let mut counts = HashMap::with_capacity(flat.len() / 2);
        for pair in flat.chunks_exact(2) {
            let c = u32::try_from(pair[1])
                .map_err(|_| Error::snapshot(format!("fault count {} exceeds u32", pair[1])))?;
            counts.insert(pair[0], c);
        }
        self.faults = snap.req_u64("faults")?;
        self.rng = SmallRng::from_state(rng_state);
        self.fault_counts = counts;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neomem_kernel::KernelConfig;

    fn kernel_spilled(fast: u64, total: u64) -> Kernel {
        let mut k = Kernel::new(KernelConfig::with_frames(fast, total));
        for p in 0..total {
            k.touch_alloc(VirtPage::new(p), Nanos::ZERO).unwrap();
        }
        k
    }

    #[test]
    fn poisons_only_slow_tier_pages() {
        let mut k = kernel_spilled(4, 16);
        let mut s = HintFaultSampler::new(HintFaultConfig::tpp());
        let out = s.poison_pass(&mut k);
        assert!(!out.poisoned.is_empty());
        for p in &out.poisoned {
            assert!(k.tier_of(*p).unwrap().is_slow(), "{p} should be slow-tier");
            assert!(k.page_table().get(*p).unwrap().poisoned);
        }
        assert!(out.overhead > Nanos::ZERO);
    }

    #[test]
    fn two_touch_promotion_rule() {
        let mut s = HintFaultSampler::new(HintFaultConfig::tpp());
        let vp = VirtPage::new(5);
        assert_eq!(s.on_fault(vp), None, "first fault insufficient");
        assert_eq!(s.on_fault(vp), Some(vp), "second fault promotes");
        assert_eq!(s.on_fault(vp), None, "threshold fires once");
        assert_eq!(s.faults(), 3);
    }

    #[test]
    fn clear_resets_fault_counts() {
        let mut s = HintFaultSampler::new(HintFaultConfig::autonuma());
        s.on_fault(VirtPage::new(1));
        s.clear();
        assert_eq!(s.on_fault(VirtPage::new(1)), None, "count restarted");
    }

    #[test]
    fn already_poisoned_pages_skipped() {
        let mut k = kernel_spilled(2, 6);
        let mut s = HintFaultSampler::new(HintFaultConfig {
            poison_batch: 100,
            ..HintFaultConfig::tpp()
        });
        let first = s.poison_pass(&mut k);
        assert_eq!(first.poisoned.len(), 4, "all four slow pages poisoned");
        let second = s.poison_pass(&mut k);
        assert!(second.poisoned.is_empty(), "nothing left to poison");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut k1 = kernel_spilled(4, 32);
        let mut k2 = kernel_spilled(4, 32);
        let mut s1 = HintFaultSampler::new(HintFaultConfig::tpp());
        let mut s2 = HintFaultSampler::new(HintFaultConfig::tpp());
        assert_eq!(s1.poison_pass(&mut k1).poisoned, s2.poison_pass(&mut k2).poisoned);
    }
}
