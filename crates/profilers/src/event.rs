//! The per-access event descriptor profilers consume.

use neomem_types::{AccessKind, Nanos, PageNum, Tier, VirtPage};

/// One CPU memory access with full simulator-side visibility.
///
/// Each profiling mechanism uses only the fields its hardware can
/// actually see — e.g. PTE-scan sees nothing per-access (it harvests
/// accessed bits later), PEBS sees `llc_miss`, NeoProf sees `llc_miss`
/// on the slow tier only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// The virtual page touched.
    pub vpage: VirtPage,
    /// The physical frame backing it at access time.
    pub frame: PageNum,
    /// The tier that serviced the (potential) memory request.
    pub tier: Tier,
    /// Load or store.
    pub kind: AccessKind,
    /// Whether the TLB held the translation.
    pub tlb_hit: bool,
    /// Whether the access missed the whole cache hierarchy.
    pub llc_miss: bool,
    /// Simulated timestamp.
    pub now: Nanos,
}
