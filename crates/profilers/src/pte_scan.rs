//! PTE-scan profiling (paper §II-C, Challenge #1) and the DAMON
//! region-sampling variant (Fig. 4a).

use neomem_kernel::Kernel;
use neomem_types::json::{hex_from_u16s, Json};
use neomem_types::{Error, Nanos, Result, Tier, VirtPage};

/// Full-table PTE-scan configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PteScanConfig {
    /// CPU time to check+clear one PTE during a scan.
    pub per_pte_cost: Nanos,
    /// Epochs in which a page must be seen accessed before it is deemed
    /// hot (a single epoch carries only one bit of frequency information).
    pub hot_epochs: u32,
}

impl Default for PteScanConfig {
    fn default() -> Self {
        Self { per_pte_cost: Nanos::new(15), hot_epochs: 2 }
    }
}

/// Result of one scan epoch.
#[derive(Debug, Clone)]
pub struct ScanOutcome {
    /// Slow-tier pages that crossed the epoch threshold this scan.
    pub hot_pages: Vec<VirtPage>,
    /// Pages observed accessed this epoch (any tier).
    pub accessed_pages: u64,
    /// CPU time consumed by the walk.
    pub overhead: Nanos,
}

/// Epoch-based full page-table scanning.
///
/// Each epoch: harvest+clear all `Accessed` bits, bump an epoch counter
/// per accessed page, and report slow-tier pages whose counter reached
/// `hot_epochs`. Capture is one-bit-per-epoch — the resolution ceiling
/// the paper criticises.
#[derive(Debug, Clone)]
pub struct PteScanner {
    config: PteScanConfig,
    epoch_counts: Vec<u8>,
}

impl PteScanner {
    /// Creates a scanner for an address space of `rss_pages`.
    pub fn new(config: PteScanConfig, rss_pages: u64) -> Self {
        Self { config, epoch_counts: vec![0; rss_pages as usize] }
    }

    /// Runs one scan epoch over the kernel's page table.
    pub fn scan_epoch(&mut self, kernel: &mut Kernel) -> ScanOutcome {
        let mut hot = Vec::new();
        let mut accessed = 0u64;
        let mut visited = 0u64;
        // Harvest accessed bits.
        let mut hits: Vec<(VirtPage, Tier)> = Vec::new();
        for (vpage, pte) in kernel.page_table().iter() {
            visited += 1;
            if pte.accessed {
                accessed += 1;
                hits.push((vpage, kernel.memory().tier_of(pte.frame)));
            }
        }
        for (vpage, tier) in hits {
            let count = &mut self.epoch_counts[vpage.index() as usize];
            *count = count.saturating_add(1);
            if u32::from(*count) == self.config.hot_epochs && tier.is_slow() {
                hot.push(vpage);
            }
        }
        kernel.page_table_mut().clear_accessed_bits();
        ScanOutcome {
            hot_pages: hot,
            accessed_pages: accessed,
            overhead: self.config.per_pte_cost * visited.max(1),
        }
    }

    /// Clears epoch counters (per detection period).
    pub fn clear(&mut self) {
        self.epoch_counts.fill(0);
    }

    /// Serialises the per-page epoch counters for a machine snapshot.
    pub fn snapshot(&self) -> Json {
        let wide: Vec<u16> = self.epoch_counts.iter().map(|&c| u16::from(c)).collect();
        Json::obj([("epoch_counts", Json::Str(hex_from_u16s(&wide)))])
    }

    /// Restores [`PteScanner::snapshot`] state onto a scanner covering
    /// the same address-space span.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on missing/malformed fields, a counter
    /// array sized for a different span, or a count exceeding `u8`.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        let wide = snap.req_u16s("epoch_counts")?;
        if wide.len() != self.epoch_counts.len() {
            return Err(Error::snapshot(format!(
                "epoch counter array covers {} pages, expected {}",
                wide.len(),
                self.epoch_counts.len()
            )));
        }
        let mut counts = Vec::with_capacity(wide.len());
        for c in wide {
            let narrow = u8::try_from(c)
                .map_err(|_| Error::snapshot(format!("epoch count {c} exceeds u8")))?;
            counts.push(narrow);
        }
        self.epoch_counts = counts;
        Ok(())
    }
}

/// DAMON-style region sampling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DamonConfig {
    /// Number of monitored regions (space resolution knob).
    pub nr_regions: usize,
    /// CPU time per region check (one PTE probe + bookkeeping).
    pub per_region_cost: Nanos,
    /// Epochs a region must be seen accessed to be reported hot.
    pub hot_epochs: u32,
}

impl Default for DamonConfig {
    fn default() -> Self {
        Self { nr_regions: 256, per_region_cost: Nanos::new(60), hot_epochs: 2 }
    }
}

/// DAMON-style monitoring: the address space is split into
/// `nr_regions` regions; each epoch samples one page per region. Scan
/// cost scales with regions, not RSS — but so does spatial blur
/// (Fig. 4a's trade-off).
#[derive(Debug, Clone)]
pub struct DamonScanner {
    config: DamonConfig,
    rss_pages: u64,
    region_counts: Vec<u8>,
    epoch: u64,
}

impl DamonScanner {
    /// Creates a scanner over `rss_pages`.
    ///
    /// # Panics
    ///
    /// Panics if `nr_regions` is zero.
    pub fn new(config: DamonConfig, rss_pages: u64) -> Self {
        assert!(config.nr_regions > 0, "need at least one region");
        Self { config, rss_pages, region_counts: vec![0; config.nr_regions], epoch: 0 }
    }

    /// Pages per region (spatial resolution).
    pub fn region_pages(&self) -> u64 {
        (self.rss_pages / self.config.nr_regions as u64).max(1)
    }

    /// Runs one sampling epoch: probes one representative page per
    /// region (rotating deterministically) and reports *whole regions*
    /// whose probe was accessed `hot_epochs` times.
    pub fn scan_epoch(&mut self, kernel: &mut Kernel) -> ScanOutcome {
        self.epoch += 1;
        let rp = self.region_pages();
        let mut hot = Vec::new();
        let mut accessed = 0u64;
        for region in 0..self.config.nr_regions {
            let base = region as u64 * rp;
            let probe = VirtPage::new(base + self.epoch % rp.min(self.rss_pages - base.min(self.rss_pages - 1)).max(1));
            let Ok(pte) = kernel.page_table().get(probe) else { continue };
            if pte.accessed {
                accessed += 1;
                let count = &mut self.region_counts[region];
                *count = count.saturating_add(1);
                if u32::from(*count) == self.config.hot_epochs {
                    // Coarse report: every slow-tier page of the region.
                    for p in base..(base + rp).min(self.rss_pages) {
                        let vp = VirtPage::new(p);
                        if kernel.tier_of(vp).map(|t| t.is_slow()).unwrap_or(false) {
                            hot.push(vp);
                        }
                    }
                }
            }
        }
        kernel.page_table_mut().clear_accessed_bits();
        ScanOutcome {
            hot_pages: hot,
            accessed_pages: accessed,
            overhead: self.config.per_region_cost * self.config.nr_regions as u64,
        }
    }

    /// Clears region counters.
    pub fn clear(&mut self) {
        self.region_counts.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neomem_kernel::KernelConfig;
    use neomem_types::Nanos;

    fn kernel_with_pages(fast: u64, slow: u64, touched: &[u64]) -> Kernel {
        let mut k = Kernel::new(KernelConfig::with_frames(fast, slow));
        for &p in touched {
            k.touch_alloc(VirtPage::new(p), Nanos::ZERO).unwrap();
        }
        k
    }

    #[test]
    fn needs_hot_epochs_consecutive_scans() {
        // Page 4 spills to the slow tier (fast holds pages 0..4).
        let mut k = kernel_with_pages(4, 4, &[0, 1, 2, 3, 4]);
        let mut s = PteScanner::new(PteScanConfig::default(), 8);
        k.page_table_mut().mark_accessed(VirtPage::new(4)).unwrap();
        let o1 = s.scan_epoch(&mut k);
        assert!(o1.hot_pages.is_empty(), "one epoch = one bit, not hot yet");
        k.page_table_mut().mark_accessed(VirtPage::new(4)).unwrap();
        let o2 = s.scan_epoch(&mut k);
        assert_eq!(o2.hot_pages, vec![VirtPage::new(4)]);
    }

    #[test]
    fn fast_tier_pages_not_candidates() {
        let mut k = kernel_with_pages(4, 4, &[0]);
        let mut s = PteScanner::new(PteScanConfig::default(), 8);
        for _ in 0..3 {
            k.page_table_mut().mark_accessed(VirtPage::new(0)).unwrap();
            let o = s.scan_epoch(&mut k);
            assert!(o.hot_pages.is_empty(), "fast page must not be promoted");
        }
    }

    #[test]
    fn scan_overhead_proportional_to_mapped_pages() {
        let mut k_small = kernel_with_pages(4, 4, &[0, 1]);
        let mut k_large = kernel_with_pages(8, 8, &[0, 1, 2, 3, 4, 5, 6, 7]);
        let mut s = PteScanner::new(PteScanConfig::default(), 16);
        let o_small = s.scan_epoch(&mut k_small);
        let o_large = s.scan_epoch(&mut k_large);
        assert!(o_large.overhead > o_small.overhead);
    }

    #[test]
    fn scan_clears_accessed_bits() {
        let mut k = kernel_with_pages(2, 2, &[0]);
        let mut s = PteScanner::new(PteScanConfig::default(), 4);
        k.page_table_mut().mark_accessed(VirtPage::new(0)).unwrap();
        let o1 = s.scan_epoch(&mut k);
        assert_eq!(o1.accessed_pages, 1);
        let o2 = s.scan_epoch(&mut k);
        assert_eq!(o2.accessed_pages, 0, "bit must have been cleared");
    }

    #[test]
    fn damon_overhead_scales_with_regions_not_rss() {
        let mut k = kernel_with_pages(64, 64, &(0..100).collect::<Vec<_>>());
        let mut d_few = DamonScanner::new(DamonConfig { nr_regions: 4, ..Default::default() }, 128);
        let mut d_many = DamonScanner::new(DamonConfig { nr_regions: 64, ..Default::default() }, 128);
        let few = d_few.scan_epoch(&mut k).overhead;
        let many = d_many.scan_epoch(&mut k).overhead;
        assert_eq!(many.as_nanos(), few.as_nanos() * 16);
    }

    #[test]
    fn damon_reports_whole_regions() {
        // 2 regions over 8 pages; fast tier = 2 frames so pages 2.. are slow.
        let mut k = kernel_with_pages(2, 8, &[0, 1, 2, 3, 4, 5, 6, 7]);
        let cfg = DamonConfig { nr_regions: 2, hot_epochs: 1, ..Default::default() };
        let mut d = DamonScanner::new(cfg, 8);
        // Touch the probe page of region 1 (pages 4..8): mark all to be safe.
        for p in 4..8 {
            k.page_table_mut().mark_accessed(VirtPage::new(p)).unwrap();
        }
        let o = d.scan_epoch(&mut k);
        // Region report is coarse: several pages, all slow-tier.
        assert!(o.hot_pages.len() >= 3, "coarse region report expected, got {:?}", o.hot_pages);
        for p in &o.hot_pages {
            assert!(k.tier_of(*p).unwrap().is_slow());
        }
    }
}
