//! Memory-access profiling mechanisms (paper §II-C and Table I).
//!
//! Each profiler here models one of the techniques the paper analyses,
//! with its *event visibility* and *CPU overhead* made explicit:
//!
//! | Mechanism | Sees | Overhead charged |
//! |---|---|---|
//! | [`NeoProfDriver`] | every slow-tier LLC miss (device-side) | MMIO reads only |
//! | [`PebsSampler`] | every N-th LLC miss (PMU sampling) | per-sample + buffer-drain interrupts |
//! | [`PteScanner`] | ≥1 access per page per epoch (TLB level) | full page-table walks |
//! | [`DamonScanner`] | region-sampled accesses (TLB level) | per-region checks |
//! | [`HintFaultSampler`] | first touch of each poisoned page (TLB level) | poisoning walks + faults |
//!
//! The [`comparison_table`] function renders Table I.
//!
//! Profilers are *mechanisms*; the tiering *policies* in
//! `neomem-policies` compose them into complete solutions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod hint_fault;
mod neoprof_driver;
mod pebs;
mod pte_scan;

pub use event::AccessEvent;
pub use hint_fault::{HintFaultConfig, HintFaultSampler, PoisonOutcome};
pub use neoprof_driver::{NeoProfDriver, NeoProfDriverConfig};
pub use pebs::{PebsConfig, PebsSampler};
pub use pte_scan::{DamonConfig, DamonScanner, PteScanConfig, PteScanner, ScanOutcome};

/// Renders the qualitative comparison of Table I.
pub fn comparison_table() -> String {
    let rows = [
        ("", "PTE-Scan", "Hint-fault", "PMU Sampling", "NeoProf"),
        ("Profiling Location", "TLB", "TLB", "PMU Monitor", "Device-side CXL Ctrl"),
        (
            "Profiling Resolution",
            "One Access Per Epoch",
            "One Access to Sampled Pages",
            "Sampled Accesses",
            "Each Access",
        ),
        ("Cache Aware?", "no", "no", "yes", "yes"),
        ("Overhead", "High", "High", "Medium", "Low"),
    ];
    let mut out = String::new();
    for (a, b, c, d, e) in rows {
        out.push_str(&format!("{a:<22} | {b:<22} | {c:<28} | {d:<18} | {e}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_one_mentions_all_four_mechanisms() {
        let t = super::comparison_table();
        for needle in ["PTE-Scan", "Hint-fault", "PMU", "NeoProf", "Each Access", "Device-side"] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }
}
