//! PMU sampling à la Intel PEBS (paper §II-C, Fig. 4c).
//!
//! PEBS records every N-th LLC miss into a memory buffer; a full buffer
//! raises an interrupt the kernel must service. The two tunables the
//! paper sweeps are the sampling interval (Table V: 200–5000) and the
//! resulting overhead-vs-recall trade-off: short intervals slow the
//! workload down (>50 % at interval 10, Fig. 4c), long intervals miss
//! hot pages (the Fig. 13 under-promotion behaviour).

use std::collections::HashMap;

use neomem_types::json::{hex_from_u64s, Json};
use neomem_types::{Error, Nanos, Result, Tier, VirtPage};

use crate::event::AccessEvent;

/// PEBS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PebsConfig {
    /// Record one sample every `sample_interval` LLC misses.
    pub sample_interval: u64,
    /// Microarchitectural cost of capturing one PEBS record.
    pub per_sample_cost: Nanos,
    /// Records buffered before the drain interrupt fires.
    pub buffer_entries: u64,
    /// Kernel time to service one buffer-drain interrupt.
    pub drain_cost: Nanos,
}

impl Default for PebsConfig {
    fn default() -> Self {
        Self {
            sample_interval: 1000,
            per_sample_cost: Nanos::new(150),
            buffer_entries: 64,
            drain_cost: Nanos::from_micros(4),
        }
    }
}

impl PebsConfig {
    /// The Fig. 16 experiment's setting (`pebs_sampling_rate = 397`).
    pub fn convergence_default() -> Self {
        Self { sample_interval: 397, ..Self::default() }
    }
}

/// The PEBS sampling engine.
#[derive(Debug, Clone)]
pub struct PebsSampler {
    config: PebsConfig,
    miss_counter: u64,
    buffered: u64,
    /// Samples per virtual page that hit the *slow* tier (promotion
    /// candidates).
    slow_counts: HashMap<u64, u32>,
    total_samples: u64,
}

impl PebsSampler {
    /// Creates the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `sample_interval` is zero.
    pub fn new(config: PebsConfig) -> Self {
        assert!(config.sample_interval > 0, "sample interval must be positive");
        Self { config, miss_counter: 0, buffered: 0, slow_counts: HashMap::new(), total_samples: 0 }
    }

    /// Feeds one access; only LLC misses are visible to the PMU.
    /// Returns the CPU overhead incurred (sampling + any drain interrupt).
    pub fn on_access(&mut self, ev: &AccessEvent) -> Nanos {
        if !ev.llc_miss {
            return Nanos::ZERO;
        }
        self.miss_counter += 1;
        if !self.miss_counter.is_multiple_of(self.config.sample_interval) {
            return Nanos::ZERO;
        }
        self.total_samples += 1;
        self.buffered += 1;
        if ev.tier == Tier::Slow {
            *self.slow_counts.entry(ev.vpage.index()).or_default() += 1;
        }
        let mut cost = self.config.per_sample_cost;
        if self.buffered >= self.config.buffer_entries {
            self.buffered = 0;
            cost += self.config.drain_cost;
        }
        cost
    }

    /// Pages with at least `min_samples` slow-tier samples — the
    /// promotion candidates a PEBS-based policy acts on.
    pub fn hot_candidates(&self, min_samples: u32) -> Vec<VirtPage> {
        let mut pages: Vec<(u64, u32)> = self
            .slow_counts
            .iter()
            .filter(|(_, &c)| c >= min_samples)
            .map(|(&p, &c)| (p, c))
            .collect();
        // Hottest first, deterministic tiebreak by page number.
        pages.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pages.into_iter().map(|(p, _)| VirtPage::new(p)).collect()
    }

    /// Iterates `(vpage, samples)` over all recorded slow-tier pages
    /// (Memtis-style policies build their distribution from this).
    pub fn counts(&self) -> impl Iterator<Item = (VirtPage, u32)> + '_ {
        self.slow_counts.iter().map(|(&p, &c)| (VirtPage::new(p), c))
    }

    /// Total samples captured since the last clear.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Clears per-period sample state.
    pub fn clear(&mut self) {
        self.slow_counts.clear();
        self.total_samples = 0;
    }

    /// The configuration in force.
    pub fn config(&self) -> &PebsConfig {
        &self.config
    }

    /// Serialises the sampler for a machine snapshot: counters plus the
    /// per-page slow-tier sample table as interleaved `(page, samples)`
    /// pairs sorted by page so the rendering is independent of hash-map
    /// iteration order.
    pub fn snapshot(&self) -> Json {
        let mut pairs: Vec<(u64, u32)> = self.slow_counts.iter().map(|(&p, &c)| (p, c)).collect();
        pairs.sort_unstable();
        let flat: Vec<u64> = pairs.iter().flat_map(|&(p, c)| [p, u64::from(c)]).collect();
        Json::obj([
            ("miss_counter", Json::U64(self.miss_counter)),
            ("buffered", Json::U64(self.buffered)),
            ("slow_counts", Json::Str(hex_from_u64s(&flat))),
            ("total_samples", Json::U64(self.total_samples)),
        ])
    }

    /// Restores [`PebsSampler::snapshot`] state.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on missing/malformed fields, an
    /// odd-length pair array, or a sample count exceeding `u32`.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        let flat = snap.req_u64s("slow_counts")?;
        if flat.len() % 2 != 0 {
            return Err(Error::snapshot("odd-length pebs sample pair array"));
        }
        let mut counts = HashMap::with_capacity(flat.len() / 2);
        for pair in flat.chunks_exact(2) {
            let c = u32::try_from(pair[1])
                .map_err(|_| Error::snapshot(format!("sample count {} exceeds u32", pair[1])))?;
            counts.insert(pair[0], c);
        }
        self.miss_counter = snap.req_u64("miss_counter")?;
        self.buffered = snap.req_u64("buffered")?;
        self.total_samples = snap.req_u64("total_samples")?;
        self.slow_counts = counts;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neomem_types::{AccessKind, PageNum};

    fn ev(vpage: u64, llc_miss: bool, tier: Tier) -> AccessEvent {
        AccessEvent {
            vpage: VirtPage::new(vpage),
            frame: PageNum::new(vpage),
            tier,
            kind: AccessKind::Read,
            tlb_hit: true,
            llc_miss,
            now: Nanos::ZERO,
        }
    }

    #[test]
    fn samples_every_nth_miss() {
        let mut p = PebsSampler::new(PebsConfig { sample_interval: 10, ..Default::default() });
        for _ in 0..100 {
            p.on_access(&ev(1, true, Tier::Slow));
        }
        assert_eq!(p.total_samples(), 10);
    }

    #[test]
    fn cache_hits_invisible_to_pmu() {
        let mut p = PebsSampler::new(PebsConfig { sample_interval: 1, ..Default::default() });
        for _ in 0..50 {
            assert_eq!(p.on_access(&ev(1, false, Tier::Slow)), Nanos::ZERO);
        }
        assert_eq!(p.total_samples(), 0);
    }

    #[test]
    fn overhead_scales_inversely_with_interval() {
        let run = |interval| {
            let mut p = PebsSampler::new(PebsConfig { sample_interval: interval, ..Default::default() });
            let mut total = Nanos::ZERO;
            for _ in 0..100_000 {
                total += p.on_access(&ev(1, true, Tier::Slow));
            }
            total
        };
        let fast = run(10);
        let slow = run(1000);
        assert!(fast.as_nanos() > slow.as_nanos() * 50, "{fast} vs {slow}");
    }

    #[test]
    fn buffer_drain_interrupt_charged() {
        let cfg = PebsConfig { sample_interval: 1, buffer_entries: 4, ..Default::default() };
        let mut p = PebsSampler::new(cfg);
        let mut costs = Vec::new();
        for _ in 0..8 {
            costs.push(p.on_access(&ev(1, true, Tier::Slow)));
        }
        // Every 4th sample carries the drain cost.
        assert!(costs[3] > costs[0]);
        assert!(costs[7] > costs[6]);
    }

    #[test]
    fn hot_candidates_sorted_and_filtered() {
        let mut p = PebsSampler::new(PebsConfig { sample_interval: 1, ..Default::default() });
        for _ in 0..5 {
            p.on_access(&ev(7, true, Tier::Slow));
        }
        for _ in 0..2 {
            p.on_access(&ev(3, true, Tier::Slow));
        }
        p.on_access(&ev(9, true, Tier::Fast)); // fast-tier: not a candidate
        let hot = p.hot_candidates(2);
        assert_eq!(hot, vec![VirtPage::new(7), VirtPage::new(3)]);
        assert_eq!(p.hot_candidates(6), vec![]);
    }

    #[test]
    fn clear_resets_counts() {
        let mut p = PebsSampler::new(PebsConfig { sample_interval: 1, ..Default::default() });
        p.on_access(&ev(1, true, Tier::Slow));
        p.clear();
        assert!(p.hot_candidates(1).is_empty());
        assert_eq!(p.total_samples(), 0);
    }

    #[test]
    fn low_sampling_misses_pages_high_finds_them() {
        // 64 pages each missed 30 times: interval 1 sees all, interval
        // 2000 sees almost none — the paper's recall argument.
        let mut dense = PebsSampler::new(PebsConfig { sample_interval: 1, ..Default::default() });
        let mut sparse = PebsSampler::new(PebsConfig { sample_interval: 2000, ..Default::default() });
        for round in 0..30 {
            for page in 0..64u64 {
                let e = ev(page, true, Tier::Slow);
                dense.on_access(&e);
                sparse.on_access(&e);
                let _ = round;
            }
        }
        assert_eq!(dense.hot_candidates(1).len(), 64);
        assert!(sparse.hot_candidates(1).len() < 8);
    }
}
