//! The host-side NeoProf driver (paper Fig. 5 ❹).
//!
//! Wraps the [`neomem_neoprof::NeoProf`] device behind the MMIO command
//! protocol, charging explicit MMIO round-trip costs — the *only* CPU
//! overhead of NeoProf-based profiling (§VI-D measures 0.021 % total).

use neomem_kernel::Kernel;
use neomem_neoprof::{mmio, NeoProf, NeoProfConfig, StateSnapshot};
use neomem_sketch::{CounterHistogram, HISTOGRAM_BINS};
use neomem_types::json::Json;
use neomem_types::{MemRequest, Nanos, Result, VirtPage};

/// Driver cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeoProfDriverConfig {
    /// One MMIO read over the CXL link (uncached, strongly ordered).
    pub mmio_read_cost: Nanos,
    /// One MMIO write.
    pub mmio_write_cost: Nanos,
    /// Channel occupancy per snooped 64-byte request (used for the state
    /// monitor's busy accounting).
    pub snoop_occupancy: Nanos,
}

impl Default for NeoProfDriverConfig {
    fn default() -> Self {
        Self {
            mmio_read_cost: Nanos::new(700),
            mmio_write_cost: Nanos::new(600),
            snoop_occupancy: Nanos::new(5),
        }
    }
}

impl NeoProfDriverConfig {
    /// MMIO costs divided by `factor` for time-compressed simulations:
    /// when daemon cadences shrink by `factor`, per-readout costs must
    /// shrink equally or the *relative* daemon overhead is inflated by
    /// the same factor.
    pub fn scaled(factor: u64) -> Self {
        let d = Self::default();
        Self {
            mmio_read_cost: (d.mmio_read_cost / factor.max(1)).max(Nanos::new(1)),
            mmio_write_cost: (d.mmio_write_cost / factor.max(1)).max(Nanos::new(1)),
            snoop_occupancy: d.snoop_occupancy,
        }
    }
}

/// MMIO round trips charged when a command times out against an
/// offline device (the host retries until the protocol deadline).
const MMIO_TIMEOUT_X: u64 = 4;

/// The kernel driver for one NeoProf device.
#[derive(Debug, Clone)]
pub struct NeoProfDriver {
    device: NeoProf,
    config: NeoProfDriverConfig,
    device_base: neomem_types::PageNum,
    mmio_time: Nanos,
    /// Device outage (fault injection): snoops are dropped and MMIO
    /// commands time out instead of reaching the device.
    outage: bool,
}

impl NeoProfDriver {
    /// Creates the driver and its device.
    ///
    /// # Errors
    ///
    /// Propagates invalid sketch parameters.
    pub fn new(dev_config: NeoProfConfig, config: NeoProfDriverConfig) -> Result<Self> {
        Ok(Self {
            device_base: dev_config.device_base,
            device: NeoProf::new(dev_config)?,
            config,
            mmio_time: Nanos::ZERO,
            outage: false,
        })
    }

    /// Marks the device offline (`true`) or back online (`false`).
    ///
    /// While offline the device is invisible to the memory system:
    /// snoops are dropped on the floor (sampling dropout) and every
    /// MMIO command burns a timeout multiple of round trips before failing
    /// back to the caller with an empty result. Device state is frozen,
    /// not cleared — whatever the sketch held when the link dropped is
    /// still there on recovery, which is why callers are expected to
    /// [`NeoProfDriver::reset`] and re-arm the threshold when the
    /// device returns.
    pub fn set_outage(&mut self, outage: bool) {
        self.outage = outage;
    }

    /// Whether the device is currently offline.
    pub fn outage(&self) -> bool {
        self.outage
    }

    /// Hardware path: the device snoops one slow-tier memory request.
    /// Costs zero CPU time.
    pub fn snoop(&mut self, req: MemRequest) {
        if self.outage {
            return;
        }
        self.device.snoop(req, self.config.snoop_occupancy);
        self.device.tick();
    }

    /// Hardware path, batched: the device snoops a run of slow-tier
    /// requests, bit-identical to per-request [`snoop`](Self::snoop)
    /// calls (outages only toggle between accesses, never inside a
    /// chunk, so one guard covers the whole batch). Costs zero CPU
    /// time.
    pub fn snoop_batch(&mut self, reqs: &[MemRequest]) {
        if self.outage {
            return;
        }
        self.device.snoop_tick_batch(reqs, self.config.snoop_occupancy);
    }

    /// Sets the hot-page threshold θ; returns the MMIO cost.
    pub fn set_threshold(&mut self, theta: u16, now: Nanos) -> Nanos {
        if self.outage {
            return self.charge(self.config.mmio_write_cost * MMIO_TIMEOUT_X);
        }
        self.device
            .mmio_write(mmio::SET_THRESHOLD, theta as u64, now)
            .expect("SetThreshold is a valid write");
        self.charge(self.config.mmio_write_cost)
    }

    /// Resets the device (the periodic `clear_interval` reset).
    pub fn reset(&mut self, now: Nanos) -> Nanos {
        if self.outage {
            return self.charge(self.config.mmio_write_cost * MMIO_TIMEOUT_X);
        }
        self.device.mmio_write(mmio::RESET, 1, now).expect("Reset is a valid write");
        self.charge(self.config.mmio_write_cost)
    }

    /// Reads out all pending hot pages and resolves them to virtual
    /// pages via the kernel rmap. Returns `(pages, mmio_cost)`.
    pub fn read_hot_pages(&mut self, kernel: &Kernel, now: Nanos) -> (Vec<VirtPage>, Nanos) {
        if self.outage {
            return (Vec::new(), self.charge(self.config.mmio_read_cost * MMIO_TIMEOUT_X));
        }
        let mut cost = self.config.mmio_read_cost;
        let n = self
            .device
            .mmio_read(mmio::GET_NR_HOT_PAGE, now)
            .expect("GetNrHotPage is a valid read");
        let mut pages = Vec::with_capacity(n as usize);
        for _ in 0..n {
            cost += self.config.mmio_read_cost;
            let raw = self.device.mmio_read(mmio::GET_HOT_PAGE, now).expect("GetHotPage read");
            if raw == mmio::EMPTY_SENTINEL {
                break;
            }
            let frame = neomem_types::DevicePage::new(raw).to_host(self.device_base);
            if let Some(vpage) = kernel.vpage_of(frame) {
                pages.push(vpage);
            }
        }
        (pages, self.charge(cost))
    }

    /// Reads the state monitor (bandwidth window): three MMIO reads.
    pub fn read_state(&mut self, now: Nanos) -> (StateSnapshot, Nanos) {
        if self.outage {
            let empty = StateSnapshot { sampled_cycles: 0, read_cycles: 0, write_cycles: 0 };
            return (empty, self.charge(self.config.mmio_read_cost * MMIO_TIMEOUT_X));
        }
        let sampled = self.device.mmio_read(mmio::GET_NR_SAMPLE, now).expect("GetNrSample");
        let read_cycles = self.device.mmio_read(mmio::GET_RD_CNT, now).expect("GetRdCnt");
        let write_cycles = self.device.mmio_read(mmio::GET_WR_CNT, now).expect("GetWrCnt");
        let snap = StateSnapshot { sampled_cycles: sampled, read_cycles, write_cycles };
        (snap, self.charge(self.config.mmio_read_cost * 3))
    }

    /// Triggers the histogram sweep and streams out the 64 bins.
    pub fn read_histogram(&mut self, now: Nanos) -> (CounterHistogram, Nanos) {
        if self.outage {
            let empty = CounterHistogram::from_bins([0; HISTOGRAM_BINS]);
            return (empty, self.charge(self.config.mmio_write_cost * MMIO_TIMEOUT_X));
        }
        self.device.mmio_write(mmio::SET_HIST_EN, 1, now).expect("SetHistEn");
        let mut bins = [0u64; HISTOGRAM_BINS];
        for bin in bins.iter_mut() {
            let v = self.device.mmio_read(mmio::GET_HIST, now).expect("GetHist");
            if v == mmio::EMPTY_SENTINEL {
                break;
            }
            *bin = v;
        }
        let cost = self.config.mmio_write_cost + self.config.mmio_read_cost * HISTOGRAM_BINS as u64;
        (CounterHistogram::from_bins(bins), self.charge(cost))
    }

    /// Total MMIO time spent by the host so far — the whole CPU cost of
    /// NeoProf profiling.
    pub fn mmio_time(&self) -> Nanos {
        self.mmio_time
    }

    /// Direct device access (diagnostics / state-monitor peeks).
    pub fn device(&self) -> &NeoProf {
        &self.device
    }

    fn charge(&mut self, cost: Nanos) -> Nanos {
        self.mmio_time += cost;
        cost
    }

    /// Serialises the driver (device state plus accumulated MMIO time)
    /// for a machine snapshot.
    pub fn snapshot(&self) -> Json {
        Json::obj([
            ("device", self.device.snapshot()),
            ("mmio_time", Json::U64(self.mmio_time.as_nanos())),
            ("outage", Json::Bool(self.outage)),
        ])
    }

    /// Restores [`NeoProfDriver::snapshot`] state onto a same-config
    /// driver.
    ///
    /// # Errors
    ///
    /// Returns [`neomem_types::Error::Snapshot`] on missing/malformed
    /// fields or device state sized for a different configuration.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        let mmio_time = Nanos::new(snap.req_u64("mmio_time")?);
        let outage = snap.req_bool("outage")?;
        self.device.restore(snap.req("device")?)?;
        self.mmio_time = mmio_time;
        self.outage = outage;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neomem_kernel::KernelConfig;
    use neomem_types::{AccessKind, PageNum};

    fn setup() -> (Kernel, NeoProfDriver) {
        // 4 fast + 16 slow frames; slow window starts at frame 4.
        let mut kernel = Kernel::new(KernelConfig::with_frames(4, 16));
        for p in 0..12 {
            kernel.touch_alloc(VirtPage::new(p), Nanos::ZERO).unwrap();
        }
        let dev_cfg = NeoProfConfig::small(kernel.memory().slow_base());
        let driver = NeoProfDriver::new(dev_cfg, NeoProfDriverConfig::default()).unwrap();
        (kernel, driver)
    }

    #[test]
    fn hot_page_readout_resolves_virtual_pages() {
        let (kernel, mut driver) = setup();
        driver.set_threshold(2, Nanos::ZERO);
        // Page 7 lives on the slow tier (first 4 pages filled fast).
        let frame = kernel.translate(VirtPage::new(7)).unwrap();
        assert!(kernel.memory().tier_of(frame).is_slow());
        for _ in 0..5 {
            driver.snoop(MemRequest::new(frame, 0, AccessKind::Read));
        }
        let (pages, cost) = driver.read_hot_pages(&kernel, Nanos::from_micros(10));
        assert_eq!(pages, vec![VirtPage::new(7)]);
        assert!(cost >= NeoProfDriverConfig::default().mmio_read_cost * 2);
    }

    #[test]
    fn state_readout_reflects_snoops() {
        let (kernel, mut driver) = setup();
        let frame = kernel.translate(VirtPage::new(8)).unwrap();
        for _ in 0..10 {
            driver.snoop(MemRequest::new(frame, 0, AccessKind::Write));
        }
        let (snap, _) = driver.read_state(Nanos::from_micros(100));
        assert!(snap.write_cycles > 0);
        assert_eq!(snap.read_cycles, 0);
        assert!(snap.sampled_cycles > 0);
    }

    #[test]
    fn histogram_roundtrip_totals_sketch_width() {
        let (kernel, mut driver) = setup();
        let frame = kernel.translate(VirtPage::new(9)).unwrap();
        driver.snoop(MemRequest::new(frame, 0, AccessKind::Read));
        let (hist, cost) = driver.read_histogram(Nanos::ZERO);
        assert_eq!(hist.total(), neomem_sketch::SketchParams::small().width as u64);
        assert!(cost > Nanos::from_micros(40), "64 MMIO reads are expensive: {cost}");
    }

    #[test]
    fn mmio_time_accumulates() {
        let (kernel, mut driver) = setup();
        assert_eq!(driver.mmio_time(), Nanos::ZERO);
        driver.set_threshold(1, Nanos::ZERO);
        driver.read_hot_pages(&kernel, Nanos::ZERO);
        driver.reset(Nanos::ZERO);
        assert!(driver.mmio_time() > Nanos::ZERO);
    }

    #[test]
    fn outage_drops_snoops_and_times_out_mmio() {
        let (kernel, mut driver) = setup();
        driver.set_threshold(1, Nanos::ZERO);
        let frame = kernel.translate(VirtPage::new(7)).unwrap();
        driver.set_outage(true);
        assert!(driver.outage());
        // Snoops during the outage are dropped — the device never sees them.
        for _ in 0..5 {
            driver.snoop(MemRequest::new(frame, 0, AccessKind::Read));
        }
        // MMIO commands time out: empty results, inflated cost.
        let before = driver.mmio_time();
        let (pages, cost) = driver.read_hot_pages(&kernel, Nanos::ZERO);
        assert!(pages.is_empty());
        assert_eq!(cost, NeoProfDriverConfig::default().mmio_read_cost * MMIO_TIMEOUT_X);
        let (state, _) = driver.read_state(Nanos::ZERO);
        assert_eq!(state.sampled_cycles, 0);
        assert!(driver.mmio_time() > before, "timeouts still burn CPU time");
        // Recovery: the dropped snoops stay lost, new ones register.
        driver.set_outage(false);
        for _ in 0..5 {
            driver.snoop(MemRequest::new(frame, 0, AccessKind::Read));
        }
        let (pages, _) = driver.read_hot_pages(&kernel, Nanos::ZERO);
        assert_eq!(pages, vec![VirtPage::new(7)]);
        // Outage state round-trips through the snapshot.
        driver.set_outage(true);
        let snap = driver.snapshot();
        let dev_cfg = NeoProfConfig::small(kernel.memory().slow_base());
        let mut fresh = NeoProfDriver::new(dev_cfg, NeoProfDriverConfig::default()).unwrap();
        fresh.restore(&snap).unwrap();
        assert!(fresh.outage());
    }

    #[test]
    fn unmapped_frames_skipped_in_readout() {
        let (mut kernel, mut driver) = setup();
        driver.set_threshold(1, Nanos::ZERO);
        let frame = kernel.translate(VirtPage::new(10)).unwrap();
        for _ in 0..3 {
            driver.snoop(MemRequest::new(frame, 0, AccessKind::Read));
        }
        // Unmap by demoting... instead simulate stale rmap: snoop a frame
        // that was never mapped.
        let ghost = PageNum::new(19);
        for _ in 0..3 {
            driver.snoop(MemRequest::new(ghost, 0, AccessKind::Read));
        }
        let (pages, _) = driver.read_hot_pages(&kernel, Nanos::ZERO);
        assert_eq!(pages, vec![VirtPage::new(10)], "ghost frame must be dropped");
        let _ = &mut kernel;
    }
}
