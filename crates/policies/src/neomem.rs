//! The NeoMem tiering policy: NeoProf readouts + Algorithm 1.

use neomem_kernel::Kernel;
use neomem_neoprof::NeoProfConfig;
use neomem_profilers::{AccessEvent, NeoProfDriver, NeoProfDriverConfig, PteScanConfig, PteScanner};
use neomem_sketch::error_bound;
use neomem_types::json::{hex_from_u64s, Json};
use neomem_types::{Bandwidth, Bytes, Error, FaultKind, MemRequest, Nanos, Result, Tier};

use crate::quota::QuotaMeter;
use crate::tenancy::TenantLayout;
use crate::{ensure_fast_headroom_with, DemotionStrategy, PolicyTelemetry, TieringPolicy};

/// Threshold control mode (Fig. 14a compares dynamic against fixed θ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdMode {
    /// Algorithm 1 dynamic adjustment.
    Dynamic,
    /// A constant θ for the whole run.
    Fixed(u16),
}

/// NeoMem software parameters (Table V defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeoMemParams {
    /// Maximum page-migration rate `mquota`.
    pub mquota: Bandwidth,
    /// Lower percentile bound `pmin`.
    pub pmin: f64,
    /// Upper percentile bound `pmax`.
    pub pmax: f64,
    /// Initial percentile `pinit`.
    pub pinit: f64,
    /// Bandwidth-pressure exponent α.
    pub alpha: f64,
    /// Ping-pong exponent β.
    pub beta: f64,
    /// Hot-page readout + promotion cadence (`migration_interval`).
    pub migration_interval: Nanos,
    /// NeoProf counter reset cadence (`clear_interval`).
    pub clear_interval: Nanos,
    /// Algorithm 1 cadence (`thr_update_interval`).
    pub thr_update_interval: Nanos,
    /// Fast-tier free-frame headroom maintained by demotion.
    pub headroom_frac: f64,
    /// Threshold control mode.
    pub threshold_mode: ThresholdMode,
    /// Transparent Huge Page mode (paper §VII, Table VI): NeoProf still
    /// reports hot 4 KiB pages, but the daemon aggregates them per 2 MiB
    /// region and migrates whole huge pages once a region accumulates
    /// enough distinct hot base pages.
    pub thp: bool,
    /// Distinct hot base pages required before a huge region migrates.
    pub thp_votes: u32,
    /// Demotion victim selection (ablation: LRU-2Q vs arbitrary).
    pub demotion: DemotionStrategy,
    /// Contention-aware promotion throttling (the `NeoMem-CA` variant):
    /// consume the co-run engine's cross-tenant-eviction signal and
    /// charge aggressors a quota penalty, slowing their promotion rate
    /// while they displace co-runners. Off by default — plain NeoMem
    /// ignores the signal entirely.
    pub contention_aware: bool,
    /// Cross-tenant evictions (pages) per unit of quota penalty: an
    /// aggressor with `a` accumulated eviction pages pays a
    /// `1 + a / contention_penalty_pages` multiplier on every promotion
    /// quota charge.
    pub contention_penalty_pages: u64,
    /// Ceiling on the quota-penalty multiplier.
    pub contention_max_penalty: u64,
}

impl NeoMemParams {
    /// The paper's Table V defaults.
    pub fn paper_default() -> Self {
        Self {
            mquota: Bandwidth::from_mib_per_sec(256),
            pmin: 0.0001,   // 0.01 %
            pmax: 0.0156,   // 1.56 %
            pinit: 0.001,   // 0.1 %
            alpha: 1.0,
            beta: 2.0,
            migration_interval: Nanos::from_millis(10),
            clear_interval: Nanos::from_secs(5),
            thr_update_interval: Nanos::from_secs(1),
            headroom_frac: 0.02,
            threshold_mode: ThresholdMode::Dynamic,
            thp: false,
            thp_votes: 3,
            demotion: DemotionStrategy::Lru2Q,
            contention_aware: false,
            contention_penalty_pages: 8,
            contention_max_penalty: 4,
        }
    }

    /// Paper cadences divided by `factor` — used when simulating
    /// milliseconds instead of minutes. Percentiles and quota are
    /// unchanged.
    pub fn scaled(factor: u64) -> Self {
        assert!(factor >= 1, "scale factor must be >= 1");
        let d = Self::paper_default();
        Self {
            migration_interval: (d.migration_interval / factor).max(Nanos::from_micros(100)),
            clear_interval: (d.clear_interval / factor).max(Nanos::from_millis(1)),
            thr_update_interval: (d.thr_update_interval / factor).max(Nanos::from_micros(500)),
            ..d
        }
    }
}

/// The NeoMem daemon (paper Fig. 5 ❺, Algorithm 1).
#[derive(Debug)]
pub struct NeoMemPolicy {
    driver: NeoProfDriver,
    params: NeoMemParams,
    quota: QuotaMeter,
    p: f64,
    theta: u16,
    started: bool,
    next_migrate: Nanos,
    next_thr: Nanos,
    next_clear: Nanos,
    /// Kernel counter snapshots at the last threshold update.
    last_promotions: u64,
    last_ping_pongs: u64,
    last_promoted_bytes: u64,
    telemetry: PolicyTelemetry,
    /// THP vote aggregation (only consulted when `params.thp`).
    huge_map: neomem_kernel::HugePageMap,
    /// Bytes promoted as part of whole-huge-page migrations.
    promoted_huge_bytes: u64,
    /// Multi-tenant arbitration state; `None` (single-tenant machines)
    /// leaves every decision path exactly as it always was.
    tenancy: Option<TenancyState>,
    /// Degraded-mode profiler, armed while the NeoProf device is out:
    /// a PTE scanner stands in for the hot-page readout at the normal
    /// migration cadence. `None` on a healthy machine.
    fallback: Option<PteScanner>,
    /// Cumulative CPU time burned in fallback PTE scans.
    fallback_overhead: Nanos,
    /// Reused slow-tier request buffer for the chunked access hook;
    /// scratch only, never snapshotted.
    snoop_reqs: Vec<MemRequest>,
}

/// Per-tenant arbitration state, active only on co-run machines.
#[derive(Debug)]
struct TenancyState {
    layout: TenantLayout,
    /// Fast-tier occupancy per tenant, refreshed from the kernel's
    /// reverse map at each migration tick. Promotions performed inside
    /// the tick update the counts incrementally; concurrent demotions
    /// are picked up by the next refresh, which keeps the fairness gate
    /// slightly conservative between refreshes.
    fast_counts: Vec<u64>,
    /// Accumulated cross-tenant-eviction pages per tenant (the
    /// aggression score behind the `NeoMem-CA` quota penalty). Fed by
    /// [`TieringPolicy::note_cross_tenant_evictions`], halved at every
    /// threshold update so sustained aggression keeps the penalty up
    /// while a reformed tenant recovers within a few windows. Stays
    /// all-zero unless `contention_aware` is set.
    aggression: Vec<u64>,
    /// Per-tenant candidate counters behind the admission throttle: a
    /// tenant at penalty `p` promotes only every `p`-th of its hot-page
    /// candidates, so the throttle bites even when the migration quota
    /// is far from saturated (quick-scale runs never fill a 256 MiB/s
    /// window).
    throttle_counters: Vec<u64>,
}

impl TenancyState {
    /// Recounts each tenant's fast-tier pages from the kernel rmap.
    fn refresh(&mut self, kernel: &Kernel) {
        self.layout.count_fast_pages(kernel, &mut self.fast_counts);
    }

    /// Whether `tenant` already occupies its configured fast-tier
    /// share (always `false` without a cap).
    fn over_fast_cap(&self, tenant: usize, fast_capacity: u64) -> bool {
        self.layout
            .fast_cap_frames(tenant, fast_capacity)
            .is_some_and(|cap| self.fast_counts[tenant] >= cap)
    }

    /// The quota-charge multiplier `tenant` pays per promotion under
    /// contention-aware throttling: 1 while it behaves, growing with
    /// its accumulated aggression up to the configured ceiling.
    fn quota_penalty(&self, tenant: usize, params: &NeoMemParams) -> u64 {
        if !params.contention_aware {
            return 1;
        }
        let per_unit = params.contention_penalty_pages.max(1);
        (1 + self.aggression[tenant] / per_unit).min(params.contention_max_penalty.max(1))
    }

    /// Admission throttle: at penalty `p`, only every `p`-th candidate
    /// of the tenant passes. Returns `true` when the candidate must be
    /// skipped. Deterministic — a pure function of the candidate
    /// sequence.
    fn throttled(&mut self, tenant: usize, penalty: u64) -> bool {
        if penalty <= 1 {
            return false;
        }
        self.throttle_counters[tenant] += 1;
        !self.throttle_counters[tenant].is_multiple_of(penalty)
    }
}

impl NeoMemPolicy {
    /// Creates the policy and its NeoProf device/driver.
    ///
    /// # Errors
    ///
    /// Propagates invalid sketch parameters.
    pub fn new(
        dev_config: NeoProfConfig,
        driver_config: NeoProfDriverConfig,
        params: NeoMemParams,
    ) -> Result<Self> {
        let driver = NeoProfDriver::new(dev_config, driver_config)?;
        let theta = match params.threshold_mode {
            ThresholdMode::Dynamic => 1,
            ThresholdMode::Fixed(t) => t,
        };
        Ok(Self {
            driver,
            params,
            quota: QuotaMeter::new(params.mquota),
            p: params.pinit,
            theta,
            started: false,
            next_migrate: Nanos::ZERO,
            next_thr: Nanos::ZERO,
            next_clear: Nanos::ZERO,
            last_promotions: 0,
            last_ping_pongs: 0,
            last_promoted_bytes: 0,
            telemetry: PolicyTelemetry::default(),
            huge_map: neomem_kernel::HugePageMap::new(params.thp_votes.max(1)),
            promoted_huge_bytes: 0,
            tenancy: None,
            fallback: None,
            fallback_overhead: Nanos::ZERO,
            snoop_reqs: Vec::new(),
        })
    }

    /// Bytes promoted through whole-huge-page migrations (Table VI).
    pub fn promoted_huge_bytes(&self) -> neomem_types::Bytes {
        neomem_types::Bytes::new(self.promoted_huge_bytes)
    }

    /// Current top-`p` fraction.
    pub fn p_fraction(&self) -> f64 {
        self.p
    }

    /// Current threshold θ.
    pub fn threshold(&self) -> u16 {
        self.theta
    }

    /// Parameters in force.
    pub fn params(&self) -> &NeoMemParams {
        &self.params
    }

    /// Access to the driver (benches peek at device statistics).
    pub fn driver(&self) -> &NeoProfDriver {
        &self.driver
    }

    fn start(&mut self, now: Nanos) -> Nanos {
        self.started = true;
        self.next_migrate = now + self.params.migration_interval;
        self.next_thr = now + self.params.thr_update_interval;
        self.next_clear = now + self.params.clear_interval;
        self.driver.set_threshold(self.theta, now)
    }

    /// One Algorithm 1 step.
    fn update_threshold(&mut self, kernel: &Kernel, now: Nanos) -> Nanos {
        let mut cost = Nanos::ZERO;
        // F ← get_neoprof_hist(); E ← get_error_bound(F)
        let (hist, c1) = self.driver.read_histogram(now);
        cost += c1;
        let sketch_depth = 2usize;
        let delta = 0.25f64;
        let e = error_bound::from_histogram(&hist, delta, sketch_depth);
        // B ← get_bandwidth_util()
        let (state, c2) = self.driver.read_state(now);
        cost += c2;
        let b = state.utilization();
        // P ← get_ping_pong_count() / promoted
        let stats = kernel.stats();
        let promoted_delta = stats.promotions - self.last_promotions;
        let ping_delta = stats.ping_pongs - self.last_ping_pongs;
        let p_sev = if promoted_delta == 0 { 0.0 } else { ping_delta as f64 / promoted_delta as f64 };
        // M ← get_migrate_pages_count()
        let migrated_bytes = stats.promoted_bytes.as_u64() - self.last_promoted_bytes;
        let quota_bytes = (self.params.mquota.bytes_per_sec()
            * self.params.thr_update_interval.as_secs_f64()) as u64;
        self.last_promotions = stats.promotions;
        self.last_ping_pongs = stats.ping_pongs;
        self.last_promoted_bytes = stats.promoted_bytes.as_u64();

        // Contention-aware decay: aggression scores halve once per
        // threshold window, so the quota penalty tracks *recent*
        // displacement rather than run-lifetime history.
        if self.params.contention_aware {
            if let Some(state) = &mut self.tenancy {
                state.aggression.iter_mut().for_each(|a| *a /= 2);
            }
        }

        if let ThresholdMode::Dynamic = self.params.threshold_mode {
            if migrated_bytes < quota_bytes {
                // p ← p·(1+B)^α / (1+P)^β, bounded.
                self.p *= (1.0 + b).powf(self.params.alpha) / (1.0 + p_sev).powf(self.params.beta);
                self.p = self.p.clamp(self.params.pmin, self.params.pmax);
            } else {
                // Migration quota constraint.
                self.p = (self.p / 2.0).max(self.params.pmin);
            }
            // Error-bound checking.
            if hist.quantile(1.0 - self.p) < e {
                self.p = (self.p / 2.0).max(self.params.pmin);
            }
            // θ = QF(1 − p)
            self.theta = hist.quantile(1.0 - self.p).max(1);
            cost += self.driver.set_threshold(self.theta, now);
        }

        self.telemetry = PolicyTelemetry {
            threshold: Some(self.theta),
            p_fraction: Some(self.p),
            bandwidth_util: Some(b),
            read_util: Some(if state.sampled_cycles == 0 {
                0.0
            } else {
                state.read_cycles as f64 / state.sampled_cycles as f64
            }),
            write_util: Some(if state.sampled_cycles == 0 {
                0.0
            } else {
                state.write_cycles as f64 / state.sampled_cycles as f64
            }),
            error_bound: Some(e),
            histogram: Some(*hist.bins()),
            profiling_overhead: self.driver.mmio_time(),
            promoted_huge_bytes: neomem_types::Bytes::new(self.promoted_huge_bytes),
        };
        cost
    }

    /// Hot-page readout + promotion under quota.
    fn migrate(&mut self, kernel: &mut Kernel, now: Nanos) -> Nanos {
        let mut cost =
            ensure_fast_headroom_with(kernel, self.params.headroom_frac, now, self.params.demotion);
        let (pages, prof) = if self.driver.outage() {
            match &mut self.fallback {
                // Degraded profiling: one PTE-scan epoch stands in for
                // the hot-page readout while the device is offline.
                Some(scanner) => {
                    let outcome = scanner.scan_epoch(kernel);
                    self.fallback_overhead += outcome.overhead;
                    (outcome.hot_pages, outcome.overhead)
                }
                // Fallback never armed (hook not wired): pay the MMIO
                // timeout for an empty readout.
                None => self.driver.read_hot_pages(kernel, now),
            }
        } else {
            self.driver.read_hot_pages(kernel, now)
        };
        cost += prof;
        if let Some(state) = &mut self.tenancy {
            state.refresh(kernel);
        }
        let fast_capacity = kernel.memory().allocator(Tier::Fast).capacity();
        for vpage in pages {
            if self.params.thp {
                if let Some(region) = self.huge_map.record_hot(vpage) {
                    // Huge migrations pass the same tenant arbitration
                    // as base pages. The cap gate and the quota charge
                    // key on the region's base-page owner (a 2 MiB
                    // region is migrated as one unit); occupancy
                    // credit is exact per moved page, so a region
                    // straddling a tenant boundary cannot inflate the
                    // wrong tenant's count past one refresh interval.
                    let mut penalty = 1;
                    if let Some(state) = &mut self.tenancy {
                        let t = state.layout.tenant_of(region);
                        if state.over_fast_cap(t, fast_capacity) {
                            continue;
                        }
                        penalty = state.quota_penalty(t, &self.params);
                        if state.throttled(t, penalty) {
                            continue;
                        }
                        self.quota.set_active_tenant(t);
                    }
                    cost += self.promote_huge_region(region, penalty, kernel, now + cost);
                }
                continue;
            }
            if kernel.tier_of(vpage).map(|t| t.is_fast()).unwrap_or(true) {
                continue; // already promoted or unmapped
            }
            // Multi-tenant arbitration: charge the migration budget to
            // the page's owner, and hold a tenant at its fast-tier
            // occupancy cap back so co-runners keep their shares. Under
            // contention-aware throttling the owner additionally pays
            // its aggression penalty on the quota charge, so a tenant
            // that keeps displacing co-runners promotes at a fraction
            // of its share until the signal decays.
            let tenant = self.tenancy.as_ref().map(|s| s.layout.tenant_of(vpage));
            let mut penalty = 1;
            if let (Some(state), Some(t)) = (&mut self.tenancy, tenant) {
                if state.over_fast_cap(t, fast_capacity) {
                    continue;
                }
                penalty = state.quota_penalty(t, &self.params);
                if state.throttled(t, penalty) {
                    continue;
                }
                self.quota.set_active_tenant(t);
            }
            if !self.quota.try_consume(Bytes::new(neomem_types::PAGE_SIZE * penalty), now + cost) {
                if tenant.is_some() {
                    // Only this owner's share is spent; co-runners may
                    // still be in budget.
                    continue;
                }
                break;
            }
            if let Ok(t) = kernel.promote(vpage, now + cost) {
                cost += t;
                if let (Some(state), Some(owner)) = (&mut self.tenancy, tenant) {
                    state.fast_counts[owner] += 1;
                }
            }
        }
        cost
    }

    /// Promotes every slow-tier base page of a 2 MiB region in one go,
    /// charging the huge-page fixed overhead once. `penalty` scales the
    /// quota charge (contention-aware throttling; 1 = no penalty).
    fn promote_huge_region(
        &mut self,
        region: neomem_types::VirtPage,
        penalty: u64,
        kernel: &mut Kernel,
        now: Nanos,
    ) -> Nanos {
        let huge_bytes = neomem_kernel::PAGES_PER_HUGE * neomem_types::PAGE_SIZE;
        if !self.quota.try_consume(Bytes::new(huge_bytes * penalty), now) {
            return Nanos::ZERO;
        }
        let mut cost = kernel.costs().huge_page_overhead;
        let mut moved = 0u64;
        for vpage in neomem_kernel::HugePageMap::region_pages(region) {
            if kernel.tier_of(vpage).map(|t| t.is_slow()).unwrap_or(false) {
                if let Ok(t) = kernel.promote(vpage, now + cost) {
                    // The per-page fixed overhead is amortised for huge
                    // migrations; keep only the copy time.
                    cost += t.saturating_sub(kernel.costs().per_page_overhead);
                    moved += 1;
                    // Occupancy credit goes to each page's own tenant:
                    // a region straddling a boundary credits both.
                    if let Some(state) = &mut self.tenancy {
                        state.fast_counts[state.layout.tenant_of(vpage)] += 1;
                    }
                }
            }
        }
        self.promoted_huge_bytes += moved * neomem_types::PAGE_SIZE;
        cost
    }

    /// Chunked form of the access hook, bit-identical to per-event
    /// [`TieringPolicy::on_access`] calls: fast-tier LRU aging runs
    /// inline in event order (it mutates kernel state), while slow-tier
    /// device snoops — which touch only the NeoProf device — collect
    /// into one batched pass at chunk end. The two sides update
    /// disjoint state and each preserves its own internal order, so the
    /// interleaving between them is unobservable. Charges are uniformly
    /// zero (the device snoops off the channel; LRU aging is kernel
    /// bookkeeping), matching the `max_access_charge()` bound.
    pub fn on_access_chunk(&mut self, events: &[AccessEvent], kernel: &mut Kernel) {
        let mut reqs = std::mem::take(&mut self.snoop_reqs);
        reqs.clear();
        for ev in events {
            if !ev.llc_miss {
                continue;
            }
            match ev.tier {
                Tier::Slow => reqs.push(MemRequest::new(ev.frame, 0, ev.kind)),
                Tier::Fast => kernel.record_fast_access(ev.vpage),
            }
        }
        self.driver.snoop_batch(&reqs);
        self.snoop_reqs = reqs;
    }
}

impl TieringPolicy for NeoMemPolicy {
    fn name(&self) -> &'static str {
        if self.params.contention_aware {
            return "NeoMem-CA";
        }
        match self.params.threshold_mode {
            ThresholdMode::Dynamic => "NeoMem",
            ThresholdMode::Fixed(_) => "NeoMem-fixed",
        }
    }

    fn on_access(&mut self, ev: &AccessEvent, kernel: &mut Kernel) -> Nanos {
        if !ev.llc_miss {
            return Nanos::ZERO;
        }
        match ev.tier {
            // The device sees every slow-tier LLC miss; zero CPU cost.
            Tier::Slow => self.driver.snoop(MemRequest::new(ev.frame, 0, ev.kind)),
            // Fast-tier misses age the LRU for cold detection.
            Tier::Fast => kernel.record_fast_access(ev.vpage),
        }
        Nanos::ZERO
    }

    fn maybe_tick(&mut self, kernel: &mut Kernel, now: Nanos) -> Nanos {
        if !self.started {
            return self.start(now);
        }
        let mut cost = Nanos::ZERO;
        // Order matters: drain the hot-page buffer and update the
        // threshold *before* a periodic clear wipes device state.
        if now >= self.next_migrate {
            cost += self.migrate(kernel, now);
            self.next_migrate = now + self.params.migration_interval;
        }
        if now >= self.next_thr {
            // Algorithm 1 needs device histograms; while the device is
            // out, θ stays frozen at its last value (the deadline still
            // advances so recovery re-enters the normal cadence).
            if !self.driver.outage() {
                cost += self.update_threshold(kernel, now);
            }
            self.next_thr = now + self.params.thr_update_interval;
        }
        if now >= self.next_clear {
            if !self.driver.outage() {
                cost += self.driver.reset(now);
                cost += self.driver.set_threshold(self.theta, now);
            }
            // THP vote counts restart with the detection period so a
            // partially-promoted region can re-trigger once its remaining
            // slow pages heat up again.
            self.huge_map.clear();
            self.next_clear = now + self.params.clear_interval;
        }
        cost
    }

    fn on_fault(&mut self, fault: &FaultKind, kernel: &mut Kernel, now: Nanos) -> Nanos {
        let _ = now;
        if !matches!(fault, FaultKind::NeoProfOutage) {
            return Nanos::ZERO;
        }
        // Device gone: stop trusting it and arm the PTE-scan fallback
        // covering the whole address space. Arming is a mode flip in
        // the daemon — the scans themselves are charged per epoch.
        self.driver.set_outage(true);
        self.fallback = Some(PteScanner::new(PteScanConfig::default(), kernel.page_table().span()));
        Nanos::ZERO
    }

    fn on_recovery(&mut self, fault: &FaultKind, kernel: &mut Kernel, now: Nanos) -> Nanos {
        let _ = kernel;
        if !matches!(fault, FaultKind::NeoProfOutage) {
            return Nanos::ZERO;
        }
        self.driver.set_outage(false);
        self.fallback = None;
        if !self.started {
            return Nanos::ZERO;
        }
        // Re-sync: whatever the sketch held when the link dropped is
        // stale; reset the device and re-arm the last threshold.
        let mut cost = self.driver.reset(now);
        cost += self.driver.set_threshold(self.theta, now);
        cost
    }

    fn telemetry(&self) -> PolicyTelemetry {
        let mut t = self.telemetry.clone();
        t.promoted_huge_bytes = neomem_types::Bytes::new(self.promoted_huge_bytes);
        t.profiling_overhead = self.driver.mmio_time() + self.fallback_overhead;
        t
    }

    fn configure_tenants(&mut self, layout: &TenantLayout) {
        self.quota.enable_tenant_accounting(layout.weights());
        self.tenancy = Some(TenancyState {
            fast_counts: vec![0; layout.tenant_count()],
            aggression: vec![0; layout.tenant_count()],
            throttle_counters: vec![0; layout.tenant_count()],
            layout: layout.clone(),
        });
    }

    fn on_tenant_departure(&mut self, tenant: usize) {
        // A departed tenant's history must not throttle it when (and
        // if) it re-arrives; its occupancy count is refreshed from the
        // rmap at the next migration tick anyway.
        if let Some(state) = &mut self.tenancy {
            if let Some(a) = state.aggression.get_mut(tenant) {
                *a = 0;
            }
        }
    }

    fn snapshot_state(&self) -> Json {
        let tenancy = match &self.tenancy {
            None => Json::Null,
            Some(state) => Json::obj([
                ("fast_counts", Json::Str(hex_from_u64s(&state.fast_counts))),
                ("aggression", Json::Str(hex_from_u64s(&state.aggression))),
                ("throttle_counters", Json::Str(hex_from_u64s(&state.throttle_counters))),
            ]),
        };
        Json::obj([
            ("driver", self.driver.snapshot()),
            ("quota", self.quota.snapshot()),
            ("p", Json::U64(self.p.to_bits())),
            ("theta", Json::U64(u64::from(self.theta))),
            ("started", Json::Bool(self.started)),
            ("next_migrate", Json::U64(self.next_migrate.as_nanos())),
            ("next_thr", Json::U64(self.next_thr.as_nanos())),
            ("next_clear", Json::U64(self.next_clear.as_nanos())),
            ("last_promotions", Json::U64(self.last_promotions)),
            ("last_ping_pongs", Json::U64(self.last_ping_pongs)),
            ("last_promoted_bytes", Json::U64(self.last_promoted_bytes)),
            ("telemetry", self.telemetry.snapshot()),
            ("huge_map", self.huge_map.snapshot()),
            ("promoted_huge_bytes", Json::U64(self.promoted_huge_bytes)),
            ("tenancy", tenancy),
            ("fallback", self.fallback.as_ref().map_or(Json::Null, PteScanner::snapshot)),
            ("fallback_overhead", Json::U64(self.fallback_overhead.as_nanos())),
        ])
    }

    fn restore_state(&mut self, state: &Json) -> Result<()> {
        let theta_raw = state.req_u64("theta")?;
        let theta = u16::try_from(theta_raw)
            .map_err(|_| Error::snapshot(format!("threshold {theta_raw} exceeds u16")))?;
        let telemetry = PolicyTelemetry::from_snapshot(state.req("telemetry")?)?;
        // Tenant layout is configuration, re-established by
        // `configure_tenants` before restore — the snapshot carries only
        // the mutable per-tenant counters, which must agree with it.
        match (&mut self.tenancy, state.req("tenancy")?) {
            (None, Json::Null) => {}
            (None, _) => {
                return Err(Error::snapshot(
                    "snapshot carries tenant state but the policy has no tenant layout",
                ));
            }
            (Some(_), Json::Null) => {
                return Err(Error::snapshot(
                    "policy has a tenant layout but the snapshot carries no tenant state",
                ));
            }
            (Some(tstate), tsnap) => {
                let n = tstate.layout.tenant_count();
                let fast_counts = tsnap.req_u64s("fast_counts")?;
                let aggression = tsnap.req_u64s("aggression")?;
                let throttle_counters = tsnap.req_u64s("throttle_counters")?;
                for (what, arr) in [
                    ("fast_counts", &fast_counts),
                    ("aggression", &aggression),
                    ("throttle_counters", &throttle_counters),
                ] {
                    if arr.len() != n {
                        return Err(Error::snapshot(format!(
                            "tenant {what} array has {} entries, layout has {n} tenants",
                            arr.len()
                        )));
                    }
                }
                tstate.fast_counts = fast_counts;
                tstate.aggression = aggression;
                tstate.throttle_counters = throttle_counters;
            }
        }
        self.driver.restore(state.req("driver")?)?;
        self.quota.restore(state.req("quota")?)?;
        self.huge_map.restore(state.req("huge_map")?)?;
        self.p = f64::from_bits(state.req_u64("p")?);
        self.theta = theta;
        self.started = state.req_bool("started")?;
        self.next_migrate = Nanos::new(state.req_u64("next_migrate")?);
        self.next_thr = Nanos::new(state.req_u64("next_thr")?);
        self.next_clear = Nanos::new(state.req_u64("next_clear")?);
        self.last_promotions = state.req_u64("last_promotions")?;
        self.last_ping_pongs = state.req_u64("last_ping_pongs")?;
        self.last_promoted_bytes = state.req_u64("last_promoted_bytes")?;
        self.telemetry = telemetry;
        self.promoted_huge_bytes = state.req_u64("promoted_huge_bytes")?;
        self.fallback = match state.req("fallback")? {
            Json::Null => None,
            fsnap => {
                // The counter array length carries the scanner's span.
                let span = fsnap.req_u16s("epoch_counts")?.len() as u64;
                let mut scanner = PteScanner::new(PteScanConfig::default(), span);
                scanner.restore(fsnap)?;
                Some(scanner)
            }
        };
        self.fallback_overhead = Nanos::new(state.req_u64("fallback_overhead")?);
        Ok(())
    }

    fn note_cross_tenant_evictions(&mut self, aggressor: usize, pages: u64) {
        if !self.params.contention_aware {
            return;
        }
        if let Some(state) = &mut self.tenancy {
            // Only over-share displacement counts as aggression: a
            // tenant below its weighted fair share of the fast tier is
            // reclaiming its own share (retaliation), not attacking —
            // penalising it would hand the tier to whoever got there
            // first. Occupancy comes from the last migration-tick
            // refresh, the same counts the fairness cap uses.
            let total: u64 = state.fast_counts.iter().sum();
            if total > 0 {
                let share = state.layout.weight_share(aggressor);
                if (state.fast_counts[aggressor] as f64) < share * total as f64 {
                    return;
                }
            }
            if let Some(a) = state.aggression.get_mut(aggressor) {
                *a = a.saturating_add(pages);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neomem_kernel::KernelConfig;
    use neomem_types::{AccessKind, VirtPage};

    fn setup(params: NeoMemParams) -> (Kernel, NeoMemPolicy) {
        let mut kernel = Kernel::new(KernelConfig::with_frames(8, 32));
        for p in 0..24 {
            kernel.touch_alloc(VirtPage::new(p), Nanos::ZERO).unwrap();
        }
        let dev = NeoProfConfig::small(kernel.memory().slow_base());
        let policy = NeoMemPolicy::new(dev, NeoProfDriverConfig::default(), params).unwrap();
        (kernel, policy)
    }

    fn slow_miss(kernel: &Kernel, vpage: u64) -> AccessEvent {
        let frame = kernel.translate(VirtPage::new(vpage)).unwrap();
        AccessEvent {
            vpage: VirtPage::new(vpage),
            frame,
            tier: kernel.memory().tier_of(frame),
            kind: AccessKind::Read,
            tlb_hit: true,
            llc_miss: true,
            now: Nanos::ZERO,
        }
    }

    #[test]
    fn hot_slow_page_gets_promoted() {
        let mut params = NeoMemParams::scaled(1000);
        params.threshold_mode = ThresholdMode::Fixed(3);
        let (mut kernel, mut policy) = setup(params);
        policy.maybe_tick(&mut kernel, Nanos::ZERO); // start
        // Page 20 is on the slow tier; hammer it.
        assert!(kernel.tier_of(VirtPage::new(20)).unwrap().is_slow());
        for _ in 0..10 {
            let ev = slow_miss(&kernel, 20);
            policy.on_access(&ev, &mut kernel);
        }
        policy.maybe_tick(&mut kernel, Nanos::from_millis(100));
        assert!(kernel.tier_of(VirtPage::new(20)).unwrap().is_fast(), "hot page must be promoted");
        assert_eq!(kernel.stats().promotions, 1);
    }

    #[test]
    fn cold_pages_stay_put() {
        let mut params = NeoMemParams::scaled(1000);
        params.threshold_mode = ThresholdMode::Fixed(5);
        let (mut kernel, mut policy) = setup(params);
        policy.maybe_tick(&mut kernel, Nanos::ZERO);
        // Touch each slow page once: below threshold.
        for p in 8..24 {
            let ev = slow_miss(&kernel, p);
            policy.on_access(&ev, &mut kernel);
        }
        policy.maybe_tick(&mut kernel, Nanos::from_millis(100));
        assert_eq!(kernel.stats().promotions, 0);
    }

    #[test]
    fn dynamic_threshold_updates_telemetry() {
        let params = NeoMemParams::scaled(1000);
        let (mut kernel, mut policy) = setup(params);
        policy.maybe_tick(&mut kernel, Nanos::ZERO);
        for round in 0..50 {
            for p in 8..12 {
                policy.on_access(&slow_miss(&kernel, p), &mut kernel);
            }
            let _ = round;
        }
        policy.maybe_tick(&mut kernel, Nanos::from_millis(200));
        let t = policy.telemetry();
        assert!(t.threshold.is_some());
        assert!(t.p_fraction.is_some());
        assert!(t.bandwidth_util.is_some());
        assert!(t.histogram.is_some());
        assert!(t.profiling_overhead > Nanos::ZERO);
    }

    #[test]
    fn quota_limits_promotions_per_window() {
        let mut params = NeoMemParams::scaled(1000);
        params.threshold_mode = ThresholdMode::Fixed(1);
        // Quota of 4 pages/second.
        params.mquota = Bandwidth::from_bytes_per_sec(4.0 * 4096.0);
        let (mut kernel, mut policy) = setup(params);
        policy.quota = QuotaMeter::new(params.mquota);
        policy.maybe_tick(&mut kernel, Nanos::ZERO);
        for p in 8..24 {
            for _ in 0..5 {
                policy.on_access(&slow_miss(&kernel, p), &mut kernel);
            }
        }
        policy.maybe_tick(&mut kernel, Nanos::from_millis(50));
        assert!(kernel.stats().promotions <= 4, "quota must cap migration");
    }

    #[test]
    fn paper_defaults_match_table_v() {
        let p = NeoMemParams::paper_default();
        assert_eq!(p.migration_interval, Nanos::from_millis(10));
        assert_eq!(p.clear_interval, Nanos::from_secs(5));
        assert_eq!(p.thr_update_interval, Nanos::from_secs(1));
        assert!((p.pmin - 0.0001).abs() < 1e-12);
        assert!((p.pmax - 0.0156).abs() < 1e-12);
        assert!((p.pinit - 0.001).abs() < 1e-12);
        assert!((p.alpha - 1.0).abs() < 1e-12);
        assert!((p.beta - 2.0).abs() < 1e-12);
    }

    #[test]
    fn p_stays_within_bounds() {
        let params = NeoMemParams::scaled(1000);
        let (mut kernel, mut policy) = setup(params);
        policy.maybe_tick(&mut kernel, Nanos::ZERO);
        let mut now = Nanos::ZERO;
        for _ in 0..20 {
            now += Nanos::from_millis(10);
            for p in 8..24 {
                policy.on_access(&slow_miss(&kernel, p), &mut kernel);
            }
            policy.maybe_tick(&mut kernel, now);
            let frac = policy.p_fraction();
            assert!(frac >= params.pmin - 1e-12 && frac <= params.pmax + 1e-12, "p = {frac}");
        }
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::TieringPolicy;
    use neomem_kernel::KernelConfig;
    use neomem_types::VirtPage;

    fn setup() -> (Kernel, NeoMemPolicy) {
        let mut kernel = Kernel::new(KernelConfig::with_frames(8, 32));
        for p in 0..24 {
            kernel.touch_alloc(VirtPage::new(p), Nanos::ZERO).unwrap();
        }
        let mut params = NeoMemParams::scaled(1000);
        params.threshold_mode = ThresholdMode::Fixed(3);
        let dev = NeoProfConfig::small(kernel.memory().slow_base());
        let policy =
            NeoMemPolicy::new(dev, NeoProfDriverConfig::default(), params).unwrap();
        (kernel, policy)
    }

    #[test]
    fn outage_falls_back_to_pte_scans_and_recovers() {
        let (mut kernel, mut policy) = setup();
        policy.maybe_tick(&mut kernel, Nanos::ZERO);
        policy.on_fault(&FaultKind::NeoProfOutage, &mut kernel, Nanos::from_micros(10));
        assert!(policy.driver().outage());
        // Page 20 is slow-tier hot; only the page walker sees it now.
        assert!(kernel.tier_of(VirtPage::new(20)).unwrap().is_slow());
        let mut now = Nanos::from_micros(200);
        // PteScanConfig::default() needs 2 accessed epochs; give it 3
        // migration ticks with the bit re-set each time.
        for _ in 0..3 {
            kernel.page_table_mut().mark_accessed(VirtPage::new(20)).unwrap();
            policy.maybe_tick(&mut kernel, now);
            now += Nanos::from_millis(1);
        }
        assert!(
            kernel.tier_of(VirtPage::new(20)).unwrap().is_fast(),
            "degraded mode must still promote via PTE scans"
        );
        assert!(policy.telemetry().profiling_overhead > Nanos::ZERO);
        // Recovery drops the fallback and re-arms the device.
        let mmio_before = policy.driver().mmio_time();
        let cost = policy.on_recovery(&FaultKind::NeoProfOutage, &mut kernel, now);
        assert!(!policy.driver().outage());
        assert!(cost > Nanos::ZERO, "resync costs MMIO round trips");
        assert!(policy.driver().mmio_time() > mmio_before);
        assert!(policy.fallback.is_none());
    }

    #[test]
    fn non_outage_faults_are_ignored() {
        let (mut kernel, mut policy) = setup();
        let link = FaultKind::LinkDegraded { latency_x: 3, bandwidth_div: 2 };
        assert_eq!(policy.on_fault(&link, &mut kernel, Nanos::ZERO), Nanos::ZERO);
        assert!(!policy.driver().outage());
        assert!(policy.fallback.is_none());
    }

    #[test]
    fn mid_outage_state_round_trips_through_snapshot() {
        let (mut kernel, mut policy) = setup();
        policy.maybe_tick(&mut kernel, Nanos::ZERO);
        policy.on_fault(&FaultKind::NeoProfOutage, &mut kernel, Nanos::from_micros(5));
        kernel.page_table_mut().mark_accessed(VirtPage::new(20)).unwrap();
        policy.maybe_tick(&mut kernel, Nanos::from_millis(1));
        let snap = policy.snapshot_state();
        let (_, mut restored) = setup();
        restored.restore_state(&snap).unwrap();
        assert!(restored.driver().outage());
        let restored_fb = restored.fallback.as_ref().expect("fallback restored");
        assert_eq!(restored_fb.snapshot().render(), policy.fallback.as_ref().unwrap().snapshot().render());
        assert_eq!(restored.fallback_overhead, policy.fallback_overhead);
    }
}

#[cfg(test)]
mod tenancy_tests {
    use super::*;
    use neomem_kernel::KernelConfig;
    use neomem_types::{AccessKind, VirtPage};

    fn hammer(policy: &mut NeoMemPolicy, kernel: &mut Kernel, vpage: u64) {
        let frame = kernel.translate(VirtPage::new(vpage)).unwrap();
        for _ in 0..8 {
            let ev = AccessEvent {
                vpage: VirtPage::new(vpage),
                frame,
                tier: kernel.memory().tier_of(frame),
                kind: AccessKind::Read,
                tlb_hit: true,
                llc_miss: true,
                now: Nanos::ZERO,
            };
            policy.on_access(&ev, kernel);
        }
    }

    #[test]
    fn fast_share_cap_holds_a_tenant_at_its_share() {
        // 4 fast frames, two equal-weight tenants (pages 0..18, 18..36),
        // strict cap: each tenant may hold ceil(4 * 0.5) = 2 fast pages.
        let mut kernel = Kernel::new(KernelConfig::with_frames(4, 36));
        for p in 0..36 {
            kernel.touch_alloc(VirtPage::new(p), Nanos::ZERO).unwrap();
        }
        let mut params = NeoMemParams::scaled(1000);
        params.threshold_mode = ThresholdMode::Fixed(3);
        // No headroom demotion: the cap alone must do the limiting.
        params.headroom_frac = 0.0;
        let dev = neomem_neoprof::NeoProfConfig::small(kernel.memory().slow_base());
        let mut policy = NeoMemPolicy::new(
            dev,
            neomem_profilers::NeoProfDriverConfig::default(),
            params,
        )
        .unwrap();
        let layout = TenantLayout::new(vec![0, 18], vec![1, 1], Some(1.0)).unwrap();
        policy.configure_tenants(&layout);
        policy.maybe_tick(&mut kernel, Nanos::ZERO);
        // Hammer four of tenant 1's slow pages: only two may come up.
        for p in [20u64, 21, 22, 23] {
            assert!(kernel.tier_of(VirtPage::new(p)).unwrap().is_slow());
            hammer(&mut policy, &mut kernel, p);
        }
        policy.maybe_tick(&mut kernel, Nanos::from_millis(100));
        let fast_tenant1 = (18..36)
            .filter(|&p| kernel.tier_of(VirtPage::new(p)).unwrap().is_fast())
            .count();
        assert!(
            fast_tenant1 <= 2,
            "tenant 1 exceeded its fast-tier share: {fast_tenant1} pages"
        );
        assert!(kernel.stats().promotions > 0, "promotions up to the cap still happen");
    }

    #[test]
    fn thp_promotions_respect_the_fast_share_cap() {
        // 256 fast frames, two equal tenants at a strict cap of 128
        // frames each; tenant 1's hot huge region (512 pages) cannot
        // promote once the tenant is at its share.
        let mut kernel = Kernel::new(KernelConfig::with_frames(256, 4096));
        for p in 0..4096u64 {
            kernel.touch_alloc(VirtPage::new(p), Nanos::ZERO).unwrap();
        }
        let mut params = NeoMemParams::scaled(1000);
        params.threshold_mode = ThresholdMode::Fixed(2);
        params.headroom_frac = 0.0;
        params.thp = true;
        params.thp_votes = 1;
        let dev = neomem_neoprof::NeoProfConfig::small(kernel.memory().slow_base());
        let mut policy = NeoMemPolicy::new(
            dev,
            neomem_profilers::NeoProfDriverConfig::default(),
            params,
        )
        .unwrap();
        // Tenant 1 owns pages 2048.. and already holds 0 fast pages,
        // but its cap is 128 < the 512-page huge region: the refresh
        // before promotion keeps counts, and after one region (which
        // would blow past the cap only when allowed at all) the next
        // region must be gated. Use a cap of 1.0 -> 128 frames, well
        // under one huge region, after the first region promotes
        // partially (fast tier has only 256 frames anyway).
        let layout = TenantLayout::new(vec![0, 2048], vec![1, 1], Some(1.0)).unwrap();
        policy.configure_tenants(&layout);
        policy.maybe_tick(&mut kernel, Nanos::ZERO);
        // Hammer hot pages in two different huge regions of tenant 1.
        for &p in &[2100u64, 2700] {
            let frame = kernel.translate(VirtPage::new(p)).unwrap();
            assert!(kernel.memory().tier_of(frame).is_slow());
            let ev = AccessEvent {
                vpage: VirtPage::new(p),
                frame,
                tier: Tier::Slow,
                kind: AccessKind::Read,
                tlb_hit: true,
                llc_miss: true,
                now: Nanos::ZERO,
            };
            for _ in 0..5 {
                policy.on_access(&ev, &mut kernel);
            }
        }
        policy.maybe_tick(&mut kernel, Nanos::from_millis(100));
        // The owner-tracked count updates inside the tick, so at most
        // one region's pages moved before the gate engaged; a second
        // region promoting in the same tick would mean the cap was
        // ignored.
        let fast_tenant1 = (2048..4096)
            .filter(|&p| kernel.tier_of(VirtPage::new(p)).unwrap().is_fast())
            .count() as u64;
        assert!(
            fast_tenant1 <= 512,
            "second huge region promoted past the cap: {fast_tenant1} fast pages"
        );
        assert!(
            kernel.tier_of(VirtPage::new(2700)).unwrap().is_slow()
                || kernel.tier_of(VirtPage::new(2100)).unwrap().is_slow(),
            "both hot regions promoted despite the occupancy cap"
        );
    }

    #[test]
    fn per_tenant_quota_charges_the_page_owner() {
        let mut kernel = Kernel::new(KernelConfig::with_frames(4, 36));
        for p in 0..36 {
            kernel.touch_alloc(VirtPage::new(p), Nanos::ZERO).unwrap();
        }
        let mut params = NeoMemParams::scaled(1000);
        params.threshold_mode = ThresholdMode::Fixed(3);
        params.headroom_frac = 0.0;
        let dev = neomem_neoprof::NeoProfConfig::small(kernel.memory().slow_base());
        let mut policy = NeoMemPolicy::new(
            dev,
            neomem_profilers::NeoProfDriverConfig::default(),
            params,
        )
        .unwrap();
        let layout = TenantLayout::new(vec![0, 18], vec![1, 1], None).unwrap();
        policy.configure_tenants(&layout);
        policy.maybe_tick(&mut kernel, Nanos::ZERO);
        hammer(&mut policy, &mut kernel, 20); // tenant 1's page
        policy.maybe_tick(&mut kernel, Nanos::from_millis(100));
        assert!(kernel.stats().promotions >= 1);
        assert_eq!(policy.quota.used_by(0), Bytes::ZERO, "tenant 0 never migrated");
        assert!(policy.quota.used_by(1) >= Bytes::new(neomem_types::PAGE_SIZE));
    }
}

#[cfg(test)]
mod contention_tests {
    use super::*;
    use neomem_kernel::KernelConfig;
    use neomem_types::{AccessKind, VirtPage};

    fn contention_policy(kernel: &Kernel, aware: bool) -> NeoMemPolicy {
        let mut params = NeoMemParams::scaled(1000);
        params.threshold_mode = ThresholdMode::Fixed(3);
        params.headroom_frac = 0.0;
        params.contention_aware = aware;
        params.contention_penalty_pages = 4;
        params.contention_max_penalty = 4;
        // Tight quota so the penalty visibly bites: 4 pages/window.
        params.mquota = Bandwidth::from_bytes_per_sec(4.0 * 4096.0);
        let dev = neomem_neoprof::NeoProfConfig::small(kernel.memory().slow_base());
        let mut policy = NeoMemPolicy::new(
            dev,
            neomem_profilers::NeoProfDriverConfig::default(),
            params,
        )
        .unwrap();
        policy.quota = QuotaMeter::new(params.mquota);
        let layout = TenantLayout::new(vec![0, 18], vec![1, 1], None).unwrap();
        policy.configure_tenants(&layout);
        policy
    }

    fn hammer(policy: &mut NeoMemPolicy, kernel: &mut Kernel, vpage: u64) {
        let frame = kernel.translate(VirtPage::new(vpage)).unwrap();
        for _ in 0..8 {
            let ev = AccessEvent {
                vpage: VirtPage::new(vpage),
                frame,
                tier: kernel.memory().tier_of(frame),
                kind: AccessKind::Read,
                tlb_hit: true,
                llc_miss: true,
                now: Nanos::ZERO,
            };
            policy.on_access(&ev, kernel);
        }
    }

    fn setup_kernel() -> Kernel {
        let mut kernel = Kernel::new(KernelConfig::with_frames(4, 36));
        for p in 0..36 {
            kernel.touch_alloc(VirtPage::new(p), Nanos::ZERO).unwrap();
        }
        kernel
    }

    #[test]
    fn aggression_penalty_throttles_promotions() {
        // Same hot set, same quota — the aggressor-flagged run must
        // promote fewer pages than the clean run.
        let mut clean_kernel = setup_kernel();
        let mut clean = contention_policy(&clean_kernel, true);
        clean.maybe_tick(&mut clean_kernel, Nanos::ZERO);

        let mut flagged_kernel = setup_kernel();
        let mut flagged = contention_policy(&flagged_kernel, true);
        flagged.maybe_tick(&mut flagged_kernel, Nanos::ZERO);
        // Tenant 1 caused 8 cross-tenant eviction pages → penalty 3.
        flagged.note_cross_tenant_evictions(1, 8);

        for p in [20u64, 21, 22, 23] {
            hammer(&mut clean, &mut clean_kernel, p);
            hammer(&mut flagged, &mut flagged_kernel, p);
        }
        clean.maybe_tick(&mut clean_kernel, Nanos::from_micros(200));
        flagged.maybe_tick(&mut flagged_kernel, Nanos::from_micros(200));
        let clean_promos = clean_kernel.stats().promotions;
        let flagged_promos = flagged_kernel.stats().promotions;
        assert!(clean_promos > 0, "clean tenant promotes");
        assert!(
            flagged_promos < clean_promos,
            "penalty must throttle: flagged {flagged_promos} !< clean {clean_promos}"
        );
    }

    #[test]
    fn plain_neomem_ignores_the_signal() {
        let kernel = setup_kernel();
        let mut policy = contention_policy(&kernel, false);
        policy.note_cross_tenant_evictions(1, 1_000_000);
        let state = policy.tenancy.as_ref().unwrap();
        assert_eq!(state.aggression, vec![0, 0], "plain NeoMem accumulates nothing");
        assert_eq!(state.quota_penalty(1, &policy.params), 1);
    }

    #[test]
    fn aggression_decays_and_departure_clears_it() {
        let mut kernel = setup_kernel();
        let mut policy = contention_policy(&kernel, true);
        policy.maybe_tick(&mut kernel, Nanos::ZERO);
        policy.note_cross_tenant_evictions(0, 16);
        assert_eq!(policy.tenancy.as_ref().unwrap().aggression[0], 16);
        assert_eq!(
            policy.tenancy.as_ref().unwrap().quota_penalty(0, &policy.params),
            4,
            "1 + 16/4 capped at the max penalty"
        );
        // A threshold-update window halves the score.
        let thr = policy.params.thr_update_interval;
        policy.maybe_tick(&mut kernel, thr + Nanos::new(1));
        assert_eq!(policy.tenancy.as_ref().unwrap().aggression[0], 8);
        // Departure zeroes it outright.
        policy.on_tenant_departure(0);
        assert_eq!(policy.tenancy.as_ref().unwrap().aggression[0], 0);
    }

    #[test]
    fn contention_aware_name_is_distinct() {
        let kernel = setup_kernel();
        assert_eq!(contention_policy(&kernel, true).name(), "NeoMem-CA");
        // The fixture pins the threshold, so the non-aware variant
        // reports the fixed-θ name.
        assert_eq!(contention_policy(&kernel, false).name(), "NeoMem-fixed");
    }
}

#[cfg(test)]
mod thp_tests {
    use super::*;
    use neomem_kernel::KernelConfig;
    use neomem_types::{AccessKind, VirtPage};

    #[test]
    fn thp_mode_promotes_whole_regions() {
        // 1024 fast frames, 4096 slow; address space 4096 pages = 8 huge
        // regions. Hot region = pages 1024..1536 (region 2).
        let mut kernel = Kernel::new(KernelConfig::with_frames(1024, 4096));
        for p in 0..4096u64 {
            kernel.touch_alloc(VirtPage::new(p), Nanos::ZERO).unwrap();
        }
        let mut params = NeoMemParams::scaled(1000);
        params.threshold_mode = ThresholdMode::Fixed(2);
        params.thp = true;
        params.thp_votes = 2;
        let dev = neomem_neoprof::NeoProfConfig::small(kernel.memory().slow_base());
        let mut policy = NeoMemPolicy::new(
            dev,
            neomem_profilers::NeoProfDriverConfig::default(),
            params,
        )
        .unwrap();
        policy.maybe_tick(&mut kernel, Nanos::ZERO);
        // Hammer pages 1100 and 1200 (same huge region, slow tier).
        for &p in &[1100u64, 1200] {
            let frame = kernel.translate(VirtPage::new(p)).unwrap();
            assert!(kernel.memory().tier_of(frame).is_slow());
            for _ in 0..5 {
                let ev = neomem_profilers::AccessEvent {
                    vpage: VirtPage::new(p),
                    frame,
                    tier: Tier::Slow,
                    kind: AccessKind::Read,
                    tlb_hit: true,
                    llc_miss: true,
                    now: Nanos::ZERO,
                };
                policy.on_access(&ev, &mut kernel);
            }
        }
        policy.maybe_tick(&mut kernel, Nanos::from_millis(1));
        let huge = policy.promoted_huge_bytes().as_u64();
        assert!(
            huge >= 500 * 4096,
            "whole region should move, got {} bytes ({} pages), promotions={}",
            huge,
            huge / 4096,
            kernel.stats().promotions
        );
        // The hot pages themselves must now be fast.
        assert!(kernel.tier_of(VirtPage::new(1100)).unwrap().is_fast());
        assert!(kernel.tier_of(VirtPage::new(1200)).unwrap().is_fast());
    }
}
