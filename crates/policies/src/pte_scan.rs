//! The PTE-scan tiering policy (paper §VI-A: "we integrate these
//! profiling techniques into NeoMem, replacing its native memory
//! profiling functions").

use neomem_kernel::Kernel;
use neomem_profilers::{AccessEvent, PteScanConfig, PteScanner};
use neomem_types::json::Json;
use neomem_types::{Bandwidth, Bytes, Nanos, Result, PAGE_SIZE};
#[cfg(test)]
use neomem_types::VirtPage;

use crate::quota::QuotaMeter;
use crate::{ensure_fast_headroom, PolicyTelemetry, TieringPolicy};

/// Policy configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PteScanPolicyConfig {
    /// Scanner settings.
    pub scanner: PteScanConfig,
    /// Scan cadence (Table V `page_scanning_rate`: 5 s).
    pub scan_interval: Nanos,
    /// Epoch-count reset cadence.
    pub clear_interval: Nanos,
    /// Fast-tier headroom fraction.
    pub headroom_frac: f64,
}

impl Default for PteScanPolicyConfig {
    fn default() -> Self {
        Self {
            scanner: PteScanConfig::default(),
            scan_interval: Nanos::from_secs(5),
            clear_interval: Nanos::from_secs(20),
            headroom_frac: 0.02,
        }
    }
}

impl PteScanPolicyConfig {
    /// Cadences divided by `factor` for scaled simulations.
    pub fn scaled(factor: u64) -> Self {
        let d = Self::default();
        Self {
            scan_interval: (d.scan_interval / factor).max(Nanos::from_millis(1)),
            clear_interval: (d.clear_interval / factor).max(Nanos::from_millis(4)),
            ..d
        }
    }
}

/// Epoch PTE scanning + promotion.
#[derive(Debug)]
pub struct PteScanPolicy {
    config: PteScanPolicyConfig,
    scanner: PteScanner,
    quota: QuotaMeter,
    started: bool,
    next_scan: Nanos,
    next_clear: Nanos,
    overhead: Nanos,
}

impl PteScanPolicy {
    /// Creates the policy for an address space of `rss_pages`.
    pub fn new(config: PteScanPolicyConfig, rss_pages: u64, mquota: Bandwidth) -> Self {
        Self {
            config,
            scanner: PteScanner::new(config.scanner, rss_pages),
            quota: QuotaMeter::new(mquota),
            started: false,
            next_scan: Nanos::ZERO,
            next_clear: Nanos::ZERO,
            overhead: Nanos::ZERO,
        }
    }
}

impl TieringPolicy for PteScanPolicy {
    fn name(&self) -> &'static str {
        "PTE-Scan"
    }

    fn on_access(&mut self, ev: &AccessEvent, kernel: &mut Kernel) -> Nanos {
        if ev.llc_miss && ev.tier.is_fast() {
            kernel.record_fast_access(ev.vpage);
        }
        // The accessed bit is set by the page walker (simulator);
        // PTE-scan itself sees nothing per access.
        Nanos::ZERO
    }

    fn maybe_tick(&mut self, kernel: &mut Kernel, now: Nanos) -> Nanos {
        if !self.started {
            self.started = true;
            self.next_scan = now + self.config.scan_interval;
            self.next_clear = now + self.config.clear_interval;
            return Nanos::ZERO;
        }
        let mut cost = Nanos::ZERO;
        if now >= self.next_scan {
            let out = self.scanner.scan_epoch(kernel);
            cost += out.overhead;
            cost += ensure_fast_headroom(kernel, self.config.headroom_frac, now);
            for vpage in out.hot_pages {
                if kernel.tier_of(vpage).map(|t| t.is_fast()).unwrap_or(true) {
                    continue;
                }
                if !self.quota.try_consume(Bytes::new(PAGE_SIZE), now + cost) {
                    break;
                }
                if let Ok(t) = kernel.promote(vpage, now + cost) {
                    cost += t;
                }
            }
            self.next_scan = now + self.config.scan_interval;
        }
        if now >= self.next_clear {
            self.scanner.clear();
            self.next_clear = now + self.config.clear_interval;
        }
        self.overhead += cost;
        cost
    }

    fn telemetry(&self) -> PolicyTelemetry {
        PolicyTelemetry { profiling_overhead: self.overhead, ..Default::default() }
    }

    fn snapshot_state(&self) -> Json {
        Json::obj([
            ("scanner", self.scanner.snapshot()),
            ("quota", self.quota.snapshot()),
            ("started", Json::Bool(self.started)),
            ("next_scan", Json::U64(self.next_scan.as_nanos())),
            ("next_clear", Json::U64(self.next_clear.as_nanos())),
            ("overhead", Json::U64(self.overhead.as_nanos())),
        ])
    }

    fn restore_state(&mut self, state: &Json) -> Result<()> {
        self.scanner.restore(state.req("scanner")?)?;
        self.quota.restore(state.req("quota")?)?;
        self.started = state.req_bool("started")?;
        self.next_scan = Nanos::new(state.req_u64("next_scan")?);
        self.next_clear = Nanos::new(state.req_u64("next_clear")?);
        self.overhead = Nanos::new(state.req_u64("overhead")?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neomem_kernel::KernelConfig;

    fn kernel() -> Kernel {
        let mut k = Kernel::new(KernelConfig::with_frames(8, 32));
        for p in 0..24 {
            k.touch_alloc(VirtPage::new(p), Nanos::ZERO).unwrap();
        }
        k
    }

    #[test]
    fn two_epoch_hot_page_promoted() {
        let mut k = kernel();
        let cfg = PteScanPolicyConfig::scaled(1000);
        let mut p = PteScanPolicy::new(cfg, 40, Bandwidth::from_mib_per_sec(256));
        p.maybe_tick(&mut k, Nanos::ZERO);
        let target = VirtPage::new(20);
        // Epoch 1: touched.
        k.page_table_mut().mark_accessed(target).unwrap();
        p.maybe_tick(&mut k, cfg.scan_interval + Nanos::new(1));
        assert!(k.tier_of(target).unwrap().is_slow());
        // Epoch 2: touched again → promoted.
        k.page_table_mut().mark_accessed(target).unwrap();
        p.maybe_tick(&mut k, cfg.scan_interval * 2 + Nanos::new(2));
        assert!(k.tier_of(target).unwrap().is_fast());
    }

    #[test]
    fn scan_overhead_charged() {
        let mut k = kernel();
        let cfg = PteScanPolicyConfig::scaled(1000);
        let mut p = PteScanPolicy::new(cfg, 40, Bandwidth::from_mib_per_sec(256));
        p.maybe_tick(&mut k, Nanos::ZERO);
        let cost = p.maybe_tick(&mut k, cfg.scan_interval + Nanos::new(1));
        assert!(cost > Nanos::ZERO, "a scan walks all mapped PTEs");
    }

    #[test]
    fn untouched_pages_never_promoted() {
        let mut k = kernel();
        let cfg = PteScanPolicyConfig::scaled(1000);
        let mut p = PteScanPolicy::new(cfg, 40, Bandwidth::from_mib_per_sec(256));
        let mut now = Nanos::ZERO;
        for _ in 0..5 {
            now += cfg.scan_interval + Nanos::new(1);
            p.maybe_tick(&mut k, now);
        }
        assert_eq!(k.stats().promotions, 0);
    }
}
