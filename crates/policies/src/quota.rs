//! The migration quota meter (`mquota`, Table V: 256 MB/s default).

use neomem_types::json::{hex_from_u64s, Json};
use neomem_types::{Bandwidth, Bytes, Error, Nanos, Result};

/// Rate-limits migration volume over one-second windows.
///
/// In single-tenant use, a meter is just a budget that refills every
/// simulated second:
///
/// ```
/// use neomem_policies::QuotaMeter;
/// use neomem_types::{Bandwidth, Bytes, Nanos};
///
/// let mut quota = QuotaMeter::new(Bandwidth::from_mib_per_sec(1));
/// assert!(quota.try_consume(Bytes::from_kib(1020), Nanos::ZERO));
/// assert!(!quota.try_consume(Bytes::from_kib(8), Nanos::ZERO), "window exhausted");
/// // A second later the window rolls and the budget refills.
/// assert!(quota.try_consume(Bytes::from_kib(8), Nanos::from_secs(1)));
/// ```
///
/// For co-run machines, [`QuotaMeter::enable_tenant_accounting`] splits
/// the same window budget into weighted per-tenant shares:
///
/// ```
/// use neomem_policies::QuotaMeter;
/// use neomem_types::{Bandwidth, Bytes, Nanos};
///
/// let mut quota = QuotaMeter::new(Bandwidth::from_mib_per_sec(1));
/// quota.enable_tenant_accounting(&[1, 3]); // tenant 1 owns 3/4 of the budget
/// quota.set_active_tenant(0);
/// assert!(quota.try_consume(Bytes::from_kib(256), Nanos::ZERO));
/// assert!(!quota.try_consume(Bytes::from_kib(4), Nanos::ZERO), "tenant 0 share spent");
/// quota.set_active_tenant(1);
/// assert!(quota.try_consume(Bytes::from_kib(512), Nanos::ZERO), "tenant 1 still in budget");
/// assert_eq!(quota.used_by(0), Bytes::from_kib(256));
/// ```
#[derive(Debug, Clone)]
pub struct QuotaMeter {
    rate: Bandwidth,
    window_start: Nanos,
    used: u64,
    /// Per-tenant budget weights; empty = tenant accounting disabled
    /// (the single-tenant fast path).
    tenant_shares: Vec<u64>,
    /// Bytes consumed per tenant in the current window.
    tenant_used: Vec<u64>,
    /// Tenant charged by the next [`QuotaMeter::try_consume`].
    active_tenant: usize,
}

impl QuotaMeter {
    /// Creates a meter allowing `rate` of migration traffic.
    pub fn new(rate: Bandwidth) -> Self {
        Self {
            rate,
            window_start: Nanos::ZERO,
            used: 0,
            tenant_shares: Vec::new(),
            tenant_used: Vec::new(),
            active_tenant: 0,
        }
    }

    /// The paper's default: 256 MB/s.
    pub fn paper_default() -> Self {
        Self::new(Bandwidth::from_mib_per_sec(256))
    }

    fn budget(&self) -> u64 {
        // One-second accounting window.
        self.rate.bytes_per_sec() as u64
    }

    /// Tenant `t`'s weighted slice of the window budget.
    fn tenant_budget(&self, tenant: usize) -> u64 {
        let total: u64 = self.tenant_shares.iter().sum();
        // total > 0: enable_tenant_accounting rejects zero weights.
        self.budget() * self.tenant_shares[tenant] / total
    }

    fn roll(&mut self, now: Nanos) {
        let elapsed = now.saturating_sub(self.window_start);
        if elapsed >= Nanos::from_secs(1) {
            self.window_start = now;
            self.used = 0;
            self.tenant_used.iter_mut().for_each(|u| *u = 0);
        }
    }

    /// Requests permission to migrate `bytes` at `now`; consumes budget
    /// on success. With tenant accounting enabled, the bytes must also
    /// fit in the active tenant's share of the window.
    pub fn try_consume(&mut self, bytes: Bytes, now: Nanos) -> bool {
        self.roll(now);
        if self.used + bytes.as_u64() > self.budget() {
            return false;
        }
        if !self.tenant_shares.is_empty() {
            let t = self.active_tenant;
            if self.tenant_used[t] + bytes.as_u64() > self.tenant_budget(t) {
                return false;
            }
            self.tenant_used[t] += bytes.as_u64();
        }
        self.used += bytes.as_u64();
        true
    }

    /// Whether the last full window exhausted its budget — the
    /// `M < mquota` test of Algorithm 1 (line 9).
    pub fn saturated(&self) -> bool {
        self.used >= self.budget()
    }

    /// Bytes consumed in the current window.
    pub fn used(&self) -> Bytes {
        Bytes::new(self.used)
    }

    /// Replaces the rate (sensitivity sweeps, Fig. 15b).
    pub fn set_rate(&mut self, rate: Bandwidth) {
        self.rate = rate;
    }

    /// Splits the window budget into weighted per-tenant shares. Until
    /// this is called the meter runs in its single-tenant mode with a
    /// single undivided budget.
    ///
    /// # Panics
    ///
    /// Panics on an empty share list or a zero weight — the co-run
    /// layout validates both before any policy sees them.
    pub fn enable_tenant_accounting(&mut self, shares: &[u64]) {
        assert!(!shares.is_empty(), "tenant shares must be non-empty");
        assert!(shares.iter().all(|&s| s > 0), "tenant shares must be non-zero");
        self.tenant_shares = shares.to_vec();
        self.tenant_used = vec![0; shares.len()];
        self.active_tenant = 0;
    }

    /// Selects the tenant charged by subsequent
    /// [`try_consume`](Self::try_consume) calls. No-op until
    /// [`enable_tenant_accounting`](Self::enable_tenant_accounting).
    pub fn set_active_tenant(&mut self, tenant: usize) {
        if tenant < self.tenant_shares.len() {
            self.active_tenant = tenant;
        }
    }

    /// Bytes consumed by `tenant` in the current window (zero when
    /// tenant accounting is disabled or the index is out of range).
    pub fn used_by(&self, tenant: usize) -> Bytes {
        Bytes::new(self.tenant_used.get(tenant).copied().unwrap_or(0))
    }

    /// Serialises the meter's window state for a machine snapshot. The
    /// rate and tenant shares are configuration — a restored meter must
    /// already carry them (via construction and
    /// [`QuotaMeter::enable_tenant_accounting`]).
    pub fn snapshot(&self) -> Json {
        Json::obj([
            ("window_start", Json::U64(self.window_start.as_nanos())),
            ("used", Json::U64(self.used)),
            ("tenant_used", Json::Str(hex_from_u64s(&self.tenant_used))),
            ("active_tenant", Json::U64(self.active_tenant as u64)),
        ])
    }

    /// Restores [`QuotaMeter::snapshot`] state onto a same-config meter.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on missing/malformed fields, a
    /// tenant-usage array sized for a different tenant count, or an
    /// out-of-range active tenant.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        let tenant_used = snap.req_u64s("tenant_used")?;
        if tenant_used.len() != self.tenant_shares.len() {
            return Err(Error::snapshot(format!(
                "quota snapshot has {} tenant slots, meter is configured for {}",
                tenant_used.len(),
                self.tenant_shares.len()
            )));
        }
        let active = snap.req_u64("active_tenant")? as usize;
        if active >= self.tenant_shares.len().max(1) {
            return Err(Error::snapshot(format!(
                "active tenant {} out of range for {} tenants",
                active,
                self.tenant_shares.len()
            )));
        }
        self.window_start = Nanos::new(snap.req_u64("window_start")?);
        self.used = snap.req_u64("used")?;
        self.tenant_used = tenant_used;
        self.active_tenant = active;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consumes_until_budget() {
        let mut q = QuotaMeter::new(Bandwidth::from_mib_per_sec(1)); // 1 MiB/s
        let page = Bytes::from_kib(4);
        let mut granted = 0;
        while q.try_consume(page, Nanos::ZERO) {
            granted += 1;
        }
        assert_eq!(granted, 256, "1 MiB / 4 KiB = 256 pages");
        assert!(q.saturated());
    }

    #[test]
    fn window_refills_after_a_second() {
        let mut q = QuotaMeter::new(Bandwidth::from_mib_per_sec(1));
        while q.try_consume(Bytes::from_kib(4), Nanos::ZERO) {}
        assert!(!q.try_consume(Bytes::from_kib(4), Nanos::from_millis(500)));
        assert!(q.try_consume(Bytes::from_kib(4), Nanos::from_secs(2)));
        assert!(!q.saturated());
    }

    #[test]
    fn paper_default_is_256_mib() {
        let mut q = QuotaMeter::paper_default();
        assert!(q.try_consume(Bytes::from_mib(256), Nanos::ZERO));
        assert!(!q.try_consume(Bytes::new(1), Nanos::ZERO));
    }

    #[test]
    fn tenant_shares_cap_each_tenant() {
        let mut q = QuotaMeter::new(Bandwidth::from_mib_per_sec(1));
        q.enable_tenant_accounting(&[1, 1]);
        let page = Bytes::from_kib(4);
        // Tenant 0 may use exactly half the 256-page window.
        q.set_active_tenant(0);
        let mut granted = 0;
        while q.try_consume(page, Nanos::ZERO) {
            granted += 1;
        }
        assert_eq!(granted, 128, "half of 1 MiB at 4 KiB pages");
        assert_eq!(q.used_by(0), Bytes::from_kib(512));
        // Tenant 1's share is untouched.
        q.set_active_tenant(1);
        assert!(q.try_consume(page, Nanos::ZERO));
        assert_eq!(q.used_by(1), page);
    }

    #[test]
    fn tenant_shares_follow_weights_and_roll() {
        let mut q = QuotaMeter::new(Bandwidth::from_mib_per_sec(1));
        q.enable_tenant_accounting(&[3, 1]);
        q.set_active_tenant(1);
        // Tenant 1 owns a quarter: 64 pages.
        let mut granted = 0;
        while q.try_consume(Bytes::from_kib(4), Nanos::ZERO) {
            granted += 1;
        }
        assert_eq!(granted, 64);
        // The roll resets per-tenant usage with the window.
        assert!(q.try_consume(Bytes::from_kib(4), Nanos::from_secs(2)));
        assert_eq!(q.used_by(1), Bytes::from_kib(4));
        assert_eq!(q.used_by(0), Bytes::ZERO);
    }

    #[test]
    fn global_budget_still_binds_with_tenants() {
        let mut q = QuotaMeter::new(Bandwidth::from_bytes_per_sec(8.0 * 4096.0));
        q.enable_tenant_accounting(&[1, 1]);
        q.set_active_tenant(0);
        for _ in 0..4 {
            assert!(q.try_consume(Bytes::from_kib(4), Nanos::ZERO));
        }
        q.set_active_tenant(1);
        for _ in 0..4 {
            assert!(q.try_consume(Bytes::from_kib(4), Nanos::ZERO));
        }
        assert!(q.saturated());
        for t in 0..2 {
            q.set_active_tenant(t);
            assert!(!q.try_consume(Bytes::from_kib(4), Nanos::ZERO));
        }
    }

    #[test]
    fn out_of_range_tenant_queries_are_harmless() {
        let mut q = QuotaMeter::paper_default();
        assert_eq!(q.used_by(5), Bytes::ZERO);
        q.set_active_tenant(7); // ignored: accounting disabled
        assert!(q.try_consume(Bytes::from_kib(4), Nanos::ZERO));
    }
}
