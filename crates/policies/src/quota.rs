//! The migration quota meter (`mquota`, Table V: 256 MB/s default).

use neomem_types::{Bandwidth, Bytes, Nanos};

/// Rate-limits migration volume over one-second windows.
#[derive(Debug, Clone)]
pub struct QuotaMeter {
    rate: Bandwidth,
    window_start: Nanos,
    used: u64,
}

impl QuotaMeter {
    /// Creates a meter allowing `rate` of migration traffic.
    pub fn new(rate: Bandwidth) -> Self {
        Self { rate, window_start: Nanos::ZERO, used: 0 }
    }

    /// The paper's default: 256 MB/s.
    pub fn paper_default() -> Self {
        Self::new(Bandwidth::from_mib_per_sec(256))
    }

    fn budget(&self) -> u64 {
        // One-second accounting window.
        self.rate.bytes_per_sec() as u64
    }

    fn roll(&mut self, now: Nanos) {
        let elapsed = now.saturating_sub(self.window_start);
        if elapsed >= Nanos::from_secs(1) {
            self.window_start = now;
            self.used = 0;
        }
    }

    /// Requests permission to migrate `bytes` at `now`; consumes budget
    /// on success.
    pub fn try_consume(&mut self, bytes: Bytes, now: Nanos) -> bool {
        self.roll(now);
        if self.used + bytes.as_u64() > self.budget() {
            false
        } else {
            self.used += bytes.as_u64();
            true
        }
    }

    /// Whether the last full window exhausted its budget — the
    /// `M < mquota` test of Algorithm 1 (line 9).
    pub fn saturated(&self) -> bool {
        self.used >= self.budget()
    }

    /// Bytes consumed in the current window.
    pub fn used(&self) -> Bytes {
        Bytes::new(self.used)
    }

    /// Replaces the rate (sensitivity sweeps, Fig. 15b).
    pub fn set_rate(&mut self, rate: Bandwidth) {
        self.rate = rate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consumes_until_budget() {
        let mut q = QuotaMeter::new(Bandwidth::from_mib_per_sec(1)); // 1 MiB/s
        let page = Bytes::from_kib(4);
        let mut granted = 0;
        while q.try_consume(page, Nanos::ZERO) {
            granted += 1;
        }
        assert_eq!(granted, 256, "1 MiB / 4 KiB = 256 pages");
        assert!(q.saturated());
    }

    #[test]
    fn window_refills_after_a_second() {
        let mut q = QuotaMeter::new(Bandwidth::from_mib_per_sec(1));
        while q.try_consume(Bytes::from_kib(4), Nanos::ZERO) {}
        assert!(!q.try_consume(Bytes::from_kib(4), Nanos::from_millis(500)));
        assert!(q.try_consume(Bytes::from_kib(4), Nanos::from_secs(2)));
        assert!(!q.saturated());
    }

    #[test]
    fn paper_default_is_256_mib() {
        let mut q = QuotaMeter::paper_default();
        assert!(q.try_consume(Bytes::from_mib(256), Nanos::ZERO));
        assert!(!q.try_consume(Bytes::new(1), Nanos::ZERO));
    }
}
