//! PMU-sampling policies: the `PEBS` baseline and Memtis (Fig. 17).

use neomem_kernel::Kernel;
use neomem_profilers::{AccessEvent, PebsConfig, PebsSampler};
use neomem_types::json::Json;
use neomem_types::{Bandwidth, Bytes, Nanos, Result, VirtPage, PAGE_SIZE};

use crate::quota::QuotaMeter;
use crate::{ensure_fast_headroom, PolicyTelemetry, TieringPolicy};

/// Configuration shared by the PEBS-based policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PebsPolicyConfig {
    /// Sampler settings (interval, buffer, costs).
    pub pebs: PebsConfig,
    /// Slow-tier samples required before a page is promoted.
    pub min_samples: u32,
    /// Promotion cadence.
    pub migration_interval: Nanos,
    /// Sample-count reset cadence.
    pub clear_interval: Nanos,
    /// Fast-tier headroom fraction.
    pub headroom_frac: f64,
}

impl Default for PebsPolicyConfig {
    fn default() -> Self {
        Self {
            pebs: PebsConfig::default(),
            min_samples: 2,
            migration_interval: Nanos::from_millis(50),
            clear_interval: Nanos::from_secs(2),
            headroom_frac: 0.02,
        }
    }
}

impl PebsPolicyConfig {
    /// Cadences divided by `factor` for scaled simulations. The
    /// sampling interval shrinks with the event-count compression so
    /// PEBS keeps its paper-calibre recall (Table V's 200–5000 range is
    /// calibrated against billions of LLC misses; compressed runs see
    /// ~1000× fewer events).
    pub fn scaled(factor: u64) -> Self {
        let d = Self::default();
        let interval = (d.pebs.sample_interval * 20 / factor.max(1)).max(20);
        Self {
            migration_interval: (d.migration_interval / factor).max(Nanos::from_micros(200)),
            clear_interval: (d.clear_interval / factor).max(Nanos::from_millis(1)),
            pebs: neomem_profilers::PebsConfig { sample_interval: interval, ..d.pebs },
            ..d
        }
    }
}

/// The `PEBS` baseline: sample LLC misses, promote pages with enough
/// samples, demote LRU-cold pages for headroom.
#[derive(Debug)]
pub struct PebsPolicy {
    sampler: PebsSampler,
    config: PebsPolicyConfig,
    quota: QuotaMeter,
    started: bool,
    next_migrate: Nanos,
    next_clear: Nanos,
    overhead: Nanos,
}

impl PebsPolicy {
    /// Creates the policy.
    pub fn new(config: PebsPolicyConfig, mquota: Bandwidth) -> Self {
        Self {
            sampler: PebsSampler::new(config.pebs),
            config,
            quota: QuotaMeter::new(mquota),
            started: false,
            next_migrate: Nanos::ZERO,
            next_clear: Nanos::ZERO,
            overhead: Nanos::ZERO,
        }
    }

    /// The sampler (bench telemetry).
    pub fn sampler(&self) -> &PebsSampler {
        &self.sampler
    }

    /// Upper bound on one `on_access` charge: a sample that also drains
    /// the PEBS buffer.
    pub fn max_access_charge(&self) -> Nanos {
        let c = self.sampler.config();
        c.per_sample_cost + c.drain_cost
    }

    fn promote_candidates(
        &mut self,
        candidates: Vec<VirtPage>,
        kernel: &mut Kernel,
        now: Nanos,
    ) -> Nanos {
        let mut cost = ensure_fast_headroom(kernel, self.config.headroom_frac, now);
        for vpage in candidates {
            if kernel.tier_of(vpage).map(|t| t.is_fast()).unwrap_or(true) {
                continue;
            }
            if !self.quota.try_consume(Bytes::new(PAGE_SIZE), now + cost) {
                break;
            }
            if let Ok(t) = kernel.promote(vpage, now + cost) {
                cost += t;
            }
        }
        cost
    }
}

impl TieringPolicy for PebsPolicy {
    fn name(&self) -> &'static str {
        "PEBS"
    }

    fn on_access(&mut self, ev: &AccessEvent, kernel: &mut Kernel) -> Nanos {
        if ev.llc_miss && ev.tier.is_fast() {
            kernel.record_fast_access(ev.vpage);
        }
        let cost = self.sampler.on_access(ev);
        self.overhead += cost;
        cost
    }

    fn maybe_tick(&mut self, kernel: &mut Kernel, now: Nanos) -> Nanos {
        if !self.started {
            self.started = true;
            self.next_migrate = now + self.config.migration_interval;
            self.next_clear = now + self.config.clear_interval;
            return Nanos::ZERO;
        }
        let mut cost = Nanos::ZERO;
        if now >= self.next_migrate {
            let candidates = self.sampler.hot_candidates(self.config.min_samples);
            cost += self.promote_candidates(candidates, kernel, now);
            self.next_migrate = now + self.config.migration_interval;
        }
        if now >= self.next_clear {
            self.sampler.clear();
            self.next_clear = now + self.config.clear_interval;
        }
        self.overhead += cost;
        cost
    }

    fn telemetry(&self) -> PolicyTelemetry {
        PolicyTelemetry { profiling_overhead: self.overhead, ..Default::default() }
    }

    fn snapshot_state(&self) -> Json {
        Json::obj([
            ("sampler", self.sampler.snapshot()),
            ("quota", self.quota.snapshot()),
            ("started", Json::Bool(self.started)),
            ("next_migrate", Json::U64(self.next_migrate.as_nanos())),
            ("next_clear", Json::U64(self.next_clear.as_nanos())),
            ("overhead", Json::U64(self.overhead.as_nanos())),
        ])
    }

    fn restore_state(&mut self, state: &Json) -> Result<()> {
        self.sampler.restore(state.req("sampler")?)?;
        self.quota.restore(state.req("quota")?)?;
        self.started = state.req_bool("started")?;
        self.next_migrate = Nanos::new(state.req_u64("next_migrate")?);
        self.next_clear = Nanos::new(state.req_u64("next_clear")?);
        self.overhead = Nanos::new(state.req_u64("overhead")?);
        Ok(())
    }
}

/// Memtis-style policy (Lee et al., SOSP'23): PEBS samples feed a
/// count distribution; the hot set is the top pages whose cumulative
/// footprint fits the fast tier, re-classified at a coarse cadence.
///
/// The deliberate sluggishness (long classification interval, higher
/// sample floor) reproduces the paper's Fig. 17 finding that Memtis
/// under-promotes under rapidly changing access patterns.
#[derive(Debug)]
pub struct MemtisPolicy {
    sampler: PebsSampler,
    quota: QuotaMeter,
    classification_interval: Nanos,
    headroom_frac: f64,
    min_samples: u32,
    started: bool,
    next_classify: Nanos,
    overhead: Nanos,
}

impl MemtisPolicy {
    /// Creates the policy with Memtis-like defaults.
    pub fn new(pebs: PebsConfig, mquota: Bandwidth, classification_interval: Nanos) -> Self {
        Self {
            sampler: PebsSampler::new(pebs),
            quota: QuotaMeter::new(mquota),
            classification_interval,
            headroom_frac: 0.02,
            min_samples: 4,
            started: false,
            next_classify: Nanos::ZERO,
            overhead: Nanos::ZERO,
        }
    }

    /// Scaled constructor for quick simulations (sampling interval
    /// compressed like [`PebsPolicyConfig::scaled`]).
    pub fn scaled(factor: u64, mquota: Bandwidth) -> Self {
        let interval = (Nanos::from_secs(1) / factor).max(Nanos::from_millis(2));
        let sample_interval =
            (PebsConfig::default().sample_interval * 20 / factor.max(1)).max(20);
        Self::new(PebsConfig { sample_interval, ..PebsConfig::default() }, mquota, interval)
    }

    /// Upper bound on one `on_access` charge: a sample that also drains
    /// the PEBS buffer.
    pub fn max_access_charge(&self) -> Nanos {
        let c = self.sampler.config();
        c.per_sample_cost + c.drain_cost
    }
}

impl TieringPolicy for MemtisPolicy {
    fn name(&self) -> &'static str {
        "Memtis"
    }

    fn on_access(&mut self, ev: &AccessEvent, kernel: &mut Kernel) -> Nanos {
        if ev.llc_miss && ev.tier.is_fast() {
            kernel.record_fast_access(ev.vpage);
        }
        let cost = self.sampler.on_access(ev);
        self.overhead += cost;
        cost
    }

    fn maybe_tick(&mut self, kernel: &mut Kernel, now: Nanos) -> Nanos {
        if !self.started {
            self.started = true;
            self.next_classify = now + self.classification_interval;
            return Nanos::ZERO;
        }
        if now < self.next_classify {
            return Nanos::ZERO;
        }
        self.next_classify = now + self.classification_interval;

        // Hot-set classification: rank sampled pages by count, keep the
        // top pages that fit the fast tier, promote the slow ones.
        let mut ranked: Vec<(VirtPage, u32)> = self.sampler.counts().collect();
        ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let fast_capacity = kernel.memory().allocator(neomem_types::Tier::Fast).capacity();
        let budget = (fast_capacity as f64 * 0.9) as usize;
        let mut cost = ensure_fast_headroom(kernel, self.headroom_frac, now);
        for (vpage, samples) in ranked.into_iter().take(budget) {
            if samples < self.min_samples {
                break;
            }
            if kernel.tier_of(vpage).map(|t| t.is_fast()).unwrap_or(true) {
                continue;
            }
            if !self.quota.try_consume(Bytes::new(PAGE_SIZE), now + cost) {
                break;
            }
            if let Ok(t) = kernel.promote(vpage, now + cost) {
                cost += t;
            }
        }
        self.sampler.clear();
        self.overhead += cost;
        cost
    }

    fn telemetry(&self) -> PolicyTelemetry {
        PolicyTelemetry { profiling_overhead: self.overhead, ..Default::default() }
    }

    fn snapshot_state(&self) -> Json {
        Json::obj([
            ("sampler", self.sampler.snapshot()),
            ("quota", self.quota.snapshot()),
            ("started", Json::Bool(self.started)),
            ("next_classify", Json::U64(self.next_classify.as_nanos())),
            ("overhead", Json::U64(self.overhead.as_nanos())),
        ])
    }

    fn restore_state(&mut self, state: &Json) -> Result<()> {
        self.sampler.restore(state.req("sampler")?)?;
        self.quota.restore(state.req("quota")?)?;
        self.started = state.req_bool("started")?;
        self.next_classify = Nanos::new(state.req_u64("next_classify")?);
        self.overhead = Nanos::new(state.req_u64("overhead")?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neomem_kernel::KernelConfig;
    use neomem_types::{AccessKind, PageNum, Tier};

    fn kernel() -> Kernel {
        let mut k = Kernel::new(KernelConfig::with_frames(8, 32));
        for p in 0..24 {
            k.touch_alloc(VirtPage::new(p), Nanos::ZERO).unwrap();
        }
        k
    }

    fn miss(k: &Kernel, vpage: u64) -> AccessEvent {
        let frame = k.translate(VirtPage::new(vpage)).unwrap();
        AccessEvent {
            vpage: VirtPage::new(vpage),
            frame,
            tier: k.memory().tier_of(frame),
            kind: AccessKind::Read,
            tlb_hit: true,
            llc_miss: true,
            now: Nanos::ZERO,
        }
    }

    #[test]
    fn pebs_promotes_sampled_hot_pages() {
        let mut k = kernel();
        let cfg = PebsPolicyConfig {
            pebs: PebsConfig { sample_interval: 1, ..Default::default() },
            ..PebsPolicyConfig::scaled(1000)
        };
        let mut policy = PebsPolicy::new(cfg, Bandwidth::from_mib_per_sec(256));
        policy.maybe_tick(&mut k, Nanos::ZERO);
        for _ in 0..5 {
            policy.on_access(&miss(&k, 20), &mut k);
        }
        policy.maybe_tick(&mut k, Nanos::from_millis(100));
        assert!(k.tier_of(VirtPage::new(20)).unwrap().is_fast());
    }

    #[test]
    fn pebs_sparse_sampling_misses_hot_pages() {
        let mut k = kernel();
        let cfg = PebsPolicyConfig {
            pebs: PebsConfig { sample_interval: 5000, ..Default::default() },
            ..PebsPolicyConfig::scaled(1000)
        };
        let mut policy = PebsPolicy::new(cfg, Bandwidth::from_mib_per_sec(256));
        policy.maybe_tick(&mut k, Nanos::ZERO);
        for _ in 0..50 {
            policy.on_access(&miss(&k, 20), &mut k);
        }
        policy.maybe_tick(&mut k, Nanos::from_millis(100));
        assert!(
            k.tier_of(VirtPage::new(20)).unwrap().is_slow(),
            "50 misses < one sample at interval 5000"
        );
    }

    #[test]
    fn pebs_charges_sampling_overhead() {
        let mut k = kernel();
        let cfg = PebsPolicyConfig {
            pebs: PebsConfig { sample_interval: 1, ..Default::default() },
            ..PebsPolicyConfig::scaled(1000)
        };
        let mut policy = PebsPolicy::new(cfg, Bandwidth::from_mib_per_sec(256));
        let c = policy.on_access(&miss(&k, 20), &mut k);
        assert!(c > Nanos::ZERO);
        assert!(policy.telemetry().profiling_overhead > Nanos::ZERO);
    }

    #[test]
    fn memtis_classifies_top_of_distribution() {
        let mut k = kernel();
        let mut policy = MemtisPolicy::new(
            PebsConfig { sample_interval: 1, ..Default::default() },
            Bandwidth::from_mib_per_sec(256),
            Nanos::from_millis(5),
        );
        policy.maybe_tick(&mut k, Nanos::ZERO);
        // Page 20 very hot, page 21 lukewarm (below min_samples=4).
        for _ in 0..20 {
            policy.on_access(&miss(&k, 20), &mut k);
        }
        for _ in 0..3 {
            policy.on_access(&miss(&k, 21), &mut k);
        }
        policy.maybe_tick(&mut k, Nanos::from_millis(10));
        assert!(k.tier_of(VirtPage::new(20)).unwrap().is_fast());
        assert!(k.tier_of(VirtPage::new(21)).unwrap().is_slow(), "below Memtis sample floor");
    }

    #[test]
    fn memtis_is_slower_to_react_than_pebs() {
        // Same access pattern, but Memtis's coarse classification window
        // hasn't elapsed yet where PEBS's migration interval has.
        let mut k1 = kernel();
        let mut k2 = kernel();
        let pebs_cfg = PebsPolicyConfig {
            pebs: PebsConfig { sample_interval: 1, ..Default::default() },
            migration_interval: Nanos::from_millis(1),
            ..PebsPolicyConfig::scaled(1000)
        };
        let mut pebs = PebsPolicy::new(pebs_cfg, Bandwidth::from_mib_per_sec(256));
        let mut memtis = MemtisPolicy::new(
            PebsConfig { sample_interval: 1, ..Default::default() },
            Bandwidth::from_mib_per_sec(256),
            Nanos::from_secs(1),
        );
        pebs.maybe_tick(&mut k1, Nanos::ZERO);
        memtis.maybe_tick(&mut k2, Nanos::ZERO);
        for _ in 0..10 {
            pebs.on_access(&miss(&k1, 20), &mut k1);
            memtis.on_access(&miss(&k2, 20), &mut k2);
        }
        let t = Nanos::from_millis(5);
        pebs.maybe_tick(&mut k1, t);
        memtis.maybe_tick(&mut k2, t);
        assert!(k1.tier_of(VirtPage::new(20)).unwrap().is_fast(), "PEBS acted");
        assert!(k2.tier_of(VirtPage::new(20)).unwrap().is_slow(), "Memtis still waiting");
        let _ = PageNum::new(0);
        let _ = Tier::Fast;
    }
}
