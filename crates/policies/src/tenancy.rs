//! Tenant layout shared between the co-run engine and tenant-aware
//! policies.
//!
//! The co-run engine places each tenant's private page-id namespace at
//! a disjoint base offset of the machine's global virtual address
//! space. A [`TenantLayout`] carries those offsets plus the interleave
//! weights, so a policy can attribute any global page to its owning
//! tenant and arbitrate shared resources (migration quota, fast-tier
//! capacity) across tenants.

use neomem_types::{Error, Result, VirtPage};

/// The tenant geometry of a co-run machine.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantLayout {
    bases: Vec<u64>,
    weights: Vec<u64>,
    fast_share_cap: Option<f64>,
}

impl TenantLayout {
    /// Builds a layout from each tenant's base page offset and
    /// interleave weight. `fast_share_cap`, when set, caps every
    /// tenant's fast-tier occupancy at `cap ×` its weighted fair share
    /// of the fast tier (so `1.0` enforces strict proportional shares
    /// and `2.0` allows a tenant to overshoot its share twofold).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the vectors are empty or
    /// of different lengths, the bases don't start at 0 or aren't
    /// strictly increasing, any weight is zero, or the cap is not
    /// positive.
    pub fn new(bases: Vec<u64>, weights: Vec<u64>, fast_share_cap: Option<f64>) -> Result<Self> {
        if bases.is_empty() || bases.len() != weights.len() {
            return Err(Error::invalid_config(format!(
                "tenant layout needs matching non-empty bases/weights, got {}/{}",
                bases.len(),
                weights.len()
            )));
        }
        if bases[0] != 0 || bases.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::invalid_config(
                "tenant bases must start at 0 and be strictly increasing",
            ));
        }
        if weights.contains(&0) {
            return Err(Error::invalid_config("tenant weights must be non-zero"));
        }
        if fast_share_cap.is_some_and(|c| c <= 0.0 || c.is_nan()) {
            return Err(Error::invalid_config("fast_share_cap must be positive"));
        }
        Ok(Self { bases, weights, fast_share_cap })
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.bases.len()
    }

    /// The owning tenant of a global virtual page: the last tenant
    /// whose base is ≤ the page index. Pages past the last tenant's
    /// range still map to the last tenant (the layout doesn't know the
    /// final tenant's extent).
    pub fn tenant_of(&self, vpage: VirtPage) -> usize {
        self.bases.partition_point(|&b| b <= vpage.index()) - 1
    }

    /// The interleave weights, in tenant order.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Tenant `t`'s weighted fair share in `[0, 1]`.
    pub fn weight_share(&self, tenant: usize) -> f64 {
        let total: u64 = self.weights.iter().sum();
        self.weights[tenant] as f64 / total as f64
    }

    /// The configured fast-tier occupancy cap multiplier, if any.
    pub fn fast_share_cap(&self) -> Option<f64> {
        self.fast_share_cap
    }

    /// Tenant `t`'s fast-tier occupancy ceiling in frames, given the
    /// fast tier's capacity — `None` when no cap is configured.
    pub fn fast_cap_frames(&self, tenant: usize, fast_capacity: u64) -> Option<u64> {
        self.fast_share_cap.map(|cap| {
            let share = self.weight_share(tenant);
            ((fast_capacity as f64 * share * cap).ceil() as u64).max(1)
        })
    }

    /// Counts each tenant's fast-tier pages from the kernel's reverse
    /// map into `out` (one slot per tenant, overwritten). The single
    /// source of truth for occupancy accounting — the co-run engine's
    /// attribution and NeoMem's fairness gate both use it, so they can
    /// never diverge.
    ///
    /// # Panics
    ///
    /// Panics when `out` is shorter than the tenant count.
    pub fn count_fast_pages(&self, kernel: &neomem_kernel::Kernel, out: &mut [u64]) {
        assert!(out.len() >= self.tenant_count(), "occupancy buffer too short");
        out.iter_mut().for_each(|c| *c = 0);
        // One dense sweep of the fast tier's reverse map. With tenant
        // bases sorted, `partition_point` over the handful of bases is
        // branch-predictable; the sweep itself is bounds-check-free.
        for vpage in kernel.fast_rmap().iter().copied().flatten() {
            out[self.tenant_of(vpage)] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_of_uses_base_ranges() {
        let layout = TenantLayout::new(vec![0, 1024, 3072], vec![1, 1, 2], None).unwrap();
        assert_eq!(layout.tenant_count(), 3);
        assert_eq!(layout.tenant_of(VirtPage::new(0)), 0);
        assert_eq!(layout.tenant_of(VirtPage::new(1023)), 0);
        assert_eq!(layout.tenant_of(VirtPage::new(1024)), 1);
        assert_eq!(layout.tenant_of(VirtPage::new(3071)), 1);
        assert_eq!(layout.tenant_of(VirtPage::new(9999)), 2);
    }

    #[test]
    fn shares_and_caps_follow_weights() {
        let layout = TenantLayout::new(vec![0, 64], vec![1, 3], Some(1.0)).unwrap();
        assert!((layout.weight_share(0) - 0.25).abs() < 1e-12);
        assert!((layout.weight_share(1) - 0.75).abs() < 1e-12);
        assert_eq!(layout.fast_cap_frames(0, 100), Some(25));
        assert_eq!(layout.fast_cap_frames(1, 100), Some(75));
        let uncapped = TenantLayout::new(vec![0, 64], vec![1, 3], None).unwrap();
        assert_eq!(uncapped.fast_cap_frames(0, 100), None);
    }

    #[test]
    fn caps_never_round_to_zero() {
        let layout = TenantLayout::new(vec![0, 64], vec![1, 999], Some(1.0)).unwrap();
        assert_eq!(layout.fast_cap_frames(0, 2), Some(1));
    }

    #[test]
    fn invalid_layouts_rejected() {
        assert!(TenantLayout::new(vec![], vec![], None).is_err(), "empty");
        assert!(TenantLayout::new(vec![0], vec![1, 2], None).is_err(), "length mismatch");
        assert!(TenantLayout::new(vec![1, 2], vec![1, 1], None).is_err(), "base not 0");
        assert!(TenantLayout::new(vec![0, 0], vec![1, 1], None).is_err(), "not increasing");
        assert!(TenantLayout::new(vec![0, 1], vec![1, 0], None).is_err(), "zero weight");
        assert!(TenantLayout::new(vec![0], vec![1], Some(0.0)).is_err(), "zero cap");
    }
}
