//! Memory-tiering policies (paper §V and §VI-A "Baselines").
//!
//! A [`TieringPolicy`] owns a profiling mechanism and drives promotion /
//! demotion through the simulated kernel. The simulator feeds it every
//! access (so mechanisms with per-access visibility can sample) and
//! calls [`TieringPolicy::maybe_tick`] periodically; each policy manages
//! its own cadences internally (migration interval, threshold updates,
//! scan rates — Table V).
//!
//! Implementations:
//!
//! * [`NeoMemPolicy`] — the paper's contribution: NeoProf readouts +
//!   Algorithm 1 dynamic-threshold adjustment.
//! * [`PebsPolicy`] — PMU-sampling promotion (the `PEBS` baseline).
//! * [`MemtisPolicy`] — Memtis-style PEBS + distribution-based hot-set
//!   classification (Fig. 17).
//! * [`HintFaultPolicy`] — TPP and AutoNUMA (two-touch hint faults).
//! * [`PteScanPolicy`] — epoch PTE scanning.
//! * [`FirstTouchPolicy`] — allocation-only, optionally pinned to one
//!   tier (Fig. 3b characterisation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dispatch;
mod first_touch;
mod hint_fault;
mod neomem;
mod pebs;
mod pte_scan;
mod quota;
mod tenancy;

pub use dispatch::PolicyBox;
pub use first_touch::FirstTouchPolicy;
pub use hint_fault::{HintFaultPolicy, HintFaultPolicyConfig, HintFaultStyle};
pub use neomem::{NeoMemParams, NeoMemPolicy, ThresholdMode};

// `DemotionStrategy` is defined below and re-used by NeoMemParams.
pub use pebs::{MemtisPolicy, PebsPolicy, PebsPolicyConfig};
pub use pte_scan::{PteScanPolicy, PteScanPolicyConfig};
pub use quota::QuotaMeter;
pub use tenancy::TenantLayout;

use neomem_kernel::Kernel;
use neomem_profilers::AccessEvent;
use neomem_types::json::{hex_from_u64s, Json};
use neomem_types::{Error, Nanos, Result, Tier, VirtPage};

/// Telemetry a policy can expose for timeline figures (Fig. 14).
#[derive(Debug, Clone, Default)]
pub struct PolicyTelemetry {
    /// Current hot-page threshold θ.
    pub threshold: Option<u16>,
    /// Current top-`p` fraction of Algorithm 1.
    pub p_fraction: Option<f64>,
    /// Slow-tier bandwidth utilisation `B` of the last window.
    pub bandwidth_util: Option<f64>,
    /// Read-only utilisation of the last window.
    pub read_util: Option<f64>,
    /// Write-only utilisation of the last window.
    pub write_util: Option<f64>,
    /// Estimated sketch error bound `E`.
    pub error_bound: Option<u16>,
    /// Latest access-frequency histogram bins.
    pub histogram: Option<[u64; 64]>,
    /// Cumulative CPU time consumed by profiling + daemon work.
    pub profiling_overhead: Nanos,
    /// Bytes promoted through whole-huge-page migrations (Table VI).
    pub promoted_huge_bytes: neomem_types::Bytes,
}

impl PolicyTelemetry {
    /// Serialises the telemetry block for a machine snapshot. Floats
    /// travel as IEEE-754 bit patterns so restore is bit-exact.
    /// `profiling_overhead` and `promoted_huge_bytes` are derived from
    /// live policy counters by [`TieringPolicy::telemetry`] and are
    /// therefore not serialised.
    pub fn snapshot(&self) -> Json {
        fn opt(v: Option<u64>) -> Json {
            v.map_or(Json::Null, Json::U64)
        }
        Json::obj([
            ("threshold", opt(self.threshold.map(u64::from))),
            ("p_fraction", opt(self.p_fraction.map(f64::to_bits))),
            ("bandwidth_util", opt(self.bandwidth_util.map(f64::to_bits))),
            ("read_util", opt(self.read_util.map(f64::to_bits))),
            ("write_util", opt(self.write_util.map(f64::to_bits))),
            ("error_bound", opt(self.error_bound.map(u64::from))),
            (
                "histogram",
                self.histogram.as_ref().map_or(Json::Null, |h| Json::Str(hex_from_u64s(h))),
            ),
        ])
    }

    /// Rebuilds [`PolicyTelemetry::snapshot`] output.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on missing/malformed fields or a
    /// histogram that is not exactly 64 bins.
    pub fn from_snapshot(snap: &Json) -> Result<Self> {
        fn opt_u64(snap: &Json, key: &str) -> Result<Option<u64>> {
            match snap.req(key)? {
                Json::Null => Ok(None),
                other => other.as_u64().map(Some).ok_or_else(|| {
                    Error::snapshot(format!(
                        "field '{key}': expected unsigned integer or null, found {}",
                        other.type_name()
                    ))
                }),
            }
        }
        fn opt_u16(snap: &Json, key: &str) -> Result<Option<u16>> {
            opt_u64(snap, key)?
                .map(|v| {
                    u16::try_from(v)
                        .map_err(|_| Error::snapshot(format!("field '{key}': {v} exceeds u16")))
                })
                .transpose()
        }
        let histogram = match snap.req("histogram")? {
            Json::Null => None,
            _ => {
                let bins = snap.req_u64s("histogram")?;
                let arr: [u64; 64] = bins.as_slice().try_into().map_err(|_| {
                    Error::snapshot(format!("histogram has {} bins, expected 64", bins.len()))
                })?;
                Some(arr)
            }
        };
        Ok(Self {
            threshold: opt_u16(snap, "threshold")?,
            p_fraction: opt_u64(snap, "p_fraction")?.map(f64::from_bits),
            bandwidth_util: opt_u64(snap, "bandwidth_util")?.map(f64::from_bits),
            read_util: opt_u64(snap, "read_util")?.map(f64::from_bits),
            write_util: opt_u64(snap, "write_util")?.map(f64::from_bits),
            error_bound: opt_u16(snap, "error_bound")?,
            histogram,
            profiling_overhead: Nanos::ZERO,
            promoted_huge_bytes: neomem_types::Bytes::ZERO,
        })
    }
}

/// A complete tiering solution.
pub trait TieringPolicy {
    /// Solution name as used in the figures.
    fn name(&self) -> &'static str;

    /// Preferred tier for first-touch allocation (pinned baselines
    /// override this).
    fn alloc_preference(&self) -> Tier {
        Tier::Fast
    }

    /// Per-access hook. Returns CPU time charged inline (fault service,
    /// sample capture, in-fault promotion, ...).
    fn on_access(&mut self, ev: &AccessEvent, kernel: &mut Kernel) -> Nanos;

    /// Called frequently by the simulator; the policy checks its own
    /// deadlines against `now` and performs due work. Returns the CPU +
    /// migration time charged.
    fn maybe_tick(&mut self, kernel: &mut Kernel, now: Nanos) -> Nanos;

    /// Drains TLB shootdowns the policy requested (PTE poisoning,
    /// migrations already shot down by the kernel are *not* repeated
    /// here) by appending them to `out`, the simulator's reusable
    /// buffer — the drain itself must not allocate on the policy side.
    /// The simulator applies the pages to its TLB model and clears the
    /// buffer between ticks. Default: no shootdowns.
    fn drain_shootdowns_into(&mut self, out: &mut Vec<VirtPage>) {
        let _ = out;
    }

    /// Current telemetry snapshot.
    fn telemetry(&self) -> PolicyTelemetry {
        PolicyTelemetry::default()
    }

    /// Informs the policy that it arbitrates a multi-tenant machine.
    ///
    /// The co-run engine calls this once, before the run starts, with
    /// the tenant base offsets and weights. Tenant-aware policies use
    /// the layout for per-tenant migration-quota accounting and
    /// fast-tier fairness; the default ignores it, so every policy
    /// keeps its single-tenant behaviour bit-identical when the hook is
    /// never called.
    fn configure_tenants(&mut self, layout: &TenantLayout) {
        let _ = layout;
    }

    /// Informs the policy that a tenant just started running (dynamic
    /// scenarios: the tenant was part of the configured layout but idle
    /// until now). Called at the slice boundary where the arrival takes
    /// effect, before the tenant's first slice. Default: no-op, so
    /// static co-runs and single-tenant runs are untouched.
    fn on_tenant_arrival(&mut self, tenant: usize) {
        let _ = tenant;
    }

    /// Informs the policy that a tenant stopped running. The engine
    /// reclaims the tenant's fast-tier pages through the normal
    /// eviction path right after this call; policies drop any
    /// per-tenant soft state (aggression scores, cached counts) here.
    /// Default: no-op.
    fn on_tenant_departure(&mut self, tenant: usize) {
        let _ = tenant;
    }

    /// Feeds the co-run engine's cross-tenant-eviction signal to the
    /// policy: while `aggressor`'s slice ran, other tenants lost
    /// `pages` of net fast-tier occupancy. Called at slice boundaries
    /// with `pages > 0` only. Contention-aware policies use it to
    /// throttle the aggressor's promotion quota; the default ignores
    /// it, keeping every existing policy bit-identical.
    fn note_cross_tenant_evictions(&mut self, aggressor: usize, pages: u64) {
        let _ = (aggressor, pages);
    }

    /// Informs the policy that a fault window just opened on the
    /// machine (the injector fires this at the event's virtual-clock
    /// deadline, before the affected hardware state changes take
    /// effect for the next access). Policies that depend on the faulted
    /// component switch to a degraded mode here — e.g. NeoMem falls
    /// back to PTE-scan profiling during a NeoProf outage. Returns the
    /// CPU time charged for the switch. Default: no-op, so runs without
    /// a fault plan are bit-identical to the pre-fault-layer engine.
    fn on_fault(&mut self, fault: &neomem_types::FaultKind, kernel: &mut Kernel, now: Nanos) -> Nanos {
        let _ = (fault, kernel, now);
        Nanos::ZERO
    }

    /// Informs the policy that a fault window just closed. Policies
    /// re-sync with the recovered component here — e.g. NeoMem resets
    /// the NeoProf device and re-arms its threshold. Returns the CPU
    /// time charged for the resync. Default: no-op.
    fn on_recovery(&mut self, fault: &neomem_types::FaultKind, kernel: &mut Kernel, now: Nanos) -> Nanos {
        let _ = (fault, kernel, now);
        Nanos::ZERO
    }

    /// Serialises the policy's mutable state for a machine snapshot.
    /// Stateless policies keep the default, [`Json::Null`]. Stateful
    /// policies must serialise *everything* that influences future
    /// decisions — snapshot→restore→run must be bit-identical to an
    /// uninterrupted run.
    fn snapshot_state(&self) -> Json {
        Json::Null
    }

    /// Restores [`TieringPolicy::snapshot_state`] output onto a policy
    /// built with the same configuration. The default accepts only
    /// [`Json::Null`]: restoring a stateful snapshot onto a stateless
    /// policy is a configuration mismatch, not data to ignore.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on state the policy cannot absorb.
    fn restore_state(&mut self, state: &Json) -> Result<()> {
        match state {
            Json::Null => Ok(()),
            _ => Err(Error::snapshot(format!(
                "policy {} carries no restorable state, but the snapshot has some",
                self.name()
            ))),
        }
    }
}

/// Which victims feed the demotion path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DemotionStrategy {
    /// LRU-2Q cold-page detection (the paper's design, Fig. 5 ❻).
    #[default]
    Lru2Q,
    /// Recency-blind victim selection — the ablation showing why cold
    /// detection matters (DESIGN.md decision #5).
    Arbitrary,
}

/// Keeps a headroom of free fast-tier frames by demoting LRU-cold pages.
/// Returns the time charged. Shared by every promoting policy — Linux
/// reclaim does the same through the demotion path.
pub(crate) fn ensure_fast_headroom(kernel: &mut Kernel, frac: f64, now: Nanos) -> Nanos {
    ensure_fast_headroom_with(kernel, frac, now, DemotionStrategy::Lru2Q)
}

/// [`ensure_fast_headroom`] with an explicit victim-selection strategy.
pub(crate) fn ensure_fast_headroom_with(
    kernel: &mut Kernel,
    frac: f64,
    now: Nanos,
    strategy: DemotionStrategy,
) -> Nanos {
    let alloc = kernel.memory().allocator(Tier::Fast);
    // Headroom targets the *usable* window so a capacity-loss fault
    // shrinks the goal instead of demoting the whole tier chasing
    // frames that no longer exist. Identical to capacity() when healthy.
    let want = ((alloc.usable_capacity() as f64 * frac) as u64).max(1);
    let free = alloc.free_frames();
    if free >= want {
        return Nanos::ZERO;
    }
    let n = (want - free) as usize;
    let (_, t) = match strategy {
        DemotionStrategy::Lru2Q => kernel.demote_coldest(n, now),
        DemotionStrategy::Arbitrary => kernel.demote_arbitrary(n, now),
    };
    t
}

/// The solutions compared in Fig. 11, plus auxiliary baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// The paper's solution.
    NeoMem,
    /// NeoMem hardware with a fixed threshold (Fig. 14a ablation).
    NeoMemFixed(u16),
    /// NeoMem with contention-aware promotion throttling: aggressors —
    /// tenants whose slices evict co-runners' fast-tier pages — pay a
    /// quota penalty proportional to the cross-tenant-eviction signal.
    /// Only meaningful on co-run machines; single-tenant behaviour is
    /// identical to [`PolicyKind::NeoMem`].
    NeoMemContentionAware,
    /// PMU-sampling baseline.
    Pebs,
    /// Memtis (Fig. 17).
    Memtis,
    /// PTE-scan baseline.
    PteScan,
    /// AutoNUMA (Linux 6.3).
    AutoNuma,
    /// TPP.
    Tpp,
    /// First-touch NUMA (no migration).
    FirstTouch,
    /// All pages forced to the fast tier (Fig. 3 characterisation).
    PinnedFast,
    /// All pages forced to the slow tier (Fig. 3 characterisation).
    PinnedSlow,
}

impl PolicyKind {
    /// The figure label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::NeoMem => "NeoMem",
            PolicyKind::NeoMemFixed(_) => "NeoMem-fixed",
            PolicyKind::NeoMemContentionAware => "NeoMem-CA",
            PolicyKind::Pebs => "PEBS",
            PolicyKind::Memtis => "Memtis",
            PolicyKind::PteScan => "PTE-Scan",
            PolicyKind::AutoNuma => "AutoNUMA",
            PolicyKind::Tpp => "TPP",
            PolicyKind::FirstTouch => "First-touch NUMA",
            PolicyKind::PinnedFast => "Local-only",
            PolicyKind::PinnedSlow => "CXL-only",
        }
    }

    /// The six solutions of Fig. 11, in the paper's legend order.
    pub const FIG11: [PolicyKind; 6] = [
        PolicyKind::NeoMem,
        PolicyKind::Pebs,
        PolicyKind::PteScan,
        PolicyKind::AutoNuma,
        PolicyKind::Tpp,
        PolicyKind::FirstTouch,
    ];
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neomem_kernel::KernelConfig;

    #[test]
    fn headroom_demotes_cold_pages() {
        let mut k = Kernel::new(KernelConfig::with_frames(4, 8));
        for p in 0..4 {
            k.touch_alloc(VirtPage::new(p), Nanos::ZERO).unwrap();
        }
        assert_eq!(k.memory().allocator(Tier::Fast).free_frames(), 0);
        let t = ensure_fast_headroom(&mut k, 0.5, Nanos::ZERO);
        assert!(t > Nanos::ZERO);
        assert!(k.memory().allocator(Tier::Fast).free_frames() >= 2);
    }

    #[test]
    fn headroom_noop_when_free() {
        let mut k = Kernel::new(KernelConfig::with_frames(4, 8));
        k.touch_alloc(VirtPage::new(0), Nanos::ZERO).unwrap();
        assert_eq!(ensure_fast_headroom(&mut k, 0.25, Nanos::ZERO), Nanos::ZERO);
    }

    #[test]
    fn labels_and_fig11_roster() {
        assert_eq!(PolicyKind::FIG11.len(), 6);
        assert_eq!(PolicyKind::NeoMem.label(), "NeoMem");
        assert_eq!(PolicyKind::FirstTouch.to_string(), "First-touch NUMA");
    }
}
