//! Enum-interned policy dispatch.
//!
//! The engine's hot loop calls [`TieringPolicy::on_access`] once or
//! twice per simulated access. Routing those calls through a
//! `Box<dyn TieringPolicy>` costs an indirect call that the optimiser
//! can neither inline nor hoist; [`PolicyBox`] interns the workspace's
//! concrete policies into enum variants resolved once at machine build
//! time, so the per-access dispatch is a jump table over code the
//! compiler can see through. Out-of-tree policies still run — they ride
//! in the [`PolicyBox::Custom`] variant at the old virtual-call cost.
//!
//! `PolicyBox` also answers the staging question the batch pipeline
//! asks: [`PolicyBox::max_access_charge`] returns a bound on the time
//! `on_access` can charge when the policy is *stageable* — its
//! per-access hook never mutates mappings, caches or the TLB — and
//! `None` when the engine must fall back to strictly serial stepping.

use neomem_kernel::Kernel;
use neomem_profilers::AccessEvent;
use neomem_types::json::Json;
use neomem_types::{FaultKind, Nanos, Result, Tier, VirtPage};

use crate::{
    FirstTouchPolicy, HintFaultPolicy, MemtisPolicy, NeoMemPolicy, PebsPolicy, PolicyTelemetry,
    PteScanPolicy, TenantLayout, TieringPolicy,
};

/// A tiering policy with build-time-resolved dispatch.
///
/// Constructed via `From` on any concrete policy (or a boxed trait
/// object for out-of-tree implementations), and used exactly like the
/// trait object it replaces — `PolicyBox` itself implements
/// [`TieringPolicy`] by delegation.
pub enum PolicyBox {
    /// [`NeoMemPolicy`] (dynamic or fixed threshold, contention-aware).
    NeoMem(Box<NeoMemPolicy>),
    /// [`PebsPolicy`].
    Pebs(Box<PebsPolicy>),
    /// [`MemtisPolicy`].
    Memtis(Box<MemtisPolicy>),
    /// [`HintFaultPolicy`] (TPP / AutoNUMA).
    HintFault(Box<HintFaultPolicy>),
    /// [`PteScanPolicy`].
    PteScan(Box<PteScanPolicy>),
    /// [`FirstTouchPolicy`] (plain or pinned).
    FirstTouch(FirstTouchPolicy),
    /// Any other [`TieringPolicy`] implementation, dispatched virtually.
    Custom(Box<dyn TieringPolicy>),
}

impl std::fmt::Debug for PolicyBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyBox").field("name", &self.name()).finish()
    }
}

/// Fans a `&self`/`&mut self` method call out to whichever variant is
/// live. Every arm is a direct (devirtualisable) call except `Custom`.
macro_rules! each_policy {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            PolicyBox::NeoMem($p) => $body,
            PolicyBox::Pebs($p) => $body,
            PolicyBox::Memtis($p) => $body,
            PolicyBox::HintFault($p) => $body,
            PolicyBox::PteScan($p) => $body,
            PolicyBox::FirstTouch($p) => $body,
            PolicyBox::Custom($p) => $body,
        }
    };
}

impl PolicyBox {
    /// Upper bound on what one [`TieringPolicy::on_access`] call can
    /// charge, for policies whose per-access hook is *stageable*: it
    /// may mutate only policy-private state (samplers, sketches, the
    /// LRU recency lists), never the page table, frame assignments,
    /// caches or TLB, and its charge bound and
    /// [`TieringPolicy::alloc_preference`] never change between ticks.
    /// Returns `None` for policies that migrate pages inside the access
    /// hook (hint-fault promotion) and for [`PolicyBox::Custom`], whose
    /// body the engine cannot audit — those run strictly serially.
    pub fn max_access_charge(&self) -> Option<Nanos> {
        match self {
            // NeoProf snooping and LRU aging charge no CPU time inline.
            PolicyBox::NeoMem(_) => Some(Nanos::ZERO),
            PolicyBox::Pebs(p) => Some(p.max_access_charge()),
            PolicyBox::Memtis(p) => Some(p.max_access_charge()),
            // Hint faults promote pages from inside on_access.
            PolicyBox::HintFault(_) => None,
            // Scanning happens at ticks; accesses only age the LRU.
            PolicyBox::PteScan(_) => Some(Nanos::ZERO),
            PolicyBox::FirstTouch(_) => Some(Nanos::ZERO),
            PolicyBox::Custom(_) => None,
        }
    }

    /// Whether `on_access` is a complete no-op (no charge, no state),
    /// letting the staged pipeline skip the call entirely.
    pub fn access_is_noop(&self) -> bool {
        matches!(self, PolicyBox::FirstTouch(_))
    }

    /// Chunked access hook: equivalent to calling
    /// [`TieringPolicy::on_access`] once per event in order, but with a
    /// single dispatch per chunk so each variant's body runs as a tight
    /// direct-call loop (or a genuinely batched kernel, for NeoMem).
    ///
    /// Contract: appends exactly `events.len()` charges to `charges` in
    /// event order — unless `max_access_charge() == Some(Nanos::ZERO)`,
    /// in which case the charges are provably all zero and the policy
    /// may skip pushing them entirely. Callers staging on a zero bound
    /// must therefore not read `charges` back.
    pub fn on_access_chunk(
        &mut self,
        events: &[AccessEvent],
        kernel: &mut Kernel,
        charges: &mut Vec<Nanos>,
    ) {
        match self {
            // Batched kernel: slow-tier snoops collect and hit the
            // NeoProf device in one pass; charges are uniformly zero.
            PolicyBox::NeoMem(p) => p.on_access_chunk(events, kernel),
            // Zero-charge policies: direct-call loop, charges elided.
            PolicyBox::PteScan(p) => {
                for ev in events {
                    let _ = p.on_access(ev, kernel);
                }
            }
            PolicyBox::FirstTouch(_) => {}
            // Charged (or unaudited) policies: per-event charges are
            // observable, so record each one.
            _ => each_policy!(self, p => {
                for ev in events {
                    charges.push(p.on_access(ev, kernel));
                }
            }),
        }
    }
}

impl TieringPolicy for PolicyBox {
    fn name(&self) -> &'static str {
        each_policy!(self, p => p.name())
    }

    fn alloc_preference(&self) -> Tier {
        each_policy!(self, p => p.alloc_preference())
    }

    #[inline]
    fn on_access(&mut self, ev: &AccessEvent, kernel: &mut Kernel) -> Nanos {
        each_policy!(self, p => p.on_access(ev, kernel))
    }

    fn maybe_tick(&mut self, kernel: &mut Kernel, now: Nanos) -> Nanos {
        each_policy!(self, p => p.maybe_tick(kernel, now))
    }

    fn drain_shootdowns_into(&mut self, out: &mut Vec<VirtPage>) {
        each_policy!(self, p => p.drain_shootdowns_into(out))
    }

    fn telemetry(&self) -> PolicyTelemetry {
        each_policy!(self, p => p.telemetry())
    }

    fn configure_tenants(&mut self, layout: &TenantLayout) {
        each_policy!(self, p => p.configure_tenants(layout))
    }

    fn on_tenant_arrival(&mut self, tenant: usize) {
        each_policy!(self, p => p.on_tenant_arrival(tenant))
    }

    fn on_tenant_departure(&mut self, tenant: usize) {
        each_policy!(self, p => p.on_tenant_departure(tenant))
    }

    fn note_cross_tenant_evictions(&mut self, aggressor: usize, pages: u64) {
        each_policy!(self, p => p.note_cross_tenant_evictions(aggressor, pages))
    }

    fn on_fault(&mut self, fault: &FaultKind, kernel: &mut Kernel, now: Nanos) -> Nanos {
        each_policy!(self, p => p.on_fault(fault, kernel, now))
    }

    fn on_recovery(&mut self, fault: &FaultKind, kernel: &mut Kernel, now: Nanos) -> Nanos {
        each_policy!(self, p => p.on_recovery(fault, kernel, now))
    }

    fn snapshot_state(&self) -> Json {
        each_policy!(self, p => p.snapshot_state())
    }

    fn restore_state(&mut self, state: &Json) -> Result<()> {
        each_policy!(self, p => p.restore_state(state))
    }
}

impl From<NeoMemPolicy> for PolicyBox {
    fn from(p: NeoMemPolicy) -> Self {
        PolicyBox::NeoMem(Box::new(p))
    }
}

impl From<PebsPolicy> for PolicyBox {
    fn from(p: PebsPolicy) -> Self {
        PolicyBox::Pebs(Box::new(p))
    }
}

impl From<MemtisPolicy> for PolicyBox {
    fn from(p: MemtisPolicy) -> Self {
        PolicyBox::Memtis(Box::new(p))
    }
}

impl From<HintFaultPolicy> for PolicyBox {
    fn from(p: HintFaultPolicy) -> Self {
        PolicyBox::HintFault(Box::new(p))
    }
}

impl From<PteScanPolicy> for PolicyBox {
    fn from(p: PteScanPolicy) -> Self {
        PolicyBox::PteScan(Box::new(p))
    }
}

impl From<FirstTouchPolicy> for PolicyBox {
    fn from(p: FirstTouchPolicy) -> Self {
        PolicyBox::FirstTouch(p)
    }
}

impl From<Box<NeoMemPolicy>> for PolicyBox {
    fn from(p: Box<NeoMemPolicy>) -> Self {
        PolicyBox::NeoMem(p)
    }
}

impl From<Box<PebsPolicy>> for PolicyBox {
    fn from(p: Box<PebsPolicy>) -> Self {
        PolicyBox::Pebs(p)
    }
}

impl From<Box<MemtisPolicy>> for PolicyBox {
    fn from(p: Box<MemtisPolicy>) -> Self {
        PolicyBox::Memtis(p)
    }
}

impl From<Box<HintFaultPolicy>> for PolicyBox {
    fn from(p: Box<HintFaultPolicy>) -> Self {
        PolicyBox::HintFault(p)
    }
}

impl From<Box<PteScanPolicy>> for PolicyBox {
    fn from(p: Box<PteScanPolicy>) -> Self {
        PolicyBox::PteScan(p)
    }
}

impl From<Box<FirstTouchPolicy>> for PolicyBox {
    fn from(p: Box<FirstTouchPolicy>) -> Self {
        PolicyBox::FirstTouch(*p)
    }
}

impl From<Box<dyn TieringPolicy>> for PolicyBox {
    fn from(p: Box<dyn TieringPolicy>) -> Self {
        PolicyBox::Custom(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_policies_intern_without_boxing_ceremony() {
        let b: PolicyBox = FirstTouchPolicy::new().into();
        assert!(matches!(b, PolicyBox::FirstTouch(_)));
        assert_eq!(b.name(), "First-touch NUMA");
        assert!(b.access_is_noop());
        assert_eq!(b.max_access_charge(), Some(Nanos::ZERO));

        let b: PolicyBox = Box::new(FirstTouchPolicy::pinned(Tier::Slow)).into();
        assert!(matches!(b, PolicyBox::FirstTouch(_)));
        assert_eq!(b.alloc_preference(), Tier::Slow);
    }

    #[test]
    fn trait_objects_fall_back_to_virtual_dispatch() {
        let obj: Box<dyn TieringPolicy> = Box::new(FirstTouchPolicy::new());
        let b: PolicyBox = obj.into();
        assert!(matches!(b, PolicyBox::Custom(_)));
        assert_eq!(b.name(), "First-touch NUMA");
        assert_eq!(b.max_access_charge(), None, "custom bodies cannot be audited");
        assert!(!b.access_is_noop());
    }
}
