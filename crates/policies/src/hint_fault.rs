//! Hint-fault policies: TPP and AutoNUMA (paper §VI-A baselines).
//!
//! Both poison sampled slow-tier PTEs and promote in the fault handler —
//! TPP "promotes pages only after two consecutive hint-faults" (Fig. 13
//! discussion), AutoNUMA blends the same mechanism with a slower scan
//! cadence and its own threshold. The policy charges the full fault cost
//! (TLB shootdown + protection fault) inline on the access path, which
//! is exactly the overhead the paper criticises.

use neomem_kernel::Kernel;
use neomem_profilers::{AccessEvent, HintFaultConfig, HintFaultSampler};
use neomem_types::json::{hex_from_u64s, Json};
use neomem_types::{Bandwidth, Bytes, Nanos, Result, VirtPage, PAGE_SIZE};

use crate::quota::QuotaMeter;
use crate::{ensure_fast_headroom, PolicyTelemetry, TieringPolicy};

/// Which hint-fault solution to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HintFaultStyle {
    /// Transparent Page Placement (Maruf et al., ASPLOS'23).
    Tpp,
    /// Linux 6.3 AutoNUMA balancing.
    AutoNuma,
}

/// Policy configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HintFaultPolicyConfig {
    /// Style (naming + defaults).
    pub style: HintFaultStyle,
    /// Sampler settings.
    pub sampler: HintFaultConfig,
    /// Poison-pass cadence (Table V: 1–3 s).
    pub scan_interval: Nanos,
    /// Fault-count reset cadence.
    pub clear_interval: Nanos,
    /// Fast-tier headroom fraction.
    pub headroom_frac: f64,
    /// Transparent Huge Page mode (Table VI): promote whole 2 MiB
    /// regions once enough individually-hot base pages accumulate.
    pub thp: bool,
}

impl HintFaultPolicyConfig {
    /// TPP defaults: 1 s scans, aggressive batches.
    pub fn tpp() -> Self {
        Self {
            style: HintFaultStyle::Tpp,
            sampler: HintFaultConfig::tpp(),
            scan_interval: Nanos::from_secs(1),
            clear_interval: Nanos::from_secs(5),
            headroom_frac: 0.02,
            thp: false,
        }
    }

    /// AutoNUMA defaults: 3 s scans, smaller batches.
    pub fn autonuma() -> Self {
        Self {
            style: HintFaultStyle::AutoNuma,
            sampler: HintFaultConfig::autonuma(),
            scan_interval: Nanos::from_secs(3),
            clear_interval: Nanos::from_secs(6),
            headroom_frac: 0.02,
            thp: false,
        }
    }

    /// Cadences divided by `factor` for scaled simulations. The poison
    /// batch shrinks proportionally so the hint-fault rate per unit of
    /// simulated time (and hence the relative fault overhead) matches
    /// the unscaled system.
    pub fn scaled(self, factor: u64) -> Self {
        let batch = ((self.sampler.poison_batch as u64 * 16 / factor.max(1)) as usize).max(8);
        Self {
            scan_interval: (self.scan_interval / factor).max(Nanos::from_millis(1)),
            clear_interval: (self.clear_interval / factor).max(Nanos::from_millis(2)),
            sampler: neomem_profilers::HintFaultConfig { poison_batch: batch, ..self.sampler },
            ..self
        }
    }
}

/// The TPP / AutoNUMA policy engine.
#[derive(Debug)]
pub struct HintFaultPolicy {
    config: HintFaultPolicyConfig,
    sampler: HintFaultSampler,
    quota: QuotaMeter,
    started: bool,
    next_scan: Nanos,
    next_clear: Nanos,
    pending_shootdowns: Vec<VirtPage>,
    overhead: Nanos,
    huge_map: neomem_kernel::HugePageMap,
    promoted_huge_bytes: u64,
}

impl HintFaultPolicy {
    /// Creates the policy.
    pub fn new(config: HintFaultPolicyConfig, mquota: Bandwidth) -> Self {
        Self {
            config,
            sampler: HintFaultSampler::new(config.sampler),
            quota: QuotaMeter::new(mquota),
            started: false,
            next_scan: Nanos::ZERO,
            next_clear: Nanos::ZERO,
            pending_shootdowns: Vec::new(),
            overhead: Nanos::ZERO,
            huge_map: neomem_kernel::HugePageMap::new(3),
            promoted_huge_bytes: 0,
        }
    }

    /// Bytes promoted through whole-huge-page migrations (Table VI).
    pub fn promoted_huge_bytes(&self) -> neomem_types::Bytes {
        neomem_types::Bytes::new(self.promoted_huge_bytes)
    }

    /// Promotes every slow-tier base page of one 2 MiB region.
    fn promote_huge_region(
        &mut self,
        region: VirtPage,
        kernel: &mut Kernel,
        now: Nanos,
    ) -> Nanos {
        let huge_bytes = neomem_kernel::PAGES_PER_HUGE * PAGE_SIZE;
        if !self.quota.try_consume(Bytes::new(huge_bytes), now) {
            return Nanos::ZERO;
        }
        let mut cost = kernel.costs().huge_page_overhead;
        let mut moved = 0u64;
        for vpage in neomem_kernel::HugePageMap::region_pages(region) {
            if kernel.tier_of(vpage).map(|t| t.is_slow()).unwrap_or(false) {
                if let Ok(t) = kernel.promote(vpage, now + cost) {
                    cost += t.saturating_sub(kernel.costs().per_page_overhead);
                    moved += 1;
                }
            }
        }
        self.promoted_huge_bytes += moved * PAGE_SIZE;
        cost
    }

    /// Total hint faults serviced.
    pub fn faults(&self) -> u64 {
        self.sampler.faults()
    }
}

impl TieringPolicy for HintFaultPolicy {
    fn name(&self) -> &'static str {
        match self.config.style {
            HintFaultStyle::Tpp => "TPP",
            HintFaultStyle::AutoNuma => "AutoNUMA",
        }
    }

    fn on_access(&mut self, ev: &AccessEvent, kernel: &mut Kernel) -> Nanos {
        if ev.llc_miss && ev.tier.is_fast() {
            kernel.record_fast_access(ev.vpage);
        }
        // Hint faults surface on the page walk after a shootdown, i.e.
        // on a TLB miss to a poisoned PTE.
        if ev.tlb_hit {
            return Nanos::ZERO;
        }
        let Ok(pte) = kernel.page_table().get(ev.vpage) else {
            return Nanos::ZERO;
        };
        if !pte.poisoned {
            return Nanos::ZERO;
        }
        let mut cost = kernel.service_hint_fault(ev.vpage).unwrap_or(Nanos::ZERO);
        if let Some(candidate) = self.sampler.on_fault(ev.vpage) {
            if self.config.thp {
                if let Some(region) = self.huge_map.record_hot(candidate) {
                    cost += ensure_fast_headroom(kernel, self.config.headroom_frac, ev.now);
                    cost += self.promote_huge_region(region, kernel, ev.now);
                }
            } else if kernel.tier_of(candidate).map(|t| t.is_slow()).unwrap_or(false)
                && self.quota.try_consume(Bytes::new(PAGE_SIZE), ev.now)
            {
                // Promote in the fault handler (NUMA-balancing style),
                // if quota and space allow.
                cost += ensure_fast_headroom(kernel, self.config.headroom_frac, ev.now);
                if let Ok(t) = kernel.promote(candidate, ev.now) {
                    cost += t;
                }
            }
        }
        self.overhead += cost;
        cost
    }

    fn maybe_tick(&mut self, kernel: &mut Kernel, now: Nanos) -> Nanos {
        if !self.started {
            self.started = true;
            self.next_scan = now; // first poison pass immediately
            self.next_clear = now + self.config.clear_interval;
        }
        let mut cost = Nanos::ZERO;
        if now >= self.next_scan {
            let out = self.sampler.poison_pass(kernel);
            self.pending_shootdowns.extend(out.poisoned);
            cost += out.overhead;
            cost += ensure_fast_headroom(kernel, self.config.headroom_frac, now);
            self.next_scan = now + self.config.scan_interval;
        }
        if now >= self.next_clear {
            self.sampler.clear();
            self.huge_map.clear();
            self.next_clear = now + self.config.clear_interval;
        }
        self.overhead += cost;
        cost
    }

    fn drain_shootdowns_into(&mut self, out: &mut Vec<VirtPage>) {
        out.append(&mut self.pending_shootdowns);
    }

    fn telemetry(&self) -> PolicyTelemetry {
        PolicyTelemetry {
            profiling_overhead: self.overhead,
            promoted_huge_bytes: neomem_types::Bytes::new(self.promoted_huge_bytes),
            ..Default::default()
        }
    }

    fn snapshot_state(&self) -> Json {
        let pending: Vec<u64> = self.pending_shootdowns.iter().map(|p| p.index()).collect();
        Json::obj([
            ("sampler", self.sampler.snapshot()),
            ("quota", self.quota.snapshot()),
            ("started", Json::Bool(self.started)),
            ("next_scan", Json::U64(self.next_scan.as_nanos())),
            ("next_clear", Json::U64(self.next_clear.as_nanos())),
            ("pending_shootdowns", Json::Str(hex_from_u64s(&pending))),
            ("overhead", Json::U64(self.overhead.as_nanos())),
            ("huge_map", self.huge_map.snapshot()),
            ("promoted_huge_bytes", Json::U64(self.promoted_huge_bytes)),
        ])
    }

    fn restore_state(&mut self, state: &Json) -> Result<()> {
        self.sampler.restore(state.req("sampler")?)?;
        self.quota.restore(state.req("quota")?)?;
        self.huge_map.restore(state.req("huge_map")?)?;
        self.pending_shootdowns =
            state.req_u64s("pending_shootdowns")?.into_iter().map(VirtPage::new).collect();
        self.started = state.req_bool("started")?;
        self.next_scan = Nanos::new(state.req_u64("next_scan")?);
        self.next_clear = Nanos::new(state.req_u64("next_clear")?);
        self.overhead = Nanos::new(state.req_u64("overhead")?);
        self.promoted_huge_bytes = state.req_u64("promoted_huge_bytes")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neomem_kernel::KernelConfig;
    use neomem_types::AccessKind;

    fn kernel() -> Kernel {
        let mut k = Kernel::new(KernelConfig::with_frames(8, 32));
        for p in 0..24 {
            k.touch_alloc(VirtPage::new(p), Nanos::ZERO).unwrap();
        }
        k
    }

    fn walk_miss(k: &Kernel, vpage: u64, now: Nanos) -> AccessEvent {
        let frame = k.translate(VirtPage::new(vpage)).unwrap();
        AccessEvent {
            vpage: VirtPage::new(vpage),
            frame,
            tier: k.memory().tier_of(frame),
            kind: AccessKind::Read,
            tlb_hit: false,
            llc_miss: true,
            now,
        }
    }

    fn policy(cfg: HintFaultPolicyConfig) -> HintFaultPolicy {
        HintFaultPolicy::new(cfg, Bandwidth::from_mib_per_sec(256))
    }

    fn drain(p: &mut HintFaultPolicy) -> Vec<VirtPage> {
        let mut out = Vec::new();
        p.drain_shootdowns_into(&mut out);
        out
    }

    #[test]
    fn two_faults_promote_under_tpp() {
        let mut k = kernel();
        let mut cfg = HintFaultPolicyConfig::tpp().scaled(1000);
        cfg.sampler.poison_batch = 64; // cover all 16 slow pages
        let mut p = policy(cfg);
        p.maybe_tick(&mut k, Nanos::ZERO); // poison pass
        let shoots = drain(&mut p);
        assert!(!shoots.is_empty());
        // Fault page 20 twice: each fault unpoisons, so re-poison
        // between faults via another pass.
        let target = VirtPage::new(20);
        assert!(shoots.contains(&target), "batch 64 must poison all slow pages");
        let c1 = p.on_access(&walk_miss(&k, 20, Nanos::new(100)), &mut k);
        assert!(c1 > Nanos::ZERO, "first fault charged");
        assert!(k.tier_of(target).unwrap().is_slow(), "one fault is not enough");
        // Re-poison after the scan interval but before the clear interval
        // would wipe the fault counts (scaled: scan 1 ms, clear 5 ms).
        p.maybe_tick(&mut k, Nanos::from_millis(2));
        drain(&mut p);
        let c2 = p.on_access(&walk_miss(&k, 20, Nanos::from_micros(2100)), &mut k);
        assert!(c2 > c1, "second fault includes promotion work");
        assert!(k.tier_of(target).unwrap().is_fast(), "two faults promote");
    }

    #[test]
    fn unpoisoned_access_is_free() {
        let mut k = kernel();
        let mut p = policy(HintFaultPolicyConfig::tpp().scaled(1000));
        // No poison pass yet: no faults.
        let c = p.on_access(&walk_miss(&k, 20, Nanos::ZERO), &mut k);
        assert_eq!(c, Nanos::ZERO);
        assert_eq!(p.faults(), 0);
    }

    #[test]
    fn tlb_hit_never_faults() {
        let mut k = kernel();
        let mut p = policy(HintFaultPolicyConfig::tpp().scaled(1000));
        p.maybe_tick(&mut k, Nanos::ZERO);
        drain(&mut p);
        let mut ev = walk_miss(&k, 20, Nanos::ZERO);
        ev.tlb_hit = true;
        assert_eq!(p.on_access(&ev, &mut k), Nanos::ZERO);
    }

    #[test]
    fn autonuma_label_and_cadence() {
        let cfg = HintFaultPolicyConfig::autonuma();
        assert_eq!(policy(cfg).name(), "AutoNUMA");
        assert!(cfg.scan_interval > HintFaultPolicyConfig::tpp().scan_interval);
    }

    #[test]
    fn overhead_accumulates_in_telemetry() {
        let mut k = kernel();
        let mut p = policy(HintFaultPolicyConfig::tpp().scaled(1000));
        p.maybe_tick(&mut k, Nanos::ZERO);
        drain(&mut p);
        p.on_access(&walk_miss(&k, 21, Nanos::new(5)), &mut k);
        assert!(p.telemetry().profiling_overhead > Nanos::ZERO);
    }
}
