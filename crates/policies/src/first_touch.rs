//! First-touch NUMA and the pinned-tier baselines.

use neomem_kernel::Kernel;
use neomem_profilers::AccessEvent;
use neomem_types::{Nanos, Tier};

use crate::{PolicyTelemetry, TieringPolicy};

/// Allocation-only placement: pages stay where first-touch put them.
///
/// * [`FirstTouchPolicy::new`] — the Fig. 11 "First-touch NUMA"
///   baseline: fill the fast tier, spill to CXL, never migrate.
/// * [`FirstTouchPolicy::pinned`] — force every allocation to one tier,
///   used by the Fig. 3 latency/slowdown characterisation.
#[derive(Debug, Clone)]
pub struct FirstTouchPolicy {
    preference: Tier,
    pinned: bool,
}

impl FirstTouchPolicy {
    /// Standard first-touch: prefer fast, spill to slow, no migration.
    pub fn new() -> Self {
        Self { preference: Tier::Fast, pinned: false }
    }

    /// Pin all allocations to `tier` (Fig. 3b's "CXL-only" /
    /// "Local-only" runs).
    pub fn pinned(tier: Tier) -> Self {
        Self { preference: tier, pinned: true }
    }
}

impl Default for FirstTouchPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl TieringPolicy for FirstTouchPolicy {
    fn name(&self) -> &'static str {
        match (self.pinned, self.preference) {
            (false, _) => "First-touch NUMA",
            (true, Tier::Fast) => "Local-only",
            (true, Tier::Slow) => "CXL-only",
        }
    }

    fn alloc_preference(&self) -> Tier {
        self.preference
    }

    fn on_access(&mut self, _ev: &AccessEvent, _kernel: &mut Kernel) -> Nanos {
        Nanos::ZERO
    }

    fn maybe_tick(&mut self, _kernel: &mut Kernel, _now: Nanos) -> Nanos {
        Nanos::ZERO
    }

    fn telemetry(&self) -> PolicyTelemetry {
        PolicyTelemetry::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neomem_kernel::KernelConfig;
    use neomem_types::{AccessKind, PageNum, VirtPage};

    #[test]
    fn names_reflect_variants() {
        assert_eq!(FirstTouchPolicy::new().name(), "First-touch NUMA");
        assert_eq!(FirstTouchPolicy::pinned(Tier::Fast).name(), "Local-only");
        assert_eq!(FirstTouchPolicy::pinned(Tier::Slow).name(), "CXL-only");
    }

    #[test]
    fn never_migrates() {
        let mut k = Kernel::new(KernelConfig::with_frames(2, 8));
        for p in 0..6 {
            k.touch_alloc(VirtPage::new(p), Nanos::ZERO).unwrap();
        }
        let mut policy = FirstTouchPolicy::new();
        let ev = AccessEvent {
            vpage: VirtPage::new(5),
            frame: PageNum::new(0),
            tier: Tier::Slow,
            kind: AccessKind::Read,
            tlb_hit: true,
            llc_miss: true,
            now: Nanos::ZERO,
        };
        for _ in 0..100 {
            assert_eq!(policy.on_access(&ev, &mut k), Nanos::ZERO);
        }
        assert_eq!(policy.maybe_tick(&mut k, Nanos::from_secs(10)), Nanos::ZERO);
        assert_eq!(k.stats().promotions, 0);
        assert_eq!(k.stats().demotions, 0);
    }

    #[test]
    fn alloc_preference_reflects_pin() {
        assert_eq!(FirstTouchPolicy::new().alloc_preference(), Tier::Fast);
        assert_eq!(FirstTouchPolicy::pinned(Tier::Slow).alloc_preference(), Tier::Slow);
    }
}
