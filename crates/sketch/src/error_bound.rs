//! Tight error-bound estimation for the Count-Min sketch.
//!
//! Equation 3's classical bound `â(P) ≤ a(P) + εN` is "overly loose" in
//! practice (paper §IV-B citing Chen et al.). The tight bound `e` is the
//! `(W · δ^{1/D})`-th largest counter of any sketch row: with probability
//! `1 − δ`, `â(P) ≤ a(P) + e`. For the prototype's `D = 2`, `δ = 0.25`,
//! this is simply the row median.
//!
//! Two implementations are provided:
//!
//! * [`exact`] — sort the row and pick the rank (what a naive host driver
//!   would do after streaming out the whole row);
//! * [`from_histogram`] — the hardware path: read the 64-bin histogram
//!   and locate the rank by accumulating bins from the top. Accurate to
//!   one bin; property-tested against [`exact`].

use crate::histogram::CounterHistogram;

/// Computes the descending rank `⌈W · δ^{1/D}⌉` used by the tight bound.
///
/// # Panics
///
/// Panics if `delta` is not in `(0, 1)` or `depth == 0`.
pub fn rank_for(width: usize, delta: f64, depth: usize) -> usize {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    assert!(depth > 0, "depth must be positive");
    let frac = delta.powf(1.0 / depth as f64);
    ((width as f64 * frac).ceil() as usize).clamp(1, width)
}

/// Exact tight error bound: the `rank_for`-th largest counter of the row.
///
/// Returns 0 for an empty row.
pub fn exact<I: IntoIterator<Item = u16>>(row: I, delta: f64, depth: usize) -> u16 {
    let mut counters: Vec<u16> = row.into_iter().collect();
    if counters.is_empty() {
        return 0;
    }
    let rank = rank_for(counters.len(), delta, depth);
    // Select the rank-th largest (1-based): descending sort, index rank-1.
    counters.sort_unstable_by(|a, b| b.cmp(a));
    counters[rank - 1]
}

/// Histogram-approximated tight error bound (the hardware path).
///
/// Accumulates bins from the highest value downward until the cumulative
/// count reaches the rank; returns that bin's lower edge (a conservative
/// *under*-approximation by at most one bin width, so saturation is never
/// reported spuriously).
///
/// Returns 0 for an empty histogram.
pub fn from_histogram(hist: &CounterHistogram, delta: f64, depth: usize) -> u16 {
    let total = hist.total();
    if total == 0 {
        return 0;
    }
    let rank = rank_for(total as usize, delta, depth) as u64;
    let mut cum = 0u64;
    for bin in (0..hist.bins().len()).rev() {
        cum += hist.bins()[bin];
        if cum >= rank {
            return hist.spec().lower_edge(bin).min(u16::MAX as u32) as u16;
        }
    }
    0
}

/// Whether the sketch should be considered saturated: the error bound
/// rivals or exceeds the detection threshold, so "hot" classifications
/// are unreliable (Algorithm 1 line 14 halves `p` in response).
pub fn is_saturated(error_bound: u16, threshold: u16) -> bool {
    error_bound >= threshold.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_median_for_paper_params() {
        // D=2, δ=0.25 → δ^(1/2)=0.5 → the row median.
        assert_eq!(rank_for(512 * 1024, 0.25, 2), 256 * 1024);
        assert_eq!(rank_for(100, 0.25, 2), 50);
    }

    #[test]
    fn exact_on_known_row() {
        // Row: [9, 7, 5, 3, 1]; δ=0.25, D=2 → rank ⌈5·0.5⌉=3 → 3rd largest = 5.
        assert_eq!(exact([1u16, 3, 5, 7, 9], 0.25, 2), 5);
    }

    #[test]
    fn exact_empty_row_is_zero() {
        assert_eq!(exact(Vec::<u16>::new(), 0.25, 2), 0);
    }

    #[test]
    fn exact_all_zero_row() {
        assert_eq!(exact(vec![0u16; 128], 0.25, 2), 0);
    }

    #[test]
    fn histogram_matches_exact_within_bin() {
        let row: Vec<u16> = (0..4096u32).map(|i| ((i * i) % 997) as u16).collect();
        let hist = CounterHistogram::from_counters(row.iter().copied());
        let e_exact = exact(row, 0.25, 2);
        let e_hist = from_histogram(&hist, 0.25, 2);
        // Histogram path returns the lower edge of the bin holding the
        // exact answer: never above, within ~19% below (geometric bins).
        assert!(e_hist <= e_exact, "hist {e_hist} must not exceed exact {e_exact}");
        let bin_exact = hist.spec().bin_of(e_exact);
        let bin_hist = hist.spec().bin_of(e_hist);
        assert!(bin_exact.saturating_sub(bin_hist) <= 1, "off by more than one bin");
    }

    #[test]
    fn saturation_predicate() {
        assert!(is_saturated(10, 10));
        assert!(is_saturated(11, 10));
        assert!(!is_saturated(9, 10));
        // θ=0 treated as 1 so an all-zero sketch is not "saturated".
        assert!(!is_saturated(0, 0));
        assert!(is_saturated(1, 0));
    }

    #[test]
    fn lightly_loaded_sketch_has_zero_bound() {
        // 10 non-zero counters in a row of 1024: the median is 0.
        let mut row = vec![0u16; 1024];
        for (i, slot) in row.iter_mut().enumerate().take(10) {
            *slot = (i + 1) as u16;
        }
        assert_eq!(exact(row.iter().copied(), 0.25, 2), 0);
        let hist = CounterHistogram::from_counters(row);
        assert_eq!(from_histogram(&hist, 0.25, 2), 0);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn rank_rejects_bad_delta() {
        let _ = rank_for(10, 1.5, 2);
    }
}
