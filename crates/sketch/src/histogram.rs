//! The 64-bin counter histogram unit (paper Fig. 9).
//!
//! NeoProf summarises the first sketch lane's counters as a 64-bin
//! histogram so the host can estimate (a) the tight error bound and (b)
//! the page access-frequency distribution driving Algorithm 1's dynamic
//! threshold — without streaming out and sorting 512 K raw counters.

use core::fmt;

use neomem_types::json::{hex_from_u64s, Json};
use neomem_types::{Error, Result};

/// Number of histogram bins in the hardware unit.
pub const HISTOGRAM_BINS: usize = 64;

/// The bin-edge layout shared by all histograms.
///
/// Bin 0 holds exactly the zero counters; bins 1.. grow geometrically up
/// to the 16-bit counter maximum, giving width-1 bins for small counts
/// (where thresholds live) and coarser bins toward saturation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSpec {
    /// `edges[i]..edges[i+1]` is the half-open value range of bin `i`.
    edges: [u32; HISTOGRAM_BINS + 1],
}

impl HistogramSpec {
    /// The default log-scale layout over `0..=u16::MAX`.
    pub fn log2_default() -> Self {
        let mut edges = [0u32; HISTOGRAM_BINS + 1];
        edges[0] = 0;
        edges[1] = 1;
        // Geometric growth from 1 to 2^16 across the remaining bins,
        // with strict monotonicity enforced (low bins become width 1).
        let steps = (HISTOGRAM_BINS - 1) as f64;
        for (i, edge) in edges.iter_mut().enumerate().skip(2) {
            let geometric = 2f64.powf((i as f64 - 1.0) * 16.0 / steps);
            *edge = geometric.round() as u32;
        }
        for i in 2..=HISTOGRAM_BINS {
            if edges[i] <= edges[i - 1] {
                edges[i] = edges[i - 1] + 1;
            }
        }
        edges[HISTOGRAM_BINS] = edges[HISTOGRAM_BINS].max(u16::MAX as u32 + 1);
        Self { edges }
    }

    /// Returns the bin index holding `value`.
    pub fn bin_of(&self, value: u16) -> usize {
        let v = value as u32;
        // partition_point: first edge > v, minus one.
        self.edges.partition_point(|&e| e <= v) - 1
    }

    /// Lower edge (smallest value) of bin `bin`.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= HISTOGRAM_BINS`.
    pub fn lower_edge(&self, bin: usize) -> u32 {
        assert!(bin < HISTOGRAM_BINS);
        self.edges[bin]
    }

    /// Highest representable value of bin `bin` (inclusive upper edge).
    ///
    /// # Panics
    ///
    /// Panics if `bin >= HISTOGRAM_BINS`.
    pub fn upper_value(&self, bin: usize) -> u32 {
        assert!(bin < HISTOGRAM_BINS);
        self.edges[bin + 1] - 1
    }
}

impl Default for HistogramSpec {
    fn default() -> Self {
        Self::log2_default()
    }
}

/// Per-value bin lookup for the default layout, built once per process:
/// the `SetHistEn` sweep bins hundreds of thousands of counters per
/// tick, and a table load replaces a binary search over the edges.
pub(crate) fn default_bin_lut() -> &'static [u8; 1 << 16] {
    static LUT: std::sync::OnceLock<Box<[u8; 1 << 16]>> = std::sync::OnceLock::new();
    LUT.get_or_init(|| {
        let spec = HistogramSpec::log2_default();
        let mut lut = Box::new([0u8; 1 << 16]);
        for (v, bin) in lut.iter_mut().enumerate() {
            *bin = spec.bin_of(v as u16) as u8;
        }
        lut
    })
}

/// A populated 64-bin histogram of sketch-counter values.
///
/// ```
/// use neomem_sketch::CounterHistogram;
///
/// let mut h = CounterHistogram::new();
/// for c in [0u16, 0, 0, 1, 1, 5, 100] { h.add(c); }
/// assert_eq!(h.total(), 7);
/// // ~3/7 of counters are zero, so the 0.3-quantile is still 0.
/// assert_eq!(h.quantile(0.3), 0);
/// // The top counter dominates high quantiles.
/// assert!(h.quantile(0.99) >= 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterHistogram {
    spec: HistogramSpec,
    bins: [u64; HISTOGRAM_BINS],
    total: u64,
}

impl CounterHistogram {
    /// Creates an empty histogram with the default log-scale layout.
    pub fn new() -> Self {
        Self::with_spec(HistogramSpec::log2_default())
    }

    /// Creates an empty histogram with a custom bin layout.
    pub fn with_spec(spec: HistogramSpec) -> Self {
        Self { spec, bins: [0; HISTOGRAM_BINS], total: 0 }
    }

    /// Builds a histogram from an iterator of counter values — the
    /// hardware's `SetHistEn` sweep over lane 0.
    pub fn from_counters<I: IntoIterator<Item = u16>>(counters: I) -> Self {
        let mut h = Self::new();
        for c in counters {
            h.add(c);
        }
        h
    }

    /// Reconstructs a histogram from raw bin counts, as read back over
    /// MMIO (`GetHist` × 64). Assumes the default bin layout — both ends
    /// of the wire are NeoProf components sharing [`HistogramSpec`].
    pub fn from_bins(bins: [u64; HISTOGRAM_BINS]) -> Self {
        let total = bins.iter().sum();
        Self { spec: HistogramSpec::log2_default(), bins, total }
    }

    /// Adds one counter observation.
    pub fn add(&mut self, value: u16) {
        self.bins[self.spec.bin_of(value)] += 1;
        self.total += 1;
    }

    /// Total number of counters recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw bin contents (the `GetHist` MMIO read-out).
    pub fn bins(&self) -> &[u64; HISTOGRAM_BINS] {
        &self.bins
    }

    /// Returns the bin layout.
    pub fn spec(&self) -> &HistogramSpec {
        &self.spec
    }

    /// The histogram's quantile function `QF`: returns a value `y` such
    /// that (approximately) a fraction `frac` of the counters are `<= y`.
    ///
    /// Used by Algorithm 1 as `θ = QF(1 − p)`: pages whose estimated
    /// frequency exceeds the returned value form roughly the top-`p`
    /// fraction.
    ///
    /// `frac` is clamped to `[0, 1]`. An empty histogram returns 0.
    pub fn quantile(&self, frac: f64) -> u16 {
        if self.total == 0 {
            return 0;
        }
        let frac = frac.clamp(0.0, 1.0);
        let target = ((frac * self.total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (bin, &count) in self.bins.iter().enumerate() {
            cum += count;
            if cum >= target {
                return self.spec.upper_value(bin).min(u16::MAX as u32) as u16;
            }
        }
        u16::MAX
    }

    /// Number of counters whose value is `>= value` (used by the tight
    /// error-bound rank computation).
    pub fn count_at_least(&self, value: u16) -> u64 {
        let first_bin = self.spec.bin_of(value);
        // Bins above first_bin are entirely >= value; the boundary bin is
        // included conservatively (hardware resolution limit).
        self.bins[first_bin..].iter().sum()
    }

    /// Mean counter value, approximated by bin lower edges.
    pub fn approx_mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .bins
            .iter()
            .enumerate()
            .map(|(b, &n)| n as f64 * self.spec.lower_edge(b) as f64)
            .sum();
        sum / self.total as f64
    }

    /// Fraction of non-zero counters — a cheap sketch-occupancy signal.
    pub fn occupancy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        1.0 - self.bins[0] as f64 / self.total as f64
    }

    /// Serialises the bin contents for a machine snapshot. The total is
    /// not stored — it is always the sum of the bins.
    pub fn snapshot(&self) -> Json {
        Json::obj([("bins", Json::Str(hex_from_u64s(&self.bins)))])
    }

    /// Restores [`CounterHistogram::snapshot`] state. The histogram keeps
    /// its current bin layout (snapshots are restored onto a histogram
    /// built the same way).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on missing/malformed fields or a bin
    /// count other than [`HISTOGRAM_BINS`].
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        let bins = snap.req_u64s("bins")?;
        if bins.len() != HISTOGRAM_BINS {
            return Err(Error::snapshot(format!(
                "histogram has {} bins, expected {HISTOGRAM_BINS}",
                bins.len()
            )));
        }
        self.bins.copy_from_slice(&bins);
        self.total = self.bins.iter().sum();
        Ok(())
    }
}

impl Default for CounterHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for CounterHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hist[total={}, occ={:.3}]", self.total, self.occupancy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_edges_strictly_increasing() {
        let spec = HistogramSpec::log2_default();
        for i in 0..HISTOGRAM_BINS {
            assert!(
                spec.edges[i] < spec.edges[i + 1],
                "edge {i}: {} !< {}",
                spec.edges[i],
                spec.edges[i + 1]
            );
        }
        assert_eq!(spec.edges[0], 0);
        assert_eq!(spec.edges[1], 1);
        assert!(spec.edges[HISTOGRAM_BINS] > u16::MAX as u32);
    }

    #[test]
    fn bin_of_and_edges_consistent() {
        let spec = HistogramSpec::log2_default();
        for v in [0u16, 1, 2, 3, 10, 100, 1000, 10_000, u16::MAX] {
            let b = spec.bin_of(v);
            assert!(spec.lower_edge(b) <= v as u32);
            assert!(v as u32 <= spec.upper_value(b), "value {v} above bin {b} upper");
        }
    }

    #[test]
    fn zero_counters_land_in_bin_zero() {
        let spec = HistogramSpec::log2_default();
        assert_eq!(spec.bin_of(0), 0);
        assert_eq!(spec.bin_of(1), 1);
    }

    #[test]
    fn quantile_monotone() {
        let mut h = CounterHistogram::new();
        for i in 0..1000u16 {
            h.add(i % 50);
        }
        let mut prev = 0u16;
        for step in 0..=10 {
            let q = h.quantile(step as f64 / 10.0);
            assert!(q >= prev, "quantile must be monotone");
            prev = q;
        }
    }

    #[test]
    fn quantile_empty_is_zero() {
        let h = CounterHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn quantile_clamps_fraction() {
        let mut h = CounterHistogram::new();
        h.add(7);
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(9.0), h.quantile(1.0));
    }

    #[test]
    fn count_at_least_counts_upper_tail() {
        let mut h = CounterHistogram::new();
        for c in [0u16, 0, 1, 5, 5, 200] {
            h.add(c);
        }
        assert_eq!(h.count_at_least(1), 4);
        assert!(h.count_at_least(200) >= 1);
        assert_eq!(h.count_at_least(0), 6);
    }

    #[test]
    fn occupancy_and_mean() {
        let mut h = CounterHistogram::new();
        for c in [0u16, 0, 4, 4] {
            h.add(c);
        }
        assert!((h.occupancy() - 0.5).abs() < 1e-12);
        assert!(h.approx_mean() > 0.0);
        assert_eq!(CounterHistogram::new().approx_mean(), 0.0);
        assert_eq!(CounterHistogram::new().occupancy(), 0.0);
    }

    #[test]
    fn from_counters_matches_manual_adds() {
        let values = [3u16, 0, 9, 9, 100];
        let a = CounterHistogram::from_counters(values);
        let mut b = CounterHistogram::new();
        for v in values {
            b.add(v);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", CounterHistogram::new()).is_empty());
    }
}
