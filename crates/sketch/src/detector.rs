//! The hot-page detector pipeline (paper Fig. 7/8).

use neomem_types::json::{hex_from_u64s, Json};
use neomem_types::{DevicePage, Error, Result};

use crate::bloom::BloomFilter;
use crate::cm_sketch::{CmSketch, SketchParams};

/// Which duplicate-suppression filter the detector uses
/// (DESIGN.md ablation #1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FilterKind {
    /// The paper's design: hot bits embedded in the sketch entries,
    /// reusing the sketch's hash results.
    #[default]
    HotBits,
    /// The strawman: a separate Bloom filter with its own hash stage.
    ExternalBloom,
}

/// Running statistics of a [`HotPageDetector`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Pages observed since the last clear.
    pub observed: u64,
    /// Newly detected hot pages pushed to the buffer.
    pub detected: u64,
    /// Reports suppressed by the hot-page filter (duplicates).
    pub filtered_duplicates: u64,
    /// Hot pages dropped because the output buffer was full.
    pub buffer_overflows: u64,
}

/// The NeoProf hot-page detector: sketch update → threshold compare →
/// hot-page filter → bounded output buffer.
///
/// A page is *hot* when its estimated access frequency `â(P)` exceeds the
/// threshold `θ` (Eq. 4). Once reported, the hot bits of the page's sketch
/// entries suppress duplicate reports until the next clear.
///
/// ```
/// use neomem_sketch::{HotPageDetector, SketchParams};
/// use neomem_types::DevicePage;
///
/// let mut det = HotPageDetector::new(SketchParams::small())?;
/// det.set_threshold(2);
/// for i in 0..3 { det.observe(DevicePage::new(1)); let _ = i; }
/// assert_eq!(det.pending_hot_pages(), 1);
/// # Ok::<(), neomem_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct HotPageDetector {
    sketch: CmSketch,
    threshold: u16,
    buffer: Vec<DevicePage>,
    capacity: usize,
    stats: DetectorStats,
    /// `Some` in the external-Bloom ablation mode.
    bloom: Option<BloomFilter>,
    /// Reused per-page estimate lane for [`Self::observe_batch`];
    /// scratch only, never snapshotted.
    batch_estimates: Vec<u16>,
}

impl HotPageDetector {
    /// Creates a detector with threshold 0 (report everything above 0).
    ///
    /// # Errors
    ///
    /// Propagates [`SketchParams::validate`] failures.
    pub fn new(params: SketchParams) -> Result<Self> {
        Self::with_filter(params, FilterKind::HotBits)
    }

    /// Creates a detector with an explicit duplicate-suppression filter
    /// (the external-Bloom variant exists for the DESIGN.md ablation;
    /// the hot-bit design is what the hardware implements).
    ///
    /// # Errors
    ///
    /// Propagates [`SketchParams::validate`] failures.
    pub fn with_filter(params: SketchParams, filter: FilterKind) -> Result<Self> {
        let capacity = params.hot_buffer_entries;
        let bloom = match filter {
            FilterKind::HotBits => None,
            // Sized at ~2 bits per sketch counter, like the hot bits
            // plus slack, with the same lane count of hashes.
            FilterKind::ExternalBloom => Some(BloomFilter::new(
                (params.width as u64 * 2).next_power_of_two().trailing_zeros().min(26),
                params.depth,
                params.seed ^ 0xB100,
            )),
        };
        Ok(Self {
            sketch: CmSketch::new(params)?,
            threshold: 0,
            buffer: Vec::with_capacity(capacity.min(4096)),
            capacity,
            stats: DetectorStats::default(),
            bloom,
            batch_estimates: Vec::new(),
        })
    }

    /// Sets the hot-page threshold `θ` (the `SetThreshold` MMIO command).
    pub fn set_threshold(&mut self, threshold: u16) {
        self.threshold = threshold;
    }

    /// Returns the current threshold `θ`.
    pub fn threshold(&self) -> u16 {
        self.threshold
    }

    /// Grants read access to the underlying sketch (histogram unit, error
    /// bound estimation, diagnostics).
    pub fn sketch(&self) -> &CmSketch {
        &self.sketch
    }

    /// Processes one observed page access through the full pipeline.
    ///
    /// Returns `Some(page)` when this access caused a *new* hot-page
    /// report (i.e. it crossed `θ` and passed the duplicate filter and the
    /// buffer had space).
    pub fn observe(&mut self, page: DevicePage) -> Option<DevicePage> {
        self.stats.observed += 1;
        let estimate = self.sketch.update(page);
        if estimate <= self.threshold {
            return None;
        }
        // Hot page checker fired; consult the hot-page filter.
        let duplicate = match &mut self.bloom {
            None => self.sketch.test_and_set_hot(page),
            Some(bloom) => bloom.test_and_set(page),
        };
        if duplicate {
            self.stats.filtered_duplicates += 1;
            return None;
        }
        if self.buffer.len() >= self.capacity {
            self.stats.buffer_overflows += 1;
            return None;
        }
        self.stats.detected += 1;
        self.buffer.push(page);
        Some(page)
    }

    /// Processes a batch of observed page accesses; returns how many
    /// produced *new* hot-page reports.
    ///
    /// The sketch updates run lane-major over the whole batch first
    /// ([`CmSketch::update_batch`], bit-identical counters and per-page
    /// estimates to the per-page schedule); the threshold compare, the
    /// duplicate filter and the buffer push then run per page in batch
    /// order — exactly the tail of [`Self::observe`]. The sketch update
    /// is the only mutation `observe`'s head makes, so detector state
    /// and the report sequence match per-page observation bit for bit.
    pub fn observe_batch(&mut self, pages: &[DevicePage]) -> u64 {
        self.stats.observed += pages.len() as u64;
        let mut estimates = std::mem::take(&mut self.batch_estimates);
        self.sketch.update_batch(pages, &mut estimates);
        let mut reported = 0;
        for (&page, &estimate) in pages.iter().zip(&estimates) {
            if estimate <= self.threshold {
                continue;
            }
            let duplicate = match &mut self.bloom {
                None => self.sketch.test_and_set_hot(page),
                Some(bloom) => bloom.test_and_set(page),
            };
            if duplicate {
                self.stats.filtered_duplicates += 1;
                continue;
            }
            if self.buffer.len() >= self.capacity {
                self.stats.buffer_overflows += 1;
                continue;
            }
            self.stats.detected += 1;
            self.buffer.push(page);
            reported += 1;
        }
        self.batch_estimates = estimates;
        reported
    }

    /// Number of hot pages waiting in the output buffer
    /// (the `GetNrHotPage` MMIO command).
    pub fn pending_hot_pages(&self) -> usize {
        self.buffer.len()
    }

    /// Pops one hot page from the buffer (the `GetHotPage` MMIO command).
    pub fn pop_hot_page(&mut self) -> Option<DevicePage> {
        // FIFO order: the hardware buffer drains oldest-first.
        if self.buffer.is_empty() {
            None
        } else {
            Some(self.buffer.remove(0))
        }
    }

    /// Drains all pending hot pages.
    pub fn drain_hot_pages(&mut self) -> impl Iterator<Item = DevicePage> + '_ {
        self.buffer.drain(..)
    }

    /// Clears sketch counters, hot bits, the buffer and stats
    /// (the `Reset` MMIO command and the periodic `clear_interval` reset).
    pub fn clear(&mut self) {
        self.sketch.clear();
        self.buffer.clear();
        if let Some(bloom) = &mut self.bloom {
            bloom.clear();
        }
        self.stats = DetectorStats::default();
    }

    /// Returns detector statistics since the last clear.
    pub fn stats(&self) -> DetectorStats {
        self.stats
    }

    /// Serialises the detector's mutable state (sketch, threshold, output
    /// buffer, stats, and the optional external Bloom filter) for a
    /// machine snapshot.
    pub fn snapshot(&self) -> Json {
        Json::obj([
            ("sketch", self.sketch.snapshot()),
            ("threshold", Json::U64(u64::from(self.threshold))),
            (
                "buffer",
                Json::Str(hex_from_u64s(
                    &self.buffer.iter().map(|p| p.index()).collect::<Vec<u64>>(),
                )),
            ),
            ("observed", Json::U64(self.stats.observed)),
            ("detected", Json::U64(self.stats.detected)),
            ("filtered_duplicates", Json::U64(self.stats.filtered_duplicates)),
            ("buffer_overflows", Json::U64(self.stats.buffer_overflows)),
            (
                "bloom",
                match &self.bloom {
                    None => Json::Null,
                    Some(bloom) => bloom.snapshot(),
                },
            ),
        ])
    }

    /// Restores [`HotPageDetector::snapshot`] state onto a detector built
    /// with the same parameters and filter kind.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on missing/malformed fields, a buffer
    /// exceeding this detector's capacity, or a filter-kind mismatch
    /// (snapshot has Bloom state but this detector uses hot bits, or vice
    /// versa).
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        let threshold = snap.req_u64("threshold")?;
        let threshold = u16::try_from(threshold)
            .map_err(|_| Error::snapshot(format!("threshold {threshold} exceeds u16")))?;
        let buffer = snap.req_u64s("buffer")?;
        if buffer.len() > self.capacity {
            return Err(Error::snapshot(format!(
                "hot buffer has {} entries, capacity is {}",
                buffer.len(),
                self.capacity
            )));
        }
        match (&mut self.bloom, snap.req("bloom")?) {
            (None, Json::Null) => {}
            (Some(bloom), state @ Json::Obj(_)) => bloom.restore(state)?,
            (None, _) => {
                return Err(Error::snapshot(
                    "snapshot carries bloom state but detector uses hot bits",
                ))
            }
            (Some(_), _) => {
                return Err(Error::snapshot(
                    "detector uses an external bloom filter but snapshot has none",
                ))
            }
        }
        self.sketch.restore(snap.req("sketch")?)?;
        self.threshold = threshold;
        self.buffer = buffer.into_iter().map(DevicePage::new).collect();
        self.stats = DetectorStats {
            observed: snap.req_u64("observed")?,
            detected: snap.req_u64("detected")?,
            filtered_duplicates: snap.req_u64("filtered_duplicates")?,
            buffer_overflows: snap.req_u64("buffer_overflows")?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(threshold: u16) -> HotPageDetector {
        let mut d = HotPageDetector::new(SketchParams::small()).unwrap();
        d.set_threshold(threshold);
        d
    }

    #[test]
    fn page_below_threshold_not_reported() {
        let mut d = detector(10);
        for _ in 0..10 {
            assert!(d.observe(DevicePage::new(1)).is_none());
        }
        assert_eq!(d.pending_hot_pages(), 0);
    }

    #[test]
    fn page_crossing_threshold_reported_once() {
        let mut d = detector(3);
        let mut reports = 0;
        for _ in 0..20 {
            if d.observe(DevicePage::new(1)).is_some() {
                reports += 1;
            }
        }
        assert_eq!(reports, 1, "filter must suppress duplicates");
        assert_eq!(d.stats().filtered_duplicates, 16);
        assert_eq!(d.pending_hot_pages(), 1);
    }

    #[test]
    fn drain_returns_fifo_order() {
        let mut d = detector(1);
        for p in [5u64, 9, 2] {
            d.observe(DevicePage::new(p));
            d.observe(DevicePage::new(p));
        }
        let order: Vec<u64> = d.drain_hot_pages().map(|p| p.index()).collect();
        assert_eq!(order, vec![5, 9, 2]);
    }

    #[test]
    fn pop_hot_page_single() {
        let mut d = detector(1);
        d.observe(DevicePage::new(4));
        d.observe(DevicePage::new(4));
        assert_eq!(d.pop_hot_page(), Some(DevicePage::new(4)));
        assert_eq!(d.pop_hot_page(), None);
    }

    #[test]
    fn buffer_overflow_counted_and_dropped() {
        let params = SketchParams { hot_buffer_entries: 2, ..SketchParams::small() };
        let mut d = HotPageDetector::new(params).unwrap();
        d.set_threshold(1);
        for p in 0..5u64 {
            d.observe(DevicePage::new(p));
            d.observe(DevicePage::new(p));
        }
        assert_eq!(d.pending_hot_pages(), 2);
        assert_eq!(d.stats().buffer_overflows, 3);
    }

    #[test]
    fn clear_resets_everything() {
        let mut d = detector(1);
        d.observe(DevicePage::new(3));
        d.observe(DevicePage::new(3));
        d.clear();
        assert_eq!(d.pending_hot_pages(), 0);
        assert_eq!(d.stats(), DetectorStats::default());
        // Page becomes reportable again after clear.
        d.set_threshold(1);
        d.observe(DevicePage::new(3));
        assert!(d.observe(DevicePage::new(3)).is_some());
    }

    #[test]
    fn bloom_variant_behaves_like_hot_bits_on_small_sets() {
        let mut hot_bits = HotPageDetector::new(SketchParams::small()).unwrap();
        let mut bloom =
            HotPageDetector::with_filter(SketchParams::small(), FilterKind::ExternalBloom)
                .unwrap();
        hot_bits.set_threshold(2);
        bloom.set_threshold(2);
        for round in 0..3 {
            for p in 0..32u64 {
                hot_bits.observe(DevicePage::new(p));
                bloom.observe(DevicePage::new(p));
            }
            let _ = round;
        }
        let a: Vec<_> = hot_bits.drain_hot_pages().collect();
        let b: Vec<_> = bloom.drain_hot_pages().collect();
        assert_eq!(a, b, "both filters must report the same pages once");
        // And both re-report after clear.
        hot_bits.clear();
        bloom.clear();
        hot_bits.set_threshold(1);
        bloom.set_threshold(1);
        for _ in 0..2 {
            hot_bits.observe(DevicePage::new(5));
            bloom.observe(DevicePage::new(5));
        }
        assert_eq!(hot_bits.pending_hot_pages(), 1);
        assert_eq!(bloom.pending_hot_pages(), 1);
    }

    #[test]
    fn zero_threshold_reports_first_touch() {
        let mut d = detector(0);
        assert!(d.observe(DevicePage::new(8)).is_some(), "estimate 1 > θ=0");
    }

    #[test]
    fn observe_batch_matches_per_page_observe() {
        for filter in [FilterKind::HotBits, FilterKind::ExternalBloom] {
            let params = SketchParams { hot_buffer_entries: 8, ..SketchParams::small() };
            let mut serial = HotPageDetector::with_filter(params, filter).unwrap();
            let mut batched = HotPageDetector::with_filter(params, filter).unwrap();
            serial.set_threshold(2);
            batched.set_threshold(2);
            let pages: Vec<DevicePage> =
                (0..600u64).map(|i| DevicePage::new(i * 13 % 23)).collect();
            let mut serial_reports = 0;
            for &p in &pages {
                serial_reports += u64::from(serial.observe(p).is_some());
            }
            let mut batched_reports = 0;
            // Uneven batches exercise the lane-major tail handling.
            for chunk in pages.chunks(31) {
                batched_reports += batched.observe_batch(chunk);
            }
            assert_eq!(batched_reports, serial_reports, "{filter:?}");
            assert_eq!(batched.stats(), serial.stats(), "{filter:?}");
            let a: Vec<_> = serial.drain_hot_pages().collect();
            let b: Vec<_> = batched.drain_hot_pages().collect();
            assert_eq!(a, b, "{filter:?}: report order must match");
        }
    }
}
