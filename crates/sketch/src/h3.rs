//! The H3 hardware hash family (Ramakrishna, Fu, Bahcekapili 1997).
//!
//! `h_π(x) = x(0)·π(0) ⊕ x(1)·π(1) ⊕ ... ⊕ x(n−1)·π(n−1)` where `x(i)` is
//! the i-th input bit and `π(i)` the i-th m-bit seed word (Eq. 5 in the
//! paper). The hardware evaluates this as a pipelined XOR reduction tree;
//! in software it is a per-set-bit XOR fold.

/// One H3 hash function over `n`-bit inputs producing indices in
/// `0..2^m_bits`.
#[derive(Debug, Clone)]
pub struct H3Hash {
    /// Per-input-bit seed words (length = input bit width).
    seeds: Vec<u32>,
    /// Per-input-byte fold tables: `tables[b][v]` is the XOR of the
    /// seeds selected by byte value `v` at byte position `b`. H3 is
    /// linear over GF(2), so folding one precomputed word per byte is
    /// exactly the per-set-bit reduction — the hot hash becomes
    /// `⌈input_bits/8⌉` table lookups instead of up to 64 fold steps.
    tables: Vec<[u32; 256]>,
    mask: u32,
}

/// SplitMix64: tiny deterministic seed expander, avoids a rand dependency
/// in this `no-frills` algorithm crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl H3Hash {
    /// Creates an H3 hash over `input_bits`-bit inputs producing
    /// `index_bits`-bit outputs, with seeds derived deterministically
    /// from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `input_bits` is 0 or exceeds 64, or if `index_bits` is 0
    /// or exceeds 32.
    pub fn new(input_bits: u32, index_bits: u32, seed: u64) -> Self {
        assert!((1..=64).contains(&input_bits), "input_bits must be 1..=64");
        assert!((1..=32).contains(&index_bits), "index_bits must be 1..=32");
        let mask = if index_bits == 32 { u32::MAX } else { (1u32 << index_bits) - 1 };
        let mut state = seed ^ 0xA076_1D64_78BD_642F;
        let seeds: Vec<u32> =
            (0..input_bits).map(|_| (splitmix64(&mut state) as u32) & mask).collect();
        let tables = (0..input_bits.div_ceil(8))
            .map(|byte| {
                let mut table = [0u32; 256];
                for (v, slot) in table.iter_mut().enumerate() {
                    let mut acc = 0u32;
                    for bit in 0..8 {
                        let i = (byte * 8 + bit) as usize;
                        if i < seeds.len() && (v >> bit) & 1 == 1 {
                            acc ^= seeds[i];
                        }
                    }
                    *slot = acc;
                }
                table
            })
            .collect();
        Self { seeds, tables, mask }
    }

    /// Hashes `x`, using only the configured number of low input bits.
    #[inline]
    pub fn hash(&self, x: u64) -> u32 {
        // Byte-table fold; GF(2)-linearity makes it equal to the
        // per-set-bit XOR reduction over the seed words.
        let mut acc = 0u32;
        let bits = x & Self::input_mask(self.seeds.len() as u32);
        for (b, table) in self.tables.iter().enumerate() {
            acc ^= table[((bits >> (b * 8)) & 0xFF) as usize];
        }
        acc & self.mask
    }

    /// Returns the number of input bits consumed.
    pub fn input_bits(&self) -> u32 {
        self.seeds.len() as u32
    }

    #[inline]
    fn input_mask(bits: u32) -> u64 {
        if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_hashes_to_zero() {
        // H3 is linear over GF(2): h(0) = 0 always.
        for seed in 0..8 {
            let h = H3Hash::new(32, 16, seed);
            assert_eq!(h.hash(0), 0);
        }
    }

    #[test]
    fn linearity_over_xor() {
        let h = H3Hash::new(32, 19, 42);
        for (x, y) in [(3u64, 5u64), (0xdead, 0xbeef), (1 << 31, 12345)] {
            assert_eq!(h.hash(x) ^ h.hash(y), h.hash(x ^ y), "h({x})^h({y}) != h(x^y)");
        }
    }

    #[test]
    fn output_respects_index_bits() {
        let h = H3Hash::new(32, 10, 7);
        for x in 0..2000u64 {
            assert!(h.hash(x) < 1 << 10);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let h1 = H3Hash::new(32, 16, 1);
        let h2 = H3Hash::new(32, 16, 2);
        let differing = (1..1000u64).filter(|&x| h1.hash(x) != h2.hash(x)).count();
        assert!(differing > 900, "independent seeds should disagree almost always");
    }

    #[test]
    fn ignores_bits_beyond_input_width() {
        let h = H3Hash::new(16, 12, 9);
        assert_eq!(h.hash(0x1_0000), h.hash(0));
        assert_eq!(h.hash(0xFFFF_0000_0000_1234), h.hash(0x1234));
    }

    #[test]
    fn spreads_sequential_inputs() {
        // Not a statistical test, just a smoke check that sequential pages
        // do not collapse to a handful of buckets. H3 is GF(2)-linear, so
        // 4096 sequential inputs (12 input bits) land in a subspace of
        // dimension = rank of the 12 seed vectors; in a 16-bit index space
        // the rank is >= 11 with overwhelming probability.
        let h = H3Hash::new(32, 16, 1234);
        let mut seen = std::collections::HashSet::new();
        for x in 0..4096u64 {
            seen.insert(h.hash(x));
        }
        assert!(seen.len() >= 2048, "only {} distinct buckets", seen.len());
    }

    #[test]
    #[should_panic(expected = "input_bits")]
    fn rejects_zero_input_bits() {
        let _ = H3Hash::new(0, 8, 1);
    }

    #[test]
    fn table_fold_matches_bitwise_fold() {
        for (input_bits, index_bits, seed) in [(32u32, 16u32, 5u64), (13, 7, 9), (64, 32, 3)] {
            let h = H3Hash::new(input_bits, index_bits, seed);
            for x in [0u64, 1, 0xdead_beef, u64::MAX, 0x1234_5678_9abc_def0, 1 << 63] {
                let mut acc = 0u32;
                let mut bits = x & H3Hash::input_mask(input_bits);
                while bits != 0 {
                    let i = bits.trailing_zeros() as usize;
                    acc ^= h.seeds[i];
                    bits &= bits - 1;
                }
                assert_eq!(h.hash(x), acc & h.mask, "x={x:#x}");
            }
        }
    }
}
