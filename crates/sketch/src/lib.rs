//! Sketch-based hot-page detection algorithms for NeoProf.
//!
//! This crate implements the algorithmic core of the paper's Section IV:
//!
//! * [`H3Hash`] — the hardware-friendly H3 universal hash family
//!   (Ramakrishna et al.), computed as an XOR-fold of per-bit seeds exactly
//!   as the pipelined hash unit in Fig. 8 does.
//! * [`CmSketch`] — a Count-Min sketch whose entries carry a counter, a
//!   *hot bit* and a *valid bit* (Fig. 7 ❷). The valid bit enables the
//!   paper's O(W/64) lazy clear ("the Valid bits are physically arranged in
//!   a contiguous manner, allowing for rapid resetting").
//! * [`HotPageDetector`] — the hot-page detector + hot-page filter pipeline
//!   (Fig. 7/8): threshold compare, duplicate suppression via hot bits, and
//!   a bounded hot-page output buffer (16 K entries by default, Table IV).
//! * [`CounterHistogram`] — the 64-bin histogram unit (Fig. 9) used both
//!   for tight error-bound estimation and as the access-frequency
//!   distribution proxy consumed by Algorithm 1.
//! * [`error_bound`] — Chen et al.'s "near-optimal" error bound, with an
//!   exact sorted path and the histogram-approximated path the hardware
//!   uses; the two are property-tested to agree within one bin.
//!
//! # Example
//!
//! ```
//! use neomem_sketch::{HotPageDetector, SketchParams};
//! use neomem_types::DevicePage;
//!
//! let params = SketchParams { width: 1 << 10, depth: 2, seed: 7, hot_buffer_entries: 64 };
//! let mut det = HotPageDetector::new(params).expect("valid params");
//! det.set_threshold(3);
//! for _ in 0..5 {
//!     det.observe(DevicePage::new(42));
//! }
//! let hot: Vec<_> = det.drain_hot_pages().collect();
//! assert_eq!(hot, vec![DevicePage::new(42)]);
//! // The hot-page filter suppresses duplicates within a detection period.
//! det.observe(DevicePage::new(42));
//! assert_eq!(det.drain_hot_pages().count(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod bloom;
mod cm_sketch;
mod detector;
pub mod error_bound;
mod h3;
mod histogram;

pub use bloom::BloomFilter;
pub use cm_sketch::{CmSketch, SketchParams, MAX_DEPTH};
pub use detector::{DetectorStats, FilterKind, HotPageDetector};
pub use h3::H3Hash;
pub use histogram::{CounterHistogram, HistogramSpec, HISTOGRAM_BINS};
