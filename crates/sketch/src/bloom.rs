//! A standalone Bloom filter — the ablation counterpart of the in-entry
//! hot bits.
//!
//! The paper notes that the hot-page filter "can be thought of as
//! equivalent to adding a bloom filter after the CM-Sketch unit", but
//! argues the hot-bit design "is more efficient as it reuses the hashing
//! results and introduces only a minimal number of additional hot bits".
//! This module provides the strawman so the claim can be measured
//! (DESIGN.md decision #1; `micro_sketch` benches both).

use neomem_types::json::{hex_from_u64s, Json};
use neomem_types::{DevicePage, Error, Result};

use crate::bitset::BitSet;
use crate::h3::H3Hash;

/// A classic Bloom filter over device pages with its own hash stage.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: BitSet,
    hashes: Vec<H3Hash>,
}

impl BloomFilter {
    /// Creates a filter with `2^log2_bits` bits and `k` independent H3
    /// hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `log2_bits` is outside `3..=32` or `k` is zero.
    pub fn new(log2_bits: u32, k: usize, seed: u64) -> Self {
        assert!((3..=32).contains(&log2_bits), "log2_bits must be 3..=32");
        assert!(k > 0, "need at least one hash");
        let hashes = (0..k)
            .map(|i| H3Hash::new(32, log2_bits, seed.wrapping_add(i as u64 * 0xB10F)))
            .collect();
        Self { bits: BitSet::new(1 << log2_bits), hashes }
    }

    /// Tests whether `page` was (probably) inserted, then inserts it.
    /// Returns `true` when the page was probably already present.
    ///
    /// Unlike the hot-bit filter, this performs `k` *additional* hash
    /// evaluations per call — the cost the paper's design avoids.
    pub fn test_and_set(&mut self, page: DevicePage) -> bool {
        let mut all = true;
        for h in &self.hashes {
            let idx = h.hash(page.index()) as usize;
            if !self.bits.get(idx) {
                all = false;
            }
            self.bits.set(idx);
        }
        all
    }

    /// Clears the filter.
    pub fn clear(&mut self) {
        self.bits.clear_all();
    }

    /// Bits currently set (diagnostics / load factor).
    pub fn popcount(&self) -> usize {
        self.bits.count_ones()
    }

    /// Serialises the filter's bit array for a machine snapshot.
    pub fn snapshot(&self) -> Json {
        Json::obj([("bits", Json::Str(hex_from_u64s(self.bits.words())))])
    }

    /// Restores [`BloomFilter::snapshot`] state onto a filter built with
    /// the same size and hash parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on missing/malformed fields or a bit
    /// array sized for a different filter.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        let bits = snap.req_u64s("bits")?;
        if !self.bits.load_words(&bits) {
            return Err(Error::snapshot("bloom filter bit array size mismatch"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_insert_is_new_second_is_duplicate() {
        let mut bloom = BloomFilter::new(12, 2, 7);
        assert!(!bloom.test_and_set(DevicePage::new(42)));
        assert!(bloom.test_and_set(DevicePage::new(42)));
    }

    #[test]
    fn distinct_pages_rarely_collide_when_sized_well() {
        let mut bloom = BloomFilter::new(16, 2, 9);
        let mut false_positives = 0;
        for p in 0..1000u64 {
            if bloom.test_and_set(DevicePage::new(p)) {
                false_positives += 1;
            }
        }
        assert!(false_positives < 5, "{false_positives} false positives at low load");
    }

    #[test]
    fn clear_resets_membership() {
        let mut bloom = BloomFilter::new(10, 2, 3);
        bloom.test_and_set(DevicePage::new(5));
        assert!(bloom.popcount() > 0);
        bloom.clear();
        assert_eq!(bloom.popcount(), 0);
        assert!(!bloom.test_and_set(DevicePage::new(5)));
    }

    #[test]
    #[should_panic(expected = "log2_bits")]
    fn rejects_oversized_filter() {
        let _ = BloomFilter::new(33, 2, 0);
    }
}
