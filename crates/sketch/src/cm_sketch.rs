//! The Count-Min sketch with hot/valid bits (paper Fig. 7).

use neomem_types::json::{hex_from_u64s, hex_from_u16s, Json};
use neomem_types::{DevicePage, Error, Result};

use crate::bitset::BitSet;
use crate::h3::H3Hash;

/// Maximum supported sketch depth (number of lanes `D`).
///
/// The paper's prototype uses `D = 2` and reports no benefit beyond it
/// (§VI-D "Sensitivity to NeoProf Parameters"); 8 leaves ample headroom
/// for ablations while letting us use fixed-size index arrays.
pub const MAX_DEPTH: usize = 8;

/// Construction parameters for [`CmSketch`] (paper Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchParams {
    /// Sketch width `W` — counters per lane. Must be a power of two
    /// (the hardware indexes lanes with an `m`-bit H3 hash).
    pub width: usize,
    /// Sketch depth `D` — number of lanes, `1..=MAX_DEPTH`.
    pub depth: usize,
    /// Seed for the H3 hash seeds (deterministic reproduction).
    pub seed: u64,
    /// Capacity of the hot-page output buffer (Table IV: 16 K entries).
    pub hot_buffer_entries: usize,
}

impl SketchParams {
    /// The paper's default prototype configuration (Table IV):
    /// `W = 512K`, `D = 2`, 16 K hot-buffer entries.
    pub fn paper_default() -> Self {
        Self { width: 512 * 1024, depth: 2, seed: 0x5EED, hot_buffer_entries: 16 * 1024 }
    }

    /// A small configuration for tests and quick simulations.
    pub fn small() -> Self {
        Self { width: 1 << 12, depth: 2, seed: 0x5EED, hot_buffer_entries: 1024 }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the width is not a power of
    /// two, the depth is out of `1..=MAX_DEPTH`, or the hot buffer is empty.
    pub fn validate(&self) -> Result<()> {
        if !self.width.is_power_of_two() || self.width < 2 {
            return Err(Error::invalid_config("sketch width must be a power of two >= 2"));
        }
        if self.depth == 0 || self.depth > MAX_DEPTH {
            return Err(Error::invalid_config(format!("sketch depth must be 1..={MAX_DEPTH}")));
        }
        if self.hot_buffer_entries == 0 {
            return Err(Error::invalid_config("hot buffer must have at least one entry"));
        }
        Ok(())
    }

    /// The `ε` of the (ε, δ) sketch guarantee: `ε = 2 / W`.
    pub fn epsilon(&self) -> f64 {
        2.0 / self.width as f64
    }

    /// The `δ` of the (ε, δ) sketch guarantee: `δ = 2^-D`.
    pub fn delta(&self) -> f64 {
        0.5f64.powi(self.depth as i32)
    }
}

/// Flat index of (lane, slot) pairs selected by the hash stage for one page.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LaneIndices {
    pub(crate) idx: [usize; MAX_DEPTH],
    pub(crate) depth: usize,
}

impl LaneIndices {
    #[inline]
    pub(crate) fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.idx[..self.depth].iter().copied()
    }
}

/// A Count-Min sketch whose entries carry `(counter, hot bit, valid bit)`.
///
/// Counters are 16-bit saturating, matching Table IV. The *valid bit*
/// implements the hardware's rapid clear: `clear()` only zeroes the valid
/// bitset, and a counter is treated as zero until its entry is re-validated
/// by the next touch. The *hot bit* backs the hot-page filter; see
/// [`crate::HotPageDetector`].
///
/// ```
/// use neomem_sketch::{CmSketch, SketchParams};
/// use neomem_types::DevicePage;
///
/// let mut s = CmSketch::new(SketchParams::small())?;
/// let p = DevicePage::new(99);
/// assert_eq!(s.estimate(p), 0);
/// for _ in 0..4 { s.update(p); }
/// assert!(s.estimate(p) >= 4); // never underestimates
/// s.clear();
/// assert_eq!(s.estimate(p), 0);
/// # Ok::<(), neomem_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct CmSketch {
    params: SketchParams,
    hashes: Vec<H3Hash>,
    /// `depth * width` counters, lane-major.
    counters: Vec<u16>,
    hot: BitSet,
    valid: BitSet,
    /// Total updates since the last clear (the `N` of Eq. 3).
    stream_len: u64,
    eager_clear: bool,
}

impl CmSketch {
    /// Creates a sketch.
    ///
    /// # Errors
    ///
    /// Propagates [`SketchParams::validate`] failures.
    pub fn new(params: SketchParams) -> Result<Self> {
        params.validate()?;
        let index_bits = params.width.trailing_zeros();
        // Table IV: 32 address bits cover 16 TB of device memory at 4 KiB.
        let hashes = (0..params.depth)
            .map(|lane| H3Hash::new(32, index_bits, params.seed.wrapping_add(lane as u64 * 0x9E37)))
            .collect();
        let total = params.depth * params.width;
        Ok(Self {
            params,
            hashes,
            counters: vec![0; total],
            hot: BitSet::new(total),
            valid: BitSet::new(total),
            stream_len: 0,
            eager_clear: false,
        })
    }

    /// Switches `clear()` to eagerly zero all counters instead of using the
    /// valid-bit lazy path. Observationally equivalent (property-tested);
    /// exists as the ablation for design decision #4 in DESIGN.md.
    pub fn set_eager_clear(&mut self, eager: bool) {
        self.eager_clear = eager;
    }

    /// Returns the construction parameters.
    pub fn params(&self) -> &SketchParams {
        &self.params
    }

    /// Total updates observed since the last [`clear`](Self::clear)
    /// (the `N` of the error bound `â(P) ≤ a(P) + εN`).
    pub fn stream_len(&self) -> u64 {
        self.stream_len
    }

    #[inline]
    pub(crate) fn lane_indices(&self, page: DevicePage) -> LaneIndices {
        let mut idx = [0usize; MAX_DEPTH];
        for (lane, h) in self.hashes.iter().enumerate() {
            idx[lane] = lane * self.params.width + h.hash(page.index()) as usize;
        }
        LaneIndices { idx, depth: self.params.depth }
    }

    #[inline]
    fn counter_at(&self, flat: usize) -> u16 {
        if self.valid.get(flat) {
            self.counters[flat]
        } else {
            0
        }
    }

    /// Records one access to `page` and returns the updated frequency
    /// estimate `â(P) = min_i A[i][h_i(P)]` (Eqs. 1–2).
    pub fn update(&mut self, page: DevicePage) -> u16 {
        let indices = self.lane_indices(page);
        self.stream_len += 1;
        let mut min = u16::MAX;
        for flat in indices.iter() {
            let cur = if self.valid.test_and_set(flat) { self.counters[flat] } else { 0 };
            let next = cur.saturating_add(1);
            self.counters[flat] = next;
            min = min.min(next);
        }
        min
    }

    /// Records one access per page of `pages`, filling `estimates` with
    /// the per-page updated estimate (same values [`update`](Self::update)
    /// would have returned, in order).
    ///
    /// The updates run *lane-major*: all of lane 0's counter bumps and
    /// valid-bit writes over the contiguous lane words, then lane 1's,
    /// and so on. Lanes are disjoint counter ranges, so per-lane program
    /// order is all that counter evolution depends on — the batched
    /// schedule produces bit-identical counters, valid bits and
    /// estimates to per-page updates, while touching one lane's memory
    /// at a time.
    pub fn update_batch(&mut self, pages: &[DevicePage], estimates: &mut Vec<u16>) {
        estimates.clear();
        estimates.resize(pages.len(), u16::MAX);
        self.stream_len += pages.len() as u64;
        let width = self.params.width;
        let Self { hashes, counters, valid, .. } = self;
        for (lane, h) in hashes.iter().enumerate() {
            let base = lane * width;
            for (est, page) in estimates.iter_mut().zip(pages) {
                let flat = base + h.hash(page.index()) as usize;
                let cur = if valid.test_and_set(flat) { counters[flat] } else { 0 };
                let next = cur.saturating_add(1);
                counters[flat] = next;
                *est = (*est).min(next);
            }
        }
    }

    /// Returns the current frequency estimate without updating (Eq. 2).
    pub fn estimate(&self, page: DevicePage) -> u16 {
        self.lane_indices(page).iter().map(|flat| self.counter_at(flat)).min().unwrap_or(0)
    }

    /// Tests whether *all* hot bits of the page's entries are set, then
    /// sets them. Returns `true` if they were all already set — i.e. the
    /// page was (probabilistically) already reported hot this period.
    ///
    /// This is the hot-page filter primitive (Fig. 7 ❺): reusing the hash
    /// results instead of a separate Bloom filter.
    pub fn test_and_set_hot(&mut self, page: DevicePage) -> bool {
        let indices = self.lane_indices(page);
        let mut all = true;
        for flat in indices.iter() {
            // Setting an already-set bit is a no-op, so unconditionally
            // folding test-and-set over the lanes leaves exactly the
            // state the old test-then-set-all sequence produced.
            all &= self.hot.test_and_set(flat);
        }
        all
    }

    /// Clears all counters, hot bits and the stream length.
    ///
    /// With lazy clearing (the default, as in hardware) this is O(W·D/64):
    /// only the valid/hot bitsets are zeroed.
    pub fn clear(&mut self) {
        if self.eager_clear {
            self.counters.fill(0);
            // Eager mode still must reset validity so both modes agree.
            self.valid.clear_all();
        } else {
            self.valid.clear_all();
        }
        self.hot.clear_all();
        self.stream_len = 0;
    }

    /// Iterates the effective counter values of one lane (invalid entries
    /// read as zero). Lane 0 feeds the histogram unit (Fig. 9).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= depth`.
    pub fn lane_counters(&self, lane: usize) -> impl Iterator<Item = u16> + '_ {
        assert!(lane < self.params.depth, "lane out of range");
        let base = lane * self.params.width;
        (0..self.params.width).map(move |i| self.counter_at(base + i))
    }

    /// Sweeps `lane`'s counters into the 64-bin histogram — the
    /// hardware `SetHistEn` unit. Produces exactly
    /// `CounterHistogram::from_counters(self.lane_counters(lane))`,
    /// but walks the validity bitmap a word at a time: invalid slots
    /// (reading as zero, the common case right after an eager clear)
    /// cost one popcount per 64 instead of a lookup each, and live
    /// counters bin through a value table instead of a binary search.
    pub fn lane_histogram(&self, lane: usize) -> crate::CounterHistogram {
        assert!(lane < self.params.depth, "lane out of range");
        let base = lane * self.params.width;
        let end = base + self.params.width;
        let lut = crate::histogram::default_bin_lut();
        let words = self.valid.words();
        let mut bins = [0u64; crate::HISTOGRAM_BINS];
        for (wi, &word) in words.iter().enumerate().take(end.div_ceil(64)).skip(base / 64) {
            let lo = (wi * 64).max(base);
            let hi = ((wi + 1) * 64).min(end);
            let mut w = word;
            if hi - lo < 64 {
                // Partial word at a lane edge (lanes narrower than a
                // word): mask to the covered bit range.
                let mask = if hi - wi * 64 == 64 { u64::MAX } else { (1u64 << (hi - wi * 64)) - 1 };
                w = (w & mask) >> (lo - wi * 64);
            }
            // After the shift, bit `b` is the counter at `lo + b` in
            // the full and partial cases alike (`lo == wi * 64` when
            // the word is fully covered).
            bins[0] += (hi - lo) as u64 - u64::from(w.count_ones());
            while w != 0 {
                let flat = lo + w.trailing_zeros() as usize;
                bins[usize::from(lut[usize::from(self.counters[flat])])] += 1;
                w &= w - 1;
            }
        }
        crate::CounterHistogram::from_bins(bins)
    }

    /// Number of sketch entries whose hot bit is set (diagnostics).
    pub fn hot_bits_set(&self) -> usize {
        self.hot.count_ones()
    }

    /// Serialises the mutable sketch state (counters, hot/valid bits,
    /// stream length) for a machine snapshot. Construction parameters
    /// and the derived hash stage are *not* included: a snapshot is
    /// restored onto a sketch freshly built with the same params.
    pub fn snapshot(&self) -> Json {
        Json::obj([
            ("counters", Json::Str(hex_from_u16s(&self.counters))),
            ("hot", Json::Str(hex_from_u64s(self.hot.words()))),
            ("valid", Json::Str(hex_from_u64s(self.valid.words()))),
            ("stream_len", Json::U64(self.stream_len)),
            ("eager_clear", Json::Bool(self.eager_clear)),
        ])
    }

    /// Restores the state captured by [`CmSketch::snapshot`] onto this
    /// sketch, which must have been built with the same parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] when a field is missing, malformed,
    /// or sized for a different sketch geometry.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        let counters = snap.req_u16s("counters")?;
        if counters.len() != self.counters.len() {
            return Err(Error::snapshot(format!(
                "sketch counter array has {} entries, expected {}",
                counters.len(),
                self.counters.len()
            )));
        }
        let hot = snap.req_u64s("hot")?;
        let valid = snap.req_u64s("valid")?;
        let stream_len = snap.req_u64("stream_len")?;
        let eager_clear = snap.req_bool("eager_clear")?;
        if !self.hot.load_words(&hot) || !self.valid.load_words(&valid) {
            return Err(Error::snapshot("sketch bitset word count mismatch"));
        }
        self.counters = counters;
        self.stream_len = stream_len;
        self.eager_clear = eager_clear;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(i: u64) -> DevicePage {
        DevicePage::new(i)
    }

    #[test]
    fn paper_default_params_match_table_iv() {
        let p = SketchParams::paper_default();
        assert_eq!(p.width, 512 * 1024);
        assert_eq!(p.depth, 2);
        assert_eq!(p.hot_buffer_entries, 16 * 1024);
        p.validate().expect("paper defaults are valid");
    }

    #[test]
    fn rejects_bad_params() {
        let mut p = SketchParams::small();
        p.width = 1000; // not a power of two
        assert!(p.validate().is_err());
        p = SketchParams::small();
        p.depth = 0;
        assert!(p.validate().is_err());
        p = SketchParams::small();
        p.depth = MAX_DEPTH + 1;
        assert!(p.validate().is_err());
        p = SketchParams::small();
        p.hot_buffer_entries = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn epsilon_delta() {
        let p = SketchParams { width: 1024, depth: 3, seed: 0, hot_buffer_entries: 16 };
        assert!((p.epsilon() - 2.0 / 1024.0).abs() < 1e-12);
        assert!((p.delta() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn never_underestimates_single_page() {
        let mut s = CmSketch::new(SketchParams::small()).unwrap();
        for n in 1..=100u16 {
            let est = s.update(page(7));
            assert!(est >= n, "estimate {est} below true count {n}");
        }
    }

    #[test]
    fn distinct_pages_mostly_independent() {
        let mut s = CmSketch::new(SketchParams::small()).unwrap();
        for _ in 0..10 {
            s.update(page(1));
        }
        // With W=4096 and 2 pages, collision probability is tiny.
        assert!(s.estimate(page(2)) <= 10);
        assert!(s.estimate(page(1)) >= 10);
    }

    #[test]
    fn clear_resets_estimates_and_stream_len() {
        let mut s = CmSketch::new(SketchParams::small()).unwrap();
        for i in 0..100 {
            s.update(page(i));
        }
        assert_eq!(s.stream_len(), 100);
        s.clear();
        assert_eq!(s.stream_len(), 0);
        for i in 0..100 {
            assert_eq!(s.estimate(page(i)), 0, "page {i} must read 0 after clear");
        }
    }

    #[test]
    fn lazy_and_eager_clear_equivalent() {
        let params = SketchParams::small();
        let mut lazy = CmSketch::new(params).unwrap();
        let mut eager = CmSketch::new(params).unwrap();
        eager.set_eager_clear(true);
        for round in 0..3 {
            for i in 0..500u64 {
                let p = page(i * 31 % 97 + round);
                assert_eq!(lazy.update(p), eager.update(p));
            }
            for i in 0..200u64 {
                assert_eq!(lazy.estimate(page(i)), eager.estimate(page(i)));
            }
            lazy.clear();
            eager.clear();
        }
    }

    #[test]
    fn counters_saturate_at_u16_max() {
        let mut s = CmSketch::new(SketchParams { width: 2, depth: 1, seed: 1, hot_buffer_entries: 4 }).unwrap();
        for _ in 0..70_000u32 {
            s.update(page(5));
        }
        assert_eq!(s.estimate(page(5)), u16::MAX);
    }

    #[test]
    fn test_and_set_hot_reports_duplicates() {
        let mut s = CmSketch::new(SketchParams::small()).unwrap();
        assert!(!s.test_and_set_hot(page(3)), "first report is new");
        assert!(s.test_and_set_hot(page(3)), "second report is duplicate");
        s.clear();
        assert!(!s.test_and_set_hot(page(3)), "clear resets hot bits");
    }

    #[test]
    fn lane_counters_reflect_updates() {
        let mut s = CmSketch::new(SketchParams::small()).unwrap();
        for _ in 0..5 {
            s.update(page(11));
        }
        let total: u64 = s.lane_counters(0).map(u64::from).sum();
        assert_eq!(total, 5, "lane 0 must hold exactly the 5 increments");
    }

    #[test]
    fn lane_histogram_matches_naive_binning() {
        // Wide sketch (whole words per lane) and a narrow one (lanes
        // smaller than a 64-bit word, exercising the partial-word
        // masking) must both agree with the element-at-a-time path.
        for params in [
            SketchParams::small(),
            SketchParams { width: 32, depth: 3, seed: 9, hot_buffer_entries: 4 },
        ] {
            let mut s = CmSketch::new(params).unwrap();
            for i in 0..10_000u64 {
                s.update(page(i % 311));
            }
            for lane in 0..params.depth {
                let naive = crate::CounterHistogram::from_counters(s.lane_counters(lane));
                assert_eq!(s.lane_histogram(lane), naive, "lane {lane} of {params:?}");
            }
        }
    }

    #[test]
    fn batched_updates_match_serial() {
        let params = SketchParams::small();
        let mut serial = CmSketch::new(params).unwrap();
        let mut batched = CmSketch::new(params).unwrap();
        let pages: Vec<DevicePage> = (0..1000u64).map(|i| page(i * 37 % 211)).collect();
        let serial_ests: Vec<u16> = pages.iter().map(|&p| serial.update(p)).collect();
        let mut ests = Vec::new();
        let mut all = Vec::new();
        // Uneven chunk sizes exercise batch tails.
        for chunk in pages.chunks(17) {
            batched.update_batch(chunk, &mut ests);
            all.extend_from_slice(&ests);
        }
        assert_eq!(all, serial_ests, "per-page estimates must match");
        assert_eq!(batched.stream_len(), serial.stream_len());
        for i in 0..300u64 {
            assert_eq!(batched.estimate(page(i)), serial.estimate(page(i)), "page {i}");
        }
    }

    #[test]
    fn stream_len_counts_every_update() {
        let mut s = CmSketch::new(SketchParams::small()).unwrap();
        for i in 0..37 {
            s.update(page(i % 5));
        }
        assert_eq!(s.stream_len(), 37);
    }
}
