//! A compact fixed-size bitset used for hot and valid bits.
//!
//! The paper stores hot/valid bits "physically arranged in a contiguous
//! manner, allowing for rapid resetting"; a `Vec<u64>` with word-wise clear
//! is the software equivalent.

#[derive(Debug, Clone)]
pub(crate) struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    pub(crate) fn new(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(64)], len }
    }

    #[inline]
    pub(crate) fn get(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len);
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    #[inline]
    pub(crate) fn set(&mut self, idx: usize) {
        debug_assert!(idx < self.len);
        self.words[idx / 64] |= 1 << (idx % 64);
    }

    /// Sets the bit and returns its previous value — one word access
    /// where the batched update paths would otherwise do a `get` plus a
    /// conditional `set`.
    #[inline]
    pub(crate) fn test_and_set(&mut self, idx: usize) -> bool {
        debug_assert!(idx < self.len);
        let word = &mut self.words[idx / 64];
        let bit = 1u64 << (idx % 64);
        let was = *word & bit != 0;
        *word |= bit;
        was
    }

    /// Word-wise clear: the "rapid reset" path.
    #[inline]
    pub(crate) fn clear_all(&mut self) {
        self.words.fill(0);
    }

    pub(crate) fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Raw backing words, for checkpointing.
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Replaces the backing words from a checkpoint. Returns `false`
    /// (leaving the set untouched) when the word count does not match
    /// this set's length.
    pub(crate) fn load_words(&mut self, words: &[u64]) -> bool {
        if words.len() != self.words.len() {
            return false;
        }
        self.words.copy_from_slice(words);
        true
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bs = BitSet::new(130);
        assert!(!bs.get(0));
        bs.set(0);
        bs.set(64);
        bs.set(129);
        assert!(bs.get(0) && bs.get(64) && bs.get(129));
        assert!(!bs.get(1));
        assert_eq!(bs.count_ones(), 3);
        bs.clear_all();
        assert_eq!(bs.count_ones(), 0);
        assert_eq!(bs.len(), 130);
    }

    #[test]
    fn test_and_set_reports_previous_value() {
        let mut bs = BitSet::new(70);
        assert!(!bs.test_and_set(65));
        assert!(bs.test_and_set(65));
        assert!(bs.get(65));
        assert!(!bs.get(64));
    }

    #[test]
    fn word_boundary_independence() {
        let mut bs = BitSet::new(128);
        bs.set(63);
        assert!(!bs.get(64));
        bs.set(64);
        assert!(bs.get(63) && bs.get(64));
    }
}
