//! Property-based tests for the sketch algorithms.
//!
//! These pin down the mathematical invariants the paper relies on:
//! CM-sketch one-sided error, hot-filter completeness, clear-mode
//! equivalence, histogram/quantile consistency, and the agreement of the
//! histogram error bound with the exact sorted computation.

use std::collections::HashMap;

use neomem_sketch::{error_bound, CmSketch, CounterHistogram, HotPageDetector, SketchParams};
use neomem_types::DevicePage;
use proptest::prelude::*;

fn small_params() -> SketchParams {
    SketchParams { width: 1 << 10, depth: 2, seed: 0xC0FFEE, hot_buffer_entries: 4096 }
}

proptest! {
    // Fixed case count and no failure-persistence files: runs are
    // deterministic and CI-reproducible.
    #![proptest_config(ProptestConfig {
        cases: 64,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]
    /// CM sketch never underestimates: `â(P) >= a(P)` (Eq. 3 lower side).
    #[test]
    fn sketch_never_underestimates(stream in prop::collection::vec(0u64..256, 1..2000)) {
        let mut sketch = CmSketch::new(small_params()).unwrap();
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &p in &stream {
            sketch.update(DevicePage::new(p));
            *truth.entry(p).or_default() += 1;
        }
        for (&p, &count) in &truth {
            let est = sketch.estimate(DevicePage::new(p)) as u64;
            prop_assert!(est >= count.min(u16::MAX as u64),
                "page {} estimated {} < true {}", p, est, count);
        }
    }

    /// The classical bound holds: `â(P) <= a(P) + εN` (Eq. 3 upper side),
    /// which for ε = 2/W follows deterministically per-lane... but only in
    /// expectation per lane; the min over D lanes satisfies it with
    /// probability 1-δ. We check the *lane-sum conservation* instead, which
    /// is exact: each lane's counters sum to N.
    #[test]
    fn lane_sums_equal_stream_length(stream in prop::collection::vec(0u64..100_000, 0..3000)) {
        let mut sketch = CmSketch::new(small_params()).unwrap();
        for &p in &stream {
            sketch.update(DevicePage::new(p));
        }
        for lane in 0..2 {
            let sum: u64 = sketch.lane_counters(lane).map(u64::from).sum();
            prop_assert_eq!(sum, stream.len() as u64, "lane {} must conserve mass", lane);
        }
    }

    /// Lazy (valid-bit) clear and eager zeroing are observationally
    /// equivalent across interleaved update/estimate/clear sequences.
    #[test]
    fn clear_modes_equivalent(
        rounds in prop::collection::vec(prop::collection::vec(0u64..512, 0..300), 1..5),
    ) {
        let mut lazy = CmSketch::new(small_params()).unwrap();
        let mut eager = CmSketch::new(small_params()).unwrap();
        eager.set_eager_clear(true);
        for round in &rounds {
            for &p in round {
                prop_assert_eq!(lazy.update(DevicePage::new(p)), eager.update(DevicePage::new(p)));
            }
            for probe in 0..64u64 {
                prop_assert_eq!(
                    lazy.estimate(DevicePage::new(probe)),
                    eager.estimate(DevicePage::new(probe))
                );
            }
            lazy.clear();
            eager.clear();
        }
    }

    /// Hot-page detection is *complete*: every page whose true count
    /// exceeds θ is reported (CM sketch cannot underestimate, and the
    /// filter only suppresses duplicates).
    #[test]
    fn detector_reports_every_truly_hot_page(
        stream in prop::collection::vec(0u64..64, 1..4000),
        threshold in 1u16..20,
    ) {
        let mut det = HotPageDetector::new(small_params()).unwrap();
        det.set_threshold(threshold);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &p in &stream {
            det.observe(DevicePage::new(p));
            *truth.entry(p).or_default() += 1;
        }
        let reported: std::collections::HashSet<u64> =
            det.drain_hot_pages().map(|p| p.index()).collect();
        for (&p, &count) in &truth {
            if count > threshold as u64 {
                prop_assert!(reported.contains(&p),
                    "page {} with count {} > θ={} missing from reports", p, count, threshold);
            }
        }
    }

    /// Each page is reported at most once per detection period.
    #[test]
    fn detector_never_duplicates(stream in prop::collection::vec(0u64..32, 1..4000)) {
        let mut det = HotPageDetector::new(small_params()).unwrap();
        det.set_threshold(2);
        for &p in &stream {
            det.observe(DevicePage::new(p));
        }
        let reported: Vec<u64> = det.drain_hot_pages().map(|p| p.index()).collect();
        let mut dedup = reported.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(reported.len(), dedup.len(), "duplicate hot-page reports");
    }

    /// Histogram total equals the number of added counters, and the
    /// quantile function is monotone in the fraction.
    #[test]
    fn histogram_total_and_monotonicity(values in prop::collection::vec(0u16..u16::MAX, 0..2000)) {
        let hist = CounterHistogram::from_counters(values.iter().copied());
        prop_assert_eq!(hist.total(), values.len() as u64);
        let mut prev = 0u16;
        for i in 0..=20 {
            let q = hist.quantile(i as f64 / 20.0);
            prop_assert!(q >= prev);
            prev = q;
        }
    }

    /// The histogram quantile brackets the exact quantile: the exact
    /// order statistic falls inside the bin the histogram answers from.
    #[test]
    fn histogram_quantile_brackets_exact(
        mut values in prop::collection::vec(0u16..10_000, 1..1000),
        frac_millis in 0u32..=1000,
    ) {
        let frac = frac_millis as f64 / 1000.0;
        let hist = CounterHistogram::from_counters(values.iter().copied());
        values.sort_unstable();
        let rank = ((frac * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact_q = values[rank - 1];
        let hist_q = hist.quantile(frac);
        // hist_q is the inclusive upper value of the bin containing the
        // exact order statistic.
        let bin = hist.spec().bin_of(exact_q);
        prop_assert_eq!(u32::from(hist_q), hist.spec().upper_value(bin).min(u16::MAX as u32),
            "exact {} (bin {}) vs hist {}", exact_q, bin, hist_q);
    }

    /// Histogram-based error bound never exceeds the exact bound and is
    /// within one geometric bin below it.
    #[test]
    fn error_bound_paths_agree(values in prop::collection::vec(0u16..50_000, 1..2000)) {
        let hist = CounterHistogram::from_counters(values.iter().copied());
        let e_exact = error_bound::exact(values.iter().copied(), 0.25, 2);
        let e_hist = error_bound::from_histogram(&hist, 0.25, 2);
        prop_assert!(e_hist <= e_exact, "hist bound {} above exact {}", e_hist, e_exact);
        let bin_gap = hist.spec().bin_of(e_exact).saturating_sub(hist.spec().bin_of(e_hist));
        prop_assert!(bin_gap <= 1, "bounds {} / {} differ by {} bins", e_hist, e_exact, bin_gap);
    }

    /// After clear, the detector re-reports pages that become hot again —
    /// the periodic `clear_interval` reset must not permanently mute pages.
    #[test]
    fn clear_unmutes_pages(page in 0u64..1000, reps in 3u16..30) {
        let mut det = HotPageDetector::new(small_params()).unwrap();
        det.set_threshold(2);
        for _ in 0..reps {
            det.observe(DevicePage::new(page));
        }
        let first: Vec<_> = det.drain_hot_pages().collect();
        prop_assert_eq!(first.len(), 1);
        det.clear();
        det.set_threshold(2);
        for _ in 0..reps {
            det.observe(DevicePage::new(page));
        }
        let second: Vec<_> = det.drain_hot_pages().collect();
        prop_assert_eq!(second.len(), 1, "page must be reportable after clear");
    }
}
