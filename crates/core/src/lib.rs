//! # NeoMem — CXL-native memory tiering, reproduced in Rust
//!
//! A full-system reproduction of *"NeoMem: Hardware/Software Co-Design
//! for CXL-Native Memory Tiering"* (MICRO 2024). The workspace models
//! every layer of the paper's stack — the NeoProf device-side profiler
//! (Count-Min sketch, hot-page filter, histogram unit, MMIO command
//! set), the Linux-style tiering kernel (page table, LRU-2Q, migration
//! with ping-pong tracking), the baseline profilers (PEBS, PTE-scan/
//! DAMON, hint faults), the paper's eight benchmarks as access-stream
//! generators, and a virtual-clock simulator that turns it all into
//! runtimes, traffic counts and timelines.
//!
//! This crate is the front door: a preset-driven [`Experiment`] builder
//! plus re-exports of every subsystem for users who want to compose the
//! pieces themselves.
//!
//! ## Quickstart
//!
//! ```
//! use neomem::prelude::*;
//!
//! // GUPS under the NeoMem policy at a 1:2 fast:slow ratio.
//! let report = Experiment::builder()
//!     .workload(WorkloadKind::Gups)
//!     .policy(PolicyKind::NeoMem)
//!     .rss_pages(2048)
//!     .accesses(100_000)
//!     .build()?
//!     .run();
//! assert!(report.runtime.as_nanos() > 0);
//! # Ok::<(), neomem::Error>(())
//! ```
//!
//! ## Layer map
//!
//! | Module | Contents |
//! |---|---|
//! | [`sketch`] | CM-sketch, H3 hashing, hot-page detector, histogram, error bounds |
//! | [`neoprof`] | the device model: monitors, FIFOs, MMIO commands, HW cost |
//! | [`cache`] | L1/L2/LLC + TLB simulation |
//! | [`mem`] | tiered memory nodes, bandwidth meters, frame allocation |
//! | [`kernel`] | page table, LRU-2Q, migration engine, THP |
//! | [`profilers`] | PEBS / PTE-scan / DAMON / hint-fault / NeoProf driver |
//! | [`policies`] | NeoMem daemon (Algorithm 1) + all baselines |
//! | [`workloads`] | the eight benchmarks + Redis as stream generators |
//! | [`sim`] | the virtual-clock system simulator |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod experiment;

pub use experiment::{build_policy, Experiment, ExperimentBuilder, PolicyOverrides};

pub use neomem_types::{Error, Result};

/// Domain newtypes and shared types.
pub mod types {
    pub use neomem_types::*;
}
/// Sketch algorithms (paper §IV-B).
pub mod sketch {
    pub use neomem_sketch::*;
}
/// Cache hierarchy and TLB simulation.
pub mod cache {
    pub use neomem_cache::*;
}
/// Tiered memory-node model.
pub mod mem {
    pub use neomem_mem::*;
}
/// The NeoProf device model (paper §IV).
pub mod neoprof {
    pub use neomem_neoprof::*;
}
/// Simulated OS kernel memory management.
pub mod kernel {
    pub use neomem_kernel::*;
}
/// Profiling mechanisms (paper §II-C).
pub mod profilers {
    pub use neomem_profilers::*;
}
/// Tiering policies (paper §V + baselines).
pub mod policies {
    pub use neomem_policies::*;
}
/// Workload generators (paper §VI-A).
pub mod workloads {
    pub use neomem_workloads::*;
}
/// The full-system simulator.
pub mod sim {
    pub use neomem_sim::*;
}

/// The most common imports for experiment-level use.
pub mod prelude {
    pub use crate::experiment::{build_policy, Experiment, ExperimentBuilder, PolicyOverrides};
    pub use neomem_policies::PolicyKind;
    pub use neomem_sim::{
        CoRunConfig, CoRunReport, CoRunSimulation, MachineDescription, PipelineMode, RunReport,
        SimConfig, Simulation, TimelinePoint,
    };
    pub use neomem_types::{Bandwidth, Bytes, FaultKind, FaultPlan, Nanos, Tier};
    pub use neomem_workloads::{PhaseSpec, Scenario, TenantMix, WorkloadKind};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn prelude_covers_the_quickstart() {
        let report = Experiment::builder()
            .workload(WorkloadKind::Silo)
            .policy(PolicyKind::FirstTouch)
            .rss_pages(1024)
            .accesses(20_000)
            .build()
            .expect("valid experiment")
            .run();
        assert_eq!(report.policy, "First-touch NUMA");
        assert_eq!(report.workload, "Silo");
        assert!(report.accesses >= 20_000);
    }
}
