//! The experiment builder: paper-preset construction of simulations.

use neomem_neoprof::NeoProfConfig;
use neomem_policies::{
    FirstTouchPolicy, HintFaultPolicy, HintFaultPolicyConfig, MemtisPolicy, NeoMemParams,
    NeoMemPolicy, PebsPolicy, PebsPolicyConfig, PolicyBox, PolicyKind, PteScanPolicy,
    PteScanPolicyConfig, ThresholdMode,
};
use neomem_profilers::{NeoProfDriverConfig, PebsConfig};
use neomem_sim::{MachineDescription, RunReport, SimConfig, Simulation};
use neomem_sketch::SketchParams;
use neomem_types::{Bandwidth, Error, Nanos, PageNum, Result, Tier};
use neomem_workloads::WorkloadKind;

/// Optional per-policy parameter overrides for sweeps and ablations.
#[derive(Debug, Clone, Copy, Default)]
pub struct PolicyOverrides {
    /// Migration quota (Table V `mquota`, Fig. 15b sweep).
    pub mquota: Option<Bandwidth>,
    /// NeoMem's hot-page readout cadence (Fig. 15a sweep).
    pub migration_interval: Option<Nanos>,
    /// NeoProf sketch parameters (Fig. 15c/d sweeps).
    pub sketch: Option<SketchParams>,
    /// PEBS sampling interval (Fig. 4c sweep, Table V range 200–5000).
    pub pebs_sample_interval: Option<u64>,
    /// Fast-tier fairness cap for co-run cells: each tenant's fast-tier
    /// occupancy is capped at `cap ×` its weighted fair share. Ignored
    /// by [`build_policy`] (it is not a policy-construction parameter);
    /// the co-run execution path forwards it to
    /// [`neomem_policies::TieringPolicy::configure_tenants`] via the
    /// tenant layout. `None` = no cap.
    pub corun_fast_share_cap: Option<f64>,
    /// NeoProf monitor→core FIFO depth (Table IV default 4096).
    pub neoprof_fifo_depth: Option<usize>,
    /// Pages the NeoProf low-frequency core drains per tick (Table IV
    /// default 4096).
    pub neoprof_drain_per_tick: Option<usize>,
}

impl PolicyOverrides {
    /// Folds a machine description's `[neoprof]` knobs into this
    /// override set. Sketch fields start from
    /// [`SketchParams::paper_default`] (or an already-present sketch
    /// override) so a file that sets only `sketch_width` keeps the
    /// paper's depth/seed/buffer. A description with no knobs returns
    /// the overrides untouched — the byte-identity guarantee for
    /// registry-built experiments.
    pub fn with_machine(mut self, machine: &MachineDescription) -> Self {
        let knobs = &machine.neoprof;
        if knobs.is_default() {
            return self;
        }
        let sketch_touched = knobs.sketch_width.is_some()
            || knobs.sketch_depth.is_some()
            || knobs.sketch_seed.is_some()
            || knobs.hot_buffer_entries.is_some();
        if sketch_touched {
            let mut sketch = self.sketch.unwrap_or_else(SketchParams::paper_default);
            if let Some(width) = knobs.sketch_width {
                sketch.width = width;
            }
            if let Some(depth) = knobs.sketch_depth {
                sketch.depth = depth;
            }
            if let Some(seed) = knobs.sketch_seed {
                sketch.seed = seed;
            }
            if let Some(entries) = knobs.hot_buffer_entries {
                sketch.hot_buffer_entries = entries;
            }
            self.sketch = Some(sketch);
        }
        if knobs.fifo_depth.is_some() {
            self.neoprof_fifo_depth = knobs.fifo_depth;
        }
        if knobs.drain_per_tick.is_some() {
            self.neoprof_drain_per_tick = knobs.drain_per_tick;
        }
        self
    }
}

/// Builds [`neomem_policies::TieringPolicy`] instances from a
/// [`PolicyKind`], sized for a given simulation configuration.
///
/// `time_scale` divides the paper's daemon cadences (Table V) so that
/// millisecond-scale simulated runs exercise the same number of policy
/// decisions as the paper's minute-scale runs.
///
/// # Errors
///
/// Propagates invalid NeoProf sketch parameters.
pub fn build_policy(
    kind: PolicyKind,
    config: &SimConfig,
    time_scale: u64,
    overrides: PolicyOverrides,
) -> Result<PolicyBox> {
    let mem = config.memory_config();
    let slow_base = PageNum::new(mem.fast.capacity_frames);
    let mquota = overrides.mquota.unwrap_or(Bandwidth::from_mib_per_sec(256));
    let policy: PolicyBox = match kind {
        PolicyKind::NeoMem | PolicyKind::NeoMemFixed(_) | PolicyKind::NeoMemContentionAware => {
            let mut params = NeoMemParams::scaled(time_scale);
            params.mquota = mquota;
            if let Some(interval) = overrides.migration_interval {
                params.migration_interval = interval;
            }
            if let PolicyKind::NeoMemFixed(theta) = kind {
                params.threshold_mode = ThresholdMode::Fixed(theta);
            }
            if kind == PolicyKind::NeoMemContentionAware {
                params.contention_aware = true;
            }
            let mut dev = NeoProfConfig::paper_default(slow_base);
            if let Some(sketch) = overrides.sketch {
                dev.sketch = sketch;
            }
            if let Some(depth) = overrides.neoprof_fifo_depth {
                dev.fifo_depth = depth;
            }
            if let Some(drain) = overrides.neoprof_drain_per_tick {
                dev.drain_per_tick = drain;
            }
            NeoMemPolicy::new(dev, NeoProfDriverConfig::scaled(time_scale), params)?.into()
        }
        PolicyKind::Pebs => {
            let mut cfg = PebsPolicyConfig::scaled(time_scale);
            if let Some(interval) = overrides.pebs_sample_interval {
                cfg.pebs = PebsConfig { sample_interval: interval, ..cfg.pebs };
            }
            PebsPolicy::new(cfg, mquota).into()
        }
        PolicyKind::Memtis => {
            let mut policy = MemtisPolicy::scaled(time_scale, mquota);
            if let Some(interval) = overrides.pebs_sample_interval {
                policy = MemtisPolicy::new(
                    PebsConfig { sample_interval: interval, ..PebsConfig::default() },
                    mquota,
                    (Nanos::from_secs(1) / time_scale).max(Nanos::from_millis(2)),
                );
            }
            policy.into()
        }
        PolicyKind::PteScan => PteScanPolicy::new(
            PteScanPolicyConfig::scaled(time_scale),
            config.rss_pages,
            mquota,
        )
        .into(),
        PolicyKind::Tpp => {
            HintFaultPolicy::new(HintFaultPolicyConfig::tpp().scaled(time_scale), mquota).into()
        }
        PolicyKind::AutoNuma => HintFaultPolicy::new(
            HintFaultPolicyConfig::autonuma().scaled(time_scale),
            mquota,
        )
        .into(),
        PolicyKind::FirstTouch => FirstTouchPolicy::new().into(),
        PolicyKind::PinnedFast => FirstTouchPolicy::pinned(Tier::Fast).into(),
        PolicyKind::PinnedSlow => FirstTouchPolicy::pinned(Tier::Slow).into(),
    };
    Ok(policy)
}

/// A fully specified experiment: workload × policy × machine.
#[derive(Debug)]
pub struct Experiment {
    config: SimConfig,
    workload: WorkloadKind,
    policy: PolicyKind,
    seed: u64,
    time_scale: u64,
    overrides: PolicyOverrides,
}

impl Experiment {
    /// Starts building an experiment.
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::default()
    }

    /// The simulation configuration in force.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the experiment to completion.
    ///
    /// # Panics
    ///
    /// Panics only on internal invariant violations (the builder
    /// validates configurations).
    pub fn run(self) -> RunReport {
        self.into_simulation().run()
    }

    /// Consumes the experiment into its configured [`Simulation`]
    /// without running it — the entry point for snapshot/warm-start
    /// flows ([`Simulation::snapshot_at`], [`Simulation::run_from`]).
    ///
    /// # Panics
    ///
    /// Panics only on internal invariant violations (the builder
    /// validates configurations).
    pub fn into_simulation(self) -> Simulation {
        let workload = self.workload.build(self.config.rss_pages, self.seed);
        let policy = build_policy(self.policy, &self.config, self.time_scale, self.overrides)
            .expect("policy construction validated at build time");
        Simulation::new(self.config, workload, policy).expect("config validated at build time")
    }
}

/// Builder for [`Experiment`].
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    workload: WorkloadKind,
    policy: PolicyKind,
    rss_pages: u64,
    ratio: u64,
    accesses: u64,
    seed: u64,
    time_scale: u64,
    large_machine: bool,
    machine: Option<MachineDescription>,
    batch_size: Option<usize>,
    overrides: PolicyOverrides,
    config_hook: Option<fn(&mut SimConfig)>,
}

impl Default for ExperimentBuilder {
    fn default() -> Self {
        Self {
            workload: WorkloadKind::Gups,
            policy: PolicyKind::NeoMem,
            rss_pages: 4096,
            ratio: 2,
            accesses: 500_000,
            seed: 42,
            time_scale: 1000,
            large_machine: false,
            machine: None,
            batch_size: None,
            overrides: PolicyOverrides::default(),
            config_hook: None,
        }
    }
}

impl ExperimentBuilder {
    /// Selects the workload (default: GUPS).
    pub fn workload(mut self, kind: WorkloadKind) -> Self {
        self.workload = kind;
        self
    }

    /// Selects the tiering policy (default: NeoMem).
    pub fn policy(mut self, kind: PolicyKind) -> Self {
        self.policy = kind;
        self
    }

    /// Sets the footprint in 4 KiB pages (default: 4096).
    pub fn rss_pages(mut self, pages: u64) -> Self {
        self.rss_pages = pages;
        self
    }

    /// Sets the fast:slow capacity ratio `1:ratio` (default 1:2,
    /// Fig. 12 uses 2/4/8).
    pub fn ratio(mut self, ratio: u64) -> Self {
        self.ratio = ratio;
        self
    }

    /// Sets the number of CPU accesses to simulate (default 500 k).
    pub fn accesses(mut self, accesses: u64) -> Self {
        self.accesses = accesses;
        self
    }

    /// Sets the workload seed (default 42).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Divides the paper's daemon cadences by `scale` (default 1000).
    pub fn time_scale(mut self, scale: u64) -> Self {
        self.time_scale = scale.max(1);
        self
    }

    /// Uses the full-size cache/TLB presets (for footprints ≥ ~32 Ki
    /// pages).
    pub fn large_machine(mut self, large: bool) -> Self {
        self.large_machine = large;
        self
    }

    /// Builds the simulation from a declarative machine description
    /// (registry/config-file path) instead of the quick/large presets.
    /// The description's own preset supersedes
    /// [`ExperimentBuilder::large_machine`], and its `[neoprof]` knobs
    /// fold into the policy overrides. A description with no overrides
    /// reproduces the preset path exactly.
    pub fn machine(mut self, machine: MachineDescription) -> Self {
        self.machine = Some(machine);
        self
    }

    /// Overrides the engine's event batch size (default: the
    /// [`SimConfig`] preset). A host-side dispatch knob only — any
    /// value yields bit-identical simulated results; 1 recovers the
    /// event-at-a-time seed path.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = Some(batch_size);
        self
    }

    /// Applies policy parameter overrides.
    pub fn overrides(mut self, overrides: PolicyOverrides) -> Self {
        self.overrides = overrides;
        self
    }

    /// Installs a final hook to tweak the [`SimConfig`] (cache sizes,
    /// latencies, sampling cadence, ...).
    pub fn configure(mut self, hook: fn(&mut SimConfig)) -> Self {
        self.config_hook = Some(hook);
        self
    }

    /// Validates and builds the experiment.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for inconsistent machine
    /// configurations or invalid policy parameters.
    pub fn build(self) -> Result<Experiment> {
        let mut config = if let Some(machine) = &self.machine {
            machine.sim_config(self.rss_pages, self.ratio)
        } else if self.large_machine {
            SimConfig::large(self.rss_pages, self.ratio)
        } else {
            SimConfig::quick(self.rss_pages, self.ratio)
        };
        config.max_accesses = self.accesses;
        if let Some(batch_size) = self.batch_size {
            config.batch_size = batch_size;
        }
        if let Some(hook) = self.config_hook {
            hook(&mut config);
        }
        config.validate()?;
        let overrides = match &self.machine {
            Some(machine) => self.overrides.with_machine(machine),
            None => self.overrides,
        };
        // Validate policy construction early so `run()` cannot fail.
        build_policy(self.policy, &config, self.time_scale, overrides).map_err(|e| {
            Error::invalid_config(format!("policy construction failed: {e}"))
        })?;
        Ok(Experiment {
            config,
            workload: self.workload,
            policy: self.policy,
            seed: self.seed,
            time_scale: self.time_scale,
            overrides,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neomem_policies::TieringPolicy;

    #[test]
    fn builder_defaults_build() {
        let e = Experiment::builder().accesses(10_000).rss_pages(1024).build().unwrap();
        assert_eq!(e.config().rss_pages, 1024);
    }

    #[test]
    fn every_policy_kind_constructs() {
        let config = SimConfig::quick(1024, 2);
        let kinds = [
            PolicyKind::NeoMem,
            PolicyKind::NeoMemFixed(100),
            PolicyKind::NeoMemContentionAware,
            PolicyKind::Pebs,
            PolicyKind::Memtis,
            PolicyKind::PteScan,
            PolicyKind::Tpp,
            PolicyKind::AutoNuma,
            PolicyKind::FirstTouch,
            PolicyKind::PinnedFast,
            PolicyKind::PinnedSlow,
        ];
        for kind in kinds {
            let p = build_policy(kind, &config, 1000, PolicyOverrides::default()).unwrap();
            assert_eq!(p.name(), kind.label(), "{kind:?} label mismatch");
        }
    }

    #[test]
    fn overrides_apply() {
        let config = SimConfig::quick(1024, 2);
        let overrides = PolicyOverrides {
            sketch: Some(SketchParams::small()),
            pebs_sample_interval: Some(10),
            mquota: Some(Bandwidth::from_mib_per_sec(64)),
            migration_interval: Some(Nanos::from_micros(500)),
            ..Default::default()
        };
        // Constructs without error; behavioural effect covered in the
        // sensitivity benches.
        build_policy(PolicyKind::NeoMem, &config, 1000, overrides).unwrap();
        build_policy(PolicyKind::Pebs, &config, 1000, overrides).unwrap();
        build_policy(PolicyKind::Memtis, &config, 1000, overrides).unwrap();
    }

    #[test]
    fn machine_neoprof_knobs_fold_into_overrides() {
        let machine = neomem_sim::machine::MachineDescription::parse(
            "schema = 1\nkind = machine\nname = m\n\
             [neoprof]\nsketch_width = 1024\nfifo_depth = 512\n",
        )
        .unwrap();
        let overrides = PolicyOverrides::default().with_machine(&machine);
        let sketch = overrides.sketch.expect("sketch override materialised");
        assert_eq!(sketch.width, 1024);
        assert_eq!(sketch.depth, SketchParams::paper_default().depth, "untouched fields keep defaults");
        assert_eq!(overrides.neoprof_fifo_depth, Some(512));
        assert_eq!(overrides.neoprof_drain_per_tick, None);
        build_policy(PolicyKind::NeoMem, &SimConfig::quick(1024, 2), 1000, overrides).unwrap();

        // No knobs → overrides pass through untouched (byte-identity).
        let plain = neomem_sim::machine::MachineDescription::parse(
            "schema = 1\nkind = machine\nname = m\n",
        )
        .unwrap();
        let base = PolicyOverrides { pebs_sample_interval: Some(10), ..Default::default() };
        let folded = base.with_machine(&plain);
        assert!(folded.sketch.is_none());
        assert_eq!(folded.pebs_sample_interval, Some(10));
    }

    #[test]
    fn invalid_rss_rejected() {
        assert!(Experiment::builder().rss_pages(0).build().is_err());
    }

    #[test]
    fn invalid_sketch_rejected_at_build() {
        let overrides = PolicyOverrides {
            sketch: Some(SketchParams {
                width: 1000, // not a power of two
                ..SketchParams::small()
            }),
            ..Default::default()
        };
        let err = Experiment::builder()
            .rss_pages(1024)
            .policy(PolicyKind::NeoMem)
            .overrides(overrides)
            .build();
        assert!(err.is_err());
    }
}
