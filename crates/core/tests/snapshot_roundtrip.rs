//! The snapshot contract: snapshot → restore → run is bit-identical to
//! an uninterrupted run — for every policy, every workload kind, with
//! cuts landing mid-phase and at co-run slice boundaries — and hostile
//! snapshot input (corrupt, truncated, mismatched) produces errors,
//! never panics.

use neomem::prelude::*;
use neomem::types::json::Json;

const RSS_PAGES: u64 = 1024;
const ACCESSES: u64 = 24_000;
const SEED: u64 = 2024;

const ALL_POLICIES: [PolicyKind; 11] = [
    PolicyKind::NeoMem,
    PolicyKind::NeoMemFixed(8),
    PolicyKind::NeoMemContentionAware,
    PolicyKind::Pebs,
    PolicyKind::Memtis,
    PolicyKind::PteScan,
    PolicyKind::AutoNuma,
    PolicyKind::Tpp,
    PolicyKind::FirstTouch,
    PolicyKind::PinnedFast,
    PolicyKind::PinnedSlow,
];

fn experiment(kind: WorkloadKind, policy: PolicyKind) -> Experiment {
    Experiment::builder()
        .workload(kind)
        .policy(policy)
        .rss_pages(RSS_PAGES)
        .accesses(ACCESSES)
        .seed(SEED)
        .build()
        .expect("valid experiment")
}

/// Debug output covers every field of a report, with floats printed in
/// shortest-round-trip form — equal strings means equal state.
fn fingerprint(report: &RunReport) -> String {
    format!("{report:?}")
}

/// Straight run vs. snapshot-at-`num/den`-of-runtime + resume.
fn assert_single_round_trip(kind: WorkloadKind, policy: PolicyKind, num: u64, den: u64) {
    let straight = experiment(kind, policy).into_simulation().run();
    let cut = Nanos::new(straight.runtime.as_nanos() * num / den);
    let snap = experiment(kind, policy).into_simulation().snapshot_at(cut);
    let resumed = experiment(kind, policy)
        .into_simulation()
        .run_from(&snap)
        .expect("restore from own snapshot");
    assert_eq!(
        fingerprint(&resumed),
        fingerprint(&straight),
        "{kind} / {policy:?}: resumed run diverged from straight run (cut at {num}/{den})"
    );
}

#[test]
fn every_policy_round_trips_bit_identically() {
    for policy in ALL_POLICIES {
        assert_single_round_trip(WorkloadKind::Gups, policy, 1, 2);
    }
}

#[test]
fn every_workload_kind_round_trips_bit_identically() {
    let mut kinds = WorkloadKind::FIG11.to_vec();
    kinds.push(WorkloadKind::Redis);
    for kind in kinds {
        for policy in [PolicyKind::FirstTouch, PolicyKind::NeoMem] {
            assert_single_round_trip(kind, policy, 1, 2);
        }
    }
}

#[test]
fn early_and_late_cuts_round_trip() {
    for (num, den) in [(1, 10), (1, 4), (3, 4), (99, 100)] {
        assert_single_round_trip(WorkloadKind::PageRank, PolicyKind::NeoMem, num, den);
    }
}

#[test]
fn snapshots_restore_across_batch_sizes() {
    // Standing invariant (c): results are identical at any batch size —
    // and so are snapshots. A snapshot cut from a batch-1 run must
    // resume bit-identically on a batch-256 machine, and vice versa.
    let with_batch = |batch: usize| {
        Experiment::builder()
            .workload(WorkloadKind::Silo)
            .policy(PolicyKind::NeoMem)
            .rss_pages(RSS_PAGES)
            .accesses(ACCESSES)
            .seed(SEED)
            .batch_size(batch)
            .build()
            .expect("valid experiment")
    };
    let straight = with_batch(256).into_simulation().run();
    let cut = Nanos::new(straight.runtime.as_nanos() / 2);
    let snap_small = with_batch(1).into_simulation().snapshot_at(cut);
    let resumed = with_batch(256)
        .into_simulation()
        .run_from(&snap_small)
        .expect("snapshot must restore across batch sizes");
    assert_eq!(fingerprint(&resumed), fingerprint(&straight));
    let snap_large = with_batch(256).into_simulation().snapshot_at(cut);
    assert_eq!(
        snap_large.render_pretty(),
        snap_small.render_pretty(),
        "the snapshot itself must not depend on batch size"
    );
}

fn tiny_mix() -> TenantMix {
    TenantMix::builder()
        .tenant(WorkloadKind::Gups, 512, SEED)
        .weighted_tenant(WorkloadKind::Silo, 512, 2, SEED + 1)
        .build()
        .expect("valid mix")
}

fn corun_config() -> CoRunConfig {
    let mut sim = SimConfig::quick(tiny_mix().total_rss_pages(), 2);
    sim.max_accesses = ACCESSES;
    CoRunConfig { sim, interleave_quantum: 64, fast_share_cap: None }
}

fn corun_policy(kind: PolicyKind, config: &CoRunConfig) -> neomem::policies::PolicyBox {
    build_policy(kind, &config.sim, 1000, PolicyOverrides::default()).expect("valid policy")
}

fn corun_sim(kind: PolicyKind) -> CoRunSimulation {
    let config = corun_config();
    let policy = corun_policy(kind, &config);
    CoRunSimulation::new(config, &tiny_mix(), policy).expect("valid co-run simulation")
}

#[test]
fn corun_round_trips_at_slice_boundaries() {
    // Co-run snapshots cut at the next slice boundary at or after the
    // requested time; resuming must continue the exact slice schedule.
    for policy in [PolicyKind::FirstTouch, PolicyKind::NeoMem] {
        let straight = corun_sim(policy).run();
        for (num, den) in [(1, 4), (1, 2), (3, 4)] {
            let cut = Nanos::new(straight.combined.runtime.as_nanos() * num / den);
            let snap = corun_sim(policy).snapshot_at(cut);
            let resumed =
                corun_sim(policy).run_from(&snap).expect("restore from own co-run snapshot");
            assert_eq!(
                format!("{resumed:?}"),
                format!("{straight:?}"),
                "{policy:?}: co-run resume diverged (cut at {num}/{den})"
            );
        }
    }
}

fn phased_scenario() -> Scenario {
    let mix = TenantMix::builder()
        .tenant(WorkloadKind::Gups, 1024, SEED)
        .tenant(WorkloadKind::Silo, 1024, SEED + 1)
        .build()
        .expect("valid mix");
    Scenario::builder(mix)
        .phased(
            1,
            vec![
                PhaseSpec { kind: WorkloadKind::Gups, rss_pages: 1024, events: 3_000 },
                PhaseSpec { kind: WorkloadKind::Silo, rss_pages: 512, events: 3_000 },
            ],
        )
        .arrive(1, Nanos::from_micros(100))
        .build()
        .expect("valid scenario")
}

fn scenario_sim(kind: PolicyKind) -> CoRunSimulation {
    let mut sim = SimConfig::quick(phased_scenario().mix().total_rss_pages(), 2);
    sim.max_accesses = ACCESSES;
    let config = CoRunConfig { sim, interleave_quantum: 64, fast_share_cap: None };
    let policy = corun_policy(kind, &config);
    CoRunSimulation::with_scenario(config, &phased_scenario(), policy)
        .expect("valid scenario simulation")
}

#[test]
fn scenario_with_phased_workload_round_trips_mid_phase() {
    // Dynamic tenancy + a phased tenant, snapshotted at several points
    // so cuts land inside phases, across phase flips, and around
    // arrival events — including the contention-aware NeoMem variant,
    // whose per-tenant aggressor state must survive the round trip.
    for policy in [PolicyKind::NeoMem, PolicyKind::NeoMemContentionAware] {
        let straight = scenario_sim(policy).run();
        assert!(
            straight.combined.markers.iter().any(|m| m.label == "phase-shift"),
            "scenario must actually flip phases for this test to bite"
        );
        for (num, den) in [(1, 8), (1, 2), (7, 8)] {
            let cut = Nanos::new(straight.combined.runtime.as_nanos() * num / den);
            let snap = scenario_sim(policy).snapshot_at(cut);
            let resumed =
                scenario_sim(policy).run_from(&snap).expect("restore from scenario snapshot");
            assert_eq!(
                format!("{resumed:?}"),
                format!("{straight:?}"),
                "{policy:?}: scenario resume diverged (cut at {num}/{den})"
            );
        }
    }
}

// ---- mid-fault cuts -----------------------------------------------

/// A plan covering all three fault classes, with windows early enough
/// that every edge fires inside the test budget.
fn fault_plan() -> FaultPlan {
    FaultPlan::builder()
        .outage(Nanos::from_micros(200), Nanos::from_micros(300))
        .link_degraded(Nanos::from_micros(700), Nanos::from_micros(200), 4, 2)
        .capacity_loss(Nanos::from_micros(1000), Nanos::from_micros(200), 32)
        .build()
        .expect("valid plan")
}

fn faulted_sim(policy: PolicyKind) -> Simulation {
    let mut config = SimConfig::quick(RSS_PAGES, 2);
    config.max_accesses = ACCESSES;
    config.faults = fault_plan();
    let policy = build_policy(policy, &config, 1000, PolicyOverrides::default())
        .expect("valid policy");
    let workload = WorkloadKind::Gups.build(RSS_PAGES, SEED);
    Simulation::new(config, workload, policy).expect("valid simulation")
}

#[test]
fn mid_fault_cuts_round_trip_bit_identically() {
    // Snapshot cuts landing *inside* each fault window — during the
    // NeoProf outage (NeoMem is on its PTE-scan fallback), during the
    // link throttle, and during the capacity loss (blocked frames +
    // possibly a pending evacuation retry) — must restore and resume
    // to the exact bytes of an uninterrupted run.
    for policy in [PolicyKind::NeoMem, PolicyKind::FirstTouch] {
        let straight = faulted_sim(policy).run();
        let d = straight.degradation.expect("fault plan must produce metrics");
        assert_eq!(d.fault_events, 3, "{policy:?}");
        assert!(
            straight.runtime > Nanos::from_micros(1200),
            "{policy:?}: all windows must close in-run for this test to bite"
        );
        for cut_us in [350u64, 800, 1100] {
            let snap = faulted_sim(policy).snapshot_at(Nanos::from_micros(cut_us));
            let resumed = faulted_sim(policy)
                .run_from(&snap)
                .expect("restore from a mid-fault snapshot");
            assert_eq!(
                fingerprint(&resumed),
                fingerprint(&straight),
                "{policy:?}: mid-fault resume diverged (cut at {cut_us}us)"
            );
        }
    }
}

fn faulted_scenario_sim(policy: PolicyKind) -> CoRunSimulation {
    let mut sim = SimConfig::quick(phased_scenario().mix().total_rss_pages(), 2);
    sim.max_accesses = ACCESSES;
    sim.faults = fault_plan();
    let config = CoRunConfig { sim, interleave_quantum: 64, fast_share_cap: None };
    let policy = corun_policy(policy, &config);
    CoRunSimulation::with_scenario(config, &phased_scenario(), policy)
        .expect("valid faulted scenario simulation")
}

#[test]
fn scenario_with_faults_round_trips_mid_fault() {
    // The co-run engine fires the same fault edges at slice
    // granularity; cuts inside the outage and the throttle window must
    // round-trip there too.
    for policy in [PolicyKind::NeoMem, PolicyKind::NeoMemContentionAware] {
        let straight = faulted_scenario_sim(policy).run();
        straight.combined.degradation.expect("fault plan must produce metrics");
        for cut_us in [350u64, 800] {
            let snap = faulted_scenario_sim(policy).snapshot_at(Nanos::from_micros(cut_us));
            let resumed = faulted_scenario_sim(policy)
                .run_from(&snap)
                .expect("restore from a mid-fault scenario snapshot");
            assert_eq!(
                format!("{resumed:?}"),
                format!("{straight:?}"),
                "{policy:?}: mid-fault scenario resume diverged (cut at {cut_us}us)"
            );
        }
    }
}

// ---- hostile input ------------------------------------------------

fn valid_snapshot() -> Json {
    let report = experiment(WorkloadKind::Gups, PolicyKind::NeoMem).into_simulation().run();
    let cut = Nanos::new(report.runtime.as_nanos() / 2);
    experiment(WorkloadKind::Gups, PolicyKind::NeoMem).into_simulation().snapshot_at(cut)
}

fn restore(snap: &Json) -> Result<RunReport, neomem::Error> {
    experiment(WorkloadKind::Gups, PolicyKind::NeoMem).into_simulation().run_from(snap)
}

fn set_field(snap: &mut Json, key: &str, value: Json) {
    let Json::Obj(fields) = snap else { panic!("snapshot must be an object") };
    let slot = fields.iter_mut().find(|(k, _)| k == key).expect("field present");
    slot.1 = value;
}

#[test]
fn hostile_snapshots_error_instead_of_panicking() {
    let snap = valid_snapshot();
    restore(&snap).expect("the pristine snapshot must restore");

    // Truncated file: the parser rejects it before restore is reached.
    let text = snap.render_pretty();
    assert!(Json::parse(&text[..text.len() / 2]).is_err(), "truncated JSON must not parse");

    // Not an envelope at all.
    assert!(restore(&Json::Null).is_err());
    assert!(restore(&Json::obj([("hello", Json::U64(1))])).is_err());

    // Version from the future.
    let mut version = snap.clone();
    set_field(&mut version, "version", Json::U64(999));
    assert!(restore(&version).is_err(), "version mismatch must be rejected");

    // Wrong schema marker.
    let mut schema = snap.clone();
    set_field(&mut schema, "schema", Json::Str("not-a-machine-snapshot".to_string()));
    assert!(restore(&schema).is_err());

    // A co-run snapshot offered to a single-tenant simulation.
    let mut kind = snap.clone();
    set_field(&mut kind, "kind", Json::Str("corun".to_string()));
    assert!(restore(&kind).is_err());

    // Fingerprint of a differently configured machine.
    let mut fingerprint = snap.clone();
    set_field(&mut fingerprint, "fingerprint", Json::U64(0xdead_beef));
    assert!(restore(&fingerprint).is_err());

    // Wrong workload / wrong policy.
    let mut workload = snap.clone();
    set_field(&mut workload, "workload", Json::Str("Silo".to_string()));
    assert!(restore(&workload).is_err());
    let mut policy = snap.clone();
    set_field(&mut policy, "policy", Json::Str("PEBS".to_string()));
    assert!(restore(&policy).is_err());

    // Gutted state payloads.
    let mut state = snap.clone();
    set_field(&mut state, "state", Json::Null);
    assert!(restore(&state).is_err());
    let mut empty_state = snap.clone();
    set_field(&mut empty_state, "state", Json::obj([] as [(&str, Json); 0]));
    assert!(restore(&empty_state).is_err());
}

#[test]
fn cross_config_snapshots_are_rejected() {
    let snap = valid_snapshot();
    // Same workload and policy, different machine shape.
    let bigger = Experiment::builder()
        .workload(WorkloadKind::Gups)
        .policy(PolicyKind::NeoMem)
        .rss_pages(RSS_PAGES * 2)
        .accesses(ACCESSES)
        .seed(SEED)
        .build()
        .expect("valid experiment");
    let err = bigger.into_simulation().run_from(&snap).expect_err("shape mismatch must error");
    assert!(
        err.to_string().contains("fingerprint"),
        "error should name the fingerprint mismatch, got: {err}"
    );
}
