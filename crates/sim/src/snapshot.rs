//! Snapshot envelopes: the versioned on-disk schema shared by
//! [`crate::Simulation`] and [`crate::CoRunSimulation`] warm-starts.
//!
//! A snapshot is a [`Json`] document with a fixed envelope:
//!
//! ```json
//! {
//!   "schema": "neomem-machine-snapshot",
//!   "version": 1,
//!   "kind": "sim" | "corun",
//!   "fingerprint": <u64>,
//!   "workload": "<name>",
//!   "policy": "<name>",
//!   "state": { ... }
//! }
//! ```
//!
//! The `fingerprint` hashes every behaviour-affecting configuration
//! field *except* `batch_size` — a snapshot restores onto any batch
//! size and thread count (results are bit-identical either way, per
//! the engine's batching invariant), but never onto a differently
//! shaped machine. Loading validates the whole envelope before any
//! state is touched, so corrupt, truncated or mismatched snapshots
//! produce [`neomem_types::Error::Snapshot`] errors, not panics.
//!
//! Inside `state`, floats are stored as their IEEE-754 bit patterns
//! (`f64::to_bits`, a JSON integer) so a restore is bit-exact, and
//! bulk arrays use the hex packing from [`neomem_types::json`].

use neomem_types::json::{hex_from_u64s, Json};
use neomem_types::{Error, Nanos, Result};
use neomem_workloads::Workload;

use crate::config::{PipelineMode, SimConfig};
use crate::corun::CoRunConfig;
use crate::report::{MarkerRecord, TimelinePoint};

/// The `schema` tag every snapshot document carries.
pub const SNAPSHOT_SCHEMA: &str = "neomem-machine-snapshot";

/// The schema version this build writes. Bump on any layout change.
pub const SNAPSHOT_VERSION: u64 = 2;

/// The oldest schema version this build still reads. Version 1
/// documents carry the same component layout (the structure-of-arrays
/// engine core serialises to the version-1 wire format), so they
/// restore unchanged.
pub const SNAPSHOT_MIN_VERSION: u64 = 1;

/// The `kind` tag of single-tenant snapshots.
pub(crate) const KIND_SIM: &str = "sim";

/// The `kind` tag of co-run snapshots.
pub(crate) const KIND_CORUN: &str = "corun";

/// FNV-1a over a string: the configuration fingerprint hash. Stable,
/// dependency-free, and plenty for mismatch *detection* (fingerprints
/// gate restores; they are not security boundaries).
pub(crate) fn fingerprint_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The configuration fingerprint of a single-tenant run: a hash over
/// every behaviour-affecting [`SimConfig`] field, with `batch_size`
/// normalised out — snapshots restore across batch sizes and thread
/// counts (bit-identical results either way) but never across machine
/// shapes.
pub(crate) fn sim_fingerprint(config: &SimConfig) -> u64 {
    let mut c = config.clone();
    c.batch_size = 0;
    c.pipeline = PipelineMode::default();
    fingerprint_str(&strip_pipeline(&format!("{c:?}")))
}

/// The co-run counterpart of [`sim_fingerprint`]: additionally covers
/// the interleave quantum and fairness cap.
pub(crate) fn corun_fingerprint(config: &CoRunConfig) -> u64 {
    let mut c = config.clone();
    c.sim.batch_size = 0;
    c.sim.pipeline = PipelineMode::default();
    fingerprint_str(&strip_pipeline(&format!("{c:?}")))
}

/// Removes the (normalised) pipeline-mode field from a hashed config
/// Debug string. The mode is host-side execution strategy, not machine
/// shape — both modes produce bit-identical results — and stripping it
/// keeps version-1 fingerprints, which predate the field, restorable.
fn strip_pipeline(debug: &str) -> String {
    debug.replace(", pipeline: Staged", "")
}

/// Wraps `state` in the versioned snapshot envelope.
pub(crate) fn envelope(
    kind: &str,
    fingerprint: u64,
    workload: &str,
    policy: &str,
    state: Json,
) -> Json {
    Json::obj([
        ("schema", Json::Str(SNAPSHOT_SCHEMA.to_string())),
        ("version", Json::U64(SNAPSHOT_VERSION)),
        ("kind", Json::Str(kind.to_string())),
        ("fingerprint", Json::U64(fingerprint)),
        ("workload", Json::Str(workload.to_string())),
        ("policy", Json::Str(policy.to_string())),
        ("state", state),
    ])
}

/// Validates the envelope of `snap` against what the caller was built
/// for and returns the inner `state` object. Every check fails with a
/// message naming both sides, and nothing is restored before all of
/// them pass.
pub(crate) fn open_envelope<'a>(
    snap: &'a Json,
    kind: &str,
    fingerprint: u64,
    workload: &str,
    policy: &str,
) -> Result<&'a Json> {
    let schema = snap.req_str("schema")?;
    if schema != SNAPSHOT_SCHEMA {
        return Err(Error::snapshot(format!(
            "not a machine snapshot: schema is {schema:?}, expected {SNAPSHOT_SCHEMA:?}"
        )));
    }
    let version = snap.req_u64("version")?;
    if !(SNAPSHOT_MIN_VERSION..=SNAPSHOT_VERSION).contains(&version) {
        return Err(Error::snapshot(format!(
            "snapshot schema version {version}, this build reads versions \
             {SNAPSHOT_MIN_VERSION}..={SNAPSHOT_VERSION}"
        )));
    }
    let got_kind = snap.req_str("kind")?;
    if got_kind != kind {
        return Err(Error::snapshot(format!(
            "snapshot kind {got_kind:?} cannot restore into a {kind:?} run"
        )));
    }
    let got_fp = snap.req_u64("fingerprint")?;
    if got_fp != fingerprint {
        return Err(Error::snapshot(format!(
            "snapshot fingerprint {got_fp:#018x} != configuration fingerprint \
             {fingerprint:#018x}: the snapshot was taken on a differently configured machine"
        )));
    }
    let got_workload = snap.req_str("workload")?;
    if got_workload != workload {
        return Err(Error::snapshot(format!(
            "snapshot was taken running workload {got_workload:?}, this run is {workload:?}"
        )));
    }
    let got_policy = snap.req_str("policy")?;
    if got_policy != policy {
        return Err(Error::snapshot(format!(
            "snapshot was taken under policy {got_policy:?}, this run uses {policy:?}"
        )));
    }
    snap.req("state")
}

/// Marker labels are `&'static str` in [`MarkerRecord`]; a restore
/// maps the serialized string back onto the production label set.
const MARKER_LABELS: [&str; 8] = [
    "trace-marker",
    "popularity-drift",
    "graph-built",
    "iteration",
    "phase-shift",
    "table-initialized",
    "hot-set-moved",
    "sweep",
];

fn intern_marker_label(label: &str) -> Result<&'static str> {
    MARKER_LABELS
        .iter()
        .find(|&&l| l == label)
        .copied()
        .ok_or_else(|| Error::snapshot(format!("unknown marker label {label:?}")))
}

/// `Option<f64>` → `null` or the bit pattern as a JSON integer.
fn opt_bits(v: Option<f64>) -> Json {
    match v {
        None => Json::Null,
        Some(f) => Json::U64(f.to_bits()),
    }
}

fn opt_bits_back(state: &Json, key: &str) -> Result<Option<f64>> {
    match state.req(key)? {
        Json::Null => Ok(None),
        other => other.as_u64().map(|b| Some(f64::from_bits(b))).ok_or_else(|| {
            Error::snapshot(format!("field {key:?} is not null or a u64 bit pattern"))
        }),
    }
}

/// `Option<u16>` → `null` or a JSON integer.
fn opt_u16(v: Option<u16>) -> Json {
    match v {
        None => Json::Null,
        Some(x) => Json::U64(u64::from(x)),
    }
}

fn opt_u16_back(state: &Json, key: &str) -> Result<Option<u16>> {
    match state.req(key)? {
        Json::Null => Ok(None),
        other => {
            let raw = other
                .as_u64()
                .ok_or_else(|| Error::snapshot(format!("field {key:?} is not null or a u64")))?;
            let v = u16::try_from(raw)
                .map_err(|_| Error::snapshot(format!("field {key:?} value {raw} exceeds u16")))?;
            Ok(Some(v))
        }
    }
}

/// One timeline point, floats as bit patterns.
pub(crate) fn point_to_json(p: &TimelinePoint) -> Json {
    Json::obj([
        ("at", Json::U64(p.at.as_nanos())),
        ("accesses", Json::U64(p.accesses)),
        ("slow_accesses", Json::U64(p.slow_accesses)),
        ("throughput", Json::U64(p.throughput.to_bits())),
        ("threshold", opt_u16(p.threshold)),
        ("p_fraction", opt_bits(p.p_fraction)),
        ("bandwidth_util", opt_bits(p.bandwidth_util)),
        ("read_util", opt_bits(p.read_util)),
        ("write_util", opt_bits(p.write_util)),
        ("error_bound", opt_u16(p.error_bound)),
        (
            "histogram",
            match &p.histogram {
                None => Json::Null,
                Some(h) => Json::Str(hex_from_u64s(h)),
            },
        ),
    ])
}

pub(crate) fn point_from_json(snap: &Json) -> Result<TimelinePoint> {
    let histogram = match snap.req("histogram")? {
        Json::Null => None,
        _ => {
            let bins = snap.req_u64s("histogram")?;
            let n = bins.len();
            let arr: [u64; 64] = bins
                .try_into()
                .map_err(|_| Error::snapshot(format!("histogram has {n} bins, expected 64")))?;
            Some(arr)
        }
    };
    Ok(TimelinePoint {
        at: Nanos::new(snap.req_u64("at")?),
        accesses: snap.req_u64("accesses")?,
        slow_accesses: snap.req_u64("slow_accesses")?,
        throughput: f64::from_bits(snap.req_u64("throughput")?),
        threshold: opt_u16_back(snap, "threshold")?,
        p_fraction: opt_bits_back(snap, "p_fraction")?,
        bandwidth_util: opt_bits_back(snap, "bandwidth_util")?,
        read_util: opt_bits_back(snap, "read_util")?,
        write_util: opt_bits_back(snap, "write_util")?,
        error_bound: opt_u16_back(snap, "error_bound")?,
        histogram,
    })
}

pub(crate) fn timeline_to_json(timeline: &[TimelinePoint]) -> Json {
    Json::Arr(timeline.iter().map(point_to_json).collect())
}

pub(crate) fn timeline_from_json(state: &Json, key: &str) -> Result<Vec<TimelinePoint>> {
    state.req_arr(key)?.iter().map(point_from_json).collect()
}

pub(crate) fn marker_to_json(m: &MarkerRecord) -> Json {
    Json::obj([
        ("at", Json::U64(m.at.as_nanos())),
        ("id", Json::U64(u64::from(m.id))),
        ("label", Json::Str(m.label.to_string())),
    ])
}

pub(crate) fn marker_from_json(snap: &Json) -> Result<MarkerRecord> {
    let raw_id = snap.req_u64("id")?;
    let id = u32::try_from(raw_id)
        .map_err(|_| Error::snapshot(format!("marker id {raw_id} exceeds u32")))?;
    Ok(MarkerRecord {
        at: Nanos::new(snap.req_u64("at")?),
        id,
        label: intern_marker_label(snap.req_str("label")?)?,
    })
}

pub(crate) fn markers_to_json(markers: &[MarkerRecord]) -> Json {
    Json::Arr(markers.iter().map(marker_to_json).collect())
}

pub(crate) fn markers_from_json(state: &Json, key: &str) -> Result<Vec<MarkerRecord>> {
    state.req_arr(key)?.iter().map(marker_from_json).collect()
}

/// Advances a freshly built workload generator past the `consumed`
/// events the snapshotted run already processed. Valid because
/// generators are deterministic and `fill_events(n)` is bit-identical
/// to `n` single-event pulls at any chunking (the batching invariant),
/// so the generator lands in exactly the state the snapshotted run
/// left it in — without serializing generator internals.
pub(crate) fn fast_forward(workload: &mut dyn Workload, consumed: u64) {
    const CHUNK: u64 = 4096;
    let mut buf = Vec::with_capacity(CHUNK.min(consumed) as usize);
    let mut remaining = consumed;
    while remaining > 0 {
        let n = remaining.min(CHUNK) as usize;
        buf.clear();
        workload.fill_events(&mut buf, n);
        remaining -= n as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips() {
        let snap = envelope(KIND_SIM, 42, "gups", "NeoMem", Json::obj([("x", Json::U64(1))]));
        let state = open_envelope(&snap, KIND_SIM, 42, "gups", "NeoMem").unwrap();
        assert_eq!(state.req_u64("x").unwrap(), 1);
    }

    #[test]
    fn envelope_rejects_mismatches() {
        let snap = envelope(KIND_SIM, 42, "gups", "NeoMem", Json::Null);
        for (kind, fp, w, p) in [
            (KIND_CORUN, 42, "gups", "NeoMem"),
            (KIND_SIM, 43, "gups", "NeoMem"),
            (KIND_SIM, 42, "silo", "NeoMem"),
            (KIND_SIM, 42, "gups", "PEBS"),
        ] {
            assert!(open_envelope(&snap, kind, fp, w, p).is_err());
        }
    }

    #[test]
    fn envelope_rejects_wrong_schema_and_version() {
        let mut wrong_schema = envelope(KIND_SIM, 1, "w", "p", Json::Null);
        if let Json::Obj(pairs) = &mut wrong_schema {
            pairs[0].1 = Json::Str("something-else".to_string());
        }
        assert!(open_envelope(&wrong_schema, KIND_SIM, 1, "w", "p").is_err());

        let mut wrong_version = envelope(KIND_SIM, 1, "w", "p", Json::Null);
        if let Json::Obj(pairs) = &mut wrong_version {
            pairs[1].1 = Json::U64(SNAPSHOT_VERSION + 1);
        }
        assert!(open_envelope(&wrong_version, KIND_SIM, 1, "w", "p").is_err());
    }

    #[test]
    fn point_round_trips_bit_exact() {
        let p = TimelinePoint {
            at: Nanos::new(123),
            accesses: 456,
            slow_accesses: 789,
            throughput: 0.1 + 0.2, // a value with an inexact decimal form
            threshold: Some(7),
            p_fraction: Some(1.0 / 3.0),
            bandwidth_util: None,
            read_util: Some(f64::MIN_POSITIVE),
            write_util: None,
            error_bound: None,
            histogram: Some([3; 64]),
        };
        let back = point_from_json(&point_to_json(&p)).unwrap();
        assert_eq!(back.throughput.to_bits(), p.throughput.to_bits());
        assert_eq!(back.p_fraction.unwrap().to_bits(), p.p_fraction.unwrap().to_bits());
        assert_eq!(back.histogram, p.histogram);
        assert_eq!(back.at, p.at);
    }

    #[test]
    fn marker_round_trips_and_rejects_unknown_labels() {
        let m = MarkerRecord { at: Nanos::new(9), id: 3, label: "phase-shift" };
        let back = marker_from_json(&marker_to_json(&m)).unwrap();
        assert_eq!(back.at, m.at);
        assert_eq!(back.id, m.id);
        assert_eq!(back.label, m.label);

        let bogus = Json::obj([
            ("at", Json::U64(0)),
            ("id", Json::U64(0)),
            ("label", Json::Str("not-a-real-label".to_string())),
        ]);
        assert!(marker_from_json(&bogus).is_err());
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        assert_eq!(fingerprint_str("abc"), fingerprint_str("abc"));
        assert_ne!(fingerprint_str("abc"), fingerprint_str("abd"));
    }
}
