//! Run reports and timelines.

use neomem_cache::{HierarchyStats, TlbStats};
use neomem_kernel::KernelStats;
use neomem_types::Nanos;

/// One timeline sample (the raw material of Figs. 14 and 16).
#[derive(Debug, Clone, Default)]
pub struct TimelinePoint {
    /// Sample timestamp.
    pub at: Nanos,
    /// Cumulative CPU accesses.
    pub accesses: u64,
    /// Cumulative slow-tier memory requests.
    pub slow_accesses: u64,
    /// Instantaneous throughput over the last window (accesses/s).
    pub throughput: f64,
    /// Policy threshold θ, when exposed.
    pub threshold: Option<u16>,
    /// Algorithm 1's `p`, when exposed.
    pub p_fraction: Option<f64>,
    /// Slow-tier bandwidth utilisation, when exposed.
    pub bandwidth_util: Option<f64>,
    /// Read-only utilisation, when exposed.
    pub read_util: Option<f64>,
    /// Write-only utilisation, when exposed.
    pub write_util: Option<f64>,
    /// Sketch error bound, when exposed.
    pub error_bound: Option<u16>,
    /// Latest histogram bins, when exposed (Fig. 14d strips).
    pub histogram: Option<[u64; 64]>,
}

/// A workload phase marker with its timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkerRecord {
    /// When the marker was emitted.
    pub at: Nanos,
    /// Marker id (iteration number etc.).
    pub id: u32,
    /// Marker label.
    pub label: &'static str,
}

/// Graceful-degradation accounting for a run that executed a
/// non-empty [`neomem_types::FaultPlan`]. All quantities are
/// virtual-clock state, so they are byte-identical at any thread count
/// or batch size. Absent (`None` on [`RunReport::degradation`]) for
/// fault-free runs, which keeps their serialized reports unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationMetrics {
    /// Fault windows that started during the run.
    pub fault_events: u64,
    /// Total virtual time at least one fault window was open.
    pub degraded_time: Nanos,
    /// Time from the first fault's onset to the instant the machine
    /// last returned to fully healthy; `None` while still degraded at
    /// end of run (recovery never completed).
    pub time_to_recover: Option<Nanos>,
    /// Demotions forced by capacity-loss evacuation (these flow
    /// through the normal migration path and are also counted in
    /// `kernel.demotions`).
    pub fault_forced_demotions: u64,
    /// Healthy-window access rate over degraded-window access rate, in
    /// milli-units (1000 = no slowdown); 0 when either window has no
    /// samples.
    pub degraded_slowdown_milli: u64,
}

/// The outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload name.
    pub workload: String,
    /// Policy name.
    pub policy: String,
    /// Total simulated time.
    pub runtime: Nanos,
    /// CPU accesses executed.
    pub accesses: u64,
    /// Requests that reached the memory nodes.
    pub llc_misses: u64,
    /// Slow-tier line reads serviced.
    pub slow_reads: u64,
    /// Slow-tier line writes serviced.
    pub slow_writes: u64,
    /// Fast-tier line reads serviced.
    pub fast_reads: u64,
    /// Fast-tier line writes serviced.
    pub fast_writes: u64,
    /// Kernel counters (promotions, demotions, ping-pongs, ...).
    pub kernel: KernelStats,
    /// TLB counters.
    pub tlb: TlbStats,
    /// Cache hierarchy counters.
    pub cache: HierarchyStats,
    /// CPU time consumed by profiling + daemon work.
    pub profiling_overhead: Nanos,
    /// Bytes promoted as whole huge pages (Table VI; zero unless the
    /// policy runs in THP mode).
    pub promoted_huge_bytes: neomem_types::Bytes,
    /// Graceful-degradation metrics; `Some` iff the run executed a
    /// non-empty fault plan.
    pub degradation: Option<DegradationMetrics>,
    /// Periodic samples.
    pub timeline: Vec<TimelinePoint>,
    /// Phase markers.
    pub markers: Vec<MarkerRecord>,
}

impl RunReport {
    /// Total slow-tier (CXL) memory requests — the Fig. 13 metric.
    pub fn slow_tier_accesses(&self) -> u64 {
        self.slow_reads + self.slow_writes
    }

    /// Mean throughput in accesses per second of simulated time.
    pub fn throughput(&self) -> f64 {
        if self.runtime.is_zero() {
            0.0
        } else {
            self.accesses as f64 / self.runtime.as_secs_f64()
        }
    }

    /// Serialises the timeline as CSV (one row per sample) for external
    /// plotting — the raw material behind the Fig. 14/16 curves.
    ///
    /// Columns: `t_ns,accesses,slow_accesses,throughput,threshold,
    /// p_fraction,bandwidth_util,error_bound`.
    pub fn timeline_csv(&self) -> String {
        let mut out = String::from(
            "t_ns,accesses,slow_accesses,throughput,threshold,p_fraction,bandwidth_util,error_bound\n",
        );
        for p in &self.timeline {
            let opt_u16 = |v: Option<u16>| v.map(|x| x.to_string()).unwrap_or_default();
            let opt_f = |v: Option<f64>| v.map(|x| format!("{x:.6}")).unwrap_or_default();
            out.push_str(&format!(
                "{},{},{},{:.3},{},{},{},{}\n",
                p.at.as_nanos(),
                p.accesses,
                p.slow_accesses,
                p.throughput,
                opt_u16(p.threshold),
                opt_f(p.p_fraction),
                opt_f(p.bandwidth_util),
                opt_u16(p.error_bound),
            ));
        }
        out
    }

    /// Flat `(name, value)` scalar counters covering the whole report —
    /// the serialisation hook behind `neomem_runner`'s JSON results.
    ///
    /// Every value is simulated (virtual-clock) state, so the list is
    /// deterministic for a given configuration and seed. Names are part
    /// of the `BENCH_*.json` schema; extend rather than rename.
    pub fn scalar_metrics(&self) -> Vec<(&'static str, u64)> {
        let mut metrics = vec![
            ("runtime_ns", self.runtime.as_nanos()),
            ("accesses", self.accesses),
            ("llc_misses", self.llc_misses),
            ("slow_reads", self.slow_reads),
            ("slow_writes", self.slow_writes),
            ("fast_reads", self.fast_reads),
            ("fast_writes", self.fast_writes),
            ("slow_tier_accesses", self.slow_tier_accesses()),
            ("promotions", self.kernel.promotions),
            ("demotions", self.kernel.demotions),
            ("ping_pongs", self.kernel.ping_pongs),
            ("promoted_bytes", self.kernel.promoted_bytes.as_u64()),
            ("demoted_bytes", self.kernel.demoted_bytes.as_u64()),
            ("failed_promotions", self.kernel.failed_promotions),
            ("minor_faults", self.kernel.minor_faults),
            ("hint_faults", self.kernel.hint_faults),
            ("migration_time_ns", self.kernel.migration_time.as_nanos()),
            ("tlb_hits", self.tlb.hits),
            ("tlb_misses", self.tlb.misses),
            ("tlb_shootdowns", self.tlb.shootdowns),
            ("cache_accesses", self.cache.accesses),
            ("cache_llc_misses", self.cache.llc_misses),
            ("l1_hits", self.cache.l1.hits),
            ("l1_misses", self.cache.l1.misses),
            ("l2_hits", self.cache.l2.hits),
            ("l2_misses", self.cache.l2.misses),
            ("llc_hits", self.cache.llc.hits),
            ("llc_level_misses", self.cache.llc.misses),
            ("profiling_overhead_ns", self.profiling_overhead.as_nanos()),
            ("promoted_huge_bytes", self.promoted_huge_bytes.as_u64()),
            ("timeline_samples", self.timeline.len() as u64),
            ("markers", self.markers.len() as u64),
        ];
        // Degradation metrics extend the schema only for fault-bearing
        // runs; fault-free result JSON is unchanged byte for byte.
        if let Some(d) = &self.degradation {
            metrics.push(("fault_events", d.fault_events));
            metrics.push(("degraded_time_ns", d.degraded_time.as_nanos()));
            metrics.push(("fault_forced_demotions", d.fault_forced_demotions));
            metrics.push(("degraded_slowdown_milli", d.degraded_slowdown_milli));
            if let Some(ttr) = d.time_to_recover {
                metrics.push(("time_to_recover_ns", ttr.as_nanos()));
            }
        }
        metrics
    }

    /// One-line human-readable summary of the run.
    pub fn summary(&self) -> String {
        format!(
            "{} / {}: runtime {} | {} accesses | {} LLC misses | slow-tier {} | promote {} demote {} ping-pong {}",
            self.workload,
            self.policy,
            self.runtime,
            self.accesses,
            self.llc_misses,
            self.slow_tier_accesses(),
            self.kernel.promotions,
            self.kernel.demotions,
            self.kernel.ping_pongs,
        )
    }

    /// Simulated time between two markers with the given label and
    /// consecutive ids — e.g. one Page-Rank iteration (Fig. 14a).
    pub fn marker_duration(&self, label: &str, id: u32) -> Option<Nanos> {
        let end = self.markers.iter().find(|m| m.label == label && m.id == id)?;
        let start = self
            .markers
            .iter().rfind(|m| m.at < end.at)
            .map(|m| m.at)
            .unwrap_or(Nanos::ZERO);
        Some(end.at - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            workload: "test".into(),
            policy: "none".into(),
            runtime: Nanos::from_secs(2),
            accesses: 1000,
            llc_misses: 100,
            slow_reads: 30,
            slow_writes: 10,
            fast_reads: 50,
            fast_writes: 10,
            kernel: KernelStats::default(),
            tlb: TlbStats::default(),
            cache: HierarchyStats::default(),
            profiling_overhead: Nanos::ZERO,
            promoted_huge_bytes: neomem_types::Bytes::ZERO,
            degradation: None,
            timeline: Vec::new(),
            markers: vec![
                MarkerRecord { at: Nanos::from_millis(100), id: 0, label: "graph-built" },
                MarkerRecord { at: Nanos::from_millis(300), id: 1, label: "iteration" },
                MarkerRecord { at: Nanos::from_millis(600), id: 2, label: "iteration" },
            ],
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert_eq!(r.slow_tier_accesses(), 40);
        assert!((r.throughput() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn csv_and_summary_render() {
        let mut r = report();
        r.timeline.push(TimelinePoint {
            at: Nanos::from_millis(1),
            accesses: 10,
            slow_accesses: 3,
            throughput: 1e6,
            threshold: Some(4),
            p_fraction: Some(0.001),
            bandwidth_util: Some(0.25),
            ..Default::default()
        });
        let csv = r.timeline_csv();
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("t_ns,"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("1000000,10,3,"), "unexpected row: {row}");
        assert!(row.contains(",4,"), "threshold column missing: {row}");
        let summary = r.summary();
        assert!(summary.contains("test / none"));
        assert!(summary.contains("promote 0"));
    }

    #[test]
    fn scalar_metrics_cover_the_counters_with_unique_names() {
        let r = report();
        let metrics = r.scalar_metrics();
        let mut names: Vec<&str> = metrics.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        let len_before = names.len();
        names.dedup();
        assert_eq!(names.len(), len_before, "duplicate metric names");
        let get = |name: &str| {
            metrics.iter().find(|(n, _)| *n == name).map(|(_, v)| *v).expect("metric present")
        };
        assert_eq!(get("runtime_ns"), Nanos::from_secs(2).as_nanos());
        assert_eq!(get("slow_tier_accesses"), 40);
        assert_eq!(get("markers"), 3);
    }

    #[test]
    fn marker_durations() {
        let r = report();
        assert_eq!(r.marker_duration("iteration", 1), Some(Nanos::from_millis(200)));
        assert_eq!(r.marker_duration("iteration", 2), Some(Nanos::from_millis(300)));
        assert_eq!(r.marker_duration("iteration", 9), None);
    }
}
