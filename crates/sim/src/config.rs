//! Simulation configuration.

use neomem_cache::{HierarchyConfig, TlbConfig};
use neomem_kernel::MigrationCosts;
use neomem_mem::TieredMemoryConfig;
use neomem_types::{Error, FaultPlan, Nanos, Result};

/// Load-to-use latencies per cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLatencies {
    /// L1 hit.
    pub l1: Nanos,
    /// L2 hit.
    pub l2: Nanos,
    /// LLC hit.
    pub llc: Nanos,
}

impl Default for CacheLatencies {
    fn default() -> Self {
        Self { l1: Nanos::new(1), l2: Nanos::new(4), llc: Nanos::new(20) }
    }
}

/// Full simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Workload footprint in pages (must match the generator's RSS).
    pub rss_pages: u64,
    /// Physical memory layout. `None` derives a layout from
    /// `rss_pages` and `fast_slow_ratio`.
    pub memory: Option<TieredMemoryConfig>,
    /// Fast:slow capacity ratio expressed as `1:ratio` (§VI-A default 1:2).
    pub fast_slow_ratio: u64,
    /// Cache hierarchy geometry.
    pub caches: HierarchyConfig,
    /// Cache hit latencies.
    pub cache_latencies: CacheLatencies,
    /// TLB geometry.
    pub tlb: TlbConfig,
    /// Page-walk time charged on a TLB miss.
    pub tlb_walk: Nanos,
    /// Kernel operation costs.
    pub costs: MigrationCosts,
    /// Base (non-memory) CPU time charged per access.
    pub cpu_per_access: Nanos,
    /// Stop after this many CPU accesses.
    pub max_accesses: u64,
    /// Optional wall-clock stop (simulated time).
    pub max_time: Option<Nanos>,
    /// How often the engine offers the policy a tick.
    pub tick_quantum: Nanos,
    /// Timeline sampling period (Fig. 14/16 traces).
    pub sample_interval: Nanos,
    /// Events pulled per [`neomem_workloads::Workload::fill_events`]
    /// batch. Purely a host-side dispatch amortisation: any value
    /// produces bit-identical simulated results (the engine's batch
    /// contract), so this never needs sweeping — 1 recovers the
    /// event-at-a-time seed path for debugging.
    pub batch_size: usize,
    /// How the engine executes each event batch. Purely a host-side
    /// execution strategy: both modes produce bit-identical simulated
    /// results (the `differential` suite holds this), so this never
    /// needs sweeping — [`PipelineMode::Serial`] recovers the
    /// event-at-a-time reference path for debugging and differential
    /// testing.
    pub pipeline: PipelineMode,
    /// Deterministic fault timeline the engine executes on the virtual
    /// clock. The default empty plan models a healthy machine and is
    /// guaranteed bit-identical to the pre-fault-layer engine.
    pub faults: FaultPlan,
}

/// How the engine turns a batch of workload events into machine steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineMode {
    /// Stage-by-stage over deadline-safe chunks of the batch buffer:
    /// one pass for TLB + page-table work, one for the cache
    /// hierarchy, one fused timing pass for memory traffic and the
    /// policy hook. Chunks are sized so no tick, sample, fault or stop
    /// deadline can land inside one; anything else falls back to the
    /// serial path, keeping results bit-identical to it.
    #[default]
    Staged,
    /// The event-at-a-time reference path: each access runs all four
    /// machine phases before the next one starts.
    Serial,
}

impl PipelineMode {
    /// The process-wide default mode: [`PipelineMode::Staged`], or the
    /// serial reference path when `NEOMEM_PIPELINE=serial` is set —
    /// the engine-execution analogue of `batch_size = 1`. Results are
    /// bit-identical either way (the `differential` suite holds this);
    /// the knob exists so before/after wall-clock comparisons and
    /// bisections can force the reference path without a rebuild.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised value — a misspelling must not
    /// silently measure the wrong engine.
    pub fn from_env() -> Self {
        static MODE: std::sync::OnceLock<PipelineMode> = std::sync::OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("NEOMEM_PIPELINE") {
            Err(_) => PipelineMode::Staged,
            Ok(value) => match value.trim().to_ascii_lowercase().as_str() {
                "" | "staged" => PipelineMode::Staged,
                "serial" => PipelineMode::Serial,
                _ => panic!(
                    "unrecognised NEOMEM_PIPELINE value {value:?}: expected serial or staged"
                ),
            },
        })
    }
}

impl SimConfig {
    /// A quick-running configuration for `rss_pages` at `1:ratio`.
    ///
    /// Uses the *small* cache/TLB presets so that footprints of a few
    /// thousand pages sit in the paper's LLC:RSS regime; use
    /// [`SimConfig::large`] for multi-ten-thousand-page footprints.
    pub fn quick(rss_pages: u64, ratio: u64) -> Self {
        Self {
            rss_pages,
            memory: None,
            fast_slow_ratio: ratio,
            caches: HierarchyConfig::scaled_small(),
            cache_latencies: CacheLatencies::default(),
            tlb: TlbConfig::scaled_small(),
            tlb_walk: Nanos::new(35),
            costs: MigrationCosts::default(),
            cpu_per_access: Nanos::new(2),
            max_accesses: 2_000_000,
            max_time: None,
            tick_quantum: Nanos::from_micros(100),
            sample_interval: Nanos::from_millis(1),
            batch_size: 256,
            pipeline: PipelineMode::from_env(),
            faults: FaultPlan::empty(),
        }
    }

    /// A configuration for larger footprints (tens of thousands of
    /// pages): full-size scaled caches and TLB, more accesses.
    pub fn large(rss_pages: u64, ratio: u64) -> Self {
        Self {
            caches: HierarchyConfig::scaled_default(),
            tlb: TlbConfig::scaled_default(),
            max_accesses: 10_000_000,
            ..Self::quick(rss_pages, ratio)
        }
    }

    /// The effective memory layout.
    pub fn memory_config(&self) -> TieredMemoryConfig {
        self.memory
            .unwrap_or_else(|| TieredMemoryConfig::for_ratio(self.rss_pages, self.fast_slow_ratio))
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the footprint is empty,
    /// doesn't fit in memory, or sub-configs are invalid.
    pub fn validate(&self) -> Result<()> {
        if self.rss_pages == 0 {
            return Err(Error::invalid_config("rss_pages must be non-zero"));
        }
        if self.max_accesses == 0 {
            return Err(Error::invalid_config("max_accesses must be non-zero"));
        }
        let mem = self.memory_config();
        mem.validate()?;
        let capacity = mem.fast.capacity_frames + mem.slow.capacity_frames;
        if capacity < self.rss_pages {
            return Err(Error::invalid_config(format!(
                "footprint of {} pages exceeds physical capacity {}",
                self.rss_pages, capacity
            )));
        }
        self.caches.validate()?;
        self.tlb.validate()?;
        if self.tick_quantum.is_zero() || self.sample_interval.is_zero() {
            return Err(Error::invalid_config("tick and sample intervals must be non-zero"));
        }
        if self.batch_size == 0 {
            return Err(Error::invalid_config("batch_size must be non-zero"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_validates() {
        SimConfig::quick(4096, 2).validate().unwrap();
        SimConfig::quick(4096, 8).validate().unwrap();
    }

    #[test]
    fn derived_memory_fits_footprint() {
        let c = SimConfig::quick(9000, 4);
        let m = c.memory_config();
        assert!(m.fast.capacity_frames + m.slow.capacity_frames >= 9000);
        // Ratio roughly 1:4.
        let r = m.slow.capacity_frames as f64 / m.fast.capacity_frames as f64;
        assert!(r > 3.0, "ratio {r}");
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(SimConfig { rss_pages: 0, ..SimConfig::quick(64, 2) }.validate().is_err());
        assert!(SimConfig { max_accesses: 0, ..SimConfig::quick(64, 2) }.validate().is_err());
        assert!(SimConfig { batch_size: 0, ..SimConfig::quick(64, 2) }.validate().is_err());
        let mut tiny_mem = SimConfig::quick(4096, 2);
        tiny_mem.memory = Some(neomem_mem::TieredMemoryConfig::with_frames(4, 4));
        assert!(tiny_mem.validate().is_err(), "footprint larger than memory");
    }
}
