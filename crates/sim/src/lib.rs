//! The full-system simulator.
//!
//! Drives a [`neomem_workloads::Workload`] access stream through a TLB
//! and a three-level cache hierarchy; LLC misses hit the tiered memory
//! nodes and are exposed to the active
//! [`neomem_policies::TieringPolicy`]. All latencies — cache levels,
//! DRAM/CXL service, page walks, faults, profiler work, migration
//! copies — accrue on a single virtual clock, so "runtime" is the sum of
//! everything a real core would have waited on. Speedups between
//! policies are ratios of these runtimes, which is how every figure in
//! the paper's evaluation is regenerated.
//!
//! # Example
//!
//! ```
//! use neomem_policies::FirstTouchPolicy;
//! use neomem_sim::{SimConfig, Simulation};
//! use neomem_workloads::WorkloadKind;
//!
//! let config = SimConfig::quick(8 * 1024, 2); // 8Ki pages, 1:2 ratio
//! let workload = WorkloadKind::Gups.build(config.rss_pages, 42);
//! let policy = Box::new(FirstTouchPolicy::new());
//! let report = Simulation::new(config, workload, policy)?.run();
//! assert!(report.runtime.as_nanos() > 0);
//! assert!(report.accesses > 0);
//! # Ok::<(), neomem_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod corun;
mod engine;
mod fault;
pub mod machine;
mod report;
mod sched;
pub mod snapshot;

pub use config::{CacheLatencies, PipelineMode, SimConfig};
pub use machine::{MachineDescription, MachinePreset, NeoProfKnobs, TierSizing};
pub use corun::{
    jain_fairness, CoRunConfig, CoRunContention, CoRunReport, CoRunSimulation, OccupancyPoint,
    TenantEpoch, TenantRunReport,
};
pub use engine::Simulation;
pub use report::{DegradationMetrics, MarkerRecord, RunReport, TimelinePoint};
pub use sched::{DynamicSchedule, SchedulerOp, SliceScheduler, StaticRoundRobin};
