//! Declarative machine descriptions: building a [`SimConfig`] from a
//! text-config file instead of Rust code.
//!
//! A machine file is a [`ConfigDoc`] with `kind = machine`. Every key
//! is an *override* on top of a named preset (`preset = quick`, the
//! default, or `preset = large` — exactly [`SimConfig::quick`] /
//! [`SimConfig::large`]), so an empty machine file reproduces the
//! code-built configuration field for field; the bench suite pins that
//! equivalence against the checked-in baselines. Example:
//!
//! ```text
//! schema = 1
//! kind = machine
//! name = cxl-far
//!
//! [memory]
//! ratio = 4                    # fast:slow = 1:4
//! slow_read_latency = 600ns    # a farther CXL device than the paper's
//! slow_bandwidth = 8GiB/s
//!
//! [neoprof]
//! sketch_width = 65536
//! fifo_depth = 1024
//! ```
//!
//! The schema is extend-only: new optional keys may be added, existing
//! keys never change meaning or type.

use neomem_cache::{CacheConfig, HierarchyConfig, TlbConfig};
use neomem_mem::TieredMemoryConfig;
use neomem_types::config::{ConfigDoc, ConfigError, FieldReader};
use neomem_types::{suggest, Bandwidth, Nanos};

use crate::config::SimConfig;

/// Current (and only) machine-file schema version.
pub const SCHEMA_VERSION: u64 = 1;

/// The sections a machine file may contain.
const SECTIONS: [&str; 5] = ["memory", "caches", "tlb", "engine", "neoprof"];

/// The base preset a machine description overrides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MachinePreset {
    /// [`SimConfig::quick`]: small caches/TLB for few-thousand-page
    /// footprints.
    #[default]
    Quick,
    /// [`SimConfig::large`]: full-size scaled caches/TLB and a bigger
    /// access budget, for multi-ten-thousand-page footprints.
    Large,
}

/// How a machine file sizes the two memory tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TierSizing {
    /// Derive capacities from the workload footprint at the context's
    /// fast:slow ratio (the preset behaviour).
    #[default]
    FromWorkload,
    /// Derive capacities from the footprint at an explicit `1:ratio`.
    Ratio(u64),
    /// Explicit frame counts for both tiers.
    Frames {
        /// Fast-tier capacity in 4 KiB frames.
        fast: u64,
        /// Slow-tier capacity in 4 KiB frames.
        slow: u64,
    },
}

/// NeoProf device parameters a machine file can override. Plain
/// numbers rather than a device config — the simulator crate does not
/// construct the profiler; the experiment layer folds these into its
/// policy overrides. `None` everywhere = the paper defaults,
/// untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NeoProfKnobs {
    /// Sketch width `W` (power of two).
    pub sketch_width: Option<usize>,
    /// Sketch depth `D`.
    pub sketch_depth: Option<usize>,
    /// H3 hash seed.
    pub sketch_seed: Option<u64>,
    /// Hot-page output buffer capacity.
    pub hot_buffer_entries: Option<usize>,
    /// Monitor→core async FIFO depth.
    pub fifo_depth: Option<usize>,
    /// Pages the low-frequency core drains per tick.
    pub drain_per_tick: Option<usize>,
}

impl NeoProfKnobs {
    /// `true` when no knob is set — the description leaves the device
    /// exactly at its paper defaults.
    pub fn is_default(&self) -> bool {
        *self == Self::default()
    }
}

/// A validated machine description: a preset plus sparse overrides.
///
/// [`MachineDescription::sim_config`] instantiates it for a concrete
/// workload footprint. `MachineDescription::default()` is the quick
/// preset with no overrides — [`sim_config`](Self::sim_config) then
/// reproduces [`SimConfig::quick`] exactly.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MachineDescription {
    /// Registry name (`name = ...` in the file; empty for code-built
    /// descriptions).
    pub name: String,
    /// Optional human title.
    pub title: Option<String>,
    /// Base preset.
    pub preset: MachinePreset,
    /// Tier sizing.
    pub sizing: TierSizing,
    /// Fast-tier unloaded read latency override.
    pub fast_read_latency: Option<Nanos>,
    /// Fast-tier write latency override.
    pub fast_write_latency: Option<Nanos>,
    /// Fast-tier bandwidth override.
    pub fast_bandwidth: Option<Bandwidth>,
    /// Slow-tier unloaded read latency override.
    pub slow_read_latency: Option<Nanos>,
    /// Slow-tier write latency override.
    pub slow_write_latency: Option<Nanos>,
    /// Slow-tier bandwidth override.
    pub slow_bandwidth: Option<Bandwidth>,
    /// Cache-hierarchy geometry override (whole hierarchy at once —
    /// partial cache edits are not meaningful).
    pub caches: Option<HierarchyConfig>,
    /// TLB geometry override.
    pub tlb: Option<TlbConfig>,
    /// TLB page-walk cost override.
    pub tlb_walk: Option<Nanos>,
    /// Non-memory CPU time per access.
    pub cpu_per_access: Option<Nanos>,
    /// Policy tick quantum.
    pub tick_quantum: Option<Nanos>,
    /// Timeline sampling period.
    pub sample_interval: Option<Nanos>,
    /// NeoProf device parameter overrides.
    pub neoprof: NeoProfKnobs,
}

impl MachineDescription {
    /// Parses and validates a machine file.
    ///
    /// # Errors
    ///
    /// Returns a line-precise [`ConfigError`] on grammar errors,
    /// unknown keys/sections, bad types, out-of-range values, and
    /// cross-field violations (both `ratio` and explicit frames; a
    /// fast tier at least as large as the declared total; a
    /// non-power-of-two sketch width or cache set count).
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        Self::from_doc(&ConfigDoc::parse(text)?)
    }

    /// Validates an already-parsed document.
    ///
    /// # Errors
    ///
    /// As for [`MachineDescription::parse`], minus the grammar errors.
    pub fn from_doc(doc: &ConfigDoc) -> Result<Self, ConfigError> {
        let mut root = FieldReader::new(&doc.root);
        let schema = root.req_u64("schema")?;
        if schema != SCHEMA_VERSION {
            return Err(ConfigError::at(
                root.line_of("schema"),
                format!("unsupported schema version {schema} (this build reads {SCHEMA_VERSION})"),
            ));
        }
        let kind = root.req_str("kind")?;
        if kind != "machine" {
            return Err(ConfigError::at(
                root.line_of("kind"),
                format!("kind {kind:?} is not \"machine\""),
            ));
        }
        let name = root.req_str("name")?;
        if name.is_empty() {
            return Err(ConfigError::at(root.line_of("name"), "name must be non-empty".to_string()));
        }
        let title = root.take_str("title")?;
        let preset = match root.take_str("preset")?.as_deref() {
            None | Some("quick") => MachinePreset::Quick,
            Some("large") => MachinePreset::Large,
            Some(other) => {
                return Err(ConfigError::at(
                    root.line_of("preset"),
                    format!("unknown preset {other:?} (want quick or large)"),
                ))
            }
        };
        root.finish()?;

        let mut desc = MachineDescription { name, title, preset, ..Self::default() };
        let mut seen: Vec<&str> = Vec::new();
        for section in &doc.sections {
            let Some(&known) = SECTIONS.iter().find(|s| **s == section.name) else {
                let hint = suggest::closest(&section.name, SECTIONS.iter().copied())
                    .map(|s| format!(" (did you mean [{s}]?)"))
                    .unwrap_or_default();
                return Err(ConfigError::at(
                    section.line,
                    format!("unknown section [{}] in a machine file{hint}", section.name),
                ));
            };
            if seen.contains(&known) {
                return Err(ConfigError::at(
                    section.line,
                    format!("section [{known}] appears more than once"),
                ));
            }
            seen.push(known);
            let mut r = FieldReader::new(section);
            match known {
                "memory" => desc.read_memory(&mut r)?,
                "caches" => desc.read_caches(&mut r)?,
                "tlb" => desc.read_tlb(&mut r)?,
                "engine" => desc.read_engine(&mut r)?,
                _ => desc.read_neoprof(&mut r)?,
            }
            r.finish()?;
        }
        Ok(desc)
    }

    fn read_memory(&mut self, r: &mut FieldReader<'_>) -> Result<(), ConfigError> {
        let ratio = r.take_u64_range("ratio", 1, 1024)?;
        let fast_pages = r.take_u64_range("fast_pages", 1, u64::MAX)?;
        let slow_pages = r.take_u64_range("slow_pages", 1, u64::MAX)?;
        let total_pages = r.take_u64_range("total_pages", 2, u64::MAX)?;
        if ratio.is_some() && (fast_pages.is_some() || slow_pages.is_some() || total_pages.is_some())
        {
            return Err(ConfigError::at(
                r.line_of("ratio"),
                "ratio and explicit tier capacities are mutually exclusive in [memory]".to_string(),
            ));
        }
        self.sizing = match (ratio, fast_pages, slow_pages, total_pages) {
            (Some(ratio), ..) => TierSizing::Ratio(ratio),
            (None, None, None, None) => TierSizing::FromWorkload,
            (None, Some(_), Some(_), Some(_)) | (None, None, Some(_), Some(_)) => {
                return Err(ConfigError::at(
                    r.line_of("total_pages"),
                    "give either slow_pages or total_pages in [memory], not both".to_string(),
                ));
            }
            (None, Some(fast), Some(slow), None) => TierSizing::Frames { fast, slow },
            (None, Some(fast), None, Some(total)) => {
                // The headline cross-field constraint: the fast tier
                // must leave room for a non-empty slow tier.
                if fast >= total {
                    return Err(ConfigError::at(
                        r.line_of("fast_pages"),
                        format!(
                            "fast_pages ({fast}) must be smaller than total_pages ({total}) \
                             in [memory]"
                        ),
                    ));
                }
                TierSizing::Frames { fast, slow: total - fast }
            }
            (None, Some(_), None, None) => {
                return Err(ConfigError::at(
                    r.line_of("fast_pages"),
                    "fast_pages needs slow_pages or total_pages in [memory]".to_string(),
                ));
            }
            (None, None, ..) => {
                return Err(ConfigError::at(
                    r.section().line,
                    "slow_pages/total_pages need fast_pages in [memory]".to_string(),
                ));
            }
        };
        self.fast_read_latency = r.take_duration_ns("fast_read_latency")?.map(Nanos::new);
        self.fast_write_latency = r.take_duration_ns("fast_write_latency")?.map(Nanos::new);
        self.fast_bandwidth = take_bandwidth(r, "fast_bandwidth")?;
        self.slow_read_latency = r.take_duration_ns("slow_read_latency")?.map(Nanos::new);
        self.slow_write_latency = r.take_duration_ns("slow_write_latency")?.map(Nanos::new);
        self.slow_bandwidth = take_bandwidth(r, "slow_bandwidth")?;
        Ok(())
    }

    fn read_caches(&mut self, r: &mut FieldReader<'_>) -> Result<(), ConfigError> {
        let preset = r.take_str("preset")?;
        let l1 = r.take_size_bytes("l1")?;
        let l2 = r.take_size_bytes("l2")?;
        let llc = r.take_size_bytes("llc")?;
        let l1_ways = r.take_u64_range("l1_ways", 1, 64)?;
        let l2_ways = r.take_u64_range("l2_ways", 1, 64)?;
        let llc_ways = r.take_u64_range("llc_ways", 1, 64)?;
        if let Some(preset) = preset {
            if l1.is_some()
                || l2.is_some()
                || llc.is_some()
                || l1_ways.is_some()
                || l2_ways.is_some()
                || llc_ways.is_some()
            {
                return Err(ConfigError::at(
                    r.line_of("preset"),
                    "a cache preset and explicit geometry are mutually exclusive in [caches]"
                        .to_string(),
                ));
            }
            self.caches = Some(match preset.as_str() {
                "small" => HierarchyConfig::scaled_small(),
                "default" => HierarchyConfig::scaled_default(),
                other => {
                    return Err(ConfigError::at(
                        r.line_of("preset"),
                        format!("unknown cache preset {other:?} (want small or default)"),
                    ))
                }
            });
            return Ok(());
        }
        let section_line = r.section().line;
        let (Some(l1), Some(l2), Some(llc)) = (l1, l2, llc) else {
            return Err(ConfigError::at(
                section_line,
                "explicit [caches] geometry needs l1, l2 and llc sizes".to_string(),
            ));
        };
        let caches = HierarchyConfig {
            l1: CacheConfig::new(l1, l1_ways.unwrap_or(4) as usize),
            l2: CacheConfig::new(l2, l2_ways.unwrap_or(8) as usize),
            llc: CacheConfig::new(llc, llc_ways.unwrap_or(16) as usize),
        };
        caches
            .validate()
            .map_err(|e| ConfigError::at(section_line, format!("invalid [caches] geometry: {e}")))?;
        self.caches = Some(caches);
        Ok(())
    }

    fn read_tlb(&mut self, r: &mut FieldReader<'_>) -> Result<(), ConfigError> {
        let entries = r.take_u64_range("entries", 1, 1 << 20)?;
        let ways = r.take_u64_range("ways", 1, 64)?;
        match (entries, ways) {
            (None, None) => {}
            (Some(entries), Some(ways)) => {
                let tlb = TlbConfig { entries: entries as usize, ways: ways as usize };
                tlb.validate().map_err(|e| {
                    ConfigError::at(r.section().line, format!("invalid [tlb] geometry: {e}"))
                })?;
                self.tlb = Some(tlb);
            }
            _ => {
                return Err(ConfigError::at(
                    r.section().line,
                    "[tlb] geometry needs both entries and ways".to_string(),
                ));
            }
        }
        self.tlb_walk = r.take_duration_ns("walk")?.map(Nanos::new);
        Ok(())
    }

    fn read_engine(&mut self, r: &mut FieldReader<'_>) -> Result<(), ConfigError> {
        self.cpu_per_access = r.take_duration_ns("cpu_per_access")?.map(Nanos::new);
        self.tick_quantum = nonzero_duration(r, "tick_quantum")?;
        self.sample_interval = nonzero_duration(r, "sample_interval")?;
        Ok(())
    }

    fn read_neoprof(&mut self, r: &mut FieldReader<'_>) -> Result<(), ConfigError> {
        let width = r.take_u64_range("sketch_width", 2, 1 << 30)?;
        if let Some(w) = width {
            if !w.is_power_of_two() {
                return Err(ConfigError::at(
                    r.line_of("sketch_width"),
                    format!("sketch_width ({w}) must be a power of two in [neoprof]"),
                ));
            }
        }
        self.neoprof = NeoProfKnobs {
            sketch_width: width.map(|w| w as usize),
            sketch_depth: r.take_u64_range("sketch_depth", 1, 8)?.map(|d| d as usize),
            sketch_seed: r.take_u64("sketch_seed")?,
            hot_buffer_entries: r
                .take_u64_range("hot_buffer_entries", 1, u64::MAX)?
                .map(|n| n as usize),
            fifo_depth: r.take_u64_range("fifo_depth", 1, u64::MAX)?.map(|n| n as usize),
            drain_per_tick: r.take_u64_range("drain_per_tick", 1, u64::MAX)?.map(|n| n as usize),
        };
        Ok(())
    }

    /// Instantiates the description for a workload of `rss_pages` at
    /// the context's default `1:ratio` (used only when the file didn't
    /// size the tiers itself).
    ///
    /// With no overrides this reproduces [`SimConfig::quick`] /
    /// [`SimConfig::large`] *exactly* — field for field — which is what
    /// keeps registry-built campaigns byte-identical to code-built
    /// ones.
    pub fn sim_config(&self, rss_pages: u64, ratio: u64) -> SimConfig {
        let mut config = match self.preset {
            MachinePreset::Quick => SimConfig::quick(rss_pages, ratio),
            MachinePreset::Large => SimConfig::large(rss_pages, ratio),
        };
        match self.sizing {
            TierSizing::FromWorkload => {}
            TierSizing::Ratio(r) => config.fast_slow_ratio = r,
            TierSizing::Frames { fast, slow } => {
                config.memory = Some(TieredMemoryConfig::with_frames(fast, slow));
            }
        }
        let node_overrides = self.fast_read_latency.is_some()
            || self.fast_write_latency.is_some()
            || self.fast_bandwidth.is_some()
            || self.slow_read_latency.is_some()
            || self.slow_write_latency.is_some()
            || self.slow_bandwidth.is_some();
        if node_overrides {
            // Materialise the derived layout so the node edits stick.
            let mut mem = config.memory.unwrap_or_else(|| config.memory_config());
            if let Some(v) = self.fast_read_latency {
                mem.fast.read_latency = v;
            }
            if let Some(v) = self.fast_write_latency {
                mem.fast.write_latency = v;
            }
            if let Some(v) = self.fast_bandwidth {
                mem.fast.bandwidth = v;
            }
            if let Some(v) = self.slow_read_latency {
                mem.slow.read_latency = v;
            }
            if let Some(v) = self.slow_write_latency {
                mem.slow.write_latency = v;
            }
            if let Some(v) = self.slow_bandwidth {
                mem.slow.bandwidth = v;
            }
            config.memory = Some(mem);
        }
        if let Some(caches) = self.caches {
            config.caches = caches;
        }
        if let Some(tlb) = self.tlb {
            config.tlb = tlb;
        }
        if let Some(walk) = self.tlb_walk {
            config.tlb_walk = walk;
        }
        if let Some(cpu) = self.cpu_per_access {
            config.cpu_per_access = cpu;
        }
        if let Some(tick) = self.tick_quantum {
            config.tick_quantum = tick;
        }
        if let Some(sample) = self.sample_interval {
            config.sample_interval = sample;
        }
        config
    }

    /// The machine's explicit total capacity in frames, when the file
    /// sized the tiers itself — what a scenario's footprint must fit
    /// into. `None` when capacity is derived from the workload.
    pub fn explicit_capacity_frames(&self) -> Option<u64> {
        match self.sizing {
            TierSizing::Frames { fast, slow } => Some(fast + slow),
            _ => None,
        }
    }
}

/// Reads an optional bandwidth, accepting rate-typed values.
fn take_bandwidth(
    r: &mut FieldReader<'_>,
    key: &'static str,
) -> Result<Option<Bandwidth>, ConfigError> {
    let line = r.line_of(key);
    match r.take_rate(key)? {
        None => Ok(None),
        Some(bps) if bps > 0.0 => Ok(Some(Bandwidth::from_bytes_per_sec(bps))),
        Some(_) => {
            Err(ConfigError::at(line, format!("key {key:?} must be a positive bandwidth")))
        }
    }
}

/// Reads an optional duration that must be non-zero.
fn nonzero_duration(
    r: &mut FieldReader<'_>,
    key: &'static str,
) -> Result<Option<Nanos>, ConfigError> {
    let line = r.line_of(key);
    match r.take_duration_ns(key)? {
        None => Ok(None),
        Some(0) => Err(ConfigError::at(line, format!("key {key:?} must be non-zero"))),
        Some(ns) => Ok(Some(Nanos::new(ns))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_description_reproduces_quick_preset_exactly() {
        let desc = MachineDescription::parse("schema = 1\nkind = machine\nname = m\n").unwrap();
        let from_desc = desc.sim_config(4096, 2);
        let code_built = SimConfig::quick(4096, 2);
        assert_eq!(format!("{from_desc:?}"), format!("{code_built:?}"));
        let large = MachineDescription { preset: MachinePreset::Large, ..desc };
        assert_eq!(
            format!("{:?}", large.sim_config(65_536, 4)),
            format!("{:?}", SimConfig::large(65_536, 4))
        );
    }

    #[test]
    fn overrides_apply_on_top_of_preset() {
        let text = "\
schema = 1
kind = machine
name = cxl-far
title = \"far CXL expander\"

[memory]
ratio = 4
slow_read_latency = 600ns
slow_bandwidth = 8GiB/s

[tlb]
entries = 512
ways = 4
walk = 50ns

[engine]
cpu_per_access = 3ns
tick_quantum = 200us

[neoprof]
sketch_width = 65536
fifo_depth = 1024
";
        let desc = MachineDescription::parse(text).unwrap();
        assert_eq!(desc.name, "cxl-far");
        assert_eq!(desc.title.as_deref(), Some("far CXL expander"));
        let config = desc.sim_config(4096, 2);
        assert_eq!(config.fast_slow_ratio, 4, "file ratio beats the context ratio");
        let mem = config.memory_config();
        assert_eq!(mem.slow.read_latency, Nanos::new(600));
        assert_eq!(mem.slow.write_latency, Nanos::new(380), "untouched keys keep the preset");
        assert!((mem.slow.bandwidth.bytes_per_sec() - 8.0 * (1u64 << 30) as f64).abs() < 1.0);
        // ratio=4: fast = 4096/5 = 819
        assert_eq!(mem.fast.capacity_frames, 819);
        assert_eq!(config.tlb.entries, 512);
        assert_eq!(config.tlb_walk, Nanos::new(50));
        assert_eq!(config.cpu_per_access, Nanos::new(3));
        assert_eq!(config.tick_quantum, Nanos::from_micros(200));
        assert_eq!(desc.neoprof.sketch_width, Some(65536));
        assert_eq!(desc.neoprof.fifo_depth, Some(1024));
        assert!(!desc.neoprof.is_default());
        config.validate().unwrap();
    }

    #[test]
    fn explicit_frames_and_total_pages() {
        let text = "schema = 1\nkind = machine\nname = m\n\
                    [memory]\nfast_pages = 1000\ntotal_pages = 5000\n";
        let desc = MachineDescription::parse(text).unwrap();
        assert_eq!(desc.sizing, TierSizing::Frames { fast: 1000, slow: 4000 });
        assert_eq!(desc.explicit_capacity_frames(), Some(5000));
        let mem = desc.sim_config(2048, 2).memory_config();
        assert_eq!(mem.fast.capacity_frames, 1000);
        assert_eq!(mem.slow.capacity_frames, 4000);
    }

    #[test]
    fn cross_field_violations_are_precise() {
        let err = |body: &str| {
            MachineDescription::parse(&format!("schema = 1\nkind = machine\nname = m\n{body}"))
                .unwrap_err()
                .to_string()
        };
        assert_eq!(
            err("[memory]\nratio = 2\nfast_pages = 100\nslow_pages = 100\n"),
            "line 5: ratio and explicit tier capacities are mutually exclusive in [memory]"
        );
        assert_eq!(
            err("[memory]\nfast_pages = 5000\ntotal_pages = 5000\n"),
            "line 5: fast_pages (5000) must be smaller than total_pages (5000) in [memory]"
        );
        assert_eq!(
            err("[memory]\nfast_pages = 100\n"),
            "line 5: fast_pages needs slow_pages or total_pages in [memory]"
        );
        assert_eq!(
            err("[memory]\nslow_pages = 100\n"),
            "line 4: slow_pages/total_pages need fast_pages in [memory]"
        );
        assert_eq!(
            err("[neoprof]\nsketch_width = 1000\n"),
            "line 5: sketch_width (1000) must be a power of two in [neoprof]"
        );
        assert_eq!(
            err("[caches]\nl1 = 8KiB\n"),
            "line 4: explicit [caches] geometry needs l1, l2 and llc sizes"
        );
        assert_eq!(
            err("[caches]\npreset = small\nllc = 1MiB\n"),
            "line 5: a cache preset and explicit geometry are mutually exclusive in [caches]"
        );
        assert!(err("[caches]\nl1 = 7KiB\nl2 = 64KiB\nllc = 512KiB\n")
            .contains("invalid [caches] geometry"));
        assert!(err("[tlb]\nentries = 12\nways = 2\n").contains("invalid [tlb] geometry"));
        assert_eq!(
            err("[tlb]\nentries = 64\n"),
            "line 4: [tlb] geometry needs both entries and ways"
        );
        assert_eq!(
            err("[memory]\nratio = 2\n[memory]\nratio = 4\n"),
            "line 6: section [memory] appears more than once"
        );
        assert_eq!(
            err("[memroy]\nratio = 2\n"),
            "line 4: unknown section [memroy] in a machine file (did you mean [memory]?)"
        );
        assert_eq!(
            err("[engine]\ntick_quantum = 0ns\n"),
            "line 5: key \"tick_quantum\" must be non-zero"
        );
    }

    #[test]
    fn kind_and_preset_are_enforced() {
        assert!(MachineDescription::parse("schema = 1\nkind = scenario\nname = m\n")
            .unwrap_err()
            .to_string()
            .contains("not \"machine\""));
        assert!(MachineDescription::parse(
            "schema = 1\nkind = machine\nname = m\npreset = huge\n"
        )
        .unwrap_err()
        .to_string()
        .contains("unknown preset"));
        let large =
            MachineDescription::parse("schema = 1\nkind = machine\nname = m\npreset = large\n")
                .unwrap();
        assert_eq!(large.preset, MachinePreset::Large);
    }

    #[test]
    fn cache_presets_select_hierarchies() {
        let small = MachineDescription::parse(
            "schema = 1\nkind = machine\nname = m\n[caches]\npreset = small\n",
        )
        .unwrap();
        assert_eq!(small.caches, Some(HierarchyConfig::scaled_small()));
        let explicit = MachineDescription::parse(
            "schema = 1\nkind = machine\nname = m\n\
             [caches]\nl1 = 8KiB\nl2 = 64KiB\nllc = 512KiB\n",
        )
        .unwrap();
        assert_eq!(explicit.caches, Some(HierarchyConfig::scaled_small()));
        let walk_only = MachineDescription::parse(
            "schema = 1\nkind = machine\nname = m\n[tlb]\nwalk = 40ns\n",
        )
        .unwrap();
        assert_eq!(walk_only.tlb, None);
        assert_eq!(walk_only.tlb_walk, Some(Nanos::new(40)));
    }
}
