//! The simulation engine.

use neomem_cache::{CacheHierarchy, HitLevel, Tlb};
use neomem_kernel::{Kernel, KernelConfig};
use neomem_policies::{PolicyBox, TieringPolicy};
use neomem_profilers::AccessEvent;
use neomem_types::json::Json;
use neomem_types::{Access, CacheLine, Error, Nanos, Result, Tier, VirtPage};
use neomem_workloads::{Workload, WorkloadEvent};

use crate::config::SimConfig;
use crate::fault::FaultInjector;
use crate::report::{MarkerRecord, RunReport, TimelinePoint};
use crate::snapshot;

/// Per-access latencies resolved out of [`SimConfig`] once, before the
/// run loop, so [`Simulation::step`] reads locals instead of chasing
/// config fields on every access.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HotCosts {
    cpu_per_access: Nanos,
    tlb_walk: Nanos,
    l1: Nanos,
    l2: Nanos,
    llc: Nanos,
}

impl HotCosts {
    pub(crate) fn of(config: &SimConfig) -> Self {
        Self {
            cpu_per_access: config.cpu_per_access,
            tlb_walk: config.tlb_walk,
            l1: config.cache_latencies.l1,
            l2: config.cache_latencies.l2,
            llc: config.cache_latencies.llc,
        }
    }
}

/// The earliest of the tick, sample and (optional) stop deadlines: the
/// single comparison the per-access fast path makes.
#[inline]
pub(crate) fn earliest_deadline(next_tick: Nanos, next_sample: Nanos, limit: Option<Nanos>) -> Nanos {
    let d = next_tick.min(next_sample);
    match limit {
        Some(l) => d.min(l),
        None => d,
    }
}

/// The deadline the hot loop compares against: the usual tick / sample
/// / stop deadline, additionally clamped to a snapshot cut point when
/// one is set. Entering the slow path "early" because of the cut is
/// state-neutral — every slow-path action is individually guarded by
/// its own `clock >= ...` check — so folding the cut in here preserves
/// bit-identity with an uninterrupted run.
#[inline]
fn deadline_with_cut(
    next_tick: Nanos,
    next_sample: Nanos,
    limit: Option<Nanos>,
    cut: Option<Nanos>,
) -> Nanos {
    let d = earliest_deadline(next_tick, next_sample, limit);
    match cut {
        Some(c) => d.min(c),
        None => d,
    }
}

/// The mutable loop registers of a single-tenant run — everything
/// [`run_core`] reads and writes besides the machine and the workload
/// generator. Hoisting them into a struct is what makes a run
/// interruptible: a snapshot is the machine state plus this.
pub(crate) struct LoopState {
    pub(crate) clock: Nanos,
    pub(crate) accesses: u64,
    pub(crate) next_tick: Nanos,
    pub(crate) next_sample: Nanos,
    pub(crate) window_accesses: u64,
    pub(crate) window_start: Nanos,
    pub(crate) timeline: Vec<TimelinePoint>,
    pub(crate) markers: Vec<MarkerRecord>,
}

impl LoopState {
    /// The registers of a run that has not started yet.
    pub(crate) fn fresh(config: &SimConfig) -> Self {
        Self {
            clock: Nanos::ZERO,
            accesses: 0,
            next_tick: Nanos::ZERO,
            next_sample: config.sample_interval,
            window_accesses: 0,
            window_start: Nanos::ZERO,
            timeline: Vec::new(),
            markers: Vec::new(),
        }
    }

    /// Workload-generator events the run has consumed so far: every
    /// event is either an access or a marker, and a cut never lands
    /// mid-event, so the sum is exact. Discarded batch tails were
    /// never counted and regenerate deterministically on resume.
    pub(crate) fn events_consumed(&self) -> u64 {
        self.accesses + self.markers.len() as u64
    }

    pub(crate) fn snapshot(&self) -> Json {
        Json::obj([
            ("clock", Json::U64(self.clock.as_nanos())),
            ("accesses", Json::U64(self.accesses)),
            ("next_tick", Json::U64(self.next_tick.as_nanos())),
            ("next_sample", Json::U64(self.next_sample.as_nanos())),
            ("window_accesses", Json::U64(self.window_accesses)),
            ("window_start", Json::U64(self.window_start.as_nanos())),
            ("timeline", snapshot::timeline_to_json(&self.timeline)),
            ("markers", snapshot::markers_to_json(&self.markers)),
        ])
    }

    pub(crate) fn restore(state: &Json) -> Result<Self> {
        Ok(Self {
            clock: Nanos::new(state.req_u64("clock")?),
            accesses: state.req_u64("accesses")?,
            next_tick: Nanos::new(state.req_u64("next_tick")?),
            next_sample: Nanos::new(state.req_u64("next_sample")?),
            window_accesses: state.req_u64("window_accesses")?,
            window_start: Nanos::new(state.req_u64("window_start")?),
            timeline: snapshot::timeline_from_json(state, "timeline")?,
            markers: snapshot::markers_from_json(state, "markers")?,
        })
    }
}

/// Why [`run_core`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StopReason {
    /// The run completed: access budget exhausted or `max_time` hit.
    Finished,
    /// The snapshot cut point was reached; `state` holds a resumable
    /// mid-run position.
    Cut,
}

/// The single-tenant run loop, shared verbatim by [`Simulation::run`],
/// [`Simulation::snapshot_at`] and [`Simulation::run_from`]: pulls
/// events in batches, steps the machine, and runs the due tick /
/// sample / stop checks in seed-engine order. With `cut` set, returns
/// [`StopReason::Cut`] as soon as `state.clock` reaches it — checked
/// exactly where the uninterrupted run checks its `max_time` stop, so
/// the machine and loop state at the cut are bit-identical to the
/// uninterrupted run's state as it passes the same instant.
pub(crate) fn run_core(
    machine: &mut Machine,
    workload: &mut dyn Workload,
    state: &mut LoopState,
    cut: Option<Nanos>,
) -> StopReason {
    let limit = machine.config.max_time;
    let costs = HotCosts::of(&machine.config);
    let batch = machine.config.batch_size.max(1);
    let max_accesses = machine.config.max_accesses;
    let tick_quantum = machine.config.tick_quantum;
    let sample_interval = machine.config.sample_interval;
    let mut events: Vec<WorkloadEvent> = Vec::with_capacity(batch);
    // Reusable shootdown buffer: policies append into it, so the
    // steady-state tick path performs no heap allocation.
    let mut shootdowns: Vec<VirtPage> = Vec::new();
    // Staged pipeline admission: `Some(bound)` when the configured
    // mode allows it and the policy's access hook is stageable.
    let staged_charge = match machine.config.pipeline {
        crate::config::PipelineMode::Staged => machine.policy.max_access_charge(),
        crate::config::PipelineMode::Serial => None,
    };
    let mut scratch = ChunkScratch::new();
    let mut next_deadline = deadline_with_cut(state.next_tick, state.next_sample, limit, cut)
        .min(machine.faults.deadline());

    'run: while state.accesses < max_accesses {
        if limit.is_some_and(|l| state.clock >= l) {
            break;
        }
        if cut.is_some_and(|c| state.clock >= c) {
            return StopReason::Cut;
        }
        // A batch of n events yields at most n accesses, so capping
        // at the remaining budget can never overshoot max_accesses.
        let n = (max_accesses - state.accesses).min(batch as u64) as usize;
        events.clear();
        workload.fill_events(&mut events, n);
        let mut i = 0;
        // Consecutive accesses starting at `i`; 0 = not yet scanned.
        let mut run_len = 0usize;
        while i < events.len() {
            let access = match events[i] {
                WorkloadEvent::Access(access) => access,
                WorkloadEvent::Marker(m) => {
                    // Markers skip the deadline checks, exactly like
                    // the seed engine's `continue`.
                    state.markers.push(MarkerRecord {
                        at: state.clock,
                        id: m.id,
                        label: m.label,
                    });
                    i += 1;
                    run_len = 0;
                    continue;
                }
            };
            if let Some(charge_max) = staged_charge {
                if run_len == 0 {
                    run_len = 1;
                    while i + run_len < events.len()
                        && matches!(events[i + run_len], WorkloadEvent::Access(_))
                    {
                        run_len += 1;
                    }
                }
                let take = machine.chunk_capacity(
                    &events[i..i + run_len],
                    0,
                    state.clock,
                    next_deadline,
                    charge_max,
                    &costs,
                );
                if take >= 2 {
                    scratch.begin();
                    for event in &events[i..i + take] {
                        if let WorkloadEvent::Access(access) = event {
                            scratch.accesses.push(*access);
                        }
                    }
                    state.clock += machine.step_chunk(state.clock, &costs, &mut scratch);
                    state.accesses += take as u64;
                    state.window_accesses += take as u64;
                    debug_assert!(state.clock < next_deadline, "chunk bound violated");
                    i += take;
                    run_len -= take;
                    continue;
                }
            }
            state.clock += machine.step(access, state.clock, &costs);
            state.accesses += 1;
            state.window_accesses += 1;
            i += 1;
            run_len = run_len.saturating_sub(1);

            if state.clock < next_deadline {
                continue;
            }

            // Fault edges fire first: the hardware event precedes the
            // daemon's reaction to it at the same instant. An empty
            // plan's deadline is `u64::MAX`, so this guard never
            // passes and the healthy path stays bit-identical.
            if state.clock >= machine.faults.deadline() {
                state.clock += machine.fault_tick(state.clock, state.accesses);
            }

            // Policy tick.
            if state.clock >= state.next_tick {
                state.clock += machine.policy_tick(state.clock, &mut shootdowns);
                state.next_tick = state.clock + tick_quantum;
            }

            // Timeline sample.
            if state.clock >= state.next_sample {
                state.timeline.push(machine.sample(
                    state.clock,
                    state.accesses,
                    state.window_accesses,
                    state.window_start,
                ));
                state.window_accesses = 0;
                state.window_start = state.clock;
                state.next_sample = state.clock + sample_interval;
            }

            // Simulated-time stop: checked after the due tick and
            // sample, matching the seed engine's loop-top check
            // before the next event. Remaining batched events were
            // never processed, so discarding them cannot be
            // observed in the report.
            if limit.is_some_and(|l| state.clock >= l) {
                break 'run;
            }
            // Snapshot cut: same position and semantics as the stop
            // above. The discarded batch tail regenerates
            // deterministically when the resume fast-forwards the
            // rebuilt generator by `events_consumed()`.
            if cut.is_some_and(|c| state.clock >= c) {
                return StopReason::Cut;
            }
            next_deadline = deadline_with_cut(state.next_tick, state.next_sample, limit, cut)
                .min(machine.faults.deadline());
        }
    }
    StopReason::Finished
}

/// Reused structure-of-arrays scratch for the staged batch pipeline:
/// one lane per per-event fact that a later pass needs. Allocated once
/// per run and cleared per chunk, so the steady state allocates
/// nothing.
pub(crate) struct ChunkScratch {
    /// The chunk's accesses, in workload order (co-run lanes push them
    /// already relocated into the tenant namespace).
    pub(crate) accesses: Vec<Access>,
    /// Pass A+B: resolved physical frame in the low bits, with the
    /// per-event booleans packed into the (frame-number-free) top bits
    /// — [`FRAME_TLB_HIT`] from pass A, [`FRAME_LLC_MISS`] and
    /// [`FRAME_FILL`] OR-ed in by pass B. One u64 lane instead of one
    /// u64 plus three bool lanes keeps the staged path's scratch
    /// traffic down.
    frames: Vec<u64>,
    /// Pass A+B: clock-independent time — CPU, walk, minor fault and
    /// cache hit latency. Pass C adds the clock-dependent rest.
    fixed: Vec<Nanos>,
    /// Pass B: resolved dirty writeback victim, if any — the victim's
    /// page and its translated frame. Victims whose page the serial
    /// interleaving would have seen unmapped (first-touched later in
    /// this very chunk) are already dropped to `None` here.
    wb_victims: Vec<Option<(VirtPage, neomem_types::PageNum)>>,
    /// Pass A: pages first mapped by this chunk, with the index of the
    /// event that mapped them — sorted by page after pass A so pass B
    /// can binary-search it. Keeps writeback victim resolution
    /// order-faithful: a stale dirty line of a page the chunk maps at
    /// index `k` must still miss translation for events before `k`,
    /// exactly as in the serial path.
    first_touches: Vec<(VirtPage, usize)>,
    /// Pass P: the chunk's policy-visible events — for each access, an
    /// optional writeback event followed by the demand event, in serial
    /// order. Consumed by one `on_access_chunk` dispatch.
    events: Vec<AccessEvent>,
    /// Pass P: per-event policy charges, parallel to `events`. Left
    /// empty by zero-charge policies (see
    /// [`PolicyBox::on_access_chunk`]); pass C then skips the lane.
    charges: Vec<Nanos>,
}

/// Tag bits packed above the frame number in [`ChunkScratch::frames`].
/// Physical frame numbers are bounded by the machine's page count
/// (nowhere near 2^48), so the top bits are guaranteed free.
const FRAME_TLB_HIT: u64 = 1 << 63;
const FRAME_LLC_MISS: u64 = 1 << 62;
const FRAME_FILL: u64 = 1 << 61;
const FRAME_NUM_MASK: u64 = FRAME_FILL - 1;

impl ChunkScratch {
    pub(crate) fn new() -> Self {
        Self {
            accesses: Vec::new(),
            frames: Vec::new(),
            fixed: Vec::new(),
            wb_victims: Vec::new(),
            first_touches: Vec::new(),
            events: Vec::new(),
            charges: Vec::new(),
        }
    }

    /// Empties every lane for the next chunk; capacity is retained.
    pub(crate) fn begin(&mut self) {
        self.accesses.clear();
        self.frames.clear();
        self.fixed.clear();
        self.wb_victims.clear();
        self.first_touches.clear();
        self.events.clear();
        self.charges.clear();
    }
}

/// The simulated machine shared by the single-tenant [`Simulation`]
/// and the multi-tenant [`crate::CoRunSimulation`]: configuration,
/// kernel, cache hierarchy, TLB, and the active tiering policy.
///
/// Both engines drive accesses through the same [`Machine::step`], so
/// a co-run of one tenant is observably the same machine as a classic
/// single-workload run.
pub(crate) struct Machine {
    pub(crate) config: SimConfig,
    pub(crate) policy: PolicyBox,
    pub(crate) kernel: Kernel,
    pub(crate) caches: CacheHierarchy,
    pub(crate) tlb: Tlb,
    pub(crate) faults: FaultInjector,
}

impl Machine {
    /// Validates `config` and builds the machine around `policy`.
    pub(crate) fn new(config: SimConfig, policy: PolicyBox) -> Result<Self> {
        config.validate()?;
        let kernel = Kernel::new(KernelConfig {
            memory: config.memory_config(),
            rss_pages: config.rss_pages,
            costs: config.costs,
        });
        let caches = CacheHierarchy::new(config.caches);
        let tlb = Tlb::new(config.tlb);
        let faults = FaultInjector::new(&config.faults);
        Ok(Self { config, policy, kernel, caches, tlb, faults })
    }

    /// Fires every due fault edge at `now` (see
    /// [`FaultInjector::tick`]); returns the virtual time charged.
    pub(crate) fn fault_tick(&mut self, now: Nanos, accesses: u64) -> Nanos {
        self.faults.tick(&mut self.kernel, &mut self.policy, now, accesses)
    }

    /// Offers the policy a tick at `now` and applies any TLB shootdowns
    /// it requested, reusing the caller's `shootdowns` buffer (cleared
    /// on return). Returns the total time charged — exactly the
    /// sequence of charges the seed engine's inline tick block made.
    pub(crate) fn policy_tick(&mut self, now: Nanos, shootdowns: &mut Vec<VirtPage>) -> Nanos {
        let mut elapsed = self.policy.maybe_tick(&mut self.kernel, now);
        self.policy.drain_shootdowns_into(shootdowns);
        for &vpage in shootdowns.iter() {
            self.tlb.shootdown(vpage);
            elapsed += self.kernel.costs().tlb_shootdown;
        }
        shootdowns.clear();
        elapsed
    }

    /// One timeline sample of the machine state at `clock`.
    pub(crate) fn sample(
        &self,
        clock: Nanos,
        accesses: u64,
        window_accesses: u64,
        window_start: Nanos,
    ) -> TimelinePoint {
        let telemetry = self.policy.telemetry();
        let slow = self.kernel.memory().node(Tier::Slow).stats();
        let window = clock.saturating_sub(window_start);
        TimelinePoint {
            at: clock,
            accesses,
            slow_accesses: slow.reads + slow.writes,
            throughput: if window.is_zero() {
                0.0
            } else {
                window_accesses as f64 / window.as_secs_f64()
            },
            threshold: telemetry.threshold,
            p_fraction: telemetry.p_fraction,
            bandwidth_util: telemetry.bandwidth_util,
            read_util: telemetry.read_util,
            write_util: telemetry.write_util,
            error_bound: telemetry.error_bound,
            histogram: telemetry.histogram,
        }
    }

    /// Consumes the machine into the final [`RunReport`], fetching the
    /// end-of-run counters in the same order as the seed engine.
    pub(crate) fn into_report(
        self,
        workload: String,
        runtime: Nanos,
        accesses: u64,
        timeline: Vec<TimelinePoint>,
        markers: Vec<MarkerRecord>,
    ) -> RunReport {
        let slow = self.kernel.memory().node(Tier::Slow).stats();
        let fast = self.kernel.memory().node(Tier::Fast).stats();
        let cache = self.caches.stats();
        let telemetry = self.policy.telemetry();
        let degradation = self.faults.into_metrics(runtime, accesses);
        RunReport {
            workload,
            policy: self.policy.name().to_string(),
            runtime,
            accesses,
            llc_misses: cache.llc_misses,
            slow_reads: slow.reads,
            slow_writes: slow.writes,
            fast_reads: fast.reads,
            fast_writes: fast.writes,
            kernel: self.kernel.stats(),
            tlb: self.tlb.stats(),
            cache,
            profiling_overhead: telemetry.profiling_overhead,
            promoted_huge_bytes: telemetry.promoted_huge_bytes,
            degradation,
            timeline,
            markers,
        }
    }

    /// Serializes the full machine state — kernel, caches, TLB and the
    /// policy's private state — into one snapshot object. The
    /// configuration is *not* serialized: a snapshot restores onto a
    /// freshly built machine of the same configuration, which the
    /// envelope fingerprint enforces.
    pub(crate) fn snapshot(&self) -> Json {
        Json::obj([
            (
                "policy",
                Json::obj([
                    ("name", Json::Str(self.policy.name().to_string())),
                    ("state", self.policy.snapshot_state()),
                ]),
            ),
            ("kernel", self.kernel.snapshot()),
            ("caches", self.caches.snapshot()),
            ("tlb", self.tlb.snapshot()),
            ("faults", self.faults.snapshot()),
        ])
    }

    /// Restores a [`Machine::snapshot`] onto this freshly built
    /// machine.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Snapshot`] when the snapshot's policy does
    /// not match the configured one, or any component rejects its
    /// state. The machine may be partially mutated on error and must
    /// be discarded — callers abort the whole restore.
    pub(crate) fn restore(&mut self, snap: &Json) -> Result<()> {
        let policy = snap.req("policy")?;
        let name = policy.req_str("name")?;
        if name != self.policy.name() {
            return Err(Error::snapshot(format!(
                "snapshot was taken under policy {name:?}, this machine runs {:?}",
                self.policy.name()
            )));
        }
        self.kernel.restore(snap.req("kernel")?)?;
        self.caches.restore(snap.req("caches")?)?;
        self.tlb.restore(snap.req("tlb")?)?;
        self.faults.restore(snap.req("faults")?)?;
        self.policy.restore_state(policy.req("state")?)
    }

    /// Executes one CPU access; returns the time it took. `costs` holds
    /// the pre-resolved per-access latencies so the hot loop does not
    /// re-read them through `self.config`.
    pub(crate) fn step(&mut self, access: Access, now: Nanos, costs: &HotCosts) -> Nanos {
        let mut elapsed = costs.cpu_per_access;
        let vpage = access.vpage;

        // 1. Address translation.
        let tlb_hit = self.tlb.access(vpage);
        if !tlb_hit {
            elapsed += costs.tlb_walk;
            let was_mapped = self.kernel.page_table().is_mapped(vpage);
            let preference = self.policy.alloc_preference();
            self.kernel
                .touch_alloc_preferring(vpage, preference, now)
                .expect("simulated machine out of physical memory");
            if !was_mapped {
                elapsed += self.kernel.minor_fault_cost();
            }
            // The walker sets the PTE Accessed bit.
            let _ = self.kernel.page_table_mut().mark_accessed(vpage);
        }
        let frame = self.kernel.translate(vpage).expect("page mapped above");

        // 2. Cache hierarchy (virtually indexed).
        let line = CacheLine::of_page(
            neomem_types::PageNum::new(vpage.index()),
            access.line_in_page as u64,
        );
        let outcome = self.caches.access(line, access.kind);
        elapsed += match outcome.level {
            HitLevel::L1 => costs.l1,
            HitLevel::L2 => costs.l2,
            HitLevel::Llc => costs.llc,
            HitLevel::Memory => Nanos::ZERO, // charged below via the node model
        };

        // 3. Memory traffic.
        let tier = self.kernel.memory().tier_of(frame);
        if let Some(_fill) = outcome.traffic.fill {
            // The demand fill: the CPU waits for it.
            elapsed += self.kernel.memory_mut().service(frame, neomem_types::AccessKind::Read, now);
        }
        if let Some(victim) = outcome.traffic.writeback {
            // Dirty writeback: asynchronous, occupies bandwidth only.
            let victim_vpage = VirtPage::new(victim.page().index());
            if let Ok(victim_frame) = self.kernel.translate(victim_vpage) {
                let _ = self.kernel.memory_mut().service(
                    victim_frame,
                    neomem_types::AccessKind::Write,
                    now,
                );
                // The device side still observes it.
                let wb_tier = self.kernel.memory().tier_of(victim_frame);
                let wb_event = AccessEvent {
                    vpage: victim_vpage,
                    frame: victim_frame,
                    tier: wb_tier,
                    kind: neomem_types::AccessKind::Write,
                    tlb_hit: true,
                    llc_miss: true,
                    now,
                };
                elapsed += self.policy.on_access(&wb_event, &mut self.kernel);
            }
        }

        // 4. Expose the demand access to the policy.
        let event = AccessEvent {
            vpage,
            frame,
            tier,
            kind: access.kind,
            tlb_hit,
            llc_miss: outcome.level.is_llc_miss(),
            now,
        };
        elapsed += self.policy.on_access(&event, &mut self.kernel);
        elapsed
    }

    /// How many of `run` (a slice of consecutive access events, with
    /// `vpage_base` added to each virtual page for co-run tenant
    /// relocation) the staged pipeline may execute as one chunk without
    /// any deadline check, given the hot loop's current
    /// `next_deadline`.
    ///
    /// The bound is a worst case over everything one access can charge:
    /// CPU, page walk, minor fault, the deepest cache hit, a demand
    /// fill at the slower node's degraded latency, two channel
    /// occupancies (fill + writeback) and two policy charges (demand +
    /// writeback events, bounded by `charge_max`). Queueing waits are
    /// covered by a potential argument — the busy horizons grow by at
    /// most one occupancy per service call, so total chunk wait is
    /// bounded by the start-of-chunk backlog (added once) plus the
    /// per-event occupancy terms. A chunk of `n` events therefore
    /// finishes strictly before `next_deadline`, meaning the serial
    /// path would have taken its fast `continue` on every one of them:
    /// skipping the checks is unobservable.
    ///
    /// The minor-fault term is the bound's dominant cost but is only
    /// payable by an access whose page is unmapped *right now*: staged
    /// policies never unmap from their access hook, so a page mapped at
    /// admission time stays mapped through the chunk, and a page that
    /// is unmapped can fault at most once. Charging the fault term only
    /// to currently-unmapped candidates (a dense page-table flag probe
    /// per event) is therefore still a worst case, and in the
    /// post-warmup steady state — where nothing faults — it admits
    /// chunks several times longer than the uniform bound would.
    pub(crate) fn chunk_capacity(
        &self,
        run: &[WorkloadEvent],
        vpage_base: u64,
        clock: Nanos,
        next_deadline: Nanos,
        charge_max: Nanos,
        costs: &HotCosts,
    ) -> usize {
        let mem = self.kernel.memory();
        let fast = mem.node(Tier::Fast);
        let slow = mem.node(Tier::Slow);
        let occ_max = fast.service_occupancy().max(slow.service_occupancy());
        let fill_lat = |n: &neomem_mem::MemoryNode| {
            n.config().read_latency.as_nanos().saturating_mul(n.latency_multiplier())
        };
        let fill_max = fill_lat(fast).max(fill_lat(slow));
        let cache_max = costs.l1.max(costs.l2).max(costs.llc);
        let base_cost = costs
            .cpu_per_access
            .as_nanos()
            .saturating_add(costs.tlb_walk.as_nanos())
            .saturating_add(cache_max.as_nanos())
            .saturating_add(fill_max)
            .saturating_add(occ_max.as_nanos().saturating_mul(2))
            .saturating_add(charge_max.as_nanos().saturating_mul(2));
        let fault_cost = self.kernel.minor_fault_cost().as_nanos();
        let backlog = fast.backlog(clock).as_nanos().saturating_add(slow.backlog(clock).as_nanos());
        let headroom =
            next_deadline.as_nanos().saturating_sub(clock.as_nanos()).saturating_sub(backlog);
        if headroom == 0 {
            return 0;
        }
        // Strictly-before-deadline budget: the admitted worst case must
        // leave the clock at most `headroom - 1` past its start.
        let budget = headroom - 1;
        let page_table = self.kernel.page_table();
        let mut total = 0u64;
        let mut n = 0usize;
        while n < run.len() {
            let WorkloadEvent::Access(a) = &run[n] else { break };
            let vpage = VirtPage::new(vpage_base + a.vpage.index());
            let cost = if page_table.is_mapped(vpage) {
                base_cost
            } else {
                base_cost.saturating_add(fault_cost)
            };
            match total.checked_add(cost) {
                Some(next) if next <= budget => total = next,
                _ => break,
            }
            n += 1;
        }
        n
    }

    /// Executes the chunk in `scratch.accesses` stage by stage and
    /// returns the total elapsed time: pass A does all TLB and
    /// page-table work, pass B drives the cache hierarchy and resolves
    /// writeback victims, pass P exposes the chunk's events to the
    /// policy through one [`PolicyBox::on_access_chunk`] dispatch, and
    /// pass C is a pure timing loop chaining memory traffic and the
    /// recorded charges on the per-event clock. Produces machine state
    /// and elapsed time bit-identical to calling [`Machine::step`] per
    /// access.
    ///
    /// Sound only for chunks admitted by [`Machine::chunk_capacity`]
    /// under a policy with a [`PolicyBox::max_access_charge`] bound:
    /// such policies never move mappings from their access hook, so the
    /// early passes see exactly the page table the serial interleaving
    /// would have produced (modulo the first-touch ordering that
    /// `scratch.first_touches` restores for writeback victims). Hoisting
    /// the policy hook ahead of the timing pass is likewise sound
    /// because stageable hooks mutate only policy-private state and the
    /// kernel LRU lists — disjoint from the memory node service state
    /// pass C evolves — and never read `AccessEvent::now`.
    pub(crate) fn step_chunk(
        &mut self,
        start: Nanos,
        costs: &HotCosts,
        scratch: &mut ChunkScratch,
    ) -> Nanos {
        // Pass A: address translation. TLB state and the page table
        // evolve in event order, untouched by anything the later
        // passes do, so running all of it first is order-faithful.
        let preference = self.policy.alloc_preference();
        for (j, a) in scratch.accesses.iter().enumerate() {
            let vpage = a.vpage;
            let tlb_hit = self.tlb.access(vpage);
            let mut fixed = costs.cpu_per_access;
            if !tlb_hit {
                fixed += costs.tlb_walk;
                let was_mapped = self.kernel.page_table().is_mapped(vpage);
                self.kernel
                    .touch_alloc_preferring(vpage, preference, start)
                    .expect("simulated machine out of physical memory");
                if !was_mapped {
                    fixed += self.kernel.minor_fault_cost();
                    scratch.first_touches.push((vpage, j));
                }
                let _ = self.kernel.page_table_mut().mark_accessed(vpage);
            }
            let frame = self.kernel.translate(vpage).expect("page mapped above");
            scratch.frames.push(frame.index() | if tlb_hit { FRAME_TLB_HIT } else { 0 });
            scratch.fixed.push(fixed);
        }
        // A page can be first-touched at most once per chunk (nothing
        // unmaps inside a chunk), so the lane sorts into unique keys
        // for pass B's binary search.
        scratch.first_touches.sort_unstable_by_key(|&(page, _)| page);

        // Pass B: the cache hierarchy. Virtually indexed, so it
        // depends only on the access sequence, which is unchanged.
        // Dirty victims resolve to frames here: the page table no
        // longer changes after pass A.
        for (j, a) in scratch.accesses.iter().enumerate() {
            let line = CacheLine::of_page(
                neomem_types::PageNum::new(a.vpage.index()),
                a.line_in_page as u64,
            );
            let outcome = self.caches.access(line, a.kind);
            scratch.fixed[j] += match outcome.level {
                HitLevel::L1 => costs.l1,
                HitLevel::L2 => costs.l2,
                HitLevel::Llc => costs.llc,
                HitLevel::Memory => Nanos::ZERO,
            };
            scratch.frames[j] |= if outcome.level.is_llc_miss() { FRAME_LLC_MISS } else { 0 }
                | if outcome.traffic.fill.is_some() { FRAME_FILL } else { 0 };
            let resolved = outcome.traffic.writeback.and_then(|victim| {
                let victim_vpage = VirtPage::new(victim.page().index());
                // Serial order: a victim page this chunk first-touched
                // *after* event `j` was unmapped when `j` ran.
                let mapped_later = match scratch
                    .first_touches
                    .binary_search_by_key(&victim_vpage, |&(page, _)| page)
                {
                    Ok(idx) => scratch.first_touches[idx].1 > j,
                    Err(_) => false,
                };
                if mapped_later {
                    return None;
                }
                self.kernel.translate(victim_vpage).ok().map(|frame| (victim_vpage, frame))
            });
            scratch.wb_victims.push(resolved);
        }

        // Pass P: policy exposure. The chunk's events — writeback
        // before demand for each access, exactly the serial call order
        // — flatten into one lane consumed by a single dispatch.
        // Events carry the chunk-start clock: stageable hooks never
        // read it. Tier lookups happen here, off the timing loop;
        // access hooks never migrate, so tiers are chunk constants.
        let noop = self.policy.access_is_noop();
        let zero_charge = self.policy.max_access_charge() == Some(Nanos::ZERO);
        let Machine { policy, kernel, .. } = self;
        if !noop {
            for (j, a) in scratch.accesses.iter().enumerate() {
                if let Some((victim_vpage, victim_frame)) = scratch.wb_victims[j] {
                    scratch.events.push(AccessEvent {
                        vpage: victim_vpage,
                        frame: victim_frame,
                        tier: kernel.memory().tier_of(victim_frame),
                        kind: neomem_types::AccessKind::Write,
                        tlb_hit: true,
                        llc_miss: true,
                        now: start,
                    });
                }
                let packed = scratch.frames[j];
                let frame = neomem_types::PageNum::new(packed & FRAME_NUM_MASK);
                scratch.events.push(AccessEvent {
                    vpage: a.vpage,
                    frame,
                    tier: kernel.memory().tier_of(frame),
                    kind: a.kind,
                    tlb_hit: packed & FRAME_TLB_HIT != 0,
                    llc_miss: packed & FRAME_LLC_MISS != 0,
                    now: start,
                });
            }
            policy.on_access_chunk(&scratch.events, kernel, &mut scratch.charges);
        }

        // Pass C: fused timing. Memory service sees the same per-event
        // clock as the serial path — each event's start is the chunk
        // start plus everything earlier events took. Policy charges
        // (zero unless the policy is charged) consume the recorded
        // lane in event order.
        debug_assert!(zero_charge || scratch.charges.len() == scratch.events.len());
        let mut charge_at = 0usize;
        let mut now = start;
        let mut total = Nanos::ZERO;
        for j in 0..scratch.accesses.len() {
            let mut elapsed = scratch.fixed[j];
            let packed = scratch.frames[j];
            if packed & FRAME_FILL != 0 {
                elapsed += kernel.memory_mut().service(
                    neomem_types::PageNum::new(packed & FRAME_NUM_MASK),
                    neomem_types::AccessKind::Read,
                    now,
                );
            }
            if let Some((_, victim_frame)) = scratch.wb_victims[j] {
                let _ = kernel.memory_mut().service(
                    victim_frame,
                    neomem_types::AccessKind::Write,
                    now,
                );
                if !zero_charge {
                    elapsed += scratch.charges[charge_at];
                    charge_at += 1;
                }
            }
            if !zero_charge {
                elapsed += scratch.charges[charge_at];
                charge_at += 1;
            }
            now += elapsed;
            total += elapsed;
        }
        total
    }
}

/// A configured simulation, ready to run.
pub struct Simulation {
    machine: Machine,
    workload: Box<dyn Workload>,
}

impl Simulation {
    /// Builds the simulated machine.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures, including a
    /// workload RSS that does not match `config.rss_pages`.
    pub fn new(
        config: SimConfig,
        workload: Box<dyn Workload>,
        policy: impl Into<PolicyBox>,
    ) -> Result<Self> {
        config.validate()?;
        if workload.rss_pages() != config.rss_pages {
            return Err(neomem_types::Error::invalid_config(format!(
                "workload rss {} != config rss {}",
                workload.rss_pages(),
                config.rss_pages
            )));
        }
        Ok(Self { machine: Machine::new(config, policy.into())?, workload })
    }

    /// Runs to completion and produces the report.
    ///
    /// The engine pulls events in batches through
    /// [`Workload::fill_events`] into one reused buffer (a single
    /// virtual dispatch per batch instead of one per access) and hoists
    /// the `max_time` / policy-tick / timeline-sample checks out of the
    /// per-access path behind a single precomputed *next deadline*: the
    /// common iteration is `step` plus one branch. The slow path runs
    /// the due checks in exactly the seed engine's order (tick, sample,
    /// stop), so a batched run is observably identical to the
    /// event-at-a-time path for any batch size — the
    /// `batch_determinism` suite holds this invariant.
    ///
    /// # Panics
    ///
    /// Panics if the machine runs out of physical memory — the
    /// configuration validator makes this unreachable for derived
    /// layouts, so it indicates a config override bug.
    pub fn run(self) -> RunReport {
        let Self { mut machine, mut workload } = self;
        let mut state = LoopState::fresh(&machine.config);
        run_core(&mut machine, workload.as_mut(), &mut state, None);
        machine.into_report(
            workload.name().to_string(),
            state.clock,
            state.accesses,
            state.timeline,
            state.markers,
        )
    }

    /// Runs until the virtual clock reaches `at` and serializes the
    /// full run state — machine, loop registers, timeline so far —
    /// into a versioned snapshot document (see [`crate::snapshot`]).
    ///
    /// Resuming the snapshot with [`Simulation::run_from`] on an
    /// identically configured simulation produces a report
    /// bit-identical to an uninterrupted [`Simulation::run`]. If the
    /// run completes before `at`, the snapshot captures the final
    /// state and a resume finishes immediately with the same report.
    ///
    /// # Panics
    ///
    /// Panics if the machine runs out of physical memory, as in
    /// [`Simulation::run`].
    pub fn snapshot_at(self, at: Nanos) -> Json {
        let Self { mut machine, mut workload } = self;
        let mut state = LoopState::fresh(&machine.config);
        run_core(&mut machine, workload.as_mut(), &mut state, Some(at));
        let fingerprint = snapshot::sim_fingerprint(&machine.config);
        snapshot::envelope(
            snapshot::KIND_SIM,
            fingerprint,
            workload.name(),
            machine.policy.name(),
            Json::obj([("machine", machine.snapshot()), ("loop", state.snapshot())]),
        )
    }

    /// Restores a [`Simulation::snapshot_at`] snapshot onto this
    /// freshly built simulation and runs it to completion. The
    /// workload generator is rebuilt from configuration and
    /// fast-forwarded past the events the snapshotted run consumed —
    /// generator internals are never serialized.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Snapshot`] when the envelope does not match
    /// this simulation (schema, version, kind, configuration
    /// fingerprint, workload or policy name) or any component rejects
    /// its state. Corrupt input yields an error, never a panic.
    ///
    /// # Panics
    ///
    /// Panics if the machine runs out of physical memory, as in
    /// [`Simulation::run`].
    pub fn run_from(self, snap: &Json) -> Result<RunReport> {
        let Self { mut machine, mut workload } = self;
        let fingerprint = snapshot::sim_fingerprint(&machine.config);
        let state_json = snapshot::open_envelope(
            snap,
            snapshot::KIND_SIM,
            fingerprint,
            workload.name(),
            machine.policy.name(),
        )?;
        machine.restore(state_json.req("machine")?)?;
        let mut state = LoopState::restore(state_json.req("loop")?)?;
        snapshot::fast_forward(workload.as_mut(), state.events_consumed());
        run_core(&mut machine, workload.as_mut(), &mut state, None);
        Ok(machine.into_report(
            workload.name().to_string(),
            state.clock,
            state.accesses,
            state.timeline,
            state.markers,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neomem_policies::{
        FirstTouchPolicy, NeoMemParams, NeoMemPolicy, PebsPolicy, PebsPolicyConfig,
    };
    use neomem_profilers::NeoProfDriverConfig;
    use neomem_types::Bandwidth;
    use neomem_workloads::WorkloadKind;

    fn neomem_policy(config: &SimConfig) -> PolicyBox {
        let mem = config.memory_config();
        let dev = neomem_neoprof_config(mem.fast.capacity_frames);
        NeoMemPolicy::new(dev, NeoProfDriverConfig::default(), NeoMemParams::scaled(1000))
            .unwrap()
            .into()
    }

    fn neomem_neoprof_config(slow_base: u64) -> neomem_neoprof::NeoProfConfig {
        neomem_neoprof::NeoProfConfig::small(neomem_types::PageNum::new(slow_base))
    }

    #[test]
    fn first_touch_run_completes() {
        let config = SimConfig { max_accesses: 50_000, ..SimConfig::quick(2048, 2) };
        let w = WorkloadKind::Gups.build(2048, 1);
        let report =
            Simulation::new(config, w, Box::new(FirstTouchPolicy::new())).unwrap().run();
        assert_eq!(report.accesses, 50_000);
        assert!(report.runtime > Nanos::ZERO);
        assert_eq!(report.kernel.promotions, 0);
        assert!(report.llc_misses > 0, "working set exceeds caches");
        assert!(report.slow_tier_accesses() > 0, "footprint spills to CXL at 1:2");
    }

    #[test]
    fn rss_mismatch_rejected() {
        let config = SimConfig::quick(2048, 2);
        let w = WorkloadKind::Gups.build(4096, 1);
        assert!(Simulation::new(config, w, Box::new(FirstTouchPolicy::new())).is_err());
    }

    #[test]
    fn neomem_promotes_and_beats_first_touch_on_gups() {
        let config = SimConfig { max_accesses: 400_000, ..SimConfig::quick(4096, 4) };
        let run = |policy: PolicyBox| {
            let w = WorkloadKind::Gups.build(4096, 7);
            Simulation::new(config.clone(), w, policy).unwrap().run()
        };
        let ft = run(FirstTouchPolicy::new().into());
        let nm = run(neomem_policy(&config));
        assert!(nm.kernel.promotions > 0, "NeoMem must migrate hot pages");
        assert!(
            nm.runtime < ft.runtime,
            "NeoMem {} !< first-touch {} on skewed GUPS",
            nm.runtime,
            ft.runtime
        );
        assert!(nm.slow_tier_accesses() < ft.slow_tier_accesses());
    }

    #[test]
    fn pinned_slow_slower_than_pinned_fast() {
        // Fig. 3b: CXL-only is substantially slower than local-only.
        let mut config = SimConfig { max_accesses: 150_000, ..SimConfig::quick(1024, 2) };
        // Both tiers big enough to hold everything.
        config.memory = Some(neomem_mem::TieredMemoryConfig::with_frames(2048, 2048));
        let run = |tier| {
            let w = WorkloadKind::Gups.build(1024, 3);
            Simulation::new(config.clone(), w, Box::new(FirstTouchPolicy::pinned(tier)))
                .unwrap()
                .run()
        };
        let fast = run(Tier::Fast);
        let slow = run(Tier::Slow);
        assert!(fast.slow_tier_accesses() == 0);
        let slowdown = slow.runtime.as_nanos() as f64 / fast.runtime.as_nanos() as f64;
        assert!(slowdown > 1.3, "CXL-only slowdown only {slowdown}");
    }

    #[test]
    fn timeline_and_markers_recorded() {
        let config = SimConfig {
            max_accesses: 200_000,
            sample_interval: Nanos::from_micros(50),
            ..SimConfig::quick(1024, 2)
        };
        let w = WorkloadKind::PageRank.build(1024, 5);
        let report = Simulation::new(config, w, Box::new(FirstTouchPolicy::new())).unwrap().run();
        assert!(!report.timeline.is_empty());
        assert!(report.markers.iter().any(|m| m.label == "graph-built"));
        // Timeline timestamps are monotone.
        for pair in report.timeline.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn pebs_policy_charges_overhead() {
        let config = SimConfig { max_accesses: 100_000, ..SimConfig::quick(2048, 2) };
        let pebs_cfg = PebsPolicyConfig {
            pebs: neomem_profilers::PebsConfig { sample_interval: 10, ..Default::default() },
            ..PebsPolicyConfig::scaled(1000)
        };
        let w = WorkloadKind::Gups.build(2048, 9);
        let policy = Box::new(PebsPolicy::new(pebs_cfg, Bandwidth::from_mib_per_sec(256)));
        let report = Simulation::new(config, w, policy).unwrap().run();
        assert!(report.profiling_overhead > Nanos::ZERO);
    }

    #[test]
    fn max_time_bounds_run() {
        let config = SimConfig {
            max_accesses: u64::MAX / 2,
            max_time: Some(Nanos::from_millis(1)),
            ..SimConfig::quick(1024, 2)
        };
        let w = WorkloadKind::Silo.build(1024, 2);
        let report = Simulation::new(config, w, Box::new(FirstTouchPolicy::new())).unwrap().run();
        assert!(report.runtime >= Nanos::from_millis(1));
        assert!(report.runtime < Nanos::from_millis(100), "should stop promptly");
    }

    #[test]
    fn writeback_heavy_chunk_resolves_victims_like_serial() {
        // Regression for pass B's first-touch victim resolution: with
        // tiny caches and an all-write pattern, every chunk both
        // first-touches pages and evicts dirty lines of pages mapped
        // earlier in the same chunk, so the sorted-lane binary search
        // runs hot on both its hit (same-chunk first touch) and miss
        // (prior-chunk page) outcomes. Serial per-event stepping is the
        // oracle; machine state and elapsed time must match exactly.
        let config = SimConfig {
            caches: neomem_cache::HierarchyConfig::tiny(),
            ..SimConfig::quick(96, 2)
        };
        let costs = HotCosts::of(&config);
        let build = || Machine::new(config.clone(), FirstTouchPolicy::new().into()).unwrap();
        let mut serial = build();
        let mut staged = build();

        // Stride-7 writes over 96 pages × 64 lines: far more distinct
        // dirty lines than the tiny LLC holds, so evictions with dirty
        // victims are continuous from the first chunk on.
        let accesses: Vec<Access> = (0..2048u64)
            .map(|i| {
                Access::new(
                    VirtPage::new((i * 7) % 96),
                    (i % 64) as u8,
                    neomem_types::AccessKind::Write,
                )
            })
            .collect();

        let mut serial_clock = Nanos::ZERO;
        for &a in &accesses {
            serial_clock += serial.step(a, serial_clock, &costs);
        }

        let mut scratch = ChunkScratch::new();
        let mut staged_clock = Nanos::ZERO;
        let mut same_chunk_victims = false;
        for chunk in accesses.chunks(256) {
            scratch.begin();
            scratch.accesses.extend_from_slice(chunk);
            staged_clock += staged.step_chunk(staged_clock, &costs, &mut scratch);
            same_chunk_victims |= !scratch.first_touches.is_empty()
                && scratch.wb_victims.iter().any(Option::is_some);
        }

        assert!(same_chunk_victims, "corpus must hit the same-chunk first-touch path");
        assert!(staged.caches.stats().llc.writebacks > 0, "chunk must be writeback-heavy");
        assert_eq!(serial_clock, staged_clock, "elapsed time diverged");
        assert_eq!(
            format!("{:?}", serial.snapshot()),
            format!("{:?}", staged.snapshot()),
            "machine state diverged"
        );
    }
}
