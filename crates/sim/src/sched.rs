//! Slice scheduling for the co-run engine.
//!
//! A [`SliceScheduler`] decides, at every slice boundary, what the
//! co-run engine does next: run a tenant's slice, admit or retire a
//! tenant, change a weight, idle forward to the next timeline event, or
//! stop. The engine ([`crate::CoRunSimulation`]) owns the machine and
//! the attribution; the scheduler owns *only* the schedule — a pure
//! function of the configuration and the virtual clock, never of
//! `batch_size` or host threading, so every co-run stays bit-identical
//! at any batch size and `--threads` value.
//!
//! Two implementations ship:
//!
//! * [`StaticRoundRobin`] — the classic fixed-mix weighted round-robin
//!   (tenant `i` runs `quantum × weight_i` events per round), extracted
//!   verbatim from the original engine loop: a static co-run schedules,
//!   counts rounds/slices, and reports exactly as before the
//!   extraction.
//! * [`DynamicSchedule`] — drives a
//!   [`neomem_workloads::Scenario`] timeline: tenants arrive, depart
//!   and change weight at virtual-time points, applied at the first
//!   slice boundary at or after each event's timestamp; between those,
//!   active tenants round-robin exactly like the static schedule.

use neomem_types::json::{hex_from_u64s, Json};
use neomem_types::{Error, Nanos, Result};
use neomem_workloads::{Scenario, TenantEvent, TenantEventKind};

/// One scheduling decision, consumed by the engine at a slice boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerOp {
    /// Run `events` workload events of lane `lane`. `new_round` marks
    /// the first slice of a scheduling round (the engine's `rounds`
    /// counter increments on it).
    Slice {
        /// Lane (tenant index, mix order) to run.
        lane: usize,
        /// Events the slice executes.
        events: usize,
        /// Whether this slice opens a new round.
        new_round: bool,
    },
    /// Lane `lane` starts running: the engine opens its tenant-epoch
    /// and informs the policy
    /// ([`neomem_policies::TieringPolicy::on_tenant_arrival`]).
    Admit {
        /// Arriving lane.
        lane: usize,
    },
    /// Lane `lane` stops running: the engine informs the policy,
    /// reclaims the lane's fast-tier pages through the normal eviction
    /// path, and closes its tenant-epoch.
    Retire {
        /// Departing lane.
        lane: usize,
    },
    /// Lane `lane`'s interleave weight changes (affects subsequent
    /// slices of this scheduler; recorded by the engine).
    SetWeight {
        /// Affected lane.
        lane: usize,
        /// New weight.
        weight: u32,
    },
    /// No lane is runnable but timeline events remain: the engine
    /// advances the virtual clock to this instant (keeping policy ticks
    /// and timeline samples alive across the gap).
    AdvanceTo(Nanos),
    /// No lane is runnable and no events remain: the run is over.
    Done,
}

/// A slice scheduler: the engine calls [`SliceScheduler::next`] at
/// every slice boundary with the current virtual time and executes the
/// returned op. Implementations must be deterministic functions of
/// their configuration and the clock values they are handed.
pub trait SliceScheduler {
    /// The next scheduling decision at virtual time `now`.
    fn next(&mut self, now: Nanos) -> SchedulerOp;

    /// Serialises the scheduler's mutable position for a machine
    /// snapshot. Stateless schedules keep the default, [`Json::Null`].
    fn snapshot_state(&self) -> Json {
        Json::Null
    }

    /// Restores [`SliceScheduler::snapshot_state`] output onto a
    /// scheduler built from the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on state the scheduler cannot absorb.
    fn restore_state(&mut self, state: &Json) -> Result<()> {
        match state {
            Json::Null => Ok(()),
            _ => Err(Error::snapshot(
                "scheduler carries no restorable state, but the snapshot has some",
            )),
        }
    }
}

/// The classic fixed-mix weighted round-robin: lane `i` runs
/// `quantum × weight_i` events per round, every round, forever (the
/// engine bounds the run by access budget / simulated time).
#[derive(Debug, Clone)]
pub struct StaticRoundRobin {
    weights: Vec<u32>,
    quantum: usize,
    pos: usize,
}

impl StaticRoundRobin {
    /// Builds the schedule over `weights` at `quantum` events per
    /// weight unit.
    ///
    /// # Panics
    ///
    /// Panics on an empty weight list — the tenant mix validates
    /// non-emptiness before any scheduler exists.
    pub fn new(weights: Vec<u32>, quantum: usize) -> Self {
        assert!(!weights.is_empty(), "a schedule needs at least one lane");
        Self { weights, quantum, pos: 0 }
    }
}

impl SliceScheduler for StaticRoundRobin {
    fn next(&mut self, _now: Nanos) -> SchedulerOp {
        let lane = self.pos;
        self.pos = (self.pos + 1) % self.weights.len();
        SchedulerOp::Slice {
            lane,
            events: self.quantum * self.weights[lane] as usize,
            new_round: lane == 0,
        }
    }

    fn snapshot_state(&self) -> Json {
        Json::obj([("pos", Json::U64(self.pos as u64))])
    }

    fn restore_state(&mut self, state: &Json) -> Result<()> {
        let pos = state.req_u64("pos")? as usize;
        if pos >= self.weights.len() {
            return Err(Error::snapshot(format!(
                "round-robin position {pos} out of range for {} lanes",
                self.weights.len()
            )));
        }
        self.pos = pos;
        Ok(())
    }
}

/// A scenario-driven schedule: applies the timeline's arrivals,
/// departures and weight changes at slice boundaries, and round-robins
/// the currently-active lanes in between.
#[derive(Debug, Clone)]
pub struct DynamicSchedule {
    quantum: usize,
    /// The timeline, sorted by time (scenario build order).
    events: Vec<TenantEvent>,
    next_event: usize,
    active: Vec<bool>,
    weights: Vec<u32>,
    cursor: usize,
    pending_new_round: bool,
}

impl DynamicSchedule {
    /// Builds the schedule from a validated scenario at `quantum`
    /// events per weight unit.
    pub fn new(scenario: &Scenario, quantum: usize) -> Self {
        Self {
            quantum,
            events: scenario.events().to_vec(),
            next_event: 0,
            active: scenario.initially_active(),
            weights: scenario.mix().tenants().iter().map(|t| t.weight).collect(),
            cursor: 0,
            pending_new_round: true,
        }
    }

    /// Which lanes are currently admitted.
    pub fn active(&self) -> &[bool] {
        &self.active
    }
}

impl SliceScheduler for DynamicSchedule {
    fn next(&mut self, now: Nanos) -> SchedulerOp {
        // Due timeline events first, one per call, in timeline order.
        if let Some(event) = self.events.get(self.next_event) {
            if event.at <= now {
                let event = *event;
                self.next_event += 1;
                return match event.kind {
                    TenantEventKind::Arrive => {
                        self.active[event.tenant] = true;
                        SchedulerOp::Admit { lane: event.tenant }
                    }
                    TenantEventKind::Depart => {
                        self.active[event.tenant] = false;
                        SchedulerOp::Retire { lane: event.tenant }
                    }
                    TenantEventKind::SetWeight(weight) => {
                        self.weights[event.tenant] = weight;
                        SchedulerOp::SetWeight { lane: event.tenant, weight }
                    }
                };
            }
        }
        // Nothing runnable: idle forward to the next event, or stop.
        if !self.active.iter().any(|&a| a) {
            return match self.events.get(self.next_event) {
                Some(event) => SchedulerOp::AdvanceTo(event.at),
                None => SchedulerOp::Done,
            };
        }
        // Round-robin over the active lanes.
        loop {
            if self.cursor == self.active.len() {
                self.cursor = 0;
                self.pending_new_round = true;
            }
            let lane = self.cursor;
            self.cursor += 1;
            if self.active[lane] {
                return SchedulerOp::Slice {
                    lane,
                    events: self.quantum * self.weights[lane] as usize,
                    new_round: std::mem::take(&mut self.pending_new_round),
                };
            }
        }
    }

    fn snapshot_state(&self) -> Json {
        let active: Vec<u64> = self.active.iter().map(|&a| u64::from(a)).collect();
        let weights: Vec<u64> = self.weights.iter().map(|&w| u64::from(w)).collect();
        Json::obj([
            ("next_event", Json::U64(self.next_event as u64)),
            ("active", Json::Str(hex_from_u64s(&active))),
            ("weights", Json::Str(hex_from_u64s(&weights))),
            ("cursor", Json::U64(self.cursor as u64)),
            ("pending_new_round", Json::Bool(self.pending_new_round)),
        ])
    }

    fn restore_state(&mut self, state: &Json) -> Result<()> {
        let next_event = state.req_u64("next_event")? as usize;
        if next_event > self.events.len() {
            return Err(Error::snapshot(format!(
                "timeline position {next_event} past the {}-event scenario",
                self.events.len()
            )));
        }
        let active_raw = state.req_u64s("active")?;
        if active_raw.len() != self.active.len() {
            return Err(Error::snapshot(format!(
                "active-lane array has {} lanes, schedule has {}",
                active_raw.len(),
                self.active.len()
            )));
        }
        let mut active = Vec::with_capacity(active_raw.len());
        for v in active_raw {
            match v {
                0 => active.push(false),
                1 => active.push(true),
                _ => return Err(Error::snapshot(format!("active-lane flag {v} is not 0 or 1"))),
            }
        }
        let weights_raw = state.req_u64s("weights")?;
        if weights_raw.len() != self.weights.len() {
            return Err(Error::snapshot(format!(
                "weight array has {} lanes, schedule has {}",
                weights_raw.len(),
                self.weights.len()
            )));
        }
        let mut weights = Vec::with_capacity(weights_raw.len());
        for w in weights_raw {
            let narrow = u32::try_from(w)
                .map_err(|_| Error::snapshot(format!("lane weight {w} exceeds u32")))?;
            weights.push(narrow);
        }
        let cursor = state.req_u64("cursor")? as usize;
        if cursor > self.active.len() {
            return Err(Error::snapshot(format!(
                "round-robin cursor {cursor} out of range for {} lanes",
                self.active.len()
            )));
        }
        self.next_event = next_event;
        self.active = active;
        self.weights = weights;
        self.cursor = cursor;
        self.pending_new_round = state.req_bool("pending_new_round")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neomem_workloads::{TenantMix, WorkloadKind};

    fn mix_3() -> TenantMix {
        TenantMix::builder()
            .tenant(WorkloadKind::Gups, 256, 1)
            .weighted_tenant(WorkloadKind::Silo, 256, 2, 2)
            .tenant(WorkloadKind::Btree, 256, 3)
            .build()
            .unwrap()
    }

    #[test]
    fn static_round_robin_cycles_with_weighted_slices() {
        let mut s = StaticRoundRobin::new(vec![1, 2, 3], 10);
        let expected = [
            (0, 10, true),
            (1, 20, false),
            (2, 30, false),
            (0, 10, true),
            (1, 20, false),
        ];
        for &(lane, events, new_round) in &expected {
            assert_eq!(
                s.next(Nanos::ZERO),
                SchedulerOp::Slice { lane, events, new_round }
            );
        }
    }

    #[test]
    fn dynamic_without_events_matches_static() {
        let scenario = Scenario::steady(mix_3());
        let mut dynamic = DynamicSchedule::new(&scenario, 10);
        let mut fixed = StaticRoundRobin::new(vec![1, 2, 1], 10);
        for step in 0..50 {
            assert_eq!(
                dynamic.next(Nanos::from_micros(step)),
                fixed.next(Nanos::from_micros(step)),
                "step {step}"
            );
        }
    }

    #[test]
    fn dynamic_applies_due_events_then_resumes() {
        let at = Nanos::from_millis(1);
        let scenario = Scenario::builder(mix_3())
            .depart(1, at)
            .set_weight(2, at, 5)
            .build()
            .unwrap();
        let mut s = DynamicSchedule::new(&scenario, 10);
        // Before the events are due: everyone runs.
        assert_eq!(
            s.next(Nanos::ZERO),
            SchedulerOp::Slice { lane: 0, events: 10, new_round: true }
        );
        assert_eq!(
            s.next(Nanos::ZERO),
            SchedulerOp::Slice { lane: 1, events: 20, new_round: false }
        );
        // Past the timestamp: both events fire, in timeline order.
        assert_eq!(s.next(at), SchedulerOp::Retire { lane: 1 });
        assert_eq!(s.next(at), SchedulerOp::SetWeight { lane: 2, weight: 5 });
        // Lane 1 is now skipped; lane 2 runs at its new weight.
        assert_eq!(
            s.next(at),
            SchedulerOp::Slice { lane: 2, events: 50, new_round: false }
        );
        assert_eq!(
            s.next(at),
            SchedulerOp::Slice { lane: 0, events: 10, new_round: true }
        );
    }

    #[test]
    fn dynamic_idles_to_arrivals_and_finishes_after_departures() {
        let mix = TenantMix::builder().tenant(WorkloadKind::Gups, 256, 1).build().unwrap();
        let arrive_at = Nanos::from_millis(2);
        let depart_at = Nanos::from_millis(4);
        let scenario = Scenario::builder(mix)
            .arrive(0, arrive_at)
            .depart(0, depart_at)
            .build()
            .unwrap();
        let mut s = DynamicSchedule::new(&scenario, 10);
        assert_eq!(s.active(), &[false]);
        // Nobody is active yet: idle forward to the arrival.
        assert_eq!(s.next(Nanos::ZERO), SchedulerOp::AdvanceTo(arrive_at));
        assert_eq!(s.next(arrive_at), SchedulerOp::Admit { lane: 0 });
        assert!(matches!(s.next(arrive_at), SchedulerOp::Slice { lane: 0, .. }));
        // Past the departure: retire, then nothing remains.
        assert_eq!(s.next(depart_at), SchedulerOp::Retire { lane: 0 });
        assert_eq!(s.next(depart_at), SchedulerOp::Done);
    }
}
