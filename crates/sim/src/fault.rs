//! Deterministic execution of a [`FaultPlan`] against a running machine.
//!
//! The [`FaultInjector`] turns the plan's windows into a flat, sorted
//! list of *edges* (one start and one end per window) and fires every
//! edge that has come due whenever the engine's slow path reaches the
//! fault deadline. All edges fire at virtual-clock instants, so a run
//! with faults stays byte-identical at any `--threads` or batch size —
//! the same contract scenario tenant events follow.
//!
//! An empty plan yields no edges and a deadline of `u64::MAX`, so the
//! engine's `clock >= deadline` guard never passes and the healthy path
//! is bit-identical to a build without fault support.

use neomem_kernel::Kernel;
use neomem_policies::TieringPolicy;
use neomem_types::json::Json;
use neomem_types::{Error, FaultKind, FaultPlan, Nanos, PageNum, Result, Tier};

/// Sentinel deadline meaning "nothing scheduled": the engine's
/// `clock >= deadline` guard can never pass it.
const NEVER: Nanos = Nanos::new(u64::MAX);

/// Backoff of the first capacity-loss demotion retry after the slow
/// tier reports out-of-memory.
const RETRY_BACKOFF_INITIAL: Nanos = Nanos::from_micros(50);

/// Retry backoff cap (doubling stops here).
const RETRY_BACKOFF_MAX: Nanos = Nanos::from_millis(1);

/// One fault-window boundary on the virtual clock.
#[derive(Debug, Clone, Copy)]
struct Edge {
    /// When the edge fires.
    fires: Nanos,
    /// `true` for a window start (fault), `false` for a window end
    /// (recovery). Sorted after ends at the same instant, so a
    /// back-to-back flap recovers before it re-faults.
    start: bool,
    /// Position of the window in the plan — the sort tiebreaker that
    /// keeps coincident same-direction edges in plan order.
    index: usize,
    /// The window's fault class and parameters.
    kind: FaultKind,
}

/// Degradation accounting accumulated by a [`FaultInjector`] over a
/// run; folded into the report as
/// [`crate::report::DegradationMetrics`] when the plan is non-empty.
#[derive(Debug, Clone, Copy, Default)]
struct Accounting {
    /// Fault windows that have started.
    fault_events: u64,
    /// Demotions forced by capacity-loss evacuation.
    forced_demotions: u64,
    /// Closed degraded-window time.
    degraded_time: Nanos,
    /// Accesses executed inside closed degraded windows.
    degraded_accesses: u64,
    /// Virtual time the first fault window started, if any.
    first_fault_at: Option<Nanos>,
    /// Virtual time the machine last returned to fully healthy.
    recovered_at: Option<Nanos>,
}

/// Executes a [`FaultPlan`] at the engine's slow-path boundaries.
///
/// The injector owns the plan's edge timeline plus the mutable runtime
/// state (cursor, retry/backoff, degradation accounting). It never
/// touches the machine outside [`FaultInjector::tick`], and `tick` is
/// only entered when `clock >= deadline()`, so the injector is
/// completely inert — and free — on a healthy machine.
pub(crate) struct FaultInjector {
    edges: Vec<Edge>,
    /// Next unfired edge.
    cursor: usize,
    /// Fault windows currently open (cross-class overlap is legal).
    active: u64,
    /// When the open degraded window started (`active > 0`).
    degraded_since: Nanos,
    /// Total accesses at the moment the open degraded window started.
    degraded_accesses_mark: u64,
    /// Pending capacity-loss retry: when to re-attempt evacuating the
    /// blocked fast-tier range after the slow tier reported
    /// out-of-memory. [`NEVER`] when nothing is pending.
    retry_at: Nanos,
    /// Current retry backoff (doubles per failed attempt, capped).
    backoff: Nanos,
    stats: Accounting,
}

impl FaultInjector {
    /// Expands `plan` into the sorted edge timeline.
    pub(crate) fn new(plan: &FaultPlan) -> Self {
        let mut edges = Vec::with_capacity(plan.len() * 2);
        for (index, event) in plan.events().iter().enumerate() {
            edges.push(Edge { fires: event.at, start: true, index, kind: event.kind });
            edges.push(Edge { fires: event.end(), start: false, index, kind: event.kind });
        }
        // `false < true`: an end at instant t fires before a start at
        // t, so a flap (recover + re-fault at the same nanosecond)
        // processes recovery first.
        edges.sort_by_key(|e| (e.fires, e.start, e.index));
        Self {
            edges,
            cursor: 0,
            active: 0,
            degraded_since: Nanos::ZERO,
            degraded_accesses_mark: 0,
            retry_at: NEVER,
            backoff: RETRY_BACKOFF_INITIAL,
            stats: Accounting::default(),
        }
    }

    /// The next virtual instant the injector needs control, or
    /// [`NEVER`]. The engines fold this into their hot-loop deadline;
    /// the `u64::MAX` sentinel keeps empty-plan runs on the exact
    /// pre-fault fast path.
    pub(crate) fn deadline(&self) -> Nanos {
        let edge = self.edges.get(self.cursor).map_or(NEVER, |e| e.fires);
        edge.min(self.retry_at)
    }

    /// Fires every edge due at `now`, then retries any pending
    /// capacity-loss evacuation. Returns the virtual time charged
    /// (migration copies plus whatever the policy hooks spend).
    ///
    /// `accesses` is the engine's cumulative access count, used for
    /// degraded-window throughput accounting.
    pub(crate) fn tick(
        &mut self,
        kernel: &mut Kernel,
        policy: &mut dyn TieringPolicy,
        now: Nanos,
        accesses: u64,
    ) -> Nanos {
        let mut charge = Nanos::ZERO;
        while let Some(&edge) = self.edges.get(self.cursor) {
            if edge.fires > now {
                break;
            }
            self.cursor += 1;
            if edge.start {
                charge += self.fire_start(kernel, policy, &edge.kind, now, accesses);
            } else {
                charge += self.fire_end(kernel, policy, &edge.kind, now, accesses);
            }
        }
        if self.retry_at <= now {
            charge += self.evacuate_blocked(kernel, now);
        }
        charge
    }

    /// Applies a window start: machine-level effect first (the hardware
    /// event), then the policy's `on_fault` hook (the daemon noticing).
    fn fire_start(
        &mut self,
        kernel: &mut Kernel,
        policy: &mut dyn TieringPolicy,
        kind: &FaultKind,
        now: Nanos,
        accesses: u64,
    ) -> Nanos {
        self.stats.fault_events += 1;
        if self.active == 0 {
            self.degraded_since = now;
            self.degraded_accesses_mark = accesses;
            if self.stats.first_fault_at.is_none() {
                self.stats.first_fault_at = Some(now);
            }
        }
        self.active += 1;
        let mut charge = Nanos::ZERO;
        match *kind {
            FaultKind::NeoProfOutage => {}
            FaultKind::LinkDegraded { latency_x, bandwidth_div } => {
                kernel
                    .memory_mut()
                    .node_mut(Tier::Slow)
                    .set_degradation(latency_x, bandwidth_div);
            }
            FaultKind::CapacityLoss { frames } => {
                kernel.memory_mut().allocator_mut(Tier::Fast).set_blocked(frames);
            }
        }
        charge += policy.on_fault(kind, kernel, now);
        if matches!(kind, FaultKind::CapacityLoss { .. }) {
            // Evacuate resident pages out of the blocked range through
            // the normal demotion path, after the policy has had its
            // chance to react to the shrunken tier.
            charge += self.evacuate_blocked(kernel, now + charge);
        }
        charge
    }

    /// Applies a window end: machine-level effect undone, then the
    /// policy's `on_recovery` hook (re-sync).
    fn fire_end(
        &mut self,
        kernel: &mut Kernel,
        policy: &mut dyn TieringPolicy,
        kind: &FaultKind,
        now: Nanos,
        accesses: u64,
    ) -> Nanos {
        match *kind {
            FaultKind::NeoProfOutage => {}
            FaultKind::LinkDegraded { .. } => {
                kernel.memory_mut().node_mut(Tier::Slow).clear_degradation();
            }
            FaultKind::CapacityLoss { .. } => {
                kernel.memory_mut().allocator_mut(Tier::Fast).set_blocked(0);
                self.retry_at = NEVER;
                self.backoff = RETRY_BACKOFF_INITIAL;
            }
        }
        let charge = policy.on_recovery(kind, kernel, now);
        self.active -= 1;
        if self.active == 0 {
            self.stats.degraded_time += now.saturating_sub(self.degraded_since);
            self.stats.degraded_accesses += accesses - self.degraded_accesses_mark;
            self.stats.recovered_at = Some(now);
        }
        charge
    }

    /// Demotes every page still resident in the fast tier's blocked
    /// range, ascending by frame. When the slow tier is saturated
    /// ([`Error::OutOfMemory`]) the remainder is left in place and a
    /// retry is scheduled with doubling backoff — promotions and
    /// demotions elsewhere free slow frames over time, and recovery
    /// clears the block regardless.
    fn evacuate_blocked(&mut self, kernel: &mut Kernel, now: Nanos) -> Nanos {
        let alloc = kernel.memory().allocator(Tier::Fast);
        let ceiling = alloc.base().index() + alloc.capacity();
        let floor = ceiling - alloc.blocked_frames();
        let mut charge = Nanos::ZERO;
        let mut saturated = false;
        for raw in floor..ceiling {
            let Some(vpage) = kernel.vpage_of(PageNum::new(raw)) else { continue };
            match kernel.demote(vpage, now + charge) {
                Ok(t) => {
                    charge += t;
                    self.stats.forced_demotions += 1;
                }
                Err(Error::OutOfMemory { .. }) => {
                    saturated = true;
                    break;
                }
                // Already-slow / unmapped races cannot happen for a
                // fast-resident frame, but skipping is the safe
                // response either way.
                Err(_) => {}
            }
        }
        if saturated {
            self.retry_at = now + charge + self.backoff;
            self.backoff = Nanos::new(
                (self.backoff.as_nanos() * 2).min(RETRY_BACKOFF_MAX.as_nanos()),
            );
        } else {
            self.retry_at = NEVER;
            self.backoff = RETRY_BACKOFF_INITIAL;
        }
        charge
    }

    /// Closes the books at end of run and produces the report metrics.
    /// Returns `None` for an empty plan, keeping fault-free reports —
    /// and their serialized form — unchanged.
    pub(crate) fn into_metrics(
        mut self,
        runtime: Nanos,
        accesses: u64,
    ) -> Option<crate::report::DegradationMetrics> {
        if self.edges.is_empty() {
            return None;
        }
        // A window still open at end of run counts as degraded to the
        // end and leaves the machine unrecovered.
        if self.active > 0 {
            self.stats.degraded_time += runtime.saturating_sub(self.degraded_since);
            self.stats.degraded_accesses += accesses - self.degraded_accesses_mark;
        }
        let time_to_recover = if self.active == 0 {
            match (self.stats.first_fault_at, self.stats.recovered_at) {
                (Some(first), Some(recovered)) => Some(recovered.saturating_sub(first)),
                _ => None,
            }
        } else {
            None
        };
        Some(crate::report::DegradationMetrics {
            fault_events: self.stats.fault_events,
            degraded_time: self.stats.degraded_time,
            time_to_recover,
            fault_forced_demotions: self.stats.forced_demotions,
            degraded_slowdown_milli: degraded_slowdown_milli(
                runtime,
                accesses,
                self.stats.degraded_time,
                self.stats.degraded_accesses,
            ),
        })
    }

    /// Serialises the injector's runtime state. The edge timeline is
    /// rebuilt from configuration on restore (the envelope fingerprint
    /// pins the plan), so only the mutable registers are written.
    pub(crate) fn snapshot(&self) -> Json {
        Json::obj([
            ("cursor", Json::U64(self.cursor as u64)),
            ("active", Json::U64(self.active)),
            ("degraded_since", Json::U64(self.degraded_since.as_nanos())),
            ("degraded_accesses_mark", Json::U64(self.degraded_accesses_mark)),
            ("retry_at", Json::U64(self.retry_at.as_nanos())),
            ("backoff", Json::U64(self.backoff.as_nanos())),
            ("fault_events", Json::U64(self.stats.fault_events)),
            ("forced_demotions", Json::U64(self.stats.forced_demotions)),
            ("degraded_time", Json::U64(self.stats.degraded_time.as_nanos())),
            ("degraded_accesses", Json::U64(self.stats.degraded_accesses)),
            (
                "first_fault_at",
                self.stats.first_fault_at.map_or(Json::Null, |t| Json::U64(t.as_nanos())),
            ),
            (
                "recovered_at",
                self.stats.recovered_at.map_or(Json::Null, |t| Json::U64(t.as_nanos())),
            ),
        ])
    }

    /// Restores [`FaultInjector::snapshot`] state onto an injector
    /// freshly built from the same plan.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] when the cursor or active count is
    /// impossible for this plan.
    pub(crate) fn restore(&mut self, snap: &Json) -> Result<()> {
        let cursor = snap.req_u64("cursor")? as usize;
        if cursor > self.edges.len() {
            return Err(Error::snapshot(format!(
                "fault cursor {cursor} exceeds the plan's {} edges",
                self.edges.len()
            )));
        }
        let active = snap.req_u64("active")?;
        if active > (self.edges.len() / 2) as u64 {
            return Err(Error::snapshot(format!(
                "{active} active fault windows exceed the plan's {}",
                self.edges.len() / 2
            )));
        }
        let opt_nanos = |key: &str| -> Result<Option<Nanos>> {
            match snap.req(key)? {
                Json::Null => Ok(None),
                other => Ok(Some(Nanos::new(other.as_u64().ok_or_else(|| {
                    Error::snapshot(format!("fault field {key:?} must be null or an integer"))
                })?))),
            }
        };
        self.cursor = cursor;
        self.active = active;
        self.degraded_since = Nanos::new(snap.req_u64("degraded_since")?);
        self.degraded_accesses_mark = snap.req_u64("degraded_accesses_mark")?;
        self.retry_at = Nanos::new(snap.req_u64("retry_at")?);
        self.backoff = Nanos::new(snap.req_u64("backoff")?);
        self.stats.fault_events = snap.req_u64("fault_events")?;
        self.stats.forced_demotions = snap.req_u64("forced_demotions")?;
        self.stats.degraded_time = Nanos::new(snap.req_u64("degraded_time")?);
        self.stats.degraded_accesses = snap.req_u64("degraded_accesses")?;
        self.stats.first_fault_at = opt_nanos("first_fault_at")?;
        self.stats.recovered_at = opt_nanos("recovered_at")?;
        Ok(())
    }
}

/// Healthy-rate / degraded-rate slowdown in milli-units (1000 = no
/// slowdown), from the access counts and time split between healthy
/// and degraded windows. Returns 0 when either side has no samples —
/// the metric is undefined, not "no slowdown".
fn degraded_slowdown_milli(
    runtime: Nanos,
    accesses: u64,
    degraded_time: Nanos,
    degraded_accesses: u64,
) -> u64 {
    let healthy_time = runtime.saturating_sub(degraded_time).as_nanos() as u128;
    let healthy_accesses = (accesses - degraded_accesses) as u128;
    let d_time = degraded_time.as_nanos() as u128;
    let d_accesses = degraded_accesses as u128;
    if healthy_time == 0 || healthy_accesses == 0 || d_time == 0 || d_accesses == 0 {
        return 0;
    }
    // healthy rate / degraded rate = (ha/ht) / (da/dt) = ha·dt / (ht·da)
    let milli = healthy_accesses * d_time * 1000 / (healthy_time * d_accesses);
    u64::try_from(milli).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neomem_policies::FirstTouchPolicy;

    fn plan_flap() -> FaultPlan {
        FaultPlan::builder()
            .outage(Nanos::from_millis(1), Nanos::from_millis(1))
            .outage(Nanos::from_millis(2), Nanos::from_millis(1))
            .build()
            .unwrap()
    }

    #[test]
    fn empty_plan_is_inert() {
        let injector = FaultInjector::new(&FaultPlan::empty());
        assert_eq!(injector.deadline(), NEVER);
        assert!(injector.into_metrics(Nanos::from_secs(1), 100).is_none());
    }

    #[test]
    fn edges_interleave_end_before_start() {
        let injector = FaultInjector::new(&plan_flap());
        let fires: Vec<(u64, bool)> =
            injector.edges.iter().map(|e| (e.fires.as_nanos(), e.start)).collect();
        // At the 2 ms boundary the first window's end precedes the
        // second window's start.
        assert_eq!(
            fires,
            vec![
                (1_000_000, true),
                (2_000_000, false),
                (2_000_000, true),
                (3_000_000, false),
            ]
        );
        assert_eq!(injector.deadline(), Nanos::from_millis(1));
    }

    #[test]
    fn flap_accounts_one_contiguous_degraded_window() {
        // A back-to-back flap keeps `active` at 1 across the seam via
        // end-before-start, then... actually end fires first (1→0) and
        // the start immediately reopens (0→1) at the same instant, so
        // degraded time is continuous with a zero-length gap.
        let mut kernel = Kernel::new(neomem_kernel::KernelConfig {
            memory: neomem_mem::TieredMemoryConfig::with_frames(64, 128),
            rss_pages: 64,
            costs: neomem_kernel::MigrationCosts::default(),
        });
        let mut policy = FirstTouchPolicy::new();
        let mut injector = FaultInjector::new(&plan_flap());
        injector.tick(&mut kernel, &mut policy, Nanos::from_millis(1), 10);
        assert_eq!(injector.active, 1);
        injector.tick(&mut kernel, &mut policy, Nanos::from_millis(2), 20);
        assert_eq!(injector.active, 1, "flap re-faults at the recovery instant");
        injector.tick(&mut kernel, &mut policy, Nanos::from_millis(3), 40);
        assert_eq!(injector.active, 0);
        let metrics = injector.into_metrics(Nanos::from_millis(4), 50).unwrap();
        assert_eq!(metrics.fault_events, 2);
        assert_eq!(metrics.degraded_time, Nanos::from_millis(2));
        assert_eq!(metrics.time_to_recover, Some(Nanos::from_millis(2)));
    }

    #[test]
    fn link_degradation_sets_and_clears_the_slow_node() {
        let mut kernel = Kernel::new(neomem_kernel::KernelConfig {
            memory: neomem_mem::TieredMemoryConfig::with_frames(64, 128),
            rss_pages: 64,
            costs: neomem_kernel::MigrationCosts::default(),
        });
        let mut policy = FirstTouchPolicy::new();
        let plan = FaultPlan::builder()
            .link_degraded(Nanos::from_millis(1), Nanos::from_millis(2), 4, 2)
            .build()
            .unwrap();
        let mut injector = FaultInjector::new(&plan);
        injector.tick(&mut kernel, &mut policy, Nanos::from_millis(1), 0);
        let node = kernel.memory().node(Tier::Slow);
        assert_eq!(node.latency_multiplier(), 4);
        assert_eq!(node.bandwidth_divisor(), 2);
        injector.tick(&mut kernel, &mut policy, Nanos::from_millis(3), 0);
        let node = kernel.memory().node(Tier::Slow);
        assert_eq!(node.latency_multiplier(), 1);
        assert_eq!(node.bandwidth_divisor(), 1);
    }

    #[test]
    fn capacity_loss_blocks_and_evacuates() {
        let mut kernel = Kernel::new(neomem_kernel::KernelConfig {
            memory: neomem_mem::TieredMemoryConfig::with_frames(8, 128),
            rss_pages: 64,
            costs: neomem_kernel::MigrationCosts::default(),
        });
        // Fill the whole fast tier.
        for i in 0..8 {
            kernel
                .touch_alloc_preferring(neomem_types::VirtPage::new(i), Tier::Fast, Nanos::ZERO)
                .unwrap();
        }
        let mut policy = FirstTouchPolicy::new();
        let plan = FaultPlan::builder()
            .capacity_loss(Nanos::from_millis(1), Nanos::from_millis(2), 3)
            .build()
            .unwrap();
        let mut injector = FaultInjector::new(&plan);
        let charge = injector.tick(&mut kernel, &mut policy, Nanos::from_millis(1), 0);
        assert!(charge > Nanos::ZERO, "forced demotions take time");
        assert_eq!(injector.stats.forced_demotions, 3);
        assert_eq!(kernel.stats().demotions, 3);
        let alloc = kernel.memory().allocator(Tier::Fast);
        assert_eq!(alloc.blocked_frames(), 3);
        assert_eq!(alloc.usable_capacity(), 5);
        // Recovery restores the window.
        injector.tick(&mut kernel, &mut policy, Nanos::from_millis(3), 0);
        assert_eq!(kernel.memory().allocator(Tier::Fast).blocked_frames(), 0);
        let metrics = injector.into_metrics(Nanos::from_millis(4), 100).unwrap();
        assert_eq!(metrics.fault_forced_demotions, 3);
    }

    #[test]
    fn saturated_slow_tier_schedules_retry_with_backoff() {
        // Slow tier exactly as big as the spill: blocking 4 fast frames
        // wants 4 demotions but only 2 slow frames are free.
        let mut kernel = Kernel::new(neomem_kernel::KernelConfig {
            memory: neomem_mem::TieredMemoryConfig::with_frames(8, 10),
            rss_pages: 16,
            costs: neomem_kernel::MigrationCosts::default(),
        });
        for i in 0..16 {
            kernel
                .touch_alloc_preferring(neomem_types::VirtPage::new(i), Tier::Fast, Nanos::ZERO)
                .unwrap();
        }
        assert_eq!(kernel.memory().allocator(Tier::Slow).free_frames(), 2);
        let mut policy = FirstTouchPolicy::new();
        let plan = FaultPlan::builder()
            .capacity_loss(Nanos::from_millis(1), Nanos::from_millis(20), 4)
            .build()
            .unwrap();
        let mut injector = FaultInjector::new(&plan);
        injector.tick(&mut kernel, &mut policy, Nanos::from_millis(1), 0);
        assert_eq!(injector.stats.forced_demotions, 2, "stops at slow-tier OOM");
        assert_ne!(injector.retry_at, NEVER, "retry scheduled");
        assert!(injector.deadline() <= injector.retry_at);
        let first_retry = injector.retry_at;
        // The retry itself fails again (nothing freed) and backs off.
        injector.tick(&mut kernel, &mut policy, first_retry, 0);
        assert_eq!(injector.stats.forced_demotions, 2);
        assert!(injector.retry_at > first_retry, "backoff doubles");
        // Free a slow frame (promote one slow page to... simplest:
        // demote path frees on recovery instead) — recovery clears the
        // pending retry.
        injector.tick(&mut kernel, &mut policy, Nanos::from_millis(21), 0);
        assert_eq!(injector.retry_at, NEVER);
        assert_eq!(kernel.memory().allocator(Tier::Fast).blocked_frames(), 0);
    }

    #[test]
    fn snapshot_round_trips_mid_fault() {
        let mut kernel = Kernel::new(neomem_kernel::KernelConfig {
            memory: neomem_mem::TieredMemoryConfig::with_frames(64, 128),
            rss_pages: 64,
            costs: neomem_kernel::MigrationCosts::default(),
        });
        let mut policy = FirstTouchPolicy::new();
        let plan = plan_flap();
        let mut injector = FaultInjector::new(&plan);
        injector.tick(&mut kernel, &mut policy, Nanos::from_millis(1), 10);
        let snap = injector.snapshot();
        let mut restored = FaultInjector::new(&plan);
        restored.restore(&snap).unwrap();
        assert_eq!(restored.cursor, injector.cursor);
        assert_eq!(restored.active, 1);
        assert_eq!(restored.deadline(), injector.deadline());
        assert_eq!(restored.stats.first_fault_at, Some(Nanos::from_millis(1)));
        // Hostile: impossible cursor.
        let mut bad = snap.clone();
        if let Json::Obj(fields) = &mut bad {
            for (k, v) in fields.iter_mut() {
                if k == "cursor" {
                    *v = Json::U64(99);
                }
            }
        }
        assert!(FaultInjector::new(&plan).restore(&bad).is_err());
    }

    #[test]
    fn slowdown_milli_math() {
        // Healthy: 900 accesses in 900 µs (1/µs). Degraded: 100
        // accesses in 300 µs (1/3 per µs) → slowdown 3.000.
        assert_eq!(
            degraded_slowdown_milli(
                Nanos::from_micros(1200),
                1000,
                Nanos::from_micros(300),
                100
            ),
            3000
        );
        assert_eq!(degraded_slowdown_milli(Nanos::from_micros(10), 10, Nanos::ZERO, 0), 0);
    }
}
