//! The multi-tenant co-run engine.
//!
//! A [`CoRunSimulation`] drives `N` independent workloads — a
//! [`TenantMix`] — through one shared tiered-memory machine. Each
//! tenant keeps a private page-id namespace (its pages live at a
//! disjoint base offset of the global address space), while the cache
//! hierarchy, TLB, kernel and tiering policy are shared: exactly the
//! co-located-tenants regime where fast-tier capacity and migration
//! quota become contended resources.
//!
//! # Scheduling and determinism
//!
//! Scheduling is delegated to a [`SliceScheduler`]: the engine asks it
//! what to do at every slice boundary and executes the decision. The
//! default [`StaticRoundRobin`] interleaves a fixed mix by a
//! deterministic weighted round-robin — in every round, tenant `i`
//! executes a *slice* of `interleave_quantum × weight_i` events before
//! the next tenant runs. A [`DynamicSchedule`]
//! ([`CoRunSimulation::with_scenario`]) additionally admits and
//! retires tenants along a [`neomem_workloads::Scenario`] timeline,
//! reclaiming departed tenants' fast-tier pages through the normal
//! eviction path. Either way the slice schedule is a pure function of
//! the configuration and the virtual clock — never of
//! `SimConfig::batch_size` (which only sets how many events are
//! pulled per [`neomem_workloads::Workload::fill_events`] call inside a
//! slice) and never of host threading — so a co-run, like a
//! single-tenant run, is bit-identical at any batch size and at any
//! `--threads` value.
//!
//! Per-access semantics are shared with the single-tenant engine (the
//! same internal machine step), so a one-tenant co-run is the same
//! machine as a classic [`crate::Simulation`] — only the page-id
//! remapping and the slice accounting differ.
//!
//! # Attribution
//!
//! Slices run one tenant at a time, so per-tenant metrics are exact
//! deltas of the shared counters around each slice: memory-node
//! traffic, migrations, faults and elapsed virtual time are charged to
//! the tenant whose slice produced them. Fast-tier occupancy is scanned
//! at every slice boundary, which also exposes *cross-tenant
//! evictions*: the net fast-tier occupancy an idle tenant lost while
//! another tenant's slice ran. Net, because the scans see occupancy,
//! not individual migrations — a slice that demotes three of an idle
//! tenant's pages and promotes two of them back counts one; the
//! number is a lower bound on gross cross-tenant demotions.

use neomem_policies::{PolicyBox, TenantLayout, TieringPolicy};
use neomem_types::json::{hex_from_u64s, Json};
use neomem_types::{Error, Nanos, Result, Tier, VirtPage};
use neomem_workloads::{Scenario, TenantMix, Workload, WorkloadEvent};

use crate::config::SimConfig;
use crate::engine::{earliest_deadline, HotCosts, Machine};
use crate::report::{MarkerRecord, RunReport, TimelinePoint};
use crate::sched::{DynamicSchedule, SchedulerOp, SliceScheduler, StaticRoundRobin};
use crate::snapshot;

/// Configuration of a co-run: the shared machine plus the interleave
/// and fairness knobs.
#[derive(Debug, Clone)]
pub struct CoRunConfig {
    /// The shared machine. `sim.rss_pages` must equal the mix's total
    /// footprint; every other field (memory layout, caches, budgets,
    /// `batch_size`, …) keeps its single-tenant meaning.
    pub sim: SimConfig,
    /// Events a weight-1 tenant executes per scheduling round. Purely
    /// a simulated-schedule knob: smaller quanta interleave tenants
    /// more finely (more contention churn), larger quanta approximate
    /// coarse time-sharing.
    pub interleave_quantum: usize,
    /// Fast-tier fairness cap forwarded to tenant-aware policies: each
    /// tenant's fast-tier occupancy is capped at `cap ×` its weighted
    /// fair share (see [`TenantLayout::fast_cap_frames`]). `None`
    /// disables the cap (free-for-all contention).
    pub fast_share_cap: Option<f64>,
}

impl CoRunConfig {
    /// Wraps an explicit [`SimConfig`] with the default interleave
    /// quantum (64) and no fairness cap.
    pub fn new(sim: SimConfig) -> Self {
        Self { sim, interleave_quantum: 64, fast_share_cap: None }
    }

    /// A quick-running machine sized for `mix` at `1:ratio`, the
    /// co-run counterpart of [`SimConfig::quick`].
    pub fn quick(mix: &TenantMix, ratio: u64) -> Self {
        Self::new(SimConfig::quick(mix.total_rss_pages(), ratio))
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`neomem_types::Error::InvalidConfig`] when the machine
    /// configuration is invalid or the quantum is zero.
    pub fn validate(&self) -> Result<()> {
        self.sim.validate()?;
        if self.interleave_quantum == 0 {
            return Err(neomem_types::Error::invalid_config(
                "interleave_quantum must be non-zero",
            ));
        }
        if self.fast_share_cap.is_some_and(|c| c <= 0.0 || c.is_nan()) {
            return Err(neomem_types::Error::invalid_config(
                "fast_share_cap must be positive",
            ));
        }
        Ok(())
    }
}

/// One tenant's lane: its generator, address-space placement and
/// per-slice accumulators.
struct Lane {
    workload: Box<dyn Workload>,
    base: u64,
    weight: u32,
    rss_pages: u64,
    seed: u64,
    /// Reused event buffer (one per lane so streams never mix).
    buf: Vec<WorkloadEvent>,
    // Accumulated attribution.
    accesses: u64,
    active_time: Nanos,
    slow_reads: u64,
    slow_writes: u64,
    fast_reads: u64,
    fast_writes: u64,
    promotions: u64,
    demotions: u64,
    ping_pongs: u64,
    minor_faults: u64,
    markers: u64,
    evicted_by_others: u64,
    evictions_caused: u64,
    /// Sum of fast-tier occupancy over slice-boundary scans.
    occupancy_sum: u64,
}

impl Lane {
    /// Workload-generator events this lane has consumed: every event
    /// is either an access or a marker, and a co-run cut lands only at
    /// slice boundaries, where every pulled event has been processed.
    fn events_consumed(&self) -> u64 {
        self.accesses + self.markers
    }

    /// The lane's mutable run state — accumulators plus the live
    /// weight. Placement (`base`, `rss_pages`, `seed`) is rebuilt from
    /// configuration, and the generator is fast-forwarded, never
    /// serialized.
    fn snapshot(&self) -> Json {
        Json::obj([
            ("weight", Json::U64(u64::from(self.weight))),
            ("accesses", Json::U64(self.accesses)),
            ("active_time", Json::U64(self.active_time.as_nanos())),
            ("slow_reads", Json::U64(self.slow_reads)),
            ("slow_writes", Json::U64(self.slow_writes)),
            ("fast_reads", Json::U64(self.fast_reads)),
            ("fast_writes", Json::U64(self.fast_writes)),
            ("promotions", Json::U64(self.promotions)),
            ("demotions", Json::U64(self.demotions)),
            ("ping_pongs", Json::U64(self.ping_pongs)),
            ("minor_faults", Json::U64(self.minor_faults)),
            ("markers", Json::U64(self.markers)),
            ("evicted_by_others", Json::U64(self.evicted_by_others)),
            ("evictions_caused", Json::U64(self.evictions_caused)),
            ("occupancy_sum", Json::U64(self.occupancy_sum)),
        ])
    }

    fn restore(&mut self, snap: &Json) -> Result<()> {
        let weight = snap.req_u64("weight")?;
        self.weight = u32::try_from(weight)
            .map_err(|_| Error::snapshot(format!("lane weight {weight} exceeds u32")))?;
        self.accesses = snap.req_u64("accesses")?;
        self.active_time = Nanos::new(snap.req_u64("active_time")?);
        self.slow_reads = snap.req_u64("slow_reads")?;
        self.slow_writes = snap.req_u64("slow_writes")?;
        self.fast_reads = snap.req_u64("fast_reads")?;
        self.fast_writes = snap.req_u64("fast_writes")?;
        self.promotions = snap.req_u64("promotions")?;
        self.demotions = snap.req_u64("demotions")?;
        self.ping_pongs = snap.req_u64("ping_pongs")?;
        self.minor_faults = snap.req_u64("minor_faults")?;
        self.markers = snap.req_u64("markers")?;
        self.evicted_by_others = snap.req_u64("evicted_by_others")?;
        self.evictions_caused = snap.req_u64("evictions_caused")?;
        self.occupancy_sum = snap.req_u64("occupancy_sum")?;
        Ok(())
    }
}

/// A configured co-run, ready to run.
pub struct CoRunSimulation {
    config: CoRunConfig,
    machine: Machine,
    layout: TenantLayout,
    lanes: Vec<Lane>,
    mix_label: String,
    scheduler: Box<dyn SliceScheduler>,
    /// Which lanes run from time zero (all, for static mixes). The
    /// scheduler owns the live admission state; the engine only needs
    /// the initial mask to open the first epochs.
    initially_active: Vec<bool>,
}

impl CoRunSimulation {
    /// Builds the shared machine and the tenant lanes, and hands the
    /// tenant layout to the policy
    /// ([`TieringPolicy::configure_tenants`]). The mix is scheduled by
    /// the classic [`StaticRoundRobin`]: every tenant runs from time
    /// zero to the end of the run.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures, including a mix
    /// footprint that does not match `config.sim.rss_pages`.
    pub fn new(
        config: CoRunConfig,
        mix: &TenantMix,
        policy: impl Into<PolicyBox>,
    ) -> Result<Self> {
        let scheduler = Box::new(StaticRoundRobin::new(
            mix.tenants().iter().map(|t| t.weight).collect(),
            config.interleave_quantum,
        ));
        let active = vec![true; mix.len()];
        let build = |spec: &neomem_workloads::TenantSpec, _i: usize| {
            spec.kind.build(spec.rss_pages, spec.seed)
        };
        Self::build(config, mix, mix.label(), policy.into(), scheduler, active, build)
    }

    /// Builds a scenario-driven co-run: the [`DynamicSchedule`] admits
    /// and retires tenants along the scenario timeline, tenants with
    /// phase schedules run [`neomem_workloads::PhasedWorkload`]
    /// generators, and departed tenants' fast-tier pages are reclaimed
    /// through the normal eviction path. A scenario with no events and
    /// no phases schedules identically to [`CoRunSimulation::new`] on
    /// the same mix (the scheduler-equivalence suite holds this
    /// bit-for-bit).
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures, including a
    /// scenario footprint that does not match `config.sim.rss_pages`.
    pub fn with_scenario(
        config: CoRunConfig,
        scenario: &Scenario,
        policy: impl Into<PolicyBox>,
    ) -> Result<Self> {
        let scheduler = Box::new(DynamicSchedule::new(scenario, config.interleave_quantum));
        let active = scenario.initially_active();
        let label = scenario.label();
        let build =
            |_spec: &neomem_workloads::TenantSpec, i: usize| scenario.build_workload(i);
        Self::build(config, scenario.mix(), label, policy.into(), scheduler, active, build)
    }

    /// Builds a co-run around an explicit scheduler and admission mask.
    fn build(
        config: CoRunConfig,
        mix: &TenantMix,
        label: String,
        mut policy: PolicyBox,
        scheduler: Box<dyn SliceScheduler>,
        active: Vec<bool>,
        build_workload: impl Fn(&neomem_workloads::TenantSpec, usize) -> Box<dyn Workload>,
    ) -> Result<Self> {
        config.validate()?;
        if mix.total_rss_pages() != config.sim.rss_pages {
            return Err(neomem_types::Error::invalid_config(format!(
                "tenant mix rss {} != config rss {}",
                mix.total_rss_pages(),
                config.sim.rss_pages
            )));
        }
        let layout = TenantLayout::new(mix.bases(), mix.weights(), config.fast_share_cap)?;
        policy.configure_tenants(&layout);
        let machine = Machine::new(config.sim.clone(), policy)?;
        let lanes = mix
            .tenants()
            .iter()
            .zip(mix.bases())
            .enumerate()
            .map(|(i, (spec, base))| Lane {
                workload: build_workload(spec, i),
                base,
                weight: spec.weight,
                rss_pages: spec.rss_pages,
                seed: spec.seed,
                buf: Vec::new(),
                accesses: 0,
                active_time: Nanos::ZERO,
                slow_reads: 0,
                slow_writes: 0,
                fast_reads: 0,
                fast_writes: 0,
                promotions: 0,
                demotions: 0,
                ping_pongs: 0,
                minor_faults: 0,
                markers: 0,
                evicted_by_others: 0,
                evictions_caused: 0,
                occupancy_sum: 0,
            })
            .collect();
        Ok(Self {
            config,
            machine,
            layout,
            lanes,
            mix_label: label,
            scheduler,
            initially_active: active,
        })
    }

    /// Counts each tenant's fast-tier pages into `out`, through the
    /// same [`TenantLayout::count_fast_pages`] NeoMem's fairness gate
    /// uses — one counting rule, shared.
    fn scan_occupancy(machine: &Machine, layout: &TenantLayout, out: &mut [u64]) {
        layout.count_fast_pages(&machine.kernel, out);
    }

    /// Demotes every fast-resident page of `lane` through the normal
    /// eviction path (the departed tenant's frames go back to the slow
    /// tier like any reclaim victim: demotion counters, LRU removal and
    /// migration costs all apply). Best-effort: pages the slow tier
    /// cannot take stay put and fall to ordinary eviction later.
    /// Returns the time charged.
    fn reclaim_fast_pages(
        machine: &mut Machine,
        layout: &TenantLayout,
        lane: usize,
        now: Nanos,
    ) -> Nanos {
        let fast_frames = machine.kernel.memory().slow_base().index();
        let mut pages = Vec::new();
        for frame in 0..fast_frames {
            if let Some(vpage) = machine.kernel.vpage_of(neomem_types::PageNum::new(frame)) {
                if layout.tenant_of(vpage) == lane {
                    pages.push(vpage);
                }
            }
        }
        let mut elapsed = Nanos::ZERO;
        for vpage in pages {
            if let Ok(t) = machine.kernel.demote(vpage, now + elapsed) {
                elapsed += t;
            }
        }
        elapsed
    }

    /// Runs the co-run to completion and produces the report.
    ///
    /// The loop executes whatever the [`SliceScheduler`] decides at
    /// each slice boundary: tenant slices (the hot path, identical to
    /// the pre-extraction engine), admissions, retirements (with
    /// fast-tier reclaim through the normal eviction path), weight
    /// changes, and idle gaps.
    ///
    /// # Panics
    ///
    /// Panics if the machine runs out of physical memory — unreachable
    /// for validated configurations, as in [`crate::Simulation::run`].
    pub fn run(mut self) -> CoRunReport {
        let mut state = self.fresh_state();
        self.run_core(&mut state, None);
        self.into_report(state)
    }

    /// Runs until the virtual clock reaches `at` and serializes the
    /// full co-run state into a versioned snapshot document (see
    /// [`crate::snapshot`]). The cut lands on the first *slice
    /// boundary* at or past `at` — slices are never split — so the
    /// snapshot clock may trail `at` by up to one slice.
    ///
    /// Resuming with [`CoRunSimulation::run_from`] on an identically
    /// configured co-run produces a report bit-identical to an
    /// uninterrupted [`CoRunSimulation::run`].
    ///
    /// # Panics
    ///
    /// Panics if the machine runs out of physical memory, as in
    /// [`CoRunSimulation::run`].
    pub fn snapshot_at(mut self, at: Nanos) -> Json {
        let mut state = self.fresh_state();
        self.run_core(&mut state, Some(at));
        let fingerprint = snapshot::corun_fingerprint(&self.config);
        snapshot::envelope(
            snapshot::KIND_CORUN,
            fingerprint,
            &self.mix_label,
            self.machine.policy.name(),
            Json::obj([
                ("machine", self.machine.snapshot()),
                ("scheduler", self.scheduler.snapshot_state()),
                ("lanes", Json::Arr(self.lanes.iter().map(Lane::snapshot).collect())),
                ("loop", state.snapshot()),
            ]),
        )
    }

    /// Restores a [`CoRunSimulation::snapshot_at`] snapshot onto this
    /// freshly built co-run and runs it to completion. Lane weights
    /// and the tenant layout are re-established before the policy's
    /// state is restored, and every lane's generator is rebuilt from
    /// configuration and fast-forwarded past the events its
    /// snapshotted twin consumed.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Snapshot`] when the envelope does not match
    /// this co-run (schema, version, kind, configuration fingerprint,
    /// mix label or policy name) or any component rejects its state.
    /// Corrupt input yields an error, never a panic.
    ///
    /// # Panics
    ///
    /// Panics if the machine runs out of physical memory, as in
    /// [`CoRunSimulation::run`].
    pub fn run_from(mut self, snap: &Json) -> Result<CoRunReport> {
        let fingerprint = snapshot::corun_fingerprint(&self.config);
        let state_json = snapshot::open_envelope(
            snap,
            snapshot::KIND_CORUN,
            fingerprint,
            &self.mix_label,
            self.machine.policy.name(),
        )?;
        let lanes = state_json.req_arr("lanes")?;
        if lanes.len() != self.lanes.len() {
            return Err(Error::snapshot(format!(
                "snapshot has {} tenant lanes, mix has {}",
                lanes.len(),
                self.lanes.len()
            )));
        }
        for (lane, snap) in self.lanes.iter_mut().zip(lanes) {
            lane.restore(snap)?;
        }
        // Weights may have changed mid-run (SetWeight): re-derive the
        // layout from the restored weights and re-arbitrate the policy
        // *before* restoring its state, so per-tenant state lands on
        // the layout it was snapshotted under.
        let layout = TenantLayout::new(
            self.lanes.iter().map(|l| l.base).collect(),
            self.lanes.iter().map(|l| l.weight as u64).collect(),
            self.config.fast_share_cap,
        )?;
        self.machine.policy.configure_tenants(&layout);
        self.layout = layout;
        self.machine.restore(state_json.req("machine")?)?;
        self.scheduler.restore_state(state_json.req("scheduler")?)?;
        let mut state = CoRunState::restore(state_json.req("loop")?, self.lanes.len())?;
        for lane in &mut self.lanes {
            let consumed = lane.events_consumed();
            snapshot::fast_forward(lane.workload.as_mut(), consumed);
        }
        self.run_core(&mut state, None);
        Ok(self.into_report(state))
    }

    /// The run state of a co-run that has not started yet.
    fn fresh_state(&self) -> CoRunState {
        let tenant_count = self.lanes.len();
        let mut occ_before = vec![0u64; tenant_count];
        Self::scan_occupancy(&self.machine, &self.layout, &mut occ_before);
        CoRunState {
            clock: Nanos::ZERO,
            accesses: 0,
            next_tick: Nanos::ZERO,
            next_sample: self.machine.config.sample_interval,
            timeline: Vec::new(),
            markers: Vec::new(),
            occupancy_timeline: Vec::new(),
            window_accesses: 0,
            window_start: Nanos::ZERO,
            occ_before,
            rounds: 0,
            slices: 0,
            cross_tenant_evictions: 0,
            epochs: Vec::new(),
            epoch_ordinal: vec![0u32; tenant_count],
            // Tenant-epoch attribution: one epoch per contiguous
            // residency interval, opened for initially-active lanes at
            // time zero and at every admission, closed at departure or
            // run end.
            open_epochs: (0..tenant_count)
                .map(|i| {
                    self.initially_active[i].then(|| EpochMark::open(Nanos::ZERO, &self.lanes[i]))
                })
                .collect(),
        }
    }

    /// The co-run loop, shared by [`CoRunSimulation::run`],
    /// [`CoRunSimulation::snapshot_at`] and
    /// [`CoRunSimulation::run_from`]. With `cut` set, returns as soon
    /// as the clock reaches it at a slice boundary — the loop top,
    /// where no scheduler decision has been taken yet, so a resumed
    /// run re-enters with bit-identical state.
    fn run_core(&mut self, state: &mut CoRunState, cut: Option<Nanos>) {
        let limit = self.machine.config.max_time;
        let costs = HotCosts::of(&self.machine.config);
        let batch = self.machine.config.batch_size.max(1);
        let max_accesses = self.machine.config.max_accesses;
        let tick_quantum = self.machine.config.tick_quantum;
        let sample_interval = self.machine.config.sample_interval;
        let tenant_count = self.lanes.len();

        let mut shootdowns: Vec<VirtPage> = Vec::new();
        // Staged pipeline admission, as in the single-tenant engine:
        // `Some(bound)` when the mode allows it and the policy's
        // access hook is stageable.
        let staged_charge = match self.machine.config.pipeline {
            crate::config::PipelineMode::Staged => self.machine.policy.max_access_charge(),
            crate::config::PipelineMode::Serial => None,
        };
        let mut scratch = crate::engine::ChunkScratch::new();
        // At every loop top `next_deadline` equals the earliest of the
        // current tick/sample/stop deadlines (every update site
        // re-establishes it), so recomputing it here restores the
        // mid-run value exactly.
        let mut next_deadline = earliest_deadline(state.next_tick, state.next_sample, limit)
            .min(self.machine.faults.deadline());

        // Slice-boundary occupancy scans: `state.occ_before` holds the
        // scan entering the current slice, `occ_after` is the fresh
        // scan at its end (and becomes the next slice's `before`).
        let mut occ_after = vec![0u64; tenant_count];
        let mut stopped = false;

        'run: loop {
            if state.accesses >= max_accesses || limit.is_some_and(|l| state.clock >= l) {
                break;
            }
            if cut.is_some_and(|c| state.clock >= c) {
                return;
            }
            let (lane_idx, slice_events) = match self.scheduler.next(state.clock) {
                SchedulerOp::Done => break,
                SchedulerOp::Slice { lane, events, new_round } => {
                    if new_round {
                        state.rounds += 1;
                    }
                    state.slices += 1;
                    (lane, events)
                }
                SchedulerOp::Admit { lane } => {
                    self.machine.policy.on_tenant_arrival(lane);
                    state.open_epochs[lane] =
                        Some(EpochMark::open(state.clock, &self.lanes[lane]));
                    continue;
                }
                SchedulerOp::Retire { lane } => {
                    self.machine.policy.on_tenant_departure(lane);
                    // Reclaim through the normal eviction path and
                    // attribute the deltas (demotions, node traffic,
                    // time) to the departing tenant itself.
                    let slow_before =
                        self.machine.kernel.memory().node(Tier::Slow).stats();
                    let fast_before =
                        self.machine.kernel.memory().node(Tier::Fast).stats();
                    let kernel_before = self.machine.kernel.stats();
                    let reclaim = Self::reclaim_fast_pages(
                        &mut self.machine,
                        &self.layout,
                        lane,
                        state.clock,
                    );
                    state.clock += reclaim;
                    let slow = self.machine.kernel.memory().node(Tier::Slow).stats();
                    let fast = self.machine.kernel.memory().node(Tier::Fast).stats();
                    let kernel = self.machine.kernel.stats();
                    {
                        let l = &mut self.lanes[lane];
                        l.active_time += reclaim;
                        l.slow_reads += slow.reads - slow_before.reads;
                        l.slow_writes += slow.writes - slow_before.writes;
                        l.fast_reads += fast.reads - fast_before.reads;
                        l.fast_writes += fast.writes - fast_before.writes;
                        l.promotions += kernel.promotions - kernel_before.promotions;
                        l.demotions += kernel.demotions - kernel_before.demotions;
                        l.ping_pongs += kernel.ping_pongs - kernel_before.ping_pongs;
                        l.minor_faults += kernel.minor_faults - kernel_before.minor_faults;
                    }
                    // The occupancy baseline moved: rescan so the next
                    // slice's cross-tenant accounting cannot blame its
                    // tenant for the departure reclaim.
                    Self::scan_occupancy(&self.machine, &self.layout, &mut state.occ_before);
                    if let Some(mark) = state.open_epochs[lane].take() {
                        epochs_push_closed(
                            &mut state.epochs,
                            mark,
                            lane,
                            &mut state.epoch_ordinal,
                            state.clock,
                            &self.lanes[lane],
                        );
                    }
                    continue;
                }
                SchedulerOp::SetWeight { lane, weight } => {
                    self.lanes[lane].weight = weight;
                    // The scheduler already resizes future slices;
                    // re-arbitrate the policy side too, so quota
                    // shares, fairness caps and fair-share exemptions
                    // track the new weights instead of the
                    // construction-time ones. Policies treat this as a
                    // fresh configure_tenants: per-tenant soft state
                    // (occupancy counts, aggression, the current quota
                    // window's per-tenant usage split) restarts, which
                    // is the intended semantics of a re-weighting.
                    let layout = TenantLayout::new(
                        self.lanes.iter().map(|l| l.base).collect(),
                        self.lanes.iter().map(|l| l.weight as u64).collect(),
                        self.config.fast_share_cap,
                    )
                    .expect("bases unchanged and scenario-validated weights stay valid");
                    self.machine.policy.configure_tenants(&layout);
                    self.layout = layout;
                    continue;
                }
                SchedulerOp::AdvanceTo(target) => {
                    // Idle gap (no runnable tenant until the next
                    // timeline event): jump the clock in one go, firing
                    // the due policy tick and timeline sample once in
                    // engine order so daemons stay alive across it.
                    if target > state.clock {
                        state.clock = target;
                    }
                    let mut ticked = false;
                    // Fault edges fire first, exactly as in the slice
                    // slow path; a capacity-loss edge migrates pages,
                    // so it forces the same baseline rescan a tick
                    // does.
                    if state.clock >= self.machine.faults.deadline() {
                        state.clock += self.machine.fault_tick(state.clock, state.accesses);
                        ticked = true;
                    }
                    if state.clock >= state.next_tick {
                        state.clock += self.machine.policy_tick(state.clock, &mut shootdowns);
                        state.next_tick = state.clock + tick_quantum;
                        ticked = true;
                    }
                    if state.clock >= state.next_sample {
                        state.timeline.push(self.machine.sample(
                            state.clock,
                            state.accesses,
                            state.window_accesses,
                            state.window_start,
                        ));
                        let mut fast_pages = vec![0u64; tenant_count];
                        Self::scan_occupancy(&self.machine, &self.layout, &mut fast_pages);
                        state
                            .occupancy_timeline
                            .push(OccupancyPoint { at: state.clock, fast_pages });
                        state.window_accesses = 0;
                        state.window_start = state.clock;
                        state.next_sample = state.clock + sample_interval;
                    }
                    if ticked {
                        // The idle-gap tick may have migrated pages:
                        // rescan the baseline so the next slice's
                        // tenant isn't blamed for occupancy that moved
                        // while nobody ran.
                        Self::scan_occupancy(&self.machine, &self.layout, &mut state.occ_before);
                    }
                    next_deadline = earliest_deadline(state.next_tick, state.next_sample, limit)
                        .min(self.machine.faults.deadline());
                    continue;
                }
            };
            {
                let clock_before = state.clock;
                let accesses_before = state.accesses;
                let slow_before = self.machine.kernel.memory().node(Tier::Slow).stats();
                let fast_before = self.machine.kernel.memory().node(Tier::Fast).stats();
                let kernel_before = self.machine.kernel.stats();

                // The slice: pull this tenant's events through its own
                // buffer in batch_size chunks and drive them through
                // the shared machine. The checks mirror the
                // single-tenant engine exactly (tick, sample, stop).
                let mut produced = 0usize;
                // Move the lane's buffer out so the event loop can
                // borrow the machine and the lane counters freely.
                let mut buf = std::mem::take(&mut self.lanes[lane_idx].buf);
                let base = self.lanes[lane_idx].base;
                'slice: while produced < slice_events && state.accesses < max_accesses {
                    // Events yield at most one access each, so capping
                    // at the remaining access budget never overshoots.
                    let n = (slice_events - produced)
                        .min(batch)
                        .min((max_accesses - state.accesses) as usize);
                    buf.clear();
                    self.lanes[lane_idx].workload.fill_events(&mut buf, n);
                    produced += n;
                    let mut i = 0;
                    // Consecutive accesses at `i`; 0 = not yet scanned.
                    let mut run_len = 0usize;
                    while i < buf.len() {
                        let access = match buf[i] {
                            WorkloadEvent::Access(mut access) => {
                                // Relocate into the tenant's namespace.
                                access.vpage = VirtPage::new(base + access.vpage.index());
                                access
                            }
                            WorkloadEvent::Marker(m) => {
                                self.lanes[lane_idx].markers += 1;
                                state.markers.push(MarkerRecord {
                                    at: state.clock,
                                    id: m.id,
                                    label: m.label,
                                });
                                i += 1;
                                run_len = 0;
                                continue;
                            }
                        };
                        if let Some(charge_max) = staged_charge {
                            if run_len == 0 {
                                run_len = 1;
                                while i + run_len < buf.len()
                                    && matches!(buf[i + run_len], WorkloadEvent::Access(_))
                                {
                                    run_len += 1;
                                }
                            }
                            let take = self.machine.chunk_capacity(
                                &buf[i..i + run_len],
                                base,
                                state.clock,
                                next_deadline,
                                charge_max,
                                &costs,
                            );
                            if take >= 2 {
                                scratch.begin();
                                for event in &buf[i..i + take] {
                                    if let WorkloadEvent::Access(access) = event {
                                        let mut access = *access;
                                        access.vpage =
                                            VirtPage::new(base + access.vpage.index());
                                        scratch.accesses.push(access);
                                    }
                                }
                                state.clock +=
                                    self.machine.step_chunk(state.clock, &costs, &mut scratch);
                                state.accesses += take as u64;
                                state.window_accesses += take as u64;
                                debug_assert!(
                                    state.clock < next_deadline,
                                    "chunk bound violated"
                                );
                                i += take;
                                run_len -= take;
                                continue;
                            }
                        }
                        state.clock += self.machine.step(access, state.clock, &costs);
                        state.accesses += 1;
                        state.window_accesses += 1;
                        i += 1;
                        run_len = run_len.saturating_sub(1);

                        if state.clock < next_deadline {
                            continue;
                        }

                        // Fault edges fire first: the hardware event
                        // precedes the daemon's reaction at the same
                        // instant. Empty plans never pass this guard.
                        if state.clock >= self.machine.faults.deadline() {
                            state.clock +=
                                self.machine.fault_tick(state.clock, state.accesses);
                        }

                        // Policy tick.
                        if state.clock >= state.next_tick {
                            state.clock +=
                                self.machine.policy_tick(state.clock, &mut shootdowns);
                            state.next_tick = state.clock + tick_quantum;
                        }

                        // Timeline sample, plus the co-run occupancy
                        // snapshot keyed to the same timestamp.
                        if state.clock >= state.next_sample {
                            state.timeline.push(self.machine.sample(
                                state.clock,
                                state.accesses,
                                state.window_accesses,
                                state.window_start,
                            ));
                            let mut fast_pages = vec![0u64; tenant_count];
                            Self::scan_occupancy(&self.machine, &self.layout, &mut fast_pages);
                            state
                                .occupancy_timeline
                                .push(OccupancyPoint { at: state.clock, fast_pages });
                            state.window_accesses = 0;
                            state.window_start = state.clock;
                            state.next_sample = state.clock + sample_interval;
                        }

                        // Simulated-time stop: the slice accounting
                        // below must still run, so leave the slice
                        // loops and stop the round loop afterwards.
                        if limit.is_some_and(|l| state.clock >= l) {
                            stopped = true;
                            break 'slice;
                        }
                        next_deadline =
                            earliest_deadline(state.next_tick, state.next_sample, limit)
                                .min(self.machine.faults.deadline());
                    }
                }
                self.lanes[lane_idx].buf = buf;

                // Attribute the slice deltas to the tenant that ran.
                let slow = self.machine.kernel.memory().node(Tier::Slow).stats();
                let fast = self.machine.kernel.memory().node(Tier::Fast).stats();
                let kernel = self.machine.kernel.stats();
                // Fast-tier occupancy only moves through allocations,
                // promotions and demotions, so a slice without any of
                // those keeps the previous scan — most steady-state
                // slices skip the O(fast-capacity) rmap walk entirely.
                let occupancy_moved = kernel.promotions != kernel_before.promotions
                    || kernel.demotions != kernel_before.demotions
                    || kernel.minor_faults != kernel_before.minor_faults;
                if occupancy_moved {
                    Self::scan_occupancy(&self.machine, &self.layout, &mut occ_after);
                } else {
                    occ_after.copy_from_slice(&state.occ_before);
                }
                {
                    let lane = &mut self.lanes[lane_idx];
                    lane.accesses += state.accesses - accesses_before;
                    lane.active_time += state.clock.saturating_sub(clock_before);
                    lane.slow_reads += slow.reads - slow_before.reads;
                    lane.slow_writes += slow.writes - slow_before.writes;
                    lane.fast_reads += fast.reads - fast_before.reads;
                    lane.fast_writes += fast.writes - fast_before.writes;
                    lane.promotions += kernel.promotions - kernel_before.promotions;
                    lane.demotions += kernel.demotions - kernel_before.demotions;
                    lane.ping_pongs += kernel.ping_pongs - kernel_before.ping_pongs;
                    lane.minor_faults += kernel.minor_faults - kernel_before.minor_faults;
                }
                // Cross-tenant evictions: the net fast-tier occupancy
                // idle tenants lost while this slice ran.
                let mut lost_total = 0u64;
                for (j, &occ) in occ_after.iter().enumerate() {
                    self.lanes[j].occupancy_sum += occ;
                    if j != lane_idx && occ < state.occ_before[j] {
                        let lost = state.occ_before[j] - occ;
                        state.cross_tenant_evictions += lost;
                        lost_total += lost;
                        self.lanes[j].evicted_by_others += lost;
                        self.lanes[lane_idx].evictions_caused += lost;
                    }
                }
                if lost_total > 0 {
                    // Feed the signal to contention-aware policies (a
                    // no-op for everything else — the default hook).
                    self.machine.policy.note_cross_tenant_evictions(lane_idx, lost_total);
                }
                std::mem::swap(&mut state.occ_before, &mut occ_after);

                if stopped {
                    break 'run;
                }
            }
        }
    }

    /// Consumes the co-run and the final loop state into the report.
    fn into_report(self, state: CoRunState) -> CoRunReport {
        let CoRunState {
            clock,
            accesses,
            timeline,
            markers,
            occupancy_timeline,
            occ_before,
            rounds,
            slices,
            cross_tenant_evictions,
            mut epochs,
            mut epoch_ordinal,
            mut open_epochs,
            ..
        } = state;
        let fast_capacity = self.machine.kernel.memory().allocator(Tier::Fast).capacity();

        // Close the epochs of every still-resident tenant at the final
        // clock, then order the records by (tenant, epoch) for stable
        // serialisation.
        for (lane, open) in open_epochs.iter_mut().enumerate() {
            if let Some(mark) = open.take() {
                epochs_push_closed(
                    &mut epochs,
                    mark,
                    lane,
                    &mut epoch_ordinal,
                    clock,
                    &self.lanes[lane],
                );
            }
        }
        epochs.sort_by_key(|e| (e.tenant, e.epoch));

        // `occ_before` holds the final scan (the slice loop swaps the
        // fresh scan into it at every boundary).
        let final_occupancy = occ_before;
        let tenants = self
            .lanes
            .iter()
            .enumerate()
            .map(|(i, lane)| TenantRunReport {
                tenant: i,
                workload: lane.workload.name().to_string(),
                weight: lane.weight,
                rss_pages: lane.rss_pages,
                base_page: lane.base,
                seed: lane.seed,
                accesses: lane.accesses,
                active_time: lane.active_time,
                slow_reads: lane.slow_reads,
                slow_writes: lane.slow_writes,
                fast_reads: lane.fast_reads,
                fast_writes: lane.fast_writes,
                promotions: lane.promotions,
                demotions: lane.demotions,
                ping_pongs: lane.ping_pongs,
                minor_faults: lane.minor_faults,
                markers: lane.markers,
                evicted_by_others: lane.evicted_by_others,
                evictions_caused: lane.evictions_caused,
                final_fast_pages: final_occupancy[i],
                mean_fast_share: if slices == 0 || fast_capacity == 0 {
                    0.0
                } else {
                    lane.occupancy_sum as f64 / (slices as f64 * fast_capacity as f64)
                },
            })
            .collect();

        let combined = self.machine.into_report(
            format!("corun[{}]", self.mix_label),
            clock,
            accesses,
            timeline,
            markers,
        );
        CoRunReport {
            combined,
            tenants,
            epochs,
            contention: CoRunContention {
                fast_capacity_pages: fast_capacity,
                cross_tenant_evictions,
                rounds,
                slices,
                interleave_quantum: self.config.interleave_quantum as u64,
                occupancy_timeline,
            },
        }
    }
}

/// Closes `mark` into a [`TenantEpoch`] and appends it — the one
/// shared site [`CoRunSimulation::run_core`] and
/// [`CoRunSimulation::into_report`] both use.
fn epochs_push_closed(
    epochs: &mut Vec<TenantEpoch>,
    mark: EpochMark,
    lane: usize,
    ordinals: &mut [u32],
    end: Nanos,
    lane_ref: &Lane,
) {
    epochs.push(mark.close(lane, ordinals, end, lane_ref));
}

/// The mutable loop registers of a co-run — everything
/// [`CoRunSimulation::run_core`] reads and writes besides the machine,
/// the scheduler and the lane accumulators. A co-run snapshot is the
/// machine state, the scheduler state, the lanes, and this.
struct CoRunState {
    clock: Nanos,
    accesses: u64,
    next_tick: Nanos,
    next_sample: Nanos,
    timeline: Vec<TimelinePoint>,
    markers: Vec<MarkerRecord>,
    occupancy_timeline: Vec<OccupancyPoint>,
    window_accesses: u64,
    window_start: Nanos,
    /// The occupancy scan entering the current slice (and, at run end,
    /// the final scan).
    occ_before: Vec<u64>,
    rounds: u64,
    slices: u64,
    cross_tenant_evictions: u64,
    epochs: Vec<TenantEpoch>,
    epoch_ordinal: Vec<u32>,
    open_epochs: Vec<Option<EpochMark>>,
}

impl CoRunState {
    fn snapshot(&self) -> Json {
        let ordinals: Vec<u64> = self.epoch_ordinal.iter().map(|&x| u64::from(x)).collect();
        Json::obj([
            ("clock", Json::U64(self.clock.as_nanos())),
            ("accesses", Json::U64(self.accesses)),
            ("next_tick", Json::U64(self.next_tick.as_nanos())),
            ("next_sample", Json::U64(self.next_sample.as_nanos())),
            ("window_accesses", Json::U64(self.window_accesses)),
            ("window_start", Json::U64(self.window_start.as_nanos())),
            ("timeline", snapshot::timeline_to_json(&self.timeline)),
            ("markers", snapshot::markers_to_json(&self.markers)),
            (
                "occupancy_timeline",
                Json::Arr(
                    self.occupancy_timeline
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("at", Json::U64(p.at.as_nanos())),
                                ("fast_pages", Json::Str(hex_from_u64s(&p.fast_pages))),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("occ_before", Json::Str(hex_from_u64s(&self.occ_before))),
            ("rounds", Json::U64(self.rounds)),
            ("slices", Json::U64(self.slices)),
            ("cross_tenant_evictions", Json::U64(self.cross_tenant_evictions)),
            ("epoch_ordinal", Json::Str(hex_from_u64s(&ordinals))),
            (
                "open_epochs",
                Json::Arr(
                    self.open_epochs
                        .iter()
                        .map(|o| match o {
                            None => Json::Null,
                            Some(mark) => mark.snapshot(),
                        })
                        .collect(),
                ),
            ),
            ("epochs", Json::Arr(self.epochs.iter().map(epoch_to_json).collect())),
        ])
    }

    fn restore(state: &Json, tenant_count: usize) -> Result<Self> {
        let occ_before = state.req_u64s("occ_before")?;
        if occ_before.len() != tenant_count {
            return Err(Error::snapshot(format!(
                "occupancy scan has {} lanes, mix has {tenant_count}",
                occ_before.len()
            )));
        }
        let raw_ordinals = state.req_u64s("epoch_ordinal")?;
        if raw_ordinals.len() != tenant_count {
            return Err(Error::snapshot(format!(
                "epoch ordinal array has {} lanes, mix has {tenant_count}",
                raw_ordinals.len()
            )));
        }
        let epoch_ordinal = raw_ordinals
            .into_iter()
            .map(|x| {
                u32::try_from(x)
                    .map_err(|_| Error::snapshot(format!("epoch ordinal {x} exceeds u32")))
            })
            .collect::<Result<Vec<u32>>>()?;
        let open_arr = state.req_arr("open_epochs")?;
        if open_arr.len() != tenant_count {
            return Err(Error::snapshot(format!(
                "open-epoch array has {} lanes, mix has {tenant_count}",
                open_arr.len()
            )));
        }
        let open_epochs = open_arr
            .iter()
            .map(|o| match o {
                Json::Null => Ok(None),
                mark => EpochMark::from_snapshot(mark).map(Some),
            })
            .collect::<Result<Vec<Option<EpochMark>>>>()?;
        let epochs = state
            .req_arr("epochs")?
            .iter()
            .map(|e| epoch_from_json(e, tenant_count))
            .collect::<Result<Vec<TenantEpoch>>>()?;
        let occupancy_timeline = state
            .req_arr("occupancy_timeline")?
            .iter()
            .map(|p| {
                let fast_pages = p.req_u64s("fast_pages")?;
                if fast_pages.len() != tenant_count {
                    return Err(Error::snapshot(format!(
                        "occupancy point has {} lanes, mix has {tenant_count}",
                        fast_pages.len()
                    )));
                }
                Ok(OccupancyPoint { at: Nanos::new(p.req_u64("at")?), fast_pages })
            })
            .collect::<Result<Vec<OccupancyPoint>>>()?;
        Ok(Self {
            clock: Nanos::new(state.req_u64("clock")?),
            accesses: state.req_u64("accesses")?,
            next_tick: Nanos::new(state.req_u64("next_tick")?),
            next_sample: Nanos::new(state.req_u64("next_sample")?),
            timeline: snapshot::timeline_from_json(state, "timeline")?,
            markers: snapshot::markers_from_json(state, "markers")?,
            occupancy_timeline,
            window_accesses: state.req_u64("window_accesses")?,
            window_start: Nanos::new(state.req_u64("window_start")?),
            occ_before,
            rounds: state.req_u64("rounds")?,
            slices: state.req_u64("slices")?,
            cross_tenant_evictions: state.req_u64("cross_tenant_evictions")?,
            epochs,
            epoch_ordinal,
            open_epochs,
        })
    }
}

fn epoch_to_json(e: &TenantEpoch) -> Json {
    Json::obj([
        ("tenant", Json::U64(e.tenant as u64)),
        ("epoch", Json::U64(u64::from(e.epoch))),
        ("start", Json::U64(e.start.as_nanos())),
        ("end", Json::U64(e.end.as_nanos())),
        ("accesses", Json::U64(e.accesses)),
        ("slow_tier_accesses", Json::U64(e.slow_tier_accesses)),
        ("evicted_by_others", Json::U64(e.evicted_by_others)),
    ])
}

fn epoch_from_json(snap: &Json, tenant_count: usize) -> Result<TenantEpoch> {
    let tenant = snap.req_u64("tenant")? as usize;
    if tenant >= tenant_count {
        return Err(Error::snapshot(format!(
            "epoch tenant {tenant} out of range for {tenant_count} lanes"
        )));
    }
    let raw_epoch = snap.req_u64("epoch")?;
    let epoch = u32::try_from(raw_epoch)
        .map_err(|_| Error::snapshot(format!("epoch ordinal {raw_epoch} exceeds u32")))?;
    Ok(TenantEpoch {
        tenant,
        epoch,
        start: Nanos::new(snap.req_u64("start")?),
        end: Nanos::new(snap.req_u64("end")?),
        accesses: snap.req_u64("accesses")?,
        slow_tier_accesses: snap.req_u64("slow_tier_accesses")?,
        evicted_by_others: snap.req_u64("evicted_by_others")?,
    })
}

/// Bookkeeping for one open tenant-epoch: the lane-accumulator values
/// at the instant the epoch opened, so closing it yields exact deltas.
#[derive(Debug, Clone, Copy)]
struct EpochMark {
    start: Nanos,
    accesses: u64,
    slow_tier: u64,
    evicted: u64,
}

impl EpochMark {
    fn open(start: Nanos, lane: &Lane) -> Self {
        Self {
            start,
            accesses: lane.accesses,
            slow_tier: lane.slow_reads + lane.slow_writes,
            evicted: lane.evicted_by_others,
        }
    }

    fn snapshot(&self) -> Json {
        Json::obj([
            ("start", Json::U64(self.start.as_nanos())),
            ("accesses", Json::U64(self.accesses)),
            ("slow_tier", Json::U64(self.slow_tier)),
            ("evicted", Json::U64(self.evicted)),
        ])
    }

    fn from_snapshot(snap: &Json) -> Result<Self> {
        Ok(Self {
            start: Nanos::new(snap.req_u64("start")?),
            accesses: snap.req_u64("accesses")?,
            slow_tier: snap.req_u64("slow_tier")?,
            evicted: snap.req_u64("evicted")?,
        })
    }

    fn close(
        self,
        tenant: usize,
        ordinals: &mut [u32],
        end: Nanos,
        lane: &Lane,
    ) -> TenantEpoch {
        let epoch = ordinals[tenant];
        ordinals[tenant] += 1;
        TenantEpoch {
            tenant,
            epoch,
            start: self.start,
            end,
            accesses: lane.accesses - self.accesses,
            slow_tier_accesses: lane.slow_reads + lane.slow_writes - self.slow_tier,
            evicted_by_others: lane.evicted_by_others - self.evicted,
        }
    }
}

/// One contiguous residency interval of a tenant: from its admission
/// (or time zero) to its departure (or the end of the run), with the
/// metrics attributed to the tenant over exactly that interval. Static
/// mixes produce one epoch per tenant spanning the whole run; dynamic
/// scenarios produce one per arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantEpoch {
    /// Tenant index, in mix order.
    pub tenant: usize,
    /// Per-tenant epoch ordinal (0 = first residency).
    pub epoch: u32,
    /// Virtual time the epoch opened.
    pub start: Nanos,
    /// Virtual time the epoch closed.
    pub end: Nanos,
    /// CPU accesses the tenant executed during the epoch.
    pub accesses: u64,
    /// Slow-tier line requests during the tenant's slices this epoch.
    pub slow_tier_accesses: u64,
    /// Net fast-tier occupancy lost to co-runners during the epoch.
    pub evicted_by_others: u64,
}

/// One tenant's share of a co-run outcome. Every counter is the exact
/// delta of the shared machine state over the tenant's own slices
/// (see the module docs on attribution).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantRunReport {
    /// Tenant index, in mix order.
    pub tenant: usize,
    /// Workload name.
    pub workload: String,
    /// Interleave weight.
    pub weight: u32,
    /// Private footprint in pages.
    pub rss_pages: u64,
    /// Base offset of the tenant's page-id namespace.
    pub base_page: u64,
    /// Generator seed.
    pub seed: u64,
    /// CPU accesses the tenant executed.
    pub accesses: u64,
    /// Virtual time accrued while the tenant's slices ran.
    pub active_time: Nanos,
    /// Slow-tier line reads during the tenant's slices.
    pub slow_reads: u64,
    /// Slow-tier line writes during the tenant's slices.
    pub slow_writes: u64,
    /// Fast-tier line reads during the tenant's slices.
    pub fast_reads: u64,
    /// Fast-tier line writes during the tenant's slices.
    pub fast_writes: u64,
    /// Pages promoted during the tenant's slices.
    pub promotions: u64,
    /// Pages demoted during the tenant's slices.
    pub demotions: u64,
    /// Ping-pong migrations during the tenant's slices.
    pub ping_pongs: u64,
    /// Minor faults during the tenant's slices.
    pub minor_faults: u64,
    /// Phase markers the tenant emitted.
    pub markers: u64,
    /// Net fast-tier occupancy this tenant lost while *other* tenants
    /// ran (a lower bound on gross cross-tenant demotions — see the
    /// module docs).
    pub evicted_by_others: u64,
    /// Net fast-tier occupancy *other* tenants lost while this tenant
    /// ran.
    pub evictions_caused: u64,
    /// Fast-tier pages the tenant held at the end of the run.
    pub final_fast_pages: u64,
    /// Mean share of the fast tier held across slice-boundary scans,
    /// in `[0, 1]`.
    pub mean_fast_share: f64,
}

impl TenantRunReport {
    /// Total slow-tier requests during the tenant's slices — the
    /// per-tenant Fig. 13 metric.
    pub fn slow_tier_accesses(&self) -> u64 {
        self.slow_reads + self.slow_writes
    }

    /// Mean throughput in accesses per second of the tenant's active
    /// virtual time.
    pub fn throughput(&self) -> f64 {
        if self.active_time.is_zero() {
            0.0
        } else {
            self.accesses as f64 / self.active_time.as_secs_f64()
        }
    }

    /// Flat `(name, value)` integer counters, mirroring
    /// [`RunReport::scalar_metrics`] for the per-tenant JSON sections.
    /// Names are part of the co-run JSON schema; extend, don't rename.
    pub fn scalar_metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("accesses", self.accesses),
            ("active_time_ns", self.active_time.as_nanos()),
            ("slow_reads", self.slow_reads),
            ("slow_writes", self.slow_writes),
            ("fast_reads", self.fast_reads),
            ("fast_writes", self.fast_writes),
            ("slow_tier_accesses", self.slow_tier_accesses()),
            ("promotions", self.promotions),
            ("demotions", self.demotions),
            ("ping_pongs", self.ping_pongs),
            ("minor_faults", self.minor_faults),
            ("markers", self.markers),
            ("evicted_by_others", self.evicted_by_others),
            ("evictions_caused", self.evictions_caused),
            ("final_fast_pages", self.final_fast_pages),
        ]
    }
}

/// One fast-tier occupancy snapshot, taken at the timeline sample
/// cadence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancyPoint {
    /// Snapshot timestamp.
    pub at: Nanos,
    /// Fast-tier pages held per tenant, in mix order.
    pub fast_pages: Vec<u64>,
}

/// Shared-tier contention metrics of a co-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoRunContention {
    /// Fast-tier capacity in pages (the contended resource).
    pub fast_capacity_pages: u64,
    /// Net fast-tier occupancy idle tenants lost while another
    /// tenant's slice ran (a lower bound on gross cross-tenant
    /// demotions — see the module docs).
    pub cross_tenant_evictions: u64,
    /// Completed scheduling rounds.
    pub rounds: u64,
    /// Executed tenant slices.
    pub slices: u64,
    /// The interleave quantum in force.
    pub interleave_quantum: u64,
    /// Per-tenant fast-tier occupancy over time.
    pub occupancy_timeline: Vec<OccupancyPoint>,
}

/// The outcome of a co-run: the combined machine-wide report plus the
/// per-tenant sections and contention metrics.
#[derive(Debug, Clone)]
pub struct CoRunReport {
    /// Machine-wide totals, exactly a [`RunReport`] (the workload name
    /// is the mix label, e.g. `corun[GUPS+2*Silo]`).
    pub combined: RunReport,
    /// Per-tenant attribution, in mix order.
    pub tenants: Vec<TenantRunReport>,
    /// Per-residency attribution, ordered by (tenant, epoch). One
    /// whole-run epoch per tenant for static mixes; one per arrival
    /// for dynamic scenarios.
    pub epochs: Vec<TenantEpoch>,
    /// Shared-tier contention metrics.
    pub contention: CoRunContention,
}

impl CoRunReport {
    /// Jain's fairness index over each tenant's fast-tier occupancy
    /// normalised by its weighted fair share: `1.0` means every tenant
    /// holds exactly its share, `1/N` means one tenant holds
    /// everything.
    pub fn occupancy_fairness(&self) -> f64 {
        let total_weight: u64 = self.tenants.iter().map(|t| t.weight as u64).sum();
        let normalised: Vec<f64> = self
            .tenants
            .iter()
            .map(|t| t.mean_fast_share * total_weight as f64 / t.weight as f64)
            .collect();
        jain_fairness(&normalised)
    }

    /// Multi-line human-readable summary: the combined machine row plus
    /// one row per tenant.
    pub fn summary(&self) -> String {
        let mut out = format!("{}\n", self.combined.summary());
        for t in &self.tenants {
            out.push_str(&format!(
                "  tenant {} {:<14} w{} | {} accesses | slow-tier {} | fast pages {} (mean share {:.2}) | evicted-by-others {}\n",
                t.tenant,
                t.workload,
                t.weight,
                t.accesses,
                t.slow_tier_accesses(),
                t.final_fast_pages,
                t.mean_fast_share,
                t.evicted_by_others,
            ));
        }
        out.push_str(&format!(
            "  contention: {} cross-tenant evictions over {} slices | occupancy fairness {:.3}\n",
            self.contention.cross_tenant_evictions,
            self.contention.slices,
            self.occupancy_fairness(),
        ));
        out
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` over non-negative values;
/// `1.0` when all equal, `1/n` when one value dominates. Returns 1.0
/// for empty or all-zero input (nothing is being shared unfairly).
pub fn jain_fairness(values: &[f64]) -> f64 {
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if values.is_empty() || sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neomem_policies::FirstTouchPolicy;
    use neomem_workloads::WorkloadKind;

    fn mix_2() -> TenantMix {
        TenantMix::builder()
            .tenant(WorkloadKind::Gups, 1024, 3)
            .tenant(WorkloadKind::Silo, 1024, 5)
            .build()
            .unwrap()
    }

    fn quick_corun(mix: &TenantMix, max_accesses: u64) -> CoRunConfig {
        let mut config = CoRunConfig::quick(mix, 2);
        config.sim.max_accesses = max_accesses;
        config
    }

    #[test]
    fn corun_runs_and_attributes_all_accesses() {
        let mix = mix_2();
        let report = CoRunSimulation::new(
            quick_corun(&mix, 60_000),
            &mix,
            Box::new(FirstTouchPolicy::new()),
        )
        .unwrap()
        .run();
        assert_eq!(report.combined.accesses, 60_000);
        assert_eq!(report.tenants.len(), 2);
        let attributed: u64 = report.tenants.iter().map(|t| t.accesses).sum();
        assert_eq!(attributed, 60_000, "every access belongs to exactly one tenant");
        let active: Nanos = report
            .tenants
            .iter()
            .fold(Nanos::ZERO, |acc, t| acc + t.active_time);
        assert_eq!(active, report.combined.runtime, "virtual time fully attributed");
        let slow: u64 = report.tenants.iter().map(|t| t.slow_tier_accesses()).sum();
        assert_eq!(slow, report.combined.slow_tier_accesses(), "slow traffic fully attributed");
        assert!(report.combined.workload.starts_with("corun["));
        assert!(report.contention.slices >= report.contention.rounds);
        assert!(!report.summary().is_empty());
    }

    #[test]
    fn weights_shape_the_interleave() {
        let mix = TenantMix::builder()
            .tenant(WorkloadKind::Gups, 512, 1)
            .weighted_tenant(WorkloadKind::Gups, 512, 3, 2)
            .build()
            .unwrap();
        let report = CoRunSimulation::new(
            quick_corun(&mix, 40_000),
            &mix,
            Box::new(FirstTouchPolicy::new()),
        )
        .unwrap()
        .run();
        let a = report.tenants[0].accesses as f64;
        let b = report.tenants[1].accesses as f64;
        assert!(b > 2.5 * a, "weight-3 tenant must run ~3x the slices ({a} vs {b})");
    }

    #[test]
    fn tenant_namespaces_are_disjoint() {
        // Each tenant's pages live in its own base range: with
        // first-touch and no migration, tenant 1's minor faults cannot
        // touch tenant 0's mappings.
        let mix = mix_2();
        let report = CoRunSimulation::new(
            quick_corun(&mix, 50_000),
            &mix,
            Box::new(FirstTouchPolicy::new()),
        )
        .unwrap()
        .run();
        let mapped: u64 = report.tenants.iter().map(|t| t.minor_faults).sum();
        assert_eq!(report.combined.kernel.minor_faults, mapped);
        // Both tenants faulted their own pages in.
        assert!(report.tenants.iter().all(|t| t.minor_faults > 0));
        assert!(report.tenants.iter().all(|t| t.minor_faults <= t.rss_pages));
    }

    #[test]
    fn rss_mismatch_rejected() {
        let mix = mix_2();
        let mut config = quick_corun(&mix, 1_000);
        config.sim.rss_pages += 1;
        config.sim.memory = None;
        assert!(
            CoRunSimulation::new(config, &mix, Box::new(FirstTouchPolicy::new())).is_err()
        );
    }

    #[test]
    fn zero_quantum_rejected() {
        let mix = mix_2();
        let mut config = quick_corun(&mix, 1_000);
        config.interleave_quantum = 0;
        assert!(
            CoRunSimulation::new(config, &mix, Box::new(FirstTouchPolicy::new())).is_err()
        );
    }

    #[test]
    fn max_time_bounds_corun() {
        let mix = mix_2();
        let mut config = quick_corun(&mix, u64::MAX / 2);
        config.sim.max_time = Some(Nanos::from_millis(1));
        let report = CoRunSimulation::new(config, &mix, Box::new(FirstTouchPolicy::new()))
            .unwrap()
            .run();
        assert!(report.combined.runtime >= Nanos::from_millis(1));
        assert!(report.combined.runtime < Nanos::from_millis(100), "should stop promptly");
        // Attribution still holds on the early-stop path.
        let attributed: u64 = report.tenants.iter().map(|t| t.accesses).sum();
        assert_eq!(attributed, report.combined.accesses);
    }

    #[test]
    fn single_tenant_corun_matches_plain_simulation() {
        // A one-tenant co-run must be the same machine as Simulation:
        // identical runtime, traffic and kernel counters.
        let mix = TenantMix::builder().tenant(WorkloadKind::Gups, 2048, 7).build().unwrap();
        let config = quick_corun(&mix, 80_000);
        let corun = CoRunSimulation::new(
            config.clone(),
            &mix,
            Box::new(FirstTouchPolicy::new()),
        )
        .unwrap()
        .run();
        let plain = crate::Simulation::new(
            config.sim,
            WorkloadKind::Gups.build(2048, 7),
            Box::new(FirstTouchPolicy::new()),
        )
        .unwrap()
        .run();
        assert_eq!(corun.combined.runtime, plain.runtime);
        assert_eq!(corun.combined.accesses, plain.accesses);
        assert_eq!(corun.combined.llc_misses, plain.llc_misses);
        assert_eq!(corun.combined.slow_reads, plain.slow_reads);
        assert_eq!(corun.combined.slow_writes, plain.slow_writes);
        assert_eq!(corun.combined.kernel, plain.kernel);
        assert_eq!(corun.combined.tlb, plain.tlb);
        assert_eq!(corun.contention.cross_tenant_evictions, 0);
    }

    #[test]
    fn steady_scenario_is_bit_identical_to_static() {
        // The scheduler-equivalence contract at engine level: an
        // event-free scenario over a mix must reproduce the static
        // round-robin exactly, counter for counter.
        let mix = mix_2();
        let config = quick_corun(&mix, 60_000);
        let fixed = CoRunSimulation::new(
            config.clone(),
            &mix,
            Box::new(FirstTouchPolicy::new()),
        )
        .unwrap()
        .run();
        let scenario = neomem_workloads::Scenario::steady(mix);
        let dynamic =
            CoRunSimulation::with_scenario(config, &scenario, Box::new(FirstTouchPolicy::new()))
                .unwrap()
                .run();
        assert_eq!(fixed.combined.runtime, dynamic.combined.runtime);
        assert_eq!(fixed.combined.scalar_metrics(), dynamic.combined.scalar_metrics());
        assert_eq!(fixed.tenants, dynamic.tenants);
        assert_eq!(fixed.contention, dynamic.contention);
        // Static runs report one whole-run epoch per tenant.
        assert_eq!(dynamic.epochs.len(), 2);
        assert!(dynamic.epochs.iter().all(|e| e.epoch == 0 && e.start.is_zero()));
    }

    #[test]
    fn arrivals_and_departures_bound_tenant_activity() {
        use neomem_types::Nanos;
        // Tenant 1 arrives 1 ms in and departs at 3 ms; the run is
        // bounded at 6 ms so both events land mid-run.
        let mix = mix_2();
        let scenario = neomem_workloads::Scenario::builder(mix.clone())
            .arrive(1, Nanos::from_millis(1))
            .depart(1, Nanos::from_millis(3))
            .build()
            .unwrap();
        let mut config = quick_corun(&mix, u64::MAX / 2);
        config.sim.max_time = Some(Nanos::from_millis(6));
        let report =
            CoRunSimulation::with_scenario(config, &scenario, Box::new(FirstTouchPolicy::new()))
                .unwrap()
                .run();
        // Both tenants ran; every access is attributed.
        let attributed: u64 = report.tenants.iter().map(|t| t.accesses).sum();
        assert_eq!(attributed, report.combined.accesses);
        assert!(report.tenants[1].accesses > 0, "tenant 1 ran between its events");
        // Tenant 1's single epoch sits inside [1ms, 3ms+reclaim].
        let epochs1: Vec<_> = report.epochs.iter().filter(|e| e.tenant == 1).collect();
        assert_eq!(epochs1.len(), 1);
        assert!(epochs1[0].start >= Nanos::from_millis(1));
        assert!(epochs1[0].end < Nanos::from_millis(6));
        assert_eq!(epochs1[0].accesses, report.tenants[1].accesses);
        // Tenant 0's epoch spans the whole run.
        let epochs0: Vec<_> = report.epochs.iter().filter(|e| e.tenant == 0).collect();
        assert_eq!(epochs0.len(), 1);
        assert!(epochs0[0].start.is_zero());
        assert_eq!(epochs0[0].end, report.combined.runtime);
        // Departure leaves no residency: tenant 1 arrived after tenant
        // 0 had filled the fast tier (first-touch), and whatever it did
        // hold was reclaimed.
        assert_eq!(report.tenants[1].final_fast_pages, 0, "no fast pages after departure");
    }

    #[test]
    fn departure_reclaims_fast_pages_through_eviction() {
        use neomem_types::Nanos;
        // Both tenants run from time zero, so tenant 1 holds fast-tier
        // pages when it departs at 2 ms: the reclaim must demote them
        // through the normal eviction path and attribute the demotions
        // to the departing tenant.
        let mix = mix_2();
        let scenario = neomem_workloads::Scenario::builder(mix.clone())
            .depart(1, Nanos::from_millis(2))
            .build()
            .unwrap();
        let mut config = quick_corun(&mix, u64::MAX / 2);
        config.sim.max_time = Some(Nanos::from_millis(5));
        let report =
            CoRunSimulation::with_scenario(config, &scenario, Box::new(FirstTouchPolicy::new()))
                .unwrap()
                .run();
        assert!(report.tenants[1].accesses > 0);
        assert_eq!(report.tenants[1].final_fast_pages, 0, "fast pages reclaimed");
        assert!(report.tenants[1].demotions > 0, "reclaim went through demotion");
        let epochs1: Vec<_> = report.epochs.iter().filter(|e| e.tenant == 1).collect();
        assert_eq!(epochs1.len(), 1);
        assert!(epochs1[0].start.is_zero());
        assert!(epochs1[0].end >= Nanos::from_millis(2));
        assert!(epochs1[0].end < report.combined.runtime);
    }

    #[test]
    fn idle_gap_before_first_arrival_is_fast_forwarded() {
        use neomem_types::Nanos;
        // A one-tenant scenario whose tenant only arrives at 2 ms: the
        // engine idles to the arrival, then runs the access budget.
        let mix = TenantMix::builder().tenant(WorkloadKind::Gups, 2048, 7).build().unwrap();
        let scenario = neomem_workloads::Scenario::builder(mix.clone())
            .arrive(0, Nanos::from_millis(2))
            .build()
            .unwrap();
        let report = CoRunSimulation::with_scenario(
            quick_corun(&mix, 30_000),
            &scenario,
            Box::new(FirstTouchPolicy::new()),
        )
        .unwrap()
        .run();
        assert_eq!(report.combined.accesses, 30_000);
        assert!(report.combined.runtime >= Nanos::from_millis(2));
        assert_eq!(report.epochs.len(), 1);
        assert!(report.epochs[0].start >= Nanos::from_millis(2));
    }

    #[test]
    fn weight_change_reshapes_subsequent_slices() {
        use neomem_types::Nanos;
        // Equal weights until 1 ms, then tenant 1 runs at weight 6: it
        // must end up with well over half of the accesses.
        let mix = TenantMix::builder()
            .tenant(WorkloadKind::Gups, 1024, 1)
            .tenant(WorkloadKind::Gups, 1024, 2)
            .build()
            .unwrap();
        let scenario = neomem_workloads::Scenario::builder(mix.clone())
            .set_weight(1, Nanos::from_millis(1), 6)
            .build()
            .unwrap();
        let mut config = quick_corun(&mix, u64::MAX / 2);
        config.sim.max_time = Some(Nanos::from_millis(8));
        let report =
            CoRunSimulation::with_scenario(config, &scenario, Box::new(FirstTouchPolicy::new()))
                .unwrap()
                .run();
        let a = report.tenants[0].accesses as f64;
        let b = report.tenants[1].accesses as f64;
        assert!(b > 1.8 * a, "re-weighted tenant must dominate ({a} vs {b})");
        assert_eq!(report.tenants[1].weight, 6, "report carries the final weight");
    }

    #[test]
    fn scenario_footprint_mismatch_rejected() {
        let mix = mix_2();
        let scenario = neomem_workloads::Scenario::steady(mix.clone());
        let mut config = quick_corun(&mix, 1_000);
        config.sim.rss_pages += 1;
        config.sim.memory = None;
        assert!(CoRunSimulation::with_scenario(
            config,
            &scenario,
            Box::new(FirstTouchPolicy::new())
        )
        .is_err());
    }

    #[test]
    fn jain_index_basics() {
        assert!((jain_fairness(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_fairness(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
        assert!((jain_fairness(&[]) - 1.0).abs() < 1e-12);
        assert!((jain_fairness(&[0.0, 0.0]) - 1.0).abs() < 1e-12);
    }
}
